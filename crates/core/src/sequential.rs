//! The linear-time sequential algorithm (Paige–Tarjan–Bonic style, \[16\] in
//! the paper), structured exactly like the parallel algorithm:
//!
//! 1. find the cycle nodes,
//! 2. label the cycle nodes by canonising each cycle's B-label string
//!    (smallest repeating prefix + least rotation) and grouping equivalent
//!    cycles,
//! 3. label the tree nodes level by level using Lemma 2.1(i):
//!    `Q(x)` is determined by the pair `(B(x), Q(f(x)))`.
//!
//! Everything is hashed, so the running time is `O(n)` expected (the original
//! paper achieves deterministic linear time with radix bucketing; hashing is
//! the standard practical substitution).

use crate::problem::{Instance, Partition};
use sfcp_pram::fxhash::FxHashMap;
use sfcp_strings::canonical::booth_msp;
use sfcp_strings::period::smallest_period_seq;
use sfcp_strings::rotation;

/// Compute the coarsest stable refinement with the sequential linear-time
/// algorithm.
#[must_use]
pub fn coarsest_sequential(instance: &Instance) -> Partition {
    let n = instance.len();
    if n == 0 {
        return Partition::new(Vec::new());
    }
    let f = instance.f();
    let b = instance.blocks();

    // ---- Step 1: cycle nodes (in-degree peeling) and cycle extraction -----
    let mut indeg = vec![0u32; n];
    for &y in f {
        indeg[y as usize] += 1;
    }
    let mut stack: Vec<u32> = (0..n as u32).filter(|&x| indeg[x as usize] == 0).collect();
    let mut removed = vec![false; n];
    while let Some(x) = stack.pop() {
        removed[x as usize] = true;
        let y = f[x as usize] as usize;
        indeg[y] -= 1;
        if indeg[y] == 0 {
            stack.push(y as u32);
        }
    }

    let mut labels = vec![u32::MAX; n];
    let mut next_label = 0u32;

    // ---- Step 2: cycle node labelling --------------------------------------
    // class key (canonical period string, offset) → Q label.
    let mut class_of: FxHashMap<(Vec<u32>, u32), u32> = FxHashMap::default();
    let mut visited = vec![false; n];
    for start in 0..n as u32 {
        if removed[start as usize] || visited[start as usize] {
            continue;
        }
        // Walk the cycle containing `start`.
        let mut cycle = Vec::new();
        let mut cur = start;
        loop {
            visited[cur as usize] = true;
            cycle.push(cur);
            cur = f[cur as usize];
            if cur == start {
                break;
            }
        }
        let s: Vec<u32> = cycle.iter().map(|&x| b[x as usize]).collect();
        let p = smallest_period_seq(&s);
        let prefix = &s[..p];
        let msp = booth_msp(prefix);
        let canonical = rotation(prefix, msp);
        for (pos, &x) in cycle.iter().enumerate() {
            let offset = ((pos + p - msp) % p) as u32;
            let key = (canonical.clone(), offset);
            let label = *class_of.entry(key).or_insert_with(|| {
                let l = next_label;
                next_label += 1;
                l
            });
            labels[x as usize] = label;
        }
    }

    // ---- Step 3: tree node labelling, level by level ----------------------
    // Pair (B(x), Q(f(x))) determines Q(x) (Lemma 2.1(i)); seed the map with
    // the cycle nodes so that tree nodes equivalent to cycle nodes merge.
    let mut pair_class: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    for x in 0..n {
        if !removed[x] {
            pair_class.insert((b[x], labels[f[x] as usize]), labels[x]);
        }
    }
    // Order the tree nodes by increasing level (distance to the cycle) with a
    // reverse-BFS from the cycle nodes over the pre-image relation.
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for x in 0..n as u32 {
        if removed[x as usize] {
            children[f[x as usize] as usize].push(x);
        }
    }
    let mut queue: std::collections::VecDeque<u32> =
        (0..n as u32).filter(|&x| !removed[x as usize]).collect();
    // The queue initially holds cycle nodes; their tree children follow.
    while let Some(y) = queue.pop_front() {
        for &x in &children[y as usize] {
            let key = (b[x as usize], labels[y as usize]);
            let label = *pair_class.entry(key).or_insert_with(|| {
                let l = next_label;
                next_label += 1;
                l
            });
            labels[x as usize] = label;
            queue.push_back(x);
        }
    }

    debug_assert!(labels.iter().all(|&l| l != u32::MAX));
    Partition::new(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::coarsest_naive;
    use crate::verify::assert_valid;
    use proptest::prelude::*;

    #[test]
    fn paper_example() {
        let inst = Instance::paper_example();
        let q = coarsest_sequential(&inst);
        let expected = Partition::new(sfcp_forest::generators::paper_example_expected_q());
        assert!(q.same_partition(&expected), "got {:?}", q.labels());
        assert_valid(&inst, &q);
    }

    #[test]
    fn edge_cases_match_naive() {
        for inst in [
            Instance::new(vec![], vec![]),
            Instance::new(vec![0], vec![0]),
            Instance::new(vec![1, 0], vec![0, 0]),
            Instance::new(vec![0; 10], (0..10).collect()),
            Instance::new((0..10).collect(), vec![0; 10]),
            Instance::new(vec![1, 2, 3, 4, 5, 0], vec![0, 1, 0, 1, 0, 1]),
            Instance::new(vec![1, 2, 3, 4, 5, 0], vec![0, 1, 0, 0, 1, 0]),
        ] {
            let q = coarsest_sequential(&inst);
            assert!(
                q.same_partition(&coarsest_naive(&inst)),
                "mismatch on {:?}",
                inst.f()
            );
        }
    }

    #[test]
    fn structured_instances_match_naive() {
        for inst in [
            Instance::random(800, 2, 0),
            Instance::random(800, 6, 1),
            Instance::random_cycles(&[2, 3, 4, 6, 6, 12], 2, 2),
            Instance::periodic_cycles(10, 24, 6, 3, 3),
            Instance::deep(600, 5, 2, 4),
            Instance::deep(600, 1, 3, 5),
        ] {
            let q = coarsest_sequential(&inst);
            assert!(q.same_partition(&coarsest_naive(&inst)));
            assert_valid(&inst, &q);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn matches_naive_on_random_instances(n in 1usize..150, blocks in 1usize..4, seed in 0u64..400) {
            let inst = Instance::random(n, blocks, seed);
            let q = coarsest_sequential(&inst);
            prop_assert!(q.same_partition(&coarsest_naive(&inst)));
        }
    }
}

//! Verification of candidate solutions.
//!
//! A labelling `Q` solves the coarsest partition problem for `(f, B)` iff
//!
//! 1. `Q` refines `B` (condition 1 of Section 2),
//! 2. `Q` is stable: `Q[x] == Q[y] ⇒ Q[f(x)] == Q[f(y)]` (condition 2), and
//! 3. no coarser partition satisfies 1–2.
//!
//! Conditions 1–2 are checked directly in `O(n)`.  For coarseness the
//! verifier uses the lattice fact that every stable refinement of `B` refines
//! the coarsest one: a stable refinement with the *same number of blocks* as
//! the coarsest partition must therefore be equal to it.  The block count of
//! the coarsest partition is obtained from the independent fixpoint
//! refinement oracle ([`crate::naive`]), so the check never trusts the
//! algorithm under test.

use crate::problem::{Instance, Partition};
use std::collections::HashMap;

/// Why a candidate labelling was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Lengths of instance and partition differ.
    LengthMismatch { instance: usize, partition: usize },
    /// Two elements share a Q-block but lie in different B-blocks.
    NotARefinement { x: u32, y: u32 },
    /// Two elements share a Q-block but their images do not.
    NotStable { x: u32, y: u32 },
    /// The labelling is a stable refinement but has more blocks than the
    /// coarsest one.
    NotCoarsest {
        blocks: usize,
        coarsest_blocks: usize,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::LengthMismatch {
                instance,
                partition,
            } => {
                write!(
                    fm,
                    "partition has {partition} labels but the instance has {instance} elements"
                )
            }
            VerifyError::NotARefinement { x, y } => {
                write!(
                    fm,
                    "elements {x} and {y} share a Q-block but different B-blocks"
                )
            }
            VerifyError::NotStable { x, y } => {
                write!(
                    fm,
                    "elements {x} and {y} share a Q-block but f(x) and f(y) do not"
                )
            }
            VerifyError::NotCoarsest {
                blocks,
                coarsest_blocks,
            } => {
                write!(fm, "the labelling has {blocks} blocks but the coarsest partition has {coarsest_blocks}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Check conditions 1–2 only (refinement of `B` and `f`-stability), in `O(n)`.
pub fn verify_stable_refinement(instance: &Instance, q: &Partition) -> Result<(), VerifyError> {
    let n = instance.len();
    if q.len() != n {
        return Err(VerifyError::LengthMismatch {
            instance: n,
            partition: q.len(),
        });
    }
    let f = instance.f();
    let b = instance.blocks();
    let labels = q.labels();

    // For each Q-block, remember the first element seen: all later members
    // must agree with it on the B-label and on the Q-label of the image.
    let mut representative: HashMap<u32, u32> = HashMap::new();
    for x in 0..n as u32 {
        match representative.entry(labels[x as usize]) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(x);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let r = *e.get();
                if b[x as usize] != b[r as usize] {
                    return Err(VerifyError::NotARefinement { x, y: r });
                }
                if labels[f[x as usize] as usize] != labels[f[r as usize] as usize] {
                    return Err(VerifyError::NotStable { x, y: r });
                }
            }
        }
    }
    Ok(())
}

/// Check that `q` is *the* coarsest stable refinement of the instance's
/// initial partition (conditions 1–3).
pub fn verify(instance: &Instance, q: &Partition) -> Result<(), VerifyError> {
    verify_stable_refinement(instance, q)?;
    // Coarseness: compare the block count with the independent fixpoint
    // oracle.  Every stable refinement refines the coarsest partition, so an
    // equal block count forces equality.
    let coarsest_blocks = crate::naive::coarsest_naive(instance).num_blocks();
    let blocks = q.num_blocks();
    if blocks != coarsest_blocks {
        return Err(VerifyError::NotCoarsest {
            blocks,
            coarsest_blocks,
        });
    }
    Ok(())
}

/// Convenience used by tests: panic with a readable message if `q` does not
/// solve `instance`.
pub fn assert_valid(instance: &Instance, q: &Partition) {
    if let Err(e) = verify(instance, q) {
        panic!("invalid coarsest partition: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example (Example 3.1): input and expected output.
    fn paper_case() -> (Instance, Partition) {
        let inst = Instance::paper_example();
        let expected = Partition::new(sfcp_forest::generators::paper_example_expected_q());
        (inst, expected)
    }

    #[test]
    fn accepts_the_papers_answer() {
        let (inst, expected) = paper_case();
        assert!(verify(&inst, &expected).is_ok());
        assert_valid(&inst, &expected);
    }

    #[test]
    fn rejects_wrong_lengths() {
        let (inst, _) = paper_case();
        let err = verify(&inst, &Partition::new(vec![0; 3])).unwrap_err();
        assert!(matches!(err, VerifyError::LengthMismatch { .. }));
    }

    #[test]
    fn rejects_non_refinements() {
        let (inst, _) = paper_case();
        // Everything in one block: stable (f maps the block to itself) but
        // clearly not a refinement of B.
        let err = verify(&inst, &Partition::new(vec![0; 16])).unwrap_err();
        assert!(matches!(err, VerifyError::NotARefinement { .. }));
    }

    #[test]
    fn rejects_unstable_partitions() {
        // A 4-cycle with all elements in the same B-block.
        let inst = Instance::new(vec![1, 2, 3, 0], vec![0, 0, 0, 0]);
        // Partition {0,1},{2,3}: refines B, but 0 and 1 share a block while
        // f(0)=1 and f(1)=2 do not.
        let err = verify(&inst, &Partition::new(vec![0, 0, 1, 1])).unwrap_err();
        assert!(matches!(err, VerifyError::NotStable { .. }));
    }

    #[test]
    fn rejects_over_refined_partitions() {
        let (inst, _) = paper_case();
        // All singletons: refines B and is trivially stable, but is not the
        // coarsest (the paper's answer has only 4 blocks).
        let singletons = Partition::new((0..16).collect());
        assert!(verify_stable_refinement(&inst, &singletons).is_ok());
        let err = verify(&inst, &singletons).unwrap_err();
        assert!(matches!(err, VerifyError::NotCoarsest { .. }));
    }

    #[test]
    fn rejects_split_two_cycle() {
        // The subtle case: a 2-cycle with identical B-labels.  Splitting it
        // into singletons is a *stable refinement* but not the coarsest
        // partition; the block-count comparison catches it.
        let inst = Instance::new(vec![1, 0], vec![0, 0]);
        assert!(verify_stable_refinement(&inst, &Partition::new(vec![0, 1])).is_ok());
        let err = verify(&inst, &Partition::new(vec![0, 1])).unwrap_err();
        assert!(matches!(err, VerifyError::NotCoarsest { .. }));
        assert!(verify(&inst, &Partition::new(vec![3, 3])).is_ok());
    }

    #[test]
    fn accepts_relabeled_answers() {
        let (inst, expected) = paper_case();
        // Any bijective relabelling is still the same partition.
        let relabeled: Vec<u32> = expected.labels().iter().map(|&l| l * 10 + 5).collect();
        assert!(verify(&inst, &Partition::new(relabeled)).is_ok());
    }
}

//! Typed errors of the solver facades.
//!
//! The crates below this one ([`sfcp_pram`], `sfcp-parprim`, `sfcp-forest`)
//! share one error type, [`sfcp_pram::Error`]; the solver facades wrap it in
//! [`DecomposeError`] to preserve the one distinction a caller acts on:
//! *was the input bad, or did the run fail?*  Invalid input is permanent —
//! retrying the same instance cannot help — while an execution failure (an
//! injected fault, a panic surfaced through
//! [`try_coarsest_partition`](crate::try_coarsest_partition)) leaves the
//! context recovered and the call retryable.

use std::fmt;

/// Why a fallible solver entry point refused or failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum DecomposeError {
    /// The instance itself is malformed (mismatched arrays, out-of-range
    /// function values, domain too large for the 31-bit index space).
    /// Permanent: the same input always fails.
    InvalidInput(sfcp_pram::Error),
    /// The run failed mid-pipeline (injected fault or panic).  The context
    /// has been through [`sfcp_pram::Ctx::recover`]; retrying the same call
    /// is sound.
    Execution(sfcp_pram::Error),
}

impl DecomposeError {
    /// The underlying error, whichever side it is classified on.
    #[must_use]
    pub fn inner(&self) -> &sfcp_pram::Error {
        match self {
            DecomposeError::InvalidInput(e) | DecomposeError::Execution(e) => e,
        }
    }

    /// Whether retrying the identical call can succeed (`Execution`) or is
    /// pointless (`InvalidInput`).
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, DecomposeError::Execution(_))
    }
}

impl From<sfcp_pram::Error> for DecomposeError {
    /// Classify: panics and injected faults are execution failures, every
    /// validation error is an input error.
    fn from(e: sfcp_pram::Error) -> Self {
        match e {
            sfcp_pram::Error::Panicked { .. } | sfcp_pram::Error::Injected(_) => {
                DecomposeError::Execution(e)
            }
            _ => DecomposeError::InvalidInput(e),
        }
    }
}

impl fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecomposeError::InvalidInput(e) => write!(f, "invalid instance: {e}"),
            DecomposeError::Execution(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for DecomposeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_splits_on_retryability() {
        let input: DecomposeError = sfcp_pram::Error::LengthMismatch {
            what: "A_f and A_B",
            left: 3,
            right: 4,
        }
        .into();
        assert!(matches!(input, DecomposeError::InvalidInput(_)));
        assert!(!input.is_retryable());

        let exec: DecomposeError = sfcp_pram::Error::Panicked {
            message: "boom".into(),
        }
        .into();
        assert!(matches!(exec, DecomposeError::Execution(_)));
        assert!(exec.is_retryable());
    }

    #[test]
    fn display_and_source_expose_the_inner_error() {
        let e: DecomposeError = sfcp_pram::Error::NotAPermutation { duplicate: 7 }.into();
        assert!(e.to_string().contains("invalid instance"));
        let dyn_err: &dyn std::error::Error = &e;
        assert!(dyn_err.source().is_some());
    }
}

//! The label-doubling parallel baseline (Galley–Iliopoulos style, \[10\] in the
//! paper): `O(n log n)` work.
//!
//! Round `k` assigns every element a label that encodes the B-label sequence
//! of its first `2^k` iterates (by ranking the pair of round-`(k-1)` labels of
//! `x` and of `f^(2^(k-1))(x)`).  After `⌈log₂(n+1)⌉` rounds the label
//! determines the entire infinite B-label sequence (Lemma 2.1(ii)), i.e. the
//! coarsest partition.  This is the natural "obvious" parallel algorithm the
//! paper improves on: the per-round integer sort makes it `O(n log n)` work,
//! versus the paper's `O(n log log n)`.

use crate::problem::{Instance, Partition};
use sfcp_parprim::rank::{dense_ranks_by_sort, dense_ranks_of_pairs_into};
use sfcp_pram::Ctx;

/// Compute the coarsest stable refinement by label doubling.
///
/// All per-round scratch (the pair list, the next label array, the next jump
/// array) is checked out from the context workspace once and ping-ponged
/// across the `O(log n)` rounds, so the loop allocates O(1) buffers per run.
#[must_use]
pub fn coarsest_doubling(ctx: &Ctx, instance: &Instance) -> Partition {
    let n = instance.len();
    if n == 0 {
        return Partition::new(Vec::new());
    }
    let f = instance.f();

    let (mut labels, mut distinct) = dense_ranks_by_sort(
        ctx,
        &instance
            .blocks()
            .iter()
            .map(|&x| u64::from(x))
            .collect::<Vec<_>>(),
    );
    let mut jump: Vec<u32> = f.to_vec();

    let ws = ctx.workspace();
    let mut pairs = ws.take_pairs(n);
    let mut next_labels = ws.take_u32(0);
    let mut next_jump = ws.take_u32(n);

    let rounds = sfcp_pram::ceil_log2(n + 1).max(1);
    for _ in 0..rounds {
        if distinct == n {
            break; // already fully refined: all labels distinct
        }
        {
            let labels = &labels;
            let jump = &jump;
            ctx.par_update(&mut pairs, |x, p| {
                *p = (u64::from(labels[x]), u64::from(labels[jump[x] as usize]));
            });
        }
        let new_distinct = dense_ranks_of_pairs_into(ctx, &pairs, &mut next_labels);
        {
            let jump_ref = &jump;
            ctx.par_update(&mut next_jump, |x, j| *j = jump_ref[jump_ref[x] as usize]);
        }
        // The refinement is monotone: once the block count stops growing the
        // partition is stable under further doubling and we can stop early.
        let stop = new_distinct == distinct;
        std::mem::swap(&mut labels, &mut *next_labels);
        distinct = new_distinct;
        std::mem::swap(&mut jump, &mut *next_jump);
        if stop {
            break;
        }
    }
    Partition::new(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::coarsest_naive;
    use crate::verify::assert_valid;
    use proptest::prelude::*;
    use sfcp_pram::Mode;

    #[test]
    fn paper_example() {
        let inst = Instance::paper_example();
        for mode in [Mode::Sequential, Mode::Parallel] {
            let ctx = Ctx::new(mode);
            let q = coarsest_doubling(&ctx, &inst);
            let expected = Partition::new(sfcp_forest::generators::paper_example_expected_q());
            assert!(q.same_partition(&expected));
            assert_valid(&inst, &q);
        }
    }

    #[test]
    fn edge_cases_match_naive() {
        let ctx = Ctx::parallel();
        for inst in [
            Instance::new(vec![], vec![]),
            Instance::new(vec![0], vec![3]),
            Instance::new(vec![1, 0], vec![0, 0]),
            Instance::new(vec![0; 9], (0..9).collect()),
            Instance::new((0..9).collect(), vec![0; 9]),
            Instance::deep(200, 1, 2, 7),
        ] {
            let q = coarsest_doubling(&ctx, &inst);
            assert!(q.same_partition(&coarsest_naive(&inst)));
        }
    }

    #[test]
    fn early_stop_does_not_change_the_answer() {
        // An instance that is already stable: B classes = coarsest classes.
        let inst = Instance::new(vec![1, 2, 3, 4, 5, 0], vec![0, 1, 0, 1, 0, 1]);
        let ctx = Ctx::parallel();
        let q = coarsest_doubling(&ctx, &inst);
        assert!(q.same_partition(&Partition::new(vec![0, 1, 0, 1, 0, 1])));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_naive(n in 1usize..120, blocks in 1usize..4, seed in 0u64..200) {
            let inst = Instance::random(n, blocks, seed);
            let ctx = Ctx::parallel().with_grain(32);
            let q = coarsest_doubling(&ctx, &inst);
            prop_assert!(q.same_partition(&coarsest_naive(&inst)));
        }
    }
}

//! The JáJá–Ryu parallel algorithm (Sections 2–5 of the paper).
//!
//! ```text
//! Algorithm coarsest partition
//!   Step 1: mark all the cycle nodes in the pseudo-forest          (Section 5)
//!   Step 2: find the Q-labels of the cycle nodes                   (Section 3)
//!   Step 3: find the Q-labels of the remaining tree nodes          (Section 4)
//! ```
//!
//! Step 2 canonises each cycle's B-label string (smallest repeating prefix,
//! then minimal starting point via *Algorithm efficient m.s.p.*), groups
//! equivalent cycles with *Algorithm partition*, and labels every cycle node
//! by (cycle class, offset along the period).  Step 3 first inherits cycle
//! labels along matching paths (Lemma 4.1, implemented with Euler-tour
//! ancestor sums), then labels the remaining "unmarked" nodes by a doubling
//! computation over their root paths (Lemma 4.2); a level-by-level
//! work-optimal variant is provided as an ablation (the paper gets both
//! bounds at once via Kedem–Palem scheduling — see DESIGN.md).

use crate::cycle_equivalence::{group_cycles, GroupingMethod};
use crate::error::DecomposeError;
use crate::problem::{Instance, Partition};
use sfcp_forest::cycles::CycleMethod;
use sfcp_forest::{decompose, Decomposition};
use sfcp_parprim::rank::{dense_ranks_by_sort, dense_ranks_of_pairs, dense_ranks_of_pairs_into};
use sfcp_pram::fxhash::FxHashMap;
use sfcp_pram::Ctx;
use sfcp_strings::canonical::booth_msp;
use sfcp_strings::msp::{minimal_starting_point, MspMethod};
use sfcp_strings::period::{smallest_period, smallest_period_seq};
use sfcp_strings::rotation;

/// How the residual (unmarked) tree nodes are labelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TreeLabelMethod {
    /// Doubling over root paths: `O(log n)` rounds, `O(n log d)` work where
    /// `d` is the residual forest depth (the paper reaches `O(n)` work with
    /// Kedem–Palem scheduling; this is the documented substitution).
    #[default]
    Doubling,
    /// Level-by-level labelling: `O(n)` work but depth proportional to the
    /// tree height — the other side of the ablation of experiment E7.
    Levelwise,
}

/// Tunables of the parallel algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// How the cycle nodes are detected (Section 5).
    pub cycle_method: CycleMethod,
    /// Which m.s.p. algorithm canonises long cycles (Section 3.1).
    pub msp_method: MspMethod,
    /// Cycles at least this long use the parallel period/m.s.p. routines;
    /// shorter ones use the sequential linear-time routines (running a
    /// multi-round parallel algorithm on a ten-element string is pure
    /// overhead on real hardware).
    pub parallel_strings_threshold: usize,
    /// How equivalent cycles are grouped (Section 3.2).
    pub grouping: GroupingMethod,
    /// How the residual tree nodes are labelled (Section 4, step 5).
    pub tree_method: TreeLabelMethod,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            cycle_method: CycleMethod::Euler,
            msp_method: MspMethod::Efficient,
            parallel_strings_threshold: 1 << 13,
            grouping: GroupingMethod::Partition,
            tree_method: TreeLabelMethod::Doubling,
        }
    }
}

/// Compute the coarsest stable refinement with the paper's parallel
/// algorithm under the default configuration.
#[must_use]
pub fn coarsest_parallel(ctx: &Ctx, instance: &Instance) -> Partition {
    coarsest_parallel_with(ctx, instance, ParallelConfig::default())
}

/// Fallible [`coarsest_parallel`]: validates the size envelope, converts any
/// mid-pipeline panic (internal assert or injected fault) into a typed
/// [`DecomposeError`], and runs [`Ctx::recover`] before returning so the
/// context and its warm pools stay usable (see DESIGN.md, "Failure model and
/// recovery").
///
/// # Errors
/// [`DecomposeError::InvalidInput`] when the instance exceeds the fused
/// ranking domain's size envelope; [`DecomposeError::Execution`] when the
/// pipeline unwinds (retrying the same call is sound).
pub fn try_coarsest_parallel(ctx: &Ctx, instance: &Instance) -> Result<Partition, DecomposeError> {
    try_coarsest_parallel_with(ctx, instance, ParallelConfig::default())
}

/// [`try_coarsest_parallel`] with an explicit configuration.
///
/// # Errors
/// See [`try_coarsest_parallel`].
pub fn try_coarsest_parallel_with(
    ctx: &Ctx,
    instance: &Instance,
    config: ParallelConfig,
) -> Result<Partition, DecomposeError> {
    // Same envelope as `sfcp_forest::try_decompose`: the fused Euler +
    // broken-cycle ranking runs over 2n + m words flagged at bit 31.
    if instance.len() >= sfcp_pram::MAX_DOMAIN / 2 {
        return Err(DecomposeError::InvalidInput(sfcp_pram::Error::TooLarge {
            n: instance.len(),
            max: sfcp_pram::MAX_DOMAIN / 2,
        }));
    }
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        coarsest_parallel_with(ctx, instance, config)
    })) {
        Ok(q) => Ok(q),
        Err(payload) => {
            let err = sfcp_pram::Error::from_panic(payload);
            ctx.recover();
            Err(err.into())
        }
    }
}

/// Compute the coarsest stable refinement with an explicit configuration.
#[must_use]
pub fn coarsest_parallel_with(ctx: &Ctx, instance: &Instance, config: ParallelConfig) -> Partition {
    let mut span_all = ctx.span("coarsest_parallel");
    span_all.attr("n", instance.len() as u64);
    let n = instance.len();
    if n == 0 {
        return Partition::new(Vec::new());
    }
    let b = instance.blocks();

    // ---- Step 1: structure -------------------------------------------------
    let dec = decompose(ctx, instance.graph(), config.cycle_method);

    // ---- Step 2: cycle node labelling --------------------------------------
    let span_phase = ctx.span("label_cycle_nodes");
    let (mut labels, mut next_label) = label_cycle_nodes(ctx, instance, &dec, config);
    drop(span_phase);

    // ---- Step 3: tree node labelling ---------------------------------------
    if dec.levels.iter().any(|&l| l > 0) {
        let _span_phase = ctx.span("label_tree_nodes");
        label_tree_nodes(ctx, instance, &dec, config, &mut labels, &mut next_label);
    }

    debug_assert!(labels.iter().all(|&l| l != u32::MAX), "every node labelled");
    let _ = b;
    Partition::new(labels)
}

/// Step 2: label the cycle nodes.  Returns the (partial) label array — tree
/// nodes still carry `u32::MAX` — and the number of labels handed out.
fn label_cycle_nodes(
    ctx: &Ctx,
    instance: &Instance,
    dec: &Decomposition,
    config: ParallelConfig,
) -> (Vec<u32>, u32) {
    let n = instance.len();
    let b = instance.blocks();
    let num_cycles = dec.num_cycles();

    // Canonise every cycle: smallest repeating prefix, rotated to its m.s.p.
    // Short cycles use the sequential linear routines, long cycles the
    // parallel ones (Section 3.1); both paths are exercised by the tests.
    struct Canon {
        period: u32,
        msp: u32,
        canonical: Vec<u32>,
    }
    let threshold = config.parallel_strings_threshold.max(2);
    let canons: Vec<Canon> = ctx.par_map_idx(num_cycles, |c| {
        let cycle = dec.cycle(c);
        let s: Vec<u32> = cycle.iter().map(|&x| b[x as usize]).collect();
        let (period, msp) = if s.len() >= threshold {
            let p = smallest_period(ctx, &s);
            let r = minimal_starting_point(ctx, &s[..p], config.msp_method);
            (p, r)
        } else {
            let p = smallest_period_seq(&s);
            let r = booth_msp(&s[..p]);
            (p, r)
        };
        ctx.charge_work(s.len() as u64);
        Canon {
            period: period as u32,
            msp: msp as u32,
            canonical: rotation(&s[..period], msp),
        }
    });

    // Group equivalent cycles (Section 3.2).
    let canonical_strings: Vec<Vec<u32>> = canons.iter().map(|c| c.canonical.clone()).collect();
    let cycle_class = group_cycles(ctx, &canonical_strings, config.grouping);

    // A cycle node's class is (class of its cycle, offset of the node along
    // the canonical period).  Dense-rank the pairs over the cycle nodes only.
    let cycle_node_ids: Vec<u32> =
        sfcp_parprim::compact::compact_indices(ctx, n, |x| dec.is_cycle[x]);
    let keys: Vec<(u64, u64)> = ctx.par_map_slice(&cycle_node_ids, |&x| {
        let c = dec.cycle_of[x as usize] as usize;
        let p = canons[c].period;
        let offset = (dec.cycle_pos[x as usize] + p - canons[c].msp) % p;
        (u64::from(cycle_class[c]), u64::from(offset))
    });
    let (dense, num_classes) = dense_ranks_of_pairs(ctx, &keys);

    let mut labels = vec![u32::MAX; n];
    {
        let ptr = SendPtr(labels.as_mut_ptr());
        let ids = &cycle_node_ids;
        ctx.par_for_idx(ids.len(), |i| {
            let p = ptr;
            // SAFETY: distinct cycle nodes write distinct slots.
            unsafe {
                *p.0.add(ids[i] as usize) = dense[i];
            }
        });
    }
    (labels, num_classes as u32)
}

/// Step 3: label the tree nodes, either by the paper's marked/doubling route
/// or level by level.
fn label_tree_nodes(
    ctx: &Ctx,
    instance: &Instance,
    dec: &Decomposition,
    config: ParallelConfig,
    labels: &mut Vec<u32>,
    next_label: &mut u32,
) {
    match config.tree_method {
        TreeLabelMethod::Levelwise => {
            label_tree_nodes_levelwise(ctx, instance, dec, labels, next_label);
        }
        TreeLabelMethod::Doubling => {
            label_tree_nodes_doubling(ctx, instance, dec, labels, next_label);
        }
    }
}

/// Level-by-level labelling: `Q(x)` is determined by `(B(x), Q(f(x)))`
/// (Lemma 2.1(i)); levels are processed in increasing order so the image is
/// always labelled first.
#[allow(clippy::needless_range_loop)] // level indexes a per-level bucket list
fn label_tree_nodes_levelwise(
    ctx: &Ctx,
    instance: &Instance,
    dec: &Decomposition,
    labels: &mut [u32],
    next_label: &mut u32,
) {
    let n = instance.len();
    let f = instance.f();
    let b = instance.blocks();
    let ws = ctx.workspace();

    // Bucket the tree nodes by level: a CSR build keyed by level (ascending
    // node order inside each level, matching the former per-level push
    // loop).  Charged at the builder's count/prefix/scatter model instead of
    // the push loop's single round — the levelwise ablation is not charge-
    // pinned to any baseline.
    let max_level = *dec.levels.iter().max().unwrap() as usize;
    let mut level_start = ws.take_u32(0);
    let mut level_nodes = ws.take_u32(0);
    sfcp_parprim::csr::build_csr_into(
        ctx,
        max_level + 1,
        n,
        |x| (!dec.is_cycle[x]).then(|| (dec.levels[x], x as u32)),
        &mut level_start,
        &mut level_nodes,
    );

    // Seed the signature map with the cycle nodes so tree nodes that are
    // equivalent to cycle nodes merge with them.
    let mut pair_class: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    for x in 0..n {
        if dec.is_cycle[x] {
            pair_class.insert((b[x], labels[f[x] as usize]), labels[x]);
        }
    }
    ctx.charge_step(n as u64);

    for level in 1..=max_level {
        let nodes = &level_nodes[level_start[level] as usize..level_start[level + 1] as usize];
        if nodes.is_empty() {
            continue;
        }
        // Keys can be computed in parallel; the dense assignment walks the
        // level sequentially (the map is shared across levels).
        let keys: Vec<(u32, u32)> =
            ctx.par_map_slice(nodes, |&x| (b[x as usize], labels[f[x as usize] as usize]));
        for (i, &x) in nodes.iter().enumerate() {
            let label = *pair_class.entry(keys[i]).or_insert_with(|| {
                let l = *next_label;
                *next_label += 1;
                l
            });
            labels[x as usize] = label;
        }
        ctx.charge_step(nodes.len() as u64);
    }
}

/// The paper's route: Lemma 4.1 marking + Euler-tour descendant unmarking,
/// then Lemma 4.2 doubling over the residual forest.
fn label_tree_nodes_doubling(
    ctx: &Ctx,
    instance: &Instance,
    dec: &Decomposition,
    labels: &mut Vec<u32>,
    next_label: &mut u32,
) {
    let n = instance.len();
    let f = instance.f();
    let b = instance.blocks();
    let ws = ctx.workspace();

    // Root (cycle node) of every node's pseudo-tree — computed once by
    // `decompose` and threaded through on the decomposition (formerly a
    // third pointer-jumping run per coarsest invocation).
    let roots = &dec.roots;

    // Steps 1–2: the corresponding cycle node of every tree node and the
    // per-node B-label match flag (Lemma 4.1).
    let corr: Vec<u32> = ctx.par_map_idx(n, |x| {
        if dec.is_cycle[x] {
            x as u32
        } else {
            let r = roots[x];
            let c = dec.cycle_of[x] as usize;
            let cycle = dec.cycle(c);
            let k = cycle.len() as u32;
            let level = dec.levels[x];
            let pos_r = dec.cycle_pos[r as usize];
            let pos = (pos_r + k - (level % k)) % k;
            cycle[pos as usize]
        }
    });
    let ok: Vec<bool> = ctx.par_map_idx(n, |x| dec.is_cycle[x] || b[x] == b[corr[x] as usize]);

    // Step 3: unmark all descendants of an unmatching node — a node is truly
    // marked iff it matches and has no unmatching proper ancestor, computed
    // with one Euler-tour ancestor sum (all intermediates workspace-backed).
    let mut bad = ws.take_u64(n);
    {
        let ok = &ok;
        ctx.par_update(&mut bad, |x, v| *v = u64::from(!ok[x]));
    }
    let mut bad_ancestors = ws.take_u64(0);
    dec.tour.ancestor_counts_into(ctx, &bad, &mut bad_ancestors);
    let marked: Vec<bool> = {
        let bad_ancestors = &bad_ancestors;
        ctx.par_map_idx(n, |x| ok[x] && bad_ancestors[x] == 0)
    };

    // Step 4: marked tree nodes inherit the label of their corresponding
    // cycle node.
    {
        let ptr = SendPtr(labels.as_mut_ptr());
        let labels_snapshot: Vec<u32> = labels.clone();
        ctx.par_for_idx(n, |x| {
            if marked[x] && !dec.is_cycle[x] {
                let p = ptr;
                // SAFETY: each slot written by its own index only.
                unsafe {
                    *p.0.add(x) = labels_snapshot[corr[x] as usize];
                }
            }
        });
    }

    // Step 5: label the unmarked nodes by doubling over their root paths
    // (Lemma 4.2): x ≡ y iff the B-label strings of their paths to the roots
    // of the unmarked forest are equal and the labels of the roots' parents
    // are equal.
    let unmarked_ids: Vec<u32> = sfcp_parprim::compact::compact_indices(ctx, n, |x| !marked[x]);
    let u = unmarked_ids.len();
    if u == 0 {
        return;
    }
    let mut compact = vec![u32::MAX; n];
    for (i, &x) in unmarked_ids.iter().enumerate() {
        compact[x as usize] = i as u32;
    }
    ctx.charge_step(u as u64);

    // Anchors: the labels of the (already labelled) parents of unmarked
    // roots.  Terminal virtual nodes, one per distinct anchor label.
    let anchor_label_of: Vec<u32> = ctx.par_map_slice(&unmarked_ids, |&x| {
        let parent = f[x as usize];
        if marked[parent as usize] {
            labels[parent as usize]
        } else {
            u32::MAX // parent is unmarked: no anchor here
        }
    });
    let (anchor_terminal, num_terminals) = {
        let keys: Vec<u64> = anchor_label_of
            .iter()
            .filter(|&&a| a != u32::MAX)
            .map(|&a| u64::from(a))
            .collect();
        let (dense, count) = dense_ranks_by_sort(ctx, &keys);
        // Re-expand to per-unmarked-node terminal ids.
        let mut it = dense.iter();
        let expanded: Vec<u32> = anchor_label_of
            .iter()
            .map(|&a| {
                if a == u32::MAX {
                    u32::MAX
                } else {
                    *it.next().unwrap()
                }
            })
            .collect();
        (expanded, count)
    };

    // Extended node set: unmarked nodes 0..u, then terminals u..u+T.
    // All per-round scratch below is workspace-backed and ping-ponged across
    // the doubling rounds (O(1) buffers per run, not per round).
    let total = u + num_terminals;
    let mut jump: Vec<u32> = ctx.par_map_idx(total, |i| {
        if i < u {
            let x = unmarked_ids[i] as usize;
            let parent = f[x] as usize;
            if marked[parent] {
                (u + anchor_terminal[i] as usize) as u32
            } else {
                compact[parent]
            }
        } else {
            i as u32 // terminals are fixed points
        }
    });
    // Initial labels: tag B-labels and terminal ids apart.
    let mut pairs = ws.take_pairs(total);
    {
        let unmarked_ids = &unmarked_ids;
        ctx.par_update(&mut pairs, |i, p| {
            *p = if i < u {
                (0, u64::from(b[unmarked_ids[i] as usize]))
            } else {
                (1, (i - u) as u64)
            };
        });
    }
    let mut lab = ws.take_u32(0);
    let mut distinct = dense_ranks_of_pairs_into(ctx, &pairs, &mut lab);

    // Residual-forest depth bounds the number of doubling rounds.
    let mut depth_flags = ws.take_u64(n);
    {
        let marked = &marked;
        ctx.par_update(&mut depth_flags, |x, v| *v = u64::from(!marked[x]));
    }
    let mut unmarked_depth = ws.take_u64(0);
    dec.tour
        .ancestor_counts_into(ctx, &depth_flags, &mut unmarked_depth);
    let max_depth = unmarked_ids
        .iter()
        .map(|&x| unmarked_depth[x as usize])
        .max()
        .unwrap_or(0);
    ctx.charge_step(u as u64);
    let rounds = sfcp_pram::ceil_log2(max_depth as usize + 2) + 1;

    let mut next_lab = ws.take_u32(0);
    let mut next_jump = ws.take_u32(total);
    for round in 0..rounds {
        if distinct == total {
            break;
        }
        let mut span_round = ctx.span("doubling_round");
        span_round.attr("round", round as u64);
        {
            let lab = &lab;
            let jump = &jump;
            ctx.par_update(&mut pairs, |i, p| {
                *p = (u64::from(lab[i]), u64::from(lab[jump[i] as usize]));
            });
        }
        distinct = dense_ranks_of_pairs_into(ctx, &pairs, &mut next_lab);
        {
            let jump_ref = &jump;
            ctx.par_update(&mut next_jump, |i, j| *j = jump_ref[jump_ref[i] as usize]);
        }
        std::mem::swap(&mut *lab, &mut *next_lab);
        std::mem::swap(&mut jump, &mut *next_jump);
    }

    // Fresh labels for the unmarked nodes: offset their (dense) classes past
    // the labels already handed out.  Unmarked nodes are never equivalent to
    // already-labelled nodes (a node equivalent to any cycle node is marked),
    // so no merging is needed.
    let unmarked_classes: Vec<u64> = (0..u).map(|i| u64::from(lab[i])).collect();
    let (dense_classes, class_count) = dense_ranks_by_sort(ctx, &unmarked_classes);
    {
        let ptr = SendPtr(labels.as_mut_ptr());
        let base = *next_label;
        let ids = &unmarked_ids;
        ctx.par_for_idx(u, |i| {
            let p = ptr;
            // SAFETY: distinct unmarked nodes write distinct slots.
            unsafe {
                *p.0.add(ids[i] as usize) = base + dense_classes[i];
            }
        });
    }
    *next_label += class_count as u32;
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` only smuggles a raw base pointer into parallel tasks
// whose writes target disjoint indices; every dereference site carries its
// own SAFETY argument for that disjointness, and the pointee buffer is
// borrowed for the whole parallel region, so it outlives every task.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` across tasks only copies the pointer value —
// no shared-reference method dereferences it, so aliased access to the
// pointee can never originate from the `Sync` impl itself.
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::coarsest_naive;
    use crate::verify::assert_valid;
    use proptest::prelude::*;
    use sfcp_pram::Mode;

    fn configs() -> Vec<ParallelConfig> {
        let mut out = Vec::new();
        for tree_method in [TreeLabelMethod::Doubling, TreeLabelMethod::Levelwise] {
            for grouping in [
                GroupingMethod::Partition,
                GroupingMethod::StringSort,
                GroupingMethod::Hash,
            ] {
                for cycle_method in [CycleMethod::Euler, CycleMethod::Jump] {
                    out.push(ParallelConfig {
                        cycle_method,
                        msp_method: MspMethod::Efficient,
                        parallel_strings_threshold: 1 << 13,
                        grouping,
                        tree_method,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn paper_example_all_configs() {
        let inst = Instance::paper_example();
        let expected = Partition::new(sfcp_forest::generators::paper_example_expected_q());
        for mode in [Mode::Sequential, Mode::Parallel] {
            let ctx = Ctx::new(mode);
            for config in configs() {
                let q = coarsest_parallel_with(&ctx, &inst, config);
                assert!(
                    q.same_partition(&expected),
                    "config {config:?} gave {:?}",
                    q.labels()
                );
            }
        }
    }

    #[test]
    fn edge_cases_match_naive() {
        let ctx = Ctx::parallel();
        for inst in [
            Instance::new(vec![], vec![]),
            Instance::new(vec![0], vec![5]),
            Instance::new(vec![1, 0], vec![0, 0]),
            Instance::new(vec![1, 0], vec![0, 1]),
            Instance::new(vec![0; 10], (0..10).collect()),
            Instance::new(vec![0; 10], vec![0; 10]),
            Instance::new((0..10).collect(), vec![0; 10]),
            Instance::new(vec![1, 2, 3, 4, 5, 0], vec![0, 1, 0, 1, 0, 1]),
            Instance::new(vec![1, 2, 3, 4, 5, 0], vec![0, 1, 0, 0, 1, 0]),
        ] {
            let q = coarsest_parallel(&ctx, &inst);
            assert!(
                q.same_partition(&coarsest_naive(&inst)),
                "mismatch on f = {:?}, B = {:?}: got {:?}",
                inst.f(),
                inst.blocks(),
                q.labels()
            );
        }
    }

    #[test]
    fn structured_instances_match_naive_all_configs() {
        let ctx = Ctx::parallel();
        let instances = [
            Instance::random(600, 2, 0),
            Instance::random(600, 5, 1),
            Instance::random_cycles(&[2, 3, 4, 6, 6, 12, 24], 2, 2),
            Instance::periodic_cycles(9, 24, 6, 3, 3),
            Instance::deep(500, 5, 2, 4),
            Instance::deep(500, 1, 2, 5),
        ];
        for inst in &instances {
            let expected = coarsest_naive(inst);
            for config in configs() {
                let q = coarsest_parallel_with(&ctx, inst, config);
                assert!(
                    q.same_partition(&expected),
                    "config {config:?} mismatched on n = {}",
                    inst.len()
                );
            }
            assert_valid(inst, &expected);
        }
    }

    #[test]
    fn large_cycle_uses_parallel_string_routines() {
        // A single cycle longer than the threshold forces the parallel
        // period/m.s.p. path.
        let inst = Instance::periodic_cycles(1, 1 << 14, 8, 3, 7);
        let ctx = Ctx::parallel();
        let config = ParallelConfig {
            parallel_strings_threshold: 1 << 10,
            ..ParallelConfig::default()
        };
        let q = coarsest_parallel_with(&ctx, &inst, config);
        assert!(q.same_partition(&coarsest_naive(&inst)));
    }

    #[test]
    fn work_tracks_are_nearly_mode_independent() {
        // The Ctx loop helpers charge identically in both modes; the only
        // divergence comes from block-count choices inside the blocked scan
        // and radix passes, which stay within a small constant.  The result
        // must be identical.
        let inst = Instance::random(4000, 3, 9);
        let seq = Ctx::sequential();
        let par = Ctx::parallel();
        let a = coarsest_parallel(&seq, &inst);
        let b = coarsest_parallel(&par, &inst);
        assert!(a.same_partition(&b));
        let (ws, wp) = (seq.stats().work as f64, par.stats().work as f64);
        let ratio = wp.max(ws) / wp.min(ws);
        assert!(
            ratio < 1.5,
            "work diverged across modes by {ratio:.2}× ({ws} vs {wp})"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn matches_naive_on_random_instances(n in 1usize..120, blocks in 1usize..4, seed in 0u64..300) {
            let inst = Instance::random(n, blocks, seed);
            let ctx = Ctx::parallel().with_grain(32);
            let expected = coarsest_naive(&inst);
            let q = coarsest_parallel(&ctx, &inst);
            prop_assert!(q.same_partition(&expected), "default config");
            let q2 = coarsest_parallel_with(&ctx, &inst, ParallelConfig {
                tree_method: TreeLabelMethod::Levelwise,
                grouping: GroupingMethod::StringSort,
                ..ParallelConfig::default()
            });
            prop_assert!(q2.same_partition(&expected), "levelwise + string sort");
        }

        #[test]
        fn matches_naive_on_cycle_instances(
            lengths in proptest::collection::vec(1usize..16, 1..8),
            blocks in 1usize..4,
            seed in 0u64..100,
        ) {
            let inst = Instance::random_cycles(&lengths, blocks, seed);
            let ctx = Ctx::parallel().with_grain(32);
            let q = coarsest_parallel(&ctx, &inst);
            prop_assert!(q.same_partition(&coarsest_naive(&inst)));
        }
    }

    /// Miri target: the end-to-end parallel coarsest-partition pipeline on
    /// the paper example.
    #[test]
    fn miri_paper_example_parallel() {
        let inst = Instance::paper_example();
        let expected = Partition::new(sfcp_forest::generators::paper_example_expected_q());
        let ctx = Ctx::parallel();
        let q = coarsest_parallel(&ctx, &inst);
        assert!(q.same_partition(&expected), "{:?}", q.labels());
    }
}

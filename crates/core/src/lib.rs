//! # sfcp — the single function coarsest partition problem
//!
//! Given a set `S = {0, …, n-1}`, a function `f : S → S` and an initial
//! partition `B` of `S`, compute the **coarsest** partition `Q` that refines
//! `B` and is stable under `f` (every block maps into a single block).  This
//! crate reproduces the parallel algorithm of
//!
//! > J. F. JáJá and K. W. Ryu, *An efficient parallel algorithm for the
//! > single function coarsest partition problem*, SPAA 1993 / Theoretical
//! > Computer Science 129 (1994) 293–307,
//!
//! together with the sequential and parallel baselines it is compared
//! against:
//!
//! | Algorithm | Module | Complexity (work, depth) |
//! |-----------|--------|--------------------------|
//! | naive fixpoint refinement (oracle) | [`naive`] | `O(n²)`, sequential |
//! | Hopcroft partition refinement \[1\]  | [`hopcroft`] | `O(n log n)`, sequential |
//! | Paige–Tarjan–Bonic-style linear \[16\] | [`sequential`] | `O(n)`, sequential |
//! | label doubling (Galley–Iliopoulos-style \[10\]) | [`doubling`] | `O(n log n)`, `O(log² n)` |
//! | **JáJá–Ryu parallel algorithm** | [`parallel`] | `O(n log log n)`-style, `O(log n)`-style (see DESIGN.md for the substitutions) |
//!
//! ## Quickstart
//!
//! ```
//! use sfcp::{coarsest_partition, Algorithm, Instance};
//! use sfcp_pram::Ctx;
//!
//! // The 16-node example of Fig. 1 in the paper.
//! let instance = Instance::paper_example();
//! let ctx = Ctx::parallel();
//! let q = coarsest_partition(&ctx, &instance, Algorithm::Parallel);
//! assert_eq!(q.num_blocks(), 4);
//! sfcp::verify::assert_valid(&instance, &q);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cycle_equivalence;
pub mod doubling;
pub mod error;
pub mod hopcroft;
pub mod naive;
pub mod parallel;
pub mod problem;
pub mod sequential;
pub mod verify;

pub use cycle_equivalence::GroupingMethod;
pub use error::DecomposeError;
pub use parallel::{try_coarsest_parallel, ParallelConfig, TreeLabelMethod};
pub use problem::{Instance, Partition};
pub use verify::{verify, VerifyError};

use sfcp_pram::Ctx;

/// The algorithms available through the [`coarsest_partition`] facade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Naive fixpoint refinement (the test oracle).
    Naive,
    /// Hopcroft-style `O(n log n)` sequential partition refinement.
    Hopcroft,
    /// Linear-time sequential algorithm (Paige–Tarjan–Bonic style).
    SequentialLinear,
    /// Parallel label doubling, `O(n log n)` work (Galley–Iliopoulos style).
    Doubling,
    /// The paper's parallel algorithm (default configuration).
    #[default]
    Parallel,
}

/// Solve the coarsest partition problem with the chosen algorithm.
///
/// The sequential algorithms ignore the execution mode of `ctx` but still
/// charge their work to its tracker, so all algorithms can be compared in the
/// same work/depth tables.
#[must_use]
pub fn coarsest_partition(ctx: &Ctx, instance: &Instance, algorithm: Algorithm) -> Partition {
    match algorithm {
        Algorithm::Naive => {
            let q = naive::coarsest_naive(instance);
            ctx.charge_step(instance.len() as u64);
            q
        }
        Algorithm::Hopcroft => {
            let q = hopcroft::coarsest_hopcroft(instance);
            ctx.charge_step(instance.len() as u64);
            q
        }
        Algorithm::SequentialLinear => {
            let q = sequential::coarsest_sequential(instance);
            ctx.charge_step(instance.len() as u64);
            q
        }
        Algorithm::Doubling => doubling::coarsest_doubling(ctx, instance),
        Algorithm::Parallel => parallel::coarsest_parallel(ctx, instance),
    }
}

/// Fallible [`coarsest_partition`]: validates the instance envelope and
/// converts any mid-run panic — internal invariant asserts, faults injected
/// through [`sfcp_pram::faults`] — into a typed [`DecomposeError`].  On an
/// execution failure the context has been through [`Ctx::recover`], so its
/// warm buffer pools survive and retrying the identical call is sound.
///
/// # Errors
/// [`DecomposeError::InvalidInput`] for oversized instances,
/// [`DecomposeError::Execution`] when the run unwinds.
pub fn try_coarsest_partition(
    ctx: &Ctx,
    instance: &Instance,
    algorithm: Algorithm,
) -> Result<Partition, DecomposeError> {
    if let Algorithm::Parallel = algorithm {
        return parallel::try_coarsest_parallel(ctx, instance);
    }
    sfcp_pram::check_index_width(instance.len()).map_err(DecomposeError::InvalidInput)?;
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        coarsest_partition(ctx, instance, algorithm)
    })) {
        Ok(q) => Ok(q),
        Err(payload) => {
            let err = sfcp_pram::Error::from_panic(payload);
            ctx.recover();
            Err(err.into())
        }
    }
}

/// All algorithms, handy for tests and benchmark sweeps.
pub const ALL_ALGORITHMS: [Algorithm; 5] = [
    Algorithm::Naive,
    Algorithm::Hopcroft,
    Algorithm::SequentialLinear,
    Algorithm::Doubling,
    Algorithm::Parallel,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_runs_every_algorithm_on_the_paper_example() {
        let instance = Instance::paper_example();
        let expected = Partition::new(sfcp_forest::generators::paper_example_expected_q());
        for algorithm in ALL_ALGORITHMS {
            let ctx = Ctx::parallel();
            let q = coarsest_partition(&ctx, &instance, algorithm);
            assert!(q.same_partition(&expected), "{algorithm:?}");
            verify::assert_valid(&instance, &q);
        }
    }

    #[test]
    fn all_algorithms_agree_on_random_instances() {
        for seed in 0..6 {
            let instance = Instance::random(400, 3, seed);
            let ctx = Ctx::parallel();
            let reference = coarsest_partition(&ctx, &instance, Algorithm::Naive);
            for algorithm in ALL_ALGORITHMS {
                let q = coarsest_partition(&ctx, &instance, algorithm);
                assert!(q.same_partition(&reference), "{algorithm:?} on seed {seed}");
            }
        }
    }

    #[test]
    fn charges_are_recorded_for_every_algorithm() {
        let instance = Instance::random(1000, 3, 1);
        for algorithm in ALL_ALGORITHMS {
            let ctx = Ctx::parallel();
            let _ = coarsest_partition(&ctx, &instance, algorithm);
            assert!(ctx.stats().work > 0, "{algorithm:?} charged no work");
        }
    }
}

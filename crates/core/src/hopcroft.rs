//! Hopcroft-style partition refinement specialised to a single function —
//! the classical `O(n log n)` sequential algorithm of Aho–Hopcroft–Ullman
//! cited as \[1\] in the paper.
//!
//! The algorithm keeps a worklist of *splitter* blocks.  Processing a
//! splitter `A` intersects every block `Y` with `f⁻¹(A)`; blocks cut into two
//! pieces are replaced and the smaller piece joins the worklist ("process the
//! smaller half"), which bounds the total work by `O(n log n)`.

use crate::problem::{Instance, Partition};

/// Compute the coarsest stable refinement by Hopcroft's algorithm.
#[must_use]
pub fn coarsest_hopcroft(instance: &Instance) -> Partition {
    let n = instance.len();
    if n == 0 {
        return Partition::new(Vec::new());
    }
    let f = instance.f();

    // Inverse function as CSR.
    let mut indeg = vec![0u32; n + 1];
    for &y in f {
        indeg[y as usize + 1] += 1;
    }
    for i in 0..n {
        indeg[i + 1] += indeg[i];
    }
    let offsets = indeg;
    let mut cursor = offsets.clone();
    let mut preimage = vec![0u32; n];
    for (x, &y) in f.iter().enumerate() {
        preimage[cursor[y as usize] as usize] = x as u32;
        cursor[y as usize] += 1;
    }

    // Blocks as vectors of members; block_of[x] = current block id.
    let mut blocks: Vec<Vec<u32>> = Vec::new();
    let mut block_of = vec![0u32; n];
    {
        let mut map = std::collections::HashMap::new();
        for x in 0..n as u32 {
            let label = instance.blocks()[x as usize];
            let id = *map.entry(label).or_insert_with(|| {
                blocks.push(Vec::new());
                (blocks.len() - 1) as u32
            });
            blocks[id as usize].push(x);
            block_of[x as usize] = id;
        }
    }

    // Worklist: initially every block (the classical optimisation of leaving
    // out the largest block also works; keeping all of them only costs a
    // constant factor and keeps the code simpler to reason about).
    let mut on_worklist = vec![true; blocks.len()];
    let mut worklist: Vec<u32> = (0..blocks.len() as u32).collect();

    // Scratch: how many members of each block fall into f⁻¹(splitter), and an
    // epoch-stamped membership mark for the current pre-image (so deciding
    // "inside" does not depend on block ids that may change mid-iteration,
    // e.g. when the splitter block itself gets split).
    let mut touched_count: Vec<u32> = vec![0; blocks.len()];
    let mut touched_blocks: Vec<u32> = Vec::new();
    let mut pre_epoch = vec![0u32; n];
    let mut epoch = 0u32;

    while let Some(splitter) = worklist.pop() {
        on_worklist[splitter as usize] = false;
        epoch += 1;

        // Collect the pre-image of the splitter block.
        let mut pre: Vec<u32> = Vec::new();
        for &member in &blocks[splitter as usize] {
            let start = offsets[member as usize] as usize;
            let end = offsets[member as usize + 1] as usize;
            pre.extend_from_slice(&preimage[start..end]);
        }

        // Count, per block, how many of its members are in the pre-image.
        touched_blocks.clear();
        for &x in &pre {
            pre_epoch[x as usize] = epoch;
            let b = block_of[x as usize];
            if touched_count[b as usize] == 0 {
                touched_blocks.push(b);
            }
            touched_count[b as usize] += 1;
        }

        for &b in &touched_blocks {
            let hit = touched_count[b as usize] as usize;
            touched_count[b as usize] = 0;
            let size = blocks[b as usize].len();
            if hit == size {
                continue; // the whole block maps into the splitter: no split
            }
            // Split block b into (members hitting the splitter) and the rest.
            let members = std::mem::take(&mut blocks[b as usize]);
            let (mut inside, mut outside) =
                (Vec::with_capacity(hit), Vec::with_capacity(size - hit));
            for x in members {
                if pre_epoch[x as usize] == epoch {
                    inside.push(x);
                } else {
                    outside.push(x);
                }
            }
            debug_assert_eq!(inside.len(), hit);
            // Keep the larger part under the old id, create a new block for
            // the smaller part, and enqueue the smaller part.
            let (keep, new_part) = if inside.len() >= outside.len() {
                (inside, outside)
            } else {
                (outside, inside)
            };
            let new_id = blocks.len() as u32;
            for &x in &new_part {
                block_of[x as usize] = new_id;
            }
            blocks[b as usize] = keep;
            blocks.push(new_part);
            on_worklist.push(false);
            touched_count.push(0);
            // If b was on the worklist both halves must be processed; if not,
            // the smaller half suffices.
            if on_worklist[b as usize] {
                worklist.push(new_id);
                on_worklist[new_id as usize] = true;
            } else {
                let smaller = if blocks[b as usize].len() <= blocks[new_id as usize].len() {
                    b
                } else {
                    new_id
                };
                worklist.push(smaller);
                on_worklist[smaller as usize] = true;
            }
        }
    }

    Partition::new(block_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::coarsest_naive;
    use crate::verify::assert_valid;
    use proptest::prelude::*;

    #[test]
    fn paper_example() {
        let inst = Instance::paper_example();
        let q = coarsest_hopcroft(&inst);
        let expected = Partition::new(sfcp_forest::generators::paper_example_expected_q());
        assert!(q.same_partition(&expected));
        assert_valid(&inst, &q);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(coarsest_hopcroft(&Instance::new(vec![], vec![])).len(), 0);
        let single = Instance::new(vec![0], vec![0]);
        assert_eq!(coarsest_hopcroft(&single).num_blocks(), 1);
        // Constant function, distinct labels.
        let inst = Instance::new(vec![0; 8], (0..8).collect());
        let q = coarsest_hopcroft(&inst);
        assert!(q.same_partition(&coarsest_naive(&inst)));
        // Identity function.
        let inst = Instance::new((0..8).collect(), vec![0, 1, 0, 1, 0, 1, 0, 1]);
        let q = coarsest_hopcroft(&inst);
        assert!(q.same_partition(&coarsest_naive(&inst)));
    }

    #[test]
    fn matches_naive_on_structured_instances() {
        for inst in [
            Instance::random(500, 2, 1),
            Instance::random(500, 5, 2),
            Instance::random_cycles(&[3, 4, 5, 6, 7, 8], 2, 3),
            Instance::periodic_cycles(8, 12, 4, 3, 4),
            Instance::deep(400, 7, 2, 5),
        ] {
            let q = coarsest_hopcroft(&inst);
            assert!(q.same_partition(&coarsest_naive(&inst)));
            assert_valid(&inst, &q);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_naive_on_random_instances(n in 1usize..120, blocks in 1usize..5, seed in 0u64..300) {
            let inst = Instance::random(n, blocks, seed);
            let q = coarsest_hopcroft(&inst);
            prop_assert!(q.same_partition(&coarsest_naive(&inst)));
        }
    }
}

//! Grouping cycles into equivalence classes — Section 3.2 of the paper.
//!
//! After each cycle's B-label string has been reduced to its smallest
//! repeating prefix and rotated to its minimal starting point, two cycles are
//! equivalent iff those canonical strings are *equal*.  The paper solves this
//! with *Algorithm partition*: a `log ℓ`-round doubling computation in which
//! all starting positions of equal label sequences elect a common
//! representative by writing into the arbitrary-CRCW table `BB`.  Two
//! alternatives are provided for cross-checking and ablation:
//!
//! * [`group_cycles_doubling`] — the paper's algorithm, with the `BB` table
//!   realised by [`sfcp_pram::CrcwTable`] (insert-if-absent, arbitrary
//!   winner).  Cycles are grouped by length first (different lengths can
//!   never be equivalent once reduced to their periods) and padded to the
//!   next power of two with a sentinel, as the paper assumes `ℓ = 2^h` "for
//!   convenience".
//! * [`group_cycles_by_sort`] — sort the canonical strings with the string
//!   sorting algorithm of Lemma 3.8 and group equal neighbours.
//! * [`group_cycles_by_hash`] — hash map from string to class (sequential
//!   baseline).

use sfcp_pram::fxhash::FxHashMap;
use sfcp_pram::{CrcwTable, Ctx};
use sfcp_strings::string_sort::{sort_strings, StringSortMethod};

/// Which grouping algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupingMethod {
    /// The paper's *Algorithm partition* (CRCW doubling).
    #[default]
    Partition,
    /// Sort the canonical strings (Lemma 3.8) and group equal neighbours.
    StringSort,
    /// Sequential hashing baseline.
    Hash,
}

/// Group the canonical cycle strings into equivalence classes; returns one
/// dense class id per input string (equal strings ⇔ equal ids).
#[must_use]
pub fn group_cycles(ctx: &Ctx, strings: &[Vec<u32>], method: GroupingMethod) -> Vec<u32> {
    match method {
        GroupingMethod::Partition => group_cycles_doubling(ctx, strings),
        GroupingMethod::StringSort => group_cycles_by_sort(ctx, strings),
        GroupingMethod::Hash => group_cycles_by_hash(ctx, strings),
    }
}

/// The paper's *Algorithm partition*.
#[must_use]
pub fn group_cycles_doubling(ctx: &Ctx, strings: &[Vec<u32>]) -> Vec<u32> {
    let k = strings.len();
    let mut class = vec![u32::MAX; k];
    if k == 0 {
        return class;
    }
    // Group the cycles by length.
    let mut by_len: FxHashMap<usize, Vec<u32>> = FxHashMap::default();
    for (i, s) in strings.iter().enumerate() {
        by_len.entry(s.len()).or_default().push(i as u32);
    }
    ctx.charge_step(k as u64);

    let mut next_class = 0u32;
    let mut lens: Vec<usize> = by_len.keys().copied().collect();
    lens.sort_unstable();
    for len in lens {
        let members = &by_len[&len];
        if len == 0 {
            // All empty strings are equivalent.
            for &i in members {
                class[i as usize] = next_class;
            }
            next_class += 1;
            continue;
        }
        // Lay the strings of this group out contiguously, padded to a power
        // of two with the sentinel 0 (labels are shifted by +1).
        let padded = sfcp_pram::next_pow2(len);
        let total = members.len() * padded;
        let mut eq: Vec<u64> = vec![0; total];
        {
            let eq_ptr = SendPtr(eq.as_mut_ptr());
            let members_ref = members;
            ctx.par_for_idx(members.len(), |mi| {
                let s = &strings[members_ref[mi] as usize];
                let base = mi * padded;
                let p = eq_ptr;
                for (j, &c) in s.iter().enumerate() {
                    // SAFETY: disjoint destination ranges per string.
                    unsafe {
                        *p.0.add(base + j) = u64::from(c) + 1;
                    }
                }
            });
            ctx.charge_work(total as u64);
        }

        // The doubling rounds of Algorithm partition.  In round j every
        // position d1 that is a multiple of 2^j combines its label with the
        // label of d2 = d1 + 2^(j-1): all positions whose length-2^j label
        // sequences are equal elect a common representative through the
        // arbitrary-CRCW table BB.
        let rounds = sfcp_pram::ceil_log2(padded);
        for j in 1..=rounds {
            let stride = 1usize << j;
            let half = stride >> 1;
            let bb: CrcwTable<(u64, u64)> = CrcwTable::with_capacity(total / stride + 1);
            let positions = total / stride;
            let eq_snapshot = &eq;
            let updates: Vec<(usize, u64)> = ctx.par_map_idx(positions, |t| {
                let d1 = t * stride;
                let d2 = d1 + half;
                let key = (eq_snapshot[d1], eq_snapshot[d2]);
                let winner = bb.insert_arbitrary(key, d1 as u64);
                (d1, winner)
            });
            for (d1, winner) in updates {
                eq[d1] = winner;
            }
            ctx.charge_step(positions as u64);
        }

        // Two cycles of this group are equivalent iff their first positions
        // carry the same representative (Corollary 3.10).  Renumber densely.
        let mut reps: FxHashMap<u64, u32> = FxHashMap::default();
        for (mi, &i) in members.iter().enumerate() {
            let rep = eq[mi * padded];
            let id = *reps.entry(rep).or_insert_with(|| {
                let c = next_class;
                next_class += 1;
                c
            });
            class[i as usize] = id;
        }
        ctx.charge_step(members.len() as u64);
    }
    class
}

/// Group by sorting the canonical strings (Lemma 3.8) and comparing
/// neighbours.
#[must_use]
pub fn group_cycles_by_sort(ctx: &Ctx, strings: &[Vec<u32>]) -> Vec<u32> {
    let k = strings.len();
    if k == 0 {
        return Vec::new();
    }
    let order = sort_strings(ctx, strings, StringSortMethod::Contraction);
    let mut class = vec![0u32; k];
    let mut current = 0u32;
    for w in 0..k {
        if w > 0 && strings[order[w] as usize] != strings[order[w - 1] as usize] {
            current += 1;
        }
        class[order[w] as usize] = current;
    }
    ctx.charge_step(k as u64);
    class
}

/// Sequential hashing baseline.
#[must_use]
pub fn group_cycles_by_hash(ctx: &Ctx, strings: &[Vec<u32>]) -> Vec<u32> {
    let mut map: FxHashMap<&[u32], u32> = FxHashMap::default();
    let mut out = Vec::with_capacity(strings.len());
    for s in strings {
        let next = map.len() as u32;
        out.push(*map.entry(s.as_slice()).or_insert(next));
    }
    ctx.charge_step(strings.iter().map(|s| s.len() as u64).sum::<u64>() + strings.len() as u64);
    out
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` only smuggles a raw base pointer into parallel tasks
// whose writes target disjoint indices; every dereference site carries its
// own SAFETY argument for that disjointness, and the pointee buffer is
// borrowed for the whole parallel region, so it outlives every task.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` across tasks only copies the pointer value —
// no shared-reference method dereferences it, so aliased access to the
// pointee can never originate from the `Sync` impl itself.
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_methods() -> [GroupingMethod; 3] {
        [
            GroupingMethod::Partition,
            GroupingMethod::StringSort,
            GroupingMethod::Hash,
        ]
    }

    fn check_grouping(strings: &[Vec<u32>]) {
        let ctx = Ctx::parallel().with_grain(16);
        for m in all_methods() {
            let class = group_cycles(&ctx, strings, m);
            assert_eq!(class.len(), strings.len());
            for i in 0..strings.len() {
                for j in 0..strings.len() {
                    assert_eq!(
                        strings[i] == strings[j],
                        class[i] == class[j],
                        "{m:?}: strings {i} and {j} ({:?} vs {:?})",
                        strings[i],
                        strings[j]
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_single() {
        check_grouping(&[]);
        check_grouping(&[vec![1, 2, 3]]);
        check_grouping(&[vec![]]);
    }

    #[test]
    fn paper_example_cycles() {
        // In Example 3.1 both cycles have canonical period string (1,2,1,3):
        // they are equivalent.
        check_grouping(&[vec![1, 2, 1, 3], vec![1, 2, 1, 3]]);
        let ctx = Ctx::parallel();
        let class = group_cycles(
            &ctx,
            &[vec![1, 2, 1, 3], vec![1, 2, 1, 3]],
            GroupingMethod::Partition,
        );
        assert_eq!(class[0], class[1]);
    }

    #[test]
    fn mixed_lengths_and_duplicates() {
        check_grouping(&[
            vec![1, 2],
            vec![1, 2, 1],
            vec![1, 2],
            vec![2, 1],
            vec![1],
            vec![1],
            vec![1, 2, 1],
            vec![3, 3, 3, 3, 3],
        ]);
    }

    #[test]
    fn non_power_of_two_lengths() {
        // Lengths 3, 5, 6, 7 exercise the sentinel padding.
        check_grouping(&[
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1, 2, 4],
            vec![5, 4, 3, 2, 1],
            vec![5, 4, 3, 2, 1],
            vec![9, 8, 7, 6, 5, 4],
            vec![1, 1, 1, 1, 1, 1, 1],
            vec![1, 1, 1, 1, 1, 1, 2],
        ]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn methods_agree_with_equality(
            strings in proptest::collection::vec(
                proptest::collection::vec(0u32..3, 1..9),
                0..24,
            )
        ) {
            check_grouping(&strings);
        }
    }

    /// Miri target: the grouping paths (doubling ranks, sort, hash) and
    /// their scatter writes.
    #[test]
    fn miri_group_cycles_small() {
        check_grouping(&[
            vec![1, 2, 1, 3],
            vec![2, 1, 3, 1],
            vec![7],
            vec![1, 2, 1, 3],
        ]);
    }
}

//! Problem instances and partitions.
//!
//! An instance of the single function coarsest partition problem is a
//! function `f` on `{0, …, n-1}` (the array `A_f`) together with an initial
//! partition `B` given as block labels (the array `A_B`).  The output is
//! another labelling `A_Q` — the coarsest partition refining `B` that is
//! stable under `f`.

use rand::prelude::*;
use sfcp_forest::generators;
use sfcp_forest::FunctionalGraph;

/// An instance of the coarsest partition problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    graph: FunctionalGraph,
    blocks: Vec<u32>,
}

impl Instance {
    /// Build an instance from the function table and the initial block
    /// labels.  Block labels may be arbitrary `u32`s; they are interpreted
    /// purely up to equality.
    ///
    /// # Panics
    /// Panics if the arrays have different lengths or `f` is out of range.
    #[must_use]
    pub fn new(f: Vec<u32>, blocks: Vec<u32>) -> Self {
        assert_eq!(f.len(), blocks.len(), "A_f and A_B must have equal length");
        Instance {
            graph: FunctionalGraph::new(f),
            blocks,
        }
    }

    /// Fallible [`Instance::new`]: the constructor for untrusted inputs.
    ///
    /// # Errors
    /// [`sfcp_pram::Error::LengthMismatch`] when the arrays have different
    /// lengths, plus everything [`FunctionalGraph::try_new`] rejects
    /// (out-of-range values, oversized domains).
    pub fn try_new(f: Vec<u32>, blocks: Vec<u32>) -> Result<Self, sfcp_pram::Error> {
        if f.len() != blocks.len() {
            return Err(sfcp_pram::Error::LengthMismatch {
                what: "A_f and A_B",
                left: f.len(),
                right: blocks.len(),
            });
        }
        Ok(Instance {
            graph: FunctionalGraph::try_new(f)?,
            blocks,
        })
    }

    /// Content digest of the instance: FxHash over `n`, `A_f`, and `A_B`.
    ///
    /// Two instances with equal digests are (with fingerprint confidence)
    /// the same problem; the serving layer keys its snapshot cache on this
    /// value combined with the engine selection.
    #[must_use]
    pub fn digest(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = sfcp_pram::fxhash::FxHasher::default();
        h.write_u64(self.len() as u64);
        for &v in self.f() {
            h.write_u32(v);
        }
        for &v in &self.blocks {
            h.write_u32(v);
        }
        h.finish()
    }

    /// Build from an existing functional graph.
    #[must_use]
    pub fn from_graph(graph: FunctionalGraph, blocks: Vec<u32>) -> Self {
        assert_eq!(graph.len(), blocks.len());
        Instance { graph, blocks }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the instance is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The function graph.
    #[must_use]
    pub fn graph(&self) -> &FunctionalGraph {
        &self.graph
    }

    /// The function table `A_f`.
    #[must_use]
    pub fn f(&self) -> &[u32] {
        self.graph.table()
    }

    /// The initial block labels `A_B`.
    #[must_use]
    pub fn blocks(&self) -> &[u32] {
        &self.blocks
    }

    /// The instance of Example 2.2 / Fig. 1 of the paper.
    #[must_use]
    pub fn paper_example() -> Self {
        Instance::from_graph(
            generators::paper_example_function(),
            generators::paper_example_blocks(),
        )
    }

    /// A random instance: uniformly random function, uniformly random block
    /// labels over `num_blocks` blocks.
    #[must_use]
    pub fn random(n: usize, num_blocks: usize, seed: u64) -> Self {
        let graph = generators::random_function(n, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9e37_79b9));
        let blocks = (0..n)
            .map(|_| rng.gen_range(0..num_blocks.max(1)) as u32)
            .collect();
        Instance::from_graph(graph, blocks)
    }

    /// A cycles-only instance with the given cycle lengths and random labels.
    #[must_use]
    pub fn random_cycles(lengths: &[usize], num_blocks: usize, seed: u64) -> Self {
        let graph = generators::cycles_only(lengths, seed);
        let n = graph.len();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xabcd));
        let blocks = (0..n)
            .map(|_| rng.gen_range(0..num_blocks.max(1)) as u32)
            .collect();
        Instance::from_graph(graph, blocks)
    }

    /// `k` cycles of equal length `len`, whose B-labels are periodic with the
    /// given `period`: a workload where many cycles are equivalent, stressing
    /// the cycle-equivalence machinery of Section 3.2.
    #[must_use]
    pub fn periodic_cycles(
        k: usize,
        len: usize,
        period: usize,
        num_blocks: usize,
        seed: u64,
    ) -> Self {
        assert!(
            period > 0 && len.is_multiple_of(period),
            "period must divide the cycle length"
        );
        let graph = generators::equal_cycles(k, len, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5151);
        // A small pool of period-patterns shared by the cycles.
        let num_patterns = (k / 3).max(1);
        let patterns: Vec<Vec<u32>> = (0..num_patterns)
            .map(|_| {
                (0..period)
                    .map(|_| rng.gen_range(0..num_blocks.max(1)) as u32)
                    .collect()
            })
            .collect();
        // Assign labels by walking each cycle.
        let n = graph.len();
        let mut blocks = vec![0u32; n];
        let mut visited = vec![false; n];
        let mut cycle_index = 0usize;
        for start in 0..n as u32 {
            if visited[start as usize] {
                continue;
            }
            let pattern = &patterns[cycle_index % num_patterns];
            let mut cur = start;
            let mut pos = 0usize;
            while !visited[cur as usize] {
                visited[cur as usize] = true;
                blocks[cur as usize] = pattern[pos % period];
                pos += 1;
                cur = graph.apply(cur);
            }
            cycle_index += 1;
        }
        Instance::from_graph(graph, blocks)
    }

    /// A deep instance: one long path into a small cycle, with `num_blocks`
    /// random labels — the worst case for level-by-level tree labelling.
    #[must_use]
    pub fn deep(n: usize, cycle_len: usize, num_blocks: usize, seed: u64) -> Self {
        let graph = generators::long_tail(n, cycle_len, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7777);
        let blocks = (0..n)
            .map(|_| rng.gen_range(0..num_blocks.max(1)) as u32)
            .collect();
        Instance::from_graph(graph, blocks)
    }
}

/// A partition of `{0, …, n-1}` represented by per-element labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    labels: Vec<u32>,
}

impl Partition {
    /// Wrap raw labels (interpreted up to equality).
    #[must_use]
    pub fn new(labels: Vec<u32>) -> Self {
        Partition { labels }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the partition covers no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label of element `x`.
    #[must_use]
    pub fn label(&self, x: u32) -> u32 {
        self.labels[x as usize]
    }

    /// The raw labels.
    #[must_use]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Consume the partition and return the label array (the serving
    /// layer's snapshot encoder takes ownership instead of copying).
    #[must_use]
    pub fn into_labels(self) -> Vec<u32> {
        self.labels
    }

    /// Number of distinct blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for &l in &self.labels {
            seen.insert(l);
        }
        seen.len()
    }

    /// Canonical form: blocks renumbered by first occurrence (element 0's
    /// block becomes 0, the next new block 1, and so on).  Two labelings
    /// describe the same partition iff their canonical forms are equal.
    #[must_use]
    pub fn canonical(&self) -> Partition {
        let mut map = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(self.labels.len());
        for &l in &self.labels {
            let next = map.len() as u32;
            out.push(*map.entry(l).or_insert(next));
        }
        Partition::new(out)
    }

    /// Whether two labelings describe the same partition (same equivalence
    /// classes, possibly different label values).
    #[must_use]
    pub fn same_partition(&self, other: &Partition) -> bool {
        self.len() == other.len() && self.canonical() == other.canonical()
    }
}

impl From<Vec<u32>> for Partition {
    fn from(labels: Vec<u32>) -> Self {
        Partition::new(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_construction_and_accessors() {
        let inst = Instance::new(vec![1, 2, 0], vec![0, 0, 1]);
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.f(), &[1, 2, 0]);
        assert_eq!(inst.blocks(), &[0, 0, 1]);
        assert_eq!(inst.graph().apply(2), 0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_lengths() {
        let _ = Instance::new(vec![0, 1], vec![0]);
    }

    #[test]
    fn paper_example_instance() {
        let inst = Instance::paper_example();
        assert_eq!(inst.len(), 16);
        assert_eq!(inst.blocks()[0], 0);
        assert_eq!(inst.blocks()[6], 2);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(Instance::random(500, 4, 1), Instance::random(500, 4, 1));
        assert_ne!(Instance::random(500, 4, 1), Instance::random(500, 4, 2));
        let c = Instance::periodic_cycles(6, 12, 4, 3, 9);
        assert_eq!(c.len(), 72);
        let d = Instance::deep(100, 4, 2, 3);
        assert_eq!(d.len(), 100);
    }

    #[test]
    fn partition_canonicalisation() {
        let p = Partition::new(vec![7, 7, 3, 9, 3]);
        let q = Partition::new(vec![0, 0, 1, 2, 1]);
        let r = Partition::new(vec![0, 0, 1, 2, 2]);
        assert!(p.same_partition(&q));
        assert!(!p.same_partition(&r));
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.canonical().labels(), q.labels());
        assert_eq!(p.label(3), 9);
    }

    #[test]
    fn partition_edge_cases() {
        let empty = Partition::new(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.num_blocks(), 0);
        assert!(empty.same_partition(&Partition::new(vec![])));
        assert!(!empty.same_partition(&Partition::new(vec![0])));
    }
}

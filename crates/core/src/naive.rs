//! The naive fixpoint refinement (Moore-style) — the "obviously correct"
//! oracle every other algorithm is tested against.
//!
//! Start from the initial partition and repeatedly refine by the signature
//! `(label(x), label(f(x)))` until the number of blocks stops growing.  Each
//! round takes `O(n)` expected time (hashing) and the number of rounds is at
//! most `n`, so the worst case is `O(n²)`; on the coarsest partition of a
//! single function the number of rounds is bounded by the length of the
//! longest simple path plus the largest cycle, which is what the benchmarks
//! show.

use crate::problem::{Instance, Partition};
use sfcp_pram::fxhash::FxHashMap;

/// Compute the coarsest stable refinement by fixpoint iteration.
#[must_use]
pub fn coarsest_naive(instance: &Instance) -> Partition {
    let n = instance.len();
    let f = instance.f();
    // Dense initial labels.
    let mut labels = dense(instance.blocks());
    if n == 0 {
        return Partition::new(labels);
    }
    let mut num_blocks = count_blocks(&labels);
    loop {
        let signatures: Vec<(u32, u32)> =
            (0..n).map(|x| (labels[x], labels[f[x] as usize])).collect();
        let new_labels = dense_pairs(&signatures);
        let new_num = count_blocks(&new_labels);
        labels = new_labels;
        if new_num == num_blocks {
            break;
        }
        num_blocks = new_num;
    }
    Partition::new(labels)
}

/// Renumber arbitrary labels densely by first occurrence.
fn dense(labels: &[u32]) -> Vec<u32> {
    let mut map: FxHashMap<u32, u32> = FxHashMap::default();
    labels
        .iter()
        .map(|&l| {
            let next = map.len() as u32;
            *map.entry(l).or_insert(next)
        })
        .collect()
}

fn dense_pairs(pairs: &[(u32, u32)]) -> Vec<u32> {
    let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    pairs
        .iter()
        .map(|&p| {
            let next = map.len() as u32;
            *map.entry(p).or_insert(next)
        })
        .collect()
}

fn count_blocks(labels: &[u32]) -> usize {
    labels.iter().copied().max().map_or(0, |m| m as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_stable_refinement;

    #[test]
    fn paper_example_matches_expected_output() {
        let inst = Instance::paper_example();
        let q = coarsest_naive(&inst);
        let expected = Partition::new(sfcp_forest::generators::paper_example_expected_q());
        assert!(q.same_partition(&expected), "got {:?}", q.labels());
        assert_eq!(q.num_blocks(), 4);
    }

    #[test]
    fn trivial_instances() {
        // Empty instance.
        assert_eq!(coarsest_naive(&Instance::new(vec![], vec![])).len(), 0);
        // Single fixed point.
        let q = coarsest_naive(&Instance::new(vec![0], vec![7]));
        assert_eq!(q.num_blocks(), 1);
        // Identity function: Q = B.
        let inst = Instance::new((0..6).collect(), vec![0, 1, 0, 1, 2, 2]);
        let q = coarsest_naive(&inst);
        assert!(q.same_partition(&Partition::new(vec![0, 1, 0, 1, 2, 2])));
    }

    #[test]
    fn all_same_labels_on_a_cycle_collapse() {
        // One 6-cycle, all B-labels equal: everything equivalent.
        let inst = Instance::new(vec![1, 2, 3, 4, 5, 0], vec![0; 6]);
        assert_eq!(coarsest_naive(&inst).num_blocks(), 1);
    }

    #[test]
    fn alternating_labels_on_a_cycle() {
        // 6-cycle with labels a,b,a,b,a,b: two classes (period 2).
        let inst = Instance::new(vec![1, 2, 3, 4, 5, 0], vec![0, 1, 0, 1, 0, 1]);
        let q = coarsest_naive(&inst);
        assert_eq!(q.num_blocks(), 2);
        assert!(q.same_partition(&Partition::new(vec![0, 1, 0, 1, 0, 1])));
    }

    #[test]
    fn period_three_labels_on_a_six_cycle() {
        // 6-cycle with labels a,b,a,a,b,a: the circular label string has
        // period 3, so nodes three apart are equivalent — 3 classes.
        let inst = Instance::new(vec![1, 2, 3, 4, 5, 0], vec![0, 1, 0, 0, 1, 0]);
        assert_eq!(coarsest_naive(&inst).num_blocks(), 3);
        // Breaking the periodicity separates all six nodes.
        let inst = Instance::new(vec![1, 2, 3, 4, 5, 0], vec![0, 1, 0, 0, 1, 1]);
        assert_eq!(coarsest_naive(&inst).num_blocks(), 6);
    }

    #[test]
    fn result_is_always_a_stable_refinement() {
        for seed in 0..20 {
            let inst = Instance::random(300, 3, seed);
            let q = coarsest_naive(&inst);
            verify_stable_refinement(&inst, &q).unwrap();
        }
    }

    #[test]
    fn deep_chain_levels() {
        // Path 5 → 4 → 3 → 2 → 1 → 0 → 0 with all-equal labels: node at
        // distance d from the fixed point is distinguished from every other
        // distance?  No: with all labels equal the whole chain collapses to
        // one class.
        let inst = Instance::new(vec![0, 0, 1, 2, 3, 4], vec![0; 6]);
        assert_eq!(coarsest_naive(&inst).num_blocks(), 1);
        // Distinguish the fixed point by its label: distances now matter.
        let inst = Instance::new(vec![0, 0, 1, 2, 3, 4], vec![1, 0, 0, 0, 0, 0]);
        assert_eq!(coarsest_naive(&inst).num_blocks(), 6);
    }
}

//! Minimal fixed-width table printer for the experiment binaries.

/// Render a table with a header row and aligned columns as plain text.
#[must_use]
pub fn render(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let mut line = String::new();
    for (i, h) in header.iter().enumerate() {
        line.push_str(&format!("{:>width$}  ", h, width = widths[i]));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            line.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Format a float with three significant-looking decimals.
#[must_use]
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a duration in milliseconds.
#[must_use]
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let s = render(
            "T0: demo",
            &["n", "value"],
            &[
                vec!["16".into(), "1.000".into()],
                vec!["1024".into(), "12.5".into()],
            ],
        );
        assert!(s.contains("T0: demo"));
        assert!(s.contains("1024"));
        // Header and separator present.
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(ms(std::time::Duration::from_millis(2)), "2.000");
    }
}

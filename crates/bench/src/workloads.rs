//! Workload generators shared by the criterion benches and the experiment
//! binaries.  Everything is seeded so that every row of `EXPERIMENTS.md` can
//! be regenerated exactly.

use rand::prelude::*;
use sfcp::Instance;
use sfcp_pram::Ctx;

/// Random functional-graph instance (experiments E1, E2, E10).
#[must_use]
pub fn random_instance(n: usize) -> Instance {
    Instance::random(n, 8, 0xC0FFEE)
}

/// Cycles-only instance: `k` cycles of equal length with periodic labels
/// (experiments E3, E6).
#[must_use]
pub fn cycles_instance(n: usize) -> Instance {
    let len = 256.min(n.max(4));
    let k = (n / len).max(1);
    Instance::periodic_cycles(k, len, 8.min(len), 4, 0xBEEF)
}

/// Deep instance: a single long path into a small cycle (experiment E7).
#[must_use]
pub fn deep_instance(n: usize) -> Instance {
    Instance::deep(n, 8.min(n), 4, 0xDEAD)
}

/// Random circular string (experiment E4).
#[must_use]
pub fn random_string(n: usize, alphabet: u32) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(0x5EED ^ n as u64);
    (0..n).map(|_| rng.gen_range(0..alphabet.max(1))).collect()
}

/// A list of strings with heavy shared prefixes, total length ~`n`
/// (experiment E5).
#[must_use]
pub fn string_list(n: usize) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(0xAB1E ^ n as u64);
    let len = 32usize;
    let m = (n / len).max(1);
    let shared: Vec<u32> = (0..len - 2).map(|_| rng.gen_range(0..3)).collect();
    (0..m)
        .map(|_| {
            let mut s = shared.clone();
            s.push(rng.gen_range(0..5));
            s.push(rng.gen_range(0..5));
            s
        })
        .collect()
}

/// A sharded/contracted multigraph edge stream: the adjacency build a
/// distributed partition pass performs after contracting supernodes, where
/// every vertex id carries its shard in the high bits.  The global key space
/// (`shards × per-shard id range`) deliberately exceeds
/// [`sfcp_parprim::csr::DIRECT_BUILD_MAX_KEYS`], so a CSR build of this
/// stream flows through `build_csr`'s packed-word radix *bucketed* fallback
/// end-to-end — the regime no in-tree decomposition call site reaches (every
/// pseudo-forest key space is `≤ n`).
///
/// Slots are closure-valued like every `build_csr` stream: a slot is `None`
/// when the contraction dropped the edge (self-merged supernodes), otherwise
/// `(global vertex key, edge payload)`.  Keys are skewed towards low
/// in-shard ids so some supernode groups are large while most of the huge
/// key space stays empty — the shape radix bucketing has to handle.
pub struct ShardedMultigraph {
    /// Global contracted key space (`shards << id_bits`), `> 2^22`.
    pub num_keys: usize,
    slots: Vec<Option<(u32, u32)>>,
}

impl ShardedMultigraph {
    /// Number of stream slots.
    #[must_use]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The edge stream (the closure `build_csr` consumes).
    #[must_use]
    pub fn edge(&self, s: usize) -> Option<(u32, u32)> {
        self.slots[s]
    }

    /// Group the stream into CSR adjacency via the shared parallel builder —
    /// the end-to-end path through the bucketed regime.
    #[must_use]
    pub fn build_csr(&self, ctx: &Ctx) -> (Vec<u32>, Vec<u32>) {
        sfcp_parprim::csr::build_csr(ctx, self.num_keys, self.num_slots(), |s| self.edge(s))
    }
}

/// Build the sharded multigraph workload: 64 shards of `2^17` contracted ids
/// (key space `2^23`), `num_slots` edge slots, deterministic in `seed`.
#[must_use]
pub fn sharded_multigraph(num_slots: usize, seed: u64) -> ShardedMultigraph {
    const SHARDS: u32 = 64;
    const ID_BITS: u32 = 17;
    let num_keys = (SHARDS as usize) << ID_BITS;
    assert!(
        num_keys > sfcp_parprim::csr::DIRECT_BUILD_MAX_KEYS,
        "workload must exceed the direct-build counter budget"
    );
    let mut rng = StdRng::seed_from_u64(0x5AADED ^ seed);
    let slots = (0..num_slots)
        .map(|s| {
            if rng.gen_bool(0.15) {
                return None; // contracted-away edge
            }
            let shard = rng.gen_range(0..SHARDS);
            let mut id = rng.gen_range(0..1u32 << ID_BITS);
            if rng.gen_bool(0.5) {
                id >>= 14; // skew: a few heavy supernodes at every shard base
            }
            Some(((shard << ID_BITS) | id, s as u32))
        })
        .collect();
    ShardedMultigraph { num_keys, slots }
}

/// Multiplier of the big-`n` scatter bijection `s ↦ (s · P) mod n`:
/// Knuth's 2^32 golden-ratio constant, odd and not divisible by 5, hence
/// coprime to every power-of-ten size — the map is a full permutation of
/// `{0, …, n-1}`.
pub const SCATTER_MULT: u64 = 2_654_435_761;

/// Zero-memory scatter permutation for the big-`n` tier: destination of
/// slot `s` under the multiplicative bijection.  A materialized shuffled
/// index array at `n = 10^8` would itself be 400 MB of harness state and
/// its generation would dominate the run; the bijection computes each
/// destination in two ALU ops while still jumping `≈ P mod n` positions
/// per slot — every store misses the cache just like a genuine shuffle.
///
/// # Panics
/// Panics when `n` shares a factor with [`SCATTER_MULT`] (the map would
/// not be a bijection).
#[must_use]
#[inline]
pub fn scatter_dest(n: usize, s: usize) -> usize {
    debug_assert!(
        {
            let (mut a, mut b) = (SCATTER_MULT, n as u64);
            while b != 0 {
                (a, b) = (b, a % b);
            }
            a == 1
        },
        "scatter bijection multiplier must be coprime to n = {n}"
    );
    ((s as u64).wrapping_mul(SCATTER_MULT) % n as u64) as usize
}

/// The big-`n` functional-graph workload: the chunked generator under the
/// harness seed (see
/// [`sfcp_forest::generators::random_function_chunked`] for the chunking
/// and determinism contract).
#[must_use]
pub fn bign_function(n: usize) -> sfcp_forest::FunctionalGraph {
    sfcp_forest::generators::random_function_chunked(n, 0xB16_C0FFEE ^ n as u64)
}

/// Canonical cycle strings for the grouping benchmark (experiment E6):
/// `k` strings of length `len` drawn from a small pool so that many are equal.
#[must_use]
pub fn canonical_cycle_strings(k: usize, len: usize) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(0x7A57E ^ (k as u64) << 8 ^ len as u64);
    let pool: Vec<Vec<u32>> = (0..(k / 4).max(1))
        .map(|_| (0..len).map(|_| rng.gen_range(0..4)).collect())
        .collect();
    (0..k)
        .map(|_| pool[rng.gen_range(0..pool.len())].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_sized() {
        assert_eq!(random_instance(1000).len(), 1000);
        assert_eq!(random_instance(1000), random_instance(1000));
        assert!(cycles_instance(1000).len() >= 768);
        assert_eq!(deep_instance(500).len(), 500);
        assert_eq!(random_string(100, 4).len(), 100);
        let list = string_list(3200);
        assert_eq!(list.len(), 100);
        let strings = canonical_cycle_strings(40, 16);
        assert_eq!(strings.len(), 40);
        assert!(strings.iter().all(|s| s.len() == 16));
    }

    #[test]
    fn scatter_bijection_is_a_permutation_at_power_of_ten_sizes() {
        for n in [10usize, 1000, 100_000] {
            let mut seen = vec![false; n];
            for s in 0..n {
                let d = scatter_dest(n, s);
                assert!(!seen[d], "collision at n={n}, s={s}");
                seen[d] = true;
            }
        }
    }

    #[test]
    fn bign_function_is_deterministic() {
        assert_eq!(bign_function(10_000), bign_function(10_000));
        assert_eq!(bign_function(10_000).len(), 10_000);
    }

    #[test]
    fn sharded_multigraph_is_deterministic_and_bucket_sized() {
        let a = sharded_multigraph(5000, 7);
        let b = sharded_multigraph(5000, 7);
        assert_eq!(a.num_keys, b.num_keys);
        assert_eq!(a.num_slots(), 5000);
        assert!(a.num_keys > sfcp_parprim::csr::DIRECT_BUILD_MAX_KEYS);
        for s in 0..a.num_slots() {
            assert_eq!(a.edge(s), b.edge(s));
            if let Some((k, _)) = a.edge(s) {
                assert!((k as usize) < a.num_keys);
            }
        }
    }
}

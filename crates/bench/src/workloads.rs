//! Workload generators shared by the criterion benches and the experiment
//! binaries.  Everything is seeded so that every row of `EXPERIMENTS.md` can
//! be regenerated exactly.

use rand::prelude::*;
use sfcp::Instance;

/// Random functional-graph instance (experiments E1, E2, E10).
#[must_use]
pub fn random_instance(n: usize) -> Instance {
    Instance::random(n, 8, 0xC0FFEE)
}

/// Cycles-only instance: `k` cycles of equal length with periodic labels
/// (experiments E3, E6).
#[must_use]
pub fn cycles_instance(n: usize) -> Instance {
    let len = 256.min(n.max(4));
    let k = (n / len).max(1);
    Instance::periodic_cycles(k, len, 8.min(len), 4, 0xBEEF)
}

/// Deep instance: a single long path into a small cycle (experiment E7).
#[must_use]
pub fn deep_instance(n: usize) -> Instance {
    Instance::deep(n, 8.min(n), 4, 0xDEAD)
}

/// Random circular string (experiment E4).
#[must_use]
pub fn random_string(n: usize, alphabet: u32) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(0x5EED ^ n as u64);
    (0..n).map(|_| rng.gen_range(0..alphabet.max(1))).collect()
}

/// A list of strings with heavy shared prefixes, total length ~`n`
/// (experiment E5).
#[must_use]
pub fn string_list(n: usize) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(0xAB1E ^ n as u64);
    let len = 32usize;
    let m = (n / len).max(1);
    let shared: Vec<u32> = (0..len - 2).map(|_| rng.gen_range(0..3)).collect();
    (0..m)
        .map(|_| {
            let mut s = shared.clone();
            s.push(rng.gen_range(0..5));
            s.push(rng.gen_range(0..5));
            s
        })
        .collect()
}

/// Canonical cycle strings for the grouping benchmark (experiment E6):
/// `k` strings of length `len` drawn from a small pool so that many are equal.
#[must_use]
pub fn canonical_cycle_strings(k: usize, len: usize) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(0x7A57E ^ (k as u64) << 8 ^ len as u64);
    let pool: Vec<Vec<u32>> = (0..(k / 4).max(1))
        .map(|_| (0..len).map(|_| rng.gen_range(0..4)).collect())
        .collect();
    (0..k)
        .map(|_| pool[rng.gen_range(0..pool.len())].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_sized() {
        assert_eq!(random_instance(1000).len(), 1000);
        assert_eq!(random_instance(1000), random_instance(1000));
        assert!(cycles_instance(1000).len() >= 768);
        assert_eq!(deep_instance(500).len(), 500);
        assert_eq!(random_string(100, 4).len(), 100);
        let list = string_list(3200);
        assert_eq!(list.len(), 100);
        let strings = canonical_cycle_strings(40, 16);
        assert_eq!(strings.len(), 40);
        assert!(strings.iter().all(|s| s.len() == 16));
    }
}

//! Regenerates the work/depth tables of `EXPERIMENTS.md` (experiments E1–E8,
//! E11): for every algorithm and a sweep of sizes, the measured operations
//! (work), parallel rounds (depth), the derived per-element and per-log
//! ratios, and wall-clock times in both execution modes.
//!
//! Run with: `cargo run -p sfcp-bench --bin complexity_table --release`

use sfcp::{coarsest_partition, Algorithm, Instance, ALL_ALGORITHMS};
use sfcp_bench::tables::{f3, ms, render};
use sfcp_bench::workloads;
use sfcp_pram::{Ctx, Mode};
use sfcp_strings::msp::{minimal_starting_point, MspMethod};
use sfcp_strings::string_sort::{sort_strings, StringSortMethod};
use std::time::Instant;

fn measure(instance: &Instance, algorithm: Algorithm) -> (sfcp_pram::Stats, f64, f64) {
    let ctx = Ctx::new(Mode::Parallel);
    let t = Instant::now();
    let q = coarsest_partition(&ctx, instance, algorithm);
    let par_time = t.elapsed().as_secs_f64() * 1e3;
    assert!(q.num_blocks() > 0 || instance.is_empty());
    let stats = ctx.stats();

    let ctx_seq = Ctx::untracked(Mode::Sequential);
    let t = Instant::now();
    let _ = coarsest_partition(&ctx_seq, instance, algorithm);
    let seq_time = t.elapsed().as_secs_f64() * 1e3;
    (stats, seq_time, par_time)
}

fn table_full_problem(
    title: &str,
    make: impl Fn(usize) -> Instance,
    sizes: &[usize],
    skip_naive_above: usize,
) {
    let header = [
        "n",
        "algorithm",
        "work",
        "rounds",
        "work/n",
        "rounds/log n",
        "t_seq(ms)",
        "t_par(ms)",
        "speedup",
    ];
    let mut rows = Vec::new();
    for &n in sizes {
        let instance = make(n);
        for algorithm in ALL_ALGORITHMS {
            if algorithm == Algorithm::Naive && n > skip_naive_above {
                continue;
            }
            let (stats, seq_time, par_time) = measure(&instance, algorithm);
            let log_n = (n.max(2) as f64).log2();
            rows.push(vec![
                n.to_string(),
                format!("{algorithm:?}"),
                stats.work.to_string(),
                stats.rounds.to_string(),
                f3(stats.work as f64 / n as f64),
                f3(stats.rounds as f64 / log_n),
                f3(seq_time),
                f3(par_time),
                f3(seq_time / par_time.max(1e-9)),
            ]);
        }
    }
    println!("{}\n", render(title, &header, &rows));
}

fn table_msp(sizes: &[usize]) {
    let header = ["n", "method", "work", "rounds", "work/n", "t_par(ms)"];
    let mut rows = Vec::new();
    for &n in sizes {
        let s = workloads::random_string(n, 8);
        for method in [
            MspMethod::Booth,
            MspMethod::Simple,
            MspMethod::Doubling,
            MspMethod::Efficient,
        ] {
            let ctx = Ctx::parallel();
            let t = Instant::now();
            let msp = minimal_starting_point(&ctx, &s, method);
            let elapsed = t.elapsed();
            assert!(msp < n);
            let stats = ctx.stats();
            rows.push(vec![
                n.to_string(),
                format!("{method:?}"),
                stats.work.to_string(),
                stats.rounds.to_string(),
                f3(stats.work as f64 / n as f64),
                ms(elapsed),
            ]);
        }
    }
    println!(
        "{}\n",
        render(
            "T4 (E4): minimal starting point of a circular string",
            &header,
            &rows
        )
    );
}

fn table_string_sort(sizes: &[usize]) {
    let header = [
        "total n",
        "#strings",
        "method",
        "work",
        "rounds",
        "work/n",
        "t_par(ms)",
    ];
    let mut rows = Vec::new();
    for &n in sizes {
        let strings = workloads::string_list(n);
        let total: usize = strings.iter().map(Vec::len).sum();
        for method in [StringSortMethod::Comparison, StringSortMethod::Contraction] {
            let ctx = Ctx::parallel();
            let t = Instant::now();
            let order = sort_strings(&ctx, &strings, method);
            let elapsed = t.elapsed();
            assert_eq!(order.len(), strings.len());
            let stats = ctx.stats();
            rows.push(vec![
                total.to_string(),
                strings.len().to_string(),
                format!("{method:?}"),
                stats.work.to_string(),
                stats.rounds.to_string(),
                f3(stats.work as f64 / total.max(1) as f64),
                ms(elapsed),
            ]);
        }
    }
    println!(
        "{}\n",
        render("T5 (E5): sorting variable-length strings", &header, &rows)
    );
}

fn table_tree_ablation(sizes: &[usize]) {
    use sfcp::parallel::{coarsest_parallel_with, ParallelConfig, TreeLabelMethod};
    let header = ["n", "tree method", "work", "rounds", "t_par(ms)"];
    let mut rows = Vec::new();
    for &n in sizes {
        let instance = workloads::deep_instance(n);
        for method in [TreeLabelMethod::Doubling, TreeLabelMethod::Levelwise] {
            let config = ParallelConfig {
                tree_method: method,
                ..ParallelConfig::default()
            };
            let ctx = Ctx::parallel();
            let t = Instant::now();
            let q = coarsest_parallel_with(&ctx, &instance, config);
            let elapsed = t.elapsed();
            assert!(q.num_blocks() > 0);
            let stats = ctx.stats();
            rows.push(vec![
                n.to_string(),
                format!("{method:?}"),
                stats.work.to_string(),
                stats.rounds.to_string(),
                ms(elapsed),
            ]);
        }
    }
    println!(
        "{}\n",
        render(
            "T7 (E7): tree labelling ablation on deep path instances",
            &header,
            &rows
        )
    );
}

fn table_find_cycles(sizes: &[usize]) {
    use sfcp_forest::cycles::{cycle_nodes, CycleMethod};
    let header = ["n", "method", "work", "rounds", "t_par(ms)"];
    let mut rows = Vec::new();
    for &n in sizes {
        let g = sfcp_forest::generators::random_function(n, 77);
        for method in [
            CycleMethod::Sequential,
            CycleMethod::Jump,
            CycleMethod::Euler,
        ] {
            let ctx = Ctx::parallel();
            let t = Instant::now();
            let marks = cycle_nodes(&ctx, &g, method);
            let elapsed = t.elapsed();
            assert_eq!(marks.len(), n);
            let stats = ctx.stats();
            rows.push(vec![
                n.to_string(),
                format!("{method:?}"),
                stats.work.to_string(),
                stats.rounds.to_string(),
                ms(elapsed),
            ]);
        }
    }
    println!(
        "{}\n",
        render("T8 (E8): cycle-node detection", &header, &rows)
    );
}

fn table_primitives(sizes: &[usize]) {
    let header = ["n", "primitive", "work", "rounds", "work/n"];
    let mut rows = Vec::new();
    for &n in sizes {
        let values: Vec<u64> = (0..n as u64)
            .map(|i| (i * 2_654_435_761) % 1_000_003)
            .collect();
        {
            let ctx = Ctx::parallel();
            let _ = sfcp_parprim::scan::inclusive_scan(&ctx, &values);
            let s = ctx.stats();
            rows.push(vec![
                n.to_string(),
                "prefix sums".into(),
                s.work.to_string(),
                s.rounds.to_string(),
                f3(s.work as f64 / n as f64),
            ]);
        }
        {
            let ctx = Ctx::parallel();
            let _ = sfcp_parprim::intsort::radix_sort_u64(&ctx, &values);
            let s = ctx.stats();
            rows.push(vec![
                n.to_string(),
                "integer sort".into(),
                s.work.to_string(),
                s.rounds.to_string(),
                f3(s.work as f64 / n as f64),
            ]);
        }
        {
            let ctx = Ctx::parallel();
            let mut data = values.clone();
            sfcp_parprim::merge::parallel_merge_sort(&ctx, &mut data);
            let s = ctx.stats();
            rows.push(vec![
                n.to_string(),
                "comparison sort".into(),
                s.work.to_string(),
                s.rounds.to_string(),
                f3(s.work as f64 / n as f64),
            ]);
        }
        {
            // A single list spanning all elements.
            let mut next: Vec<u32> = (1..=n as u32).collect();
            next[n - 1] = (n - 1) as u32;
            let ctx = Ctx::parallel();
            let _ = sfcp_parprim::listrank::list_rank_ruling_set(&ctx, &next);
            let s = ctx.stats();
            rows.push(vec![
                n.to_string(),
                "list ranking (ruling set)".into(),
                s.work.to_string(),
                s.rounds.to_string(),
                f3(s.work as f64 / n as f64),
            ]);
        }
        {
            let mut next: Vec<u32> = (1..=n as u32).collect();
            next[n - 1] = (n - 1) as u32;
            let ctx = Ctx::parallel();
            let _ = sfcp_parprim::listrank::list_rank_wyllie(&ctx, &next);
            let s = ctx.stats();
            rows.push(vec![
                n.to_string(),
                "list ranking (Wyllie)".into(),
                s.work.to_string(),
                s.rounds.to_string(),
                f3(s.work as f64 / n as f64),
            ]);
        }
    }
    println!(
        "{}\n",
        render("T10 (E11): parallel primitives", &header, &rows)
    );
}

fn main() {
    let sizes: Vec<usize> = std::env::args()
        .nth(1)
        .map(|a| {
            a.split(',')
                .map(|x| {
                    x.trim()
                        .parse()
                        .expect("size list: comma-separated integers")
                })
                .collect()
        })
        .unwrap_or_else(|| vec![1 << 12, 1 << 14, 1 << 16, 1 << 18]);

    println!("single function coarsest partition — complexity tables (sizes {sizes:?})\n");
    table_full_problem(
        "T1/T2 (E1, E2): full problem on random functional graphs",
        workloads::random_instance,
        &sizes,
        1 << 16,
    );
    table_full_problem(
        "T3 (E3): full problem on cycles-only inputs (periodic labels)",
        workloads::cycles_instance,
        &sizes,
        1 << 16,
    );
    table_msp(&sizes);
    table_string_sort(&sizes);
    let cycle_sizes: Vec<usize> = sizes.iter().map(|&n| n.min(1 << 16)).collect();
    table_tree_ablation(&cycle_sizes);
    table_find_cycles(&sizes);
    table_primitives(&sizes);
}

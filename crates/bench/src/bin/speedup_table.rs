//! Regenerates the thread-scaling table of `EXPERIMENTS.md` (experiment E10):
//! wall-clock self-relative speedup of the parallel algorithm and of the best
//! sequential baseline as the rayon thread count grows.
//!
//! Run with: `cargo run -p sfcp-bench --bin speedup_table --release [n]`

use sfcp::{coarsest_partition, Algorithm, Instance};
use sfcp_bench::tables::{f3, render};
use sfcp_pram::{Ctx, Mode};
use std::time::Instant;

fn time_with_threads(threads: usize, instance: &Instance) -> f64 {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    pool.install(|| {
        // Warm up once, then take the best of three runs.
        let ctx = Ctx::untracked(Mode::Parallel);
        let _ = coarsest_partition(&ctx, instance, Algorithm::Parallel);
        (0..3)
            .map(|_| {
                let ctx = Ctx::untracked(Mode::Parallel);
                let t = Instant::now();
                let _ = coarsest_partition(&ctx, instance, Algorithm::Parallel);
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    })
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1 << 20);
    let instance = Instance::random(n, 8, 0xC0FFEE);

    // Sequential baselines for reference.
    let ctx = Ctx::untracked(Mode::Sequential);
    let t = Instant::now();
    let _ = coarsest_partition(&ctx, &instance, Algorithm::SequentialLinear);
    let linear_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let _ = coarsest_partition(&ctx, &instance, Algorithm::Hopcroft);
    let hopcroft_ms = t.elapsed().as_secs_f64() * 1e3;

    let max_threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let mut threads = vec![1usize, 2, 4, 8, 16];
    threads.retain(|&t| t <= max_threads);
    if !threads.contains(&max_threads) {
        threads.push(max_threads);
    }

    let t1 = time_with_threads(1, &instance);
    let header = [
        "threads",
        "t_par(ms)",
        "self-speedup",
        "vs linear seq",
        "vs Hopcroft",
    ];
    let mut rows = Vec::new();
    for &p in &threads {
        let tp = time_with_threads(p, &instance);
        rows.push(vec![
            p.to_string(),
            f3(tp),
            f3(t1 / tp),
            f3(linear_ms / tp),
            f3(hopcroft_ms / tp),
        ]);
    }
    println!(
        "{}",
        render(
            &format!(
                "T9 (E10): thread scaling of the parallel algorithm, n = {n} \
                 (sequential linear baseline {linear_ms:.1} ms, Hopcroft {hopcroft_ms:.1} ms)"
            ),
            &header,
            &rows
        )
    );
}

//! Machine-readable perf trajectory for the sort/rank engine: times the
//! packed (zero-allocation, cache-aware) engine against the permutation
//! baseline — same inputs, same run — and writes `BENCH_parprim.json`.
//!
//! Benchmarked routines, at n ∈ {1e5, 1e6}:
//!
//! * `dense_ranks_by_sort` — the doubling loops' hot primitive,
//! * `radix_sort_pairs`   — the pair-contraction sort,
//! * `coarsest_parallel`  — the end-to-end parallel algorithm.
//!
//! Each row records the best-of-k wall-clock per engine plus the tracked
//! work/depth of both engines (asserted equal: the engines differ only in
//! wall-clock and allocations, never in charges).
//!
//! Run with: `cargo run -p sfcp-bench --bin bench_json --release [out.json]`

use rand::prelude::*;
use sfcp::{coarsest_partition, Algorithm, Instance};
use sfcp_pram::{Ctx, Mode, SortEngine, Stats};
use std::time::Instant;

/// Best-of-k wall-clock milliseconds of `f` with a fresh context per run.
fn best_ms<F: FnMut(&Ctx)>(engine: SortEngine, reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let ctx = Ctx::untracked(Mode::Parallel).with_sort_engine(engine);
        let t = Instant::now();
        f(&ctx);
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Tracked work/depth of `f` under `engine`.
fn charges<F: FnMut(&Ctx)>(engine: SortEngine, mut f: F) -> Stats {
    let ctx = Ctx::parallel().with_sort_engine(engine);
    f(&ctx);
    ctx.stats()
}

struct Row {
    name: &'static str,
    n: usize,
    packed_ms: f64,
    permutation_ms: f64,
    work: u64,
    rounds: u64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"n\": {}, ",
                "\"packed_ms\": {:.3}, \"permutation_ms\": {:.3}, ",
                "\"speedup\": {:.3}, \"work\": {}, \"rounds\": {}}}"
            ),
            self.name,
            self.n,
            self.packed_ms,
            self.permutation_ms,
            self.permutation_ms / self.packed_ms,
            self.work,
            self.rounds,
        )
    }
}

fn measure<F: FnMut(&Ctx) + Clone>(name: &'static str, n: usize, reps: usize, f: F) -> Row {
    let packed_ms = best_ms(SortEngine::Packed, reps, f.clone());
    let permutation_ms = best_ms(SortEngine::Permutation, reps, f.clone());
    let cp = charges(SortEngine::Packed, f.clone());
    let cb = charges(SortEngine::Permutation, f);
    assert_eq!(cp, cb, "{name}: engines must charge identical work/depth");
    println!(
        "{name:>22} n={n:>8}: packed {packed_ms:9.3} ms  permutation {permutation_ms:9.3} ms  ({:.2}x)",
        permutation_ms / packed_ms
    );
    Row {
        name,
        n,
        packed_ms,
        permutation_ms,
        work: cp.work,
        rounds: cp.rounds,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parprim.json".to_string());
    let sizes = [100_000usize, 1_000_000];
    let mut rows: Vec<Row> = Vec::new();

    for &n in &sizes {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ n as u64);
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..2 * n as u64)).collect();
        let pairs: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0..n as u64), rng.gen_range(0..n as u64)))
            .collect();
        let reps = if n >= 1_000_000 { 3 } else { 5 };

        rows.push(measure("dense_ranks_by_sort", n, reps, |ctx: &Ctx| {
            let (ranks, _) = sfcp_parprim::rank::dense_ranks_by_sort(ctx, &keys);
            std::hint::black_box(&ranks);
        }));
        rows.push(measure("radix_sort_pairs", n, reps, |ctx: &Ctx| {
            let order = sfcp_parprim::intsort::radix_sort_pairs(ctx, &pairs);
            std::hint::black_box(&order);
        }));
        let inst = Instance::random(n, 8, 0xC0FFEE);
        rows.push(measure("coarsest_parallel", n, reps, |ctx: &Ctx| {
            let q = coarsest_partition(ctx, &inst, Algorithm::Parallel);
            std::hint::black_box(q.num_blocks());
        }));
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"sfcp_parprim_sort_rank_engine\",\n");
    json.push_str(&format!(
        "  \"threads\": {},\n",
        std::thread::available_parallelism().map_or(0, usize::from)
    ));
    json.push_str("  \"engines\": [\"packed\", \"permutation\"],\n");
    json.push_str("  \"results\": [\n");
    let body: Vec<String> = rows.iter().map(Row::json).collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("failed to write benchmark json");
    println!("wrote {out_path}");

    // The acceptance gate for the packed engine: end-to-end coarsest_parallel
    // at the largest size must not be slower than the permutation baseline.
    // Enforced (with slack for noisy shared runners): a genuine regression
    // fails this binary and therefore the CI bench-smoke step.
    let end_to_end = rows
        .iter()
        .filter(|r| r.name == "coarsest_parallel")
        .max_by_key(|r| r.n)
        .expect("end-to-end row present");
    let speedup = end_to_end.permutation_ms / end_to_end.packed_ms;
    println!(
        "end-to-end n={}: packed is {speedup:.2}x the baseline",
        end_to_end.n
    );
    assert!(
        speedup > 0.9,
        "perf regression: packed engine is {speedup:.2}x the permutation baseline \
         end-to-end (must stay >= ~1.0; 0.9 allows for runner noise)"
    );
}

//! Machine-readable perf trajectory for the engine subsystems: times the
//! default engine set — `SortEngine::Packed` + `RankEngine::CacheBucket`
//! (the zero-allocation cache-aware engines) — against the baseline set —
//! `SortEngine::Permutation` + `RankEngine::RulingSet` — on the same inputs
//! in the same run, and writes `BENCH_parprim.json`.  (The JSON field names
//! keep the historical `packed_ms` / `permutation_ms` spelling.)
//!
//! Benchmarked routines, at n ∈ {1e5, 1e6}:
//!
//! * `dense_ranks_by_sort` — the doubling loops' hot primitive,
//! * `radix_sort_pairs`   — the pair-contraction sort,
//! * `csr_build`          — the parallel CSR builder on the buddy-edge
//!   incidence stream vs the sequential counting build,
//! * `list_rank`          — the list-ranking engine on a multi-list
//!   successor array (wavefront walks vs sequential walks),
//! * `euler_build`        — the Euler-tour construction over a random
//!   forest (tour successors + 2n-arc ranking + positions),
//! * `scatter`            — the bucketed-scatter subsystem on a shuffled
//!   permutation store (direct stores vs write-combining tiles; this row's
//!   engine pair is `ScatterEngine`, not the sort/rank engines),
//! * `decompose`          — the decomposition pipeline (cold pools: fresh
//!   context per repetition),
//! * `decompose_warm`     — the roots-threaded decomposition on warm
//!   workspace pools (one persistent context per engine set) — the number
//!   the ROADMAP's decompose trajectory quotes,
//! * `decompose_checked`  — the validated `try_decompose` path (size
//!   envelope check + `catch_unwind`) on the same warm pools; a gate
//!   asserts it stays within noise of `decompose_warm`,
//! * `coarsest_parallel`  — the end-to-end parallel algorithm.
//!
//! The **service tier** measures the `sfcp-service` front-end end to end
//! over loopback TCP (in-process server, blocking client):
//!
//! * `service_warm` / `service_cold` — per-request p50/p99 latency and
//!   throughput of decompose workload requests against a warm persistent
//!   worker vs the cold rebuild-per-request baseline, at the same sizes as
//!   the library rows.  An in-run gate asserts the warm p50 beats cold by
//!   at least the workspace pool warm-up margin (the number the serving
//!   layer exists to bank).
//! * `service_batch` — fixed work (128 partition requests at n = 2048)
//!   pushed through explicit batch frames of 1, 8 and 64 members;
//!   `p50_ms`/`p99_ms` are per-*frame* round trips and `rps` is requests
//!   per second, so the rows chart the latency-vs-throughput trade the
//!   batching policy buys.  An in-run gate asserts the largest batch
//!   out-throughputs the unbatched drain.
//!
//! Service rows carry `"batch"`, `"p50_ms"`, `"p99_ms"` and `"rps"`
//! columns instead of the two engine columns (the server picks engines per
//! request; these rows measure the serving path, not an engine pair), and
//! their `"trace"` is the span/decision summary of one traced request's
//! serving run, reported by the server itself over the wire.
//!
//! Each row records the best-of-k wall-clock per engine set plus the
//! tracked work/depth of both (asserted equal: the engine choices differ
//! only in wall-clock and allocations, never in charges).
//!
//! Run with: `cargo run -p sfcp-bench --bin bench_json --release [out.json]`
//!
//! `--bign` runs the separate **out-of-cache tier** instead: `scatter`,
//! `csr_build` and `decompose` at n = 1e8 (override with `--bign-n`), one
//! row per `ScatterEngine` including the footprint-adaptive `Auto`, written
//! to `BENCH_parprim_bign.json` — see [`run_bign`].
//!
//! Schema 2: every row also embeds a `"trace"` object — the span/decision
//! summary of one instrumented run under the default engines (per-phase
//! wall/self time, charges, workspace checkouts, and the resolved engine
//! of every scatter dispatch).  `--trace <path>` additionally exports a
//! Chrome/Perfetto `trace.json` of one warm traced decompose at the
//! largest measured size.
//!
//! `--smoke` runs only n = 1e5 and additionally compares the fresh
//! `decompose`, `decompose_warm`, `decompose_checked`, `csr_build`,
//! `list_rank`, `euler_build`,
//! and `scatter` rows against the committed `BENCH_parprim.json` (or the
//! file given with `--committed <path>`), failing on a >10%
//! machine-normalized wall-clock regression — the CI gate for the
//! decomposition pipeline, the CSR subsystem, the list-ranking engines,
//! and the scatter subsystem.

use rand::prelude::*;
use sfcp::{coarsest_partition, Algorithm, Instance};
use sfcp_pram::{Ctx, Mode, RankEngine, ScatterEngine, SortEngine, Stats};
use sfcp_service::{Client, ComputeRequest, Kind, Reply, Server, ServerConfig};
use std::time::Instant;

/// The two measured engine sets: the defaults vs the baselines.
#[derive(Clone, Copy)]
struct EngineSet {
    sort: SortEngine,
    rank: RankEngine,
}

const DEFAULT_ENGINES: EngineSet = EngineSet {
    sort: SortEngine::Packed,
    rank: RankEngine::CacheBucket,
};
const BASELINE_ENGINES: EngineSet = EngineSet {
    sort: SortEngine::Permutation,
    rank: RankEngine::RulingSet,
};

/// Best-of-k wall-clock milliseconds of `f` with a fresh context per run.
fn best_ms<F: FnMut(&Ctx)>(engines: EngineSet, reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let ctx = Ctx::untracked(Mode::Parallel)
            .with_sort_engine(engines.sort)
            .with_rank_engine(engines.rank);
        let t = Instant::now();
        f(&ctx);
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Tracked work/depth of `f` under `engines`, plus the span/decision
/// summary of the same (traced) run.  Tracing is charge-neutral by
/// construction — `tests/charge_determinism.rs` pins that the charges here
/// are bit-identical to an untraced run — so one tracked pass yields both.
fn charges<F: FnMut(&Ctx)>(engines: EngineSet, mut f: F) -> (Stats, String) {
    let ctx = Ctx::parallel()
        .with_sort_engine(engines.sort)
        .with_rank_engine(engines.rank)
        .with_tracing();
    f(&ctx);
    (ctx.stats(), ctx.trace().snapshot().summary().to_json())
}

struct Row {
    name: &'static str,
    n: usize,
    /// What the two timing columns actually dispatch on — `SortEngine` /
    /// `RankEngine` sets for most rows, `ScatterEngine`s for the scatter
    /// row.  Emitted per row so the JSON is self-describing: the historical
    /// schema labelled every row with the global
    /// `"engines": ["packed", "permutation"]` header, which mislabelled the
    /// scatter row (its columns are direct vs combining stores and have
    /// nothing to do with the sort engines).  The column *field names* keep
    /// the historical `packed_ms` / `permutation_ms` spelling so committed
    /// trajectories stay comparable.
    engines: [&'static str; 2],
    packed_ms: f64,
    permutation_ms: f64,
    work: u64,
    rounds: u64,
    /// Span/decision summary of one tracked+traced run under the default
    /// engines ([`sfcp_pram::TraceSummary::to_json`]): per-phase wall/self
    /// time, charges and checkouts, plus per-site engine decisions.  Wall
    /// times in here come from that single instrumented pass, not the
    /// best-of-k timing columns — they describe *shape* (where a row's time
    /// goes), not the trajectory numbers.  Schema 2 field.
    trace: String,
}

impl Row {
    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"n\": {}, ",
                "\"engines\": [\"{}\", \"{}\"], ",
                "\"packed_ms\": {:.3}, \"permutation_ms\": {:.3}, ",
                "\"speedup\": {:.3}, \"work\": {}, \"rounds\": {}, ",
                "\"trace\": {}}}"
            ),
            self.name,
            self.n,
            self.engines[0],
            self.engines[1],
            self.packed_ms,
            self.permutation_ms,
            self.permutation_ms / self.packed_ms,
            self.work,
            self.rounds,
            self.trace,
        )
    }
}

/// Row engine labels for the sort/rank-engine benches.
const SORT_RANK_LABELS: [&str; 2] = ["packed", "permutation"];
/// Row engine labels for the scatter-engine bench (`ScatterEngine` columns).
/// Both label sets are validated against the committed JSON by sfcp-lint's
/// `bench-engines` rule (`crates/xtask/src/rules/bench_engines.rs`).
const SCATTER_LABELS: [&str; 2] = ["direct", "combining"];

fn measure<F: FnMut(&Ctx) + Clone>(name: &'static str, n: usize, reps: usize, f: F) -> Row {
    let packed_ms = best_ms(DEFAULT_ENGINES, reps, f.clone());
    let permutation_ms = best_ms(BASELINE_ENGINES, reps, f.clone());
    let (cp, trace) = charges(DEFAULT_ENGINES, f.clone());
    let (cb, _) = charges(BASELINE_ENGINES, f);
    assert_eq!(cp, cb, "{name}: engines must charge identical work/depth");
    println!(
        "{name:>22} n={n:>8}: packed {packed_ms:9.3} ms  permutation {permutation_ms:9.3} ms  ({:.2}x)",
        permutation_ms / packed_ms
    );
    Row {
        name,
        n,
        engines: SORT_RANK_LABELS,
        packed_ms,
        permutation_ms,
        work: cp.work,
        rounds: cp.rounds,
        trace,
    }
}

/// Two warm rows measured **interleaved** on one shared **persistent,
/// pre-warmed** context per engine set (one warm-up call per set, then
/// every repetition reuses the same workspace pools — this is the "warm"
/// number the decompose trajectory in ROADMAP.md quotes; the plain
/// `measure` rows pay the cold-pool allocations every repetition).
/// Each repetition times both closures back-to-back, so both best-of-k
/// minima sample the same quiet scheduler windows and their ratio cancels
/// machine jitter.  This is what makes the checked-vs-unchecked overhead
/// gate meaningful on noisy shared runners — two independent best-of-k
/// loops minutes apart can diverge by more than the gate's tolerance from
/// scheduling alone.
///
/// **Run order alternates per repetition.**  A fixed `f`-then-`g` order
/// biases the pair: the member that runs second inherits warmed caches,
/// branch predictors and page tables from the first, and at the 1e6 tier
/// the effect is larger than the overhead being gated (a committed fixed-
/// order trajectory showed `decompose_checked` at 203.9 ms *beating*
/// `decompose_warm` at 216.7 ms — the validated superset of the warm path
/// cannot genuinely be 6% faster; that gap was pure ordering).  Alternating
/// gives each member the lead position on half the reps, so the order bias
/// cancels out of both the best-of-k columns and the per-rep ratios.
///
/// Returns the two rows plus the **median paired ratio** `g/f` over the
/// default-engine reps — the statistic the overhead gate checks.  The
/// median of per-rep ratios is robust against a single noisy rep in a way
/// the ratio-of-minima is not (the two minima can come from different reps
/// and different run orders).
fn measure_warm_pair<F, G>(
    name_a: &'static str,
    name_b: &'static str,
    n: usize,
    reps: usize,
    f: F,
    g: G,
) -> (Row, Row, f64)
where
    F: FnMut(&Ctx) + Clone,
    G: FnMut(&Ctx) + Clone,
{
    let pair_best = |engines: EngineSet, mut f: F, mut g: G| {
        let ctx = Ctx::untracked(Mode::Parallel)
            .with_sort_engine(engines.sort)
            .with_rank_engine(engines.rank);
        f(&ctx); // warm the pools (shared by both closures)
        g(&ctx);
        let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
        let mut ratios = Vec::with_capacity(reps);
        let time = |h: &mut dyn FnMut(&Ctx)| {
            let t = Instant::now();
            h(&ctx);
            t.elapsed().as_secs_f64() * 1e3
        };
        for rep in 0..reps {
            let (a, b) = if rep % 2 == 0 {
                let a = time(&mut f);
                let b = time(&mut g);
                (a, b)
            } else {
                let b = time(&mut g);
                let a = time(&mut f);
                (a, b)
            };
            best_a = best_a.min(a);
            best_b = best_b.min(b);
            ratios.push(b / a);
        }
        ratios.sort_by(f64::total_cmp);
        (best_a, best_b, ratios[ratios.len() / 2])
    };
    let (packed_a, packed_b, paired_ratio) = pair_best(DEFAULT_ENGINES, f.clone(), g.clone());
    let (perm_a, perm_b, _) = pair_best(BASELINE_ENGINES, f.clone(), g.clone());
    let (ca, trace_a) = charges(DEFAULT_ENGINES, f.clone());
    assert_eq!(
        ca,
        charges(BASELINE_ENGINES, f).0,
        "{name_a}: engines must charge identical work/depth"
    );
    let (cb, trace_b) = charges(DEFAULT_ENGINES, g.clone());
    assert_eq!(
        cb,
        charges(BASELINE_ENGINES, g).0,
        "{name_b}: engines must charge identical work/depth"
    );
    let row = |name, packed_ms: f64, permutation_ms: f64, c: Stats, trace: String| {
        println!(
            "{name:>22} n={n:>8}: packed {packed_ms:9.3} ms  permutation {permutation_ms:9.3} ms  ({:.2}x)",
            permutation_ms / packed_ms
        );
        Row {
            name,
            n,
            engines: SORT_RANK_LABELS,
            packed_ms,
            permutation_ms,
            work: c.work,
            rounds: c.rounds,
            trace,
        }
    };
    (
        row(name_a, packed_a, perm_a, ca, trace_a),
        row(name_b, packed_b, perm_b, cb, trace_b),
        paired_ratio,
    )
}

/// The scatter row: a shuffled-permutation store through the scatter
/// subsystem.  The two columns are the two `ScatterEngine`s (direct stores
/// vs write-combining tiles) under otherwise-default engines; charges are
/// asserted identical, like every engine pair.
fn measure_scatter(n: usize, reps: usize, idx: &[u32]) -> Row {
    let run = |engine: ScatterEngine| {
        let mut best = f64::INFINITY;
        let mut dest = vec![0u32; n];
        // One persistent context per engine, warmed by an untimed call, so
        // the combining column's staging checkout is a pool hit inside the
        // timed window — the engines pay symmetric setup costs.
        let ctx = Ctx::untracked(Mode::Parallel).with_scatter_engine(engine);
        sfcp_parprim::scatter::scatter_into(&ctx, &mut dest, n, |s| {
            Some((idx[s] as usize, s as u32))
        });
        for _ in 0..reps {
            let t = Instant::now();
            sfcp_parprim::scatter::scatter_into(&ctx, &mut dest, n, |s| {
                Some((idx[s] as usize, s as u32))
            });
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(&dest);
        }
        best
    };
    let stats = |engine: ScatterEngine| {
        let ctx = Ctx::parallel().with_scatter_engine(engine).with_tracing();
        let mut dest = vec![0u32; n];
        sfcp_parprim::scatter::scatter_into(&ctx, &mut dest, n, |s| {
            Some((idx[s] as usize, s as u32))
        });
        (ctx.stats(), ctx.trace().snapshot().summary().to_json())
    };
    let direct_ms = run(ScatterEngine::Direct);
    let combining_ms = run(ScatterEngine::Combining);
    let (cd, trace) = stats(ScatterEngine::Direct);
    let (cc, _) = stats(ScatterEngine::Combining);
    assert_eq!(cd, cc, "scatter: engines must charge identical work/depth");
    println!(
        "{:>22} n={n:>8}: direct {direct_ms:9.3} ms  combining {combining_ms:9.3} ms  ({:.2}x)",
        "scatter",
        combining_ms / direct_ms
    );
    Row {
        name: "scatter",
        n,
        engines: SCATTER_LABELS,
        packed_ms: direct_ms,
        permutation_ms: combining_ms,
        work: cd.work,
        rounds: cd.rounds,
        trace,
    }
}

/// One service-tier measurement: the TCP front-end driven end to end.
/// Latency rows (`service_warm` / `service_cold`) time one request per
/// round trip; the batch rows time explicit batch frames, so their
/// `p50_ms`/`p99_ms` are per-frame and `rps` carries the throughput story.
struct ServiceRow {
    name: &'static str,
    n: usize,
    /// Members per request frame (1 for the latency rows).
    batch: usize,
    p50_ms: f64,
    p99_ms: f64,
    /// Requests (batch members, not frames) per second over the timed drain.
    rps: f64,
    work: u64,
    rounds: u64,
    /// Span/decision summary of one traced request's serving run, as
    /// reported by the server over the wire (schema 2 field; same shape as
    /// [`Row::trace`] — the serving path runs the same instrumented
    /// context).
    trace: String,
}

impl ServiceRow {
    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"n\": {}, \"batch\": {}, ",
                "\"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"rps\": {:.1}, ",
                "\"work\": {}, \"rounds\": {}, \"trace\": {}}}"
            ),
            self.name,
            self.n,
            self.batch,
            self.p50_ms,
            self.p99_ms,
            self.rps,
            self.work,
            self.rounds,
            self.trace,
        )
    }
}

fn percentile(sorted_ms: &[f64], pct: usize) -> f64 {
    sorted_ms[(sorted_ms.len() * pct / 100).min(sorted_ms.len() - 1)]
}

/// Unwrap a service round trip down to the reply (any failure — transport
/// or typed — fails the bench run; the serving path is part of what is
/// being certified here).
fn expect_reply(
    outcome: Result<Result<Reply, sfcp_service::ErrorReply>, sfcp_service::ClientError>,
) -> Reply {
    outcome
        .expect("service transport must stay up during the bench")
        .unwrap_or_else(|e| panic!("service answered a typed error: {e}"))
}

/// One latency row: `reqs` decompose workload requests (digest replies,
/// cache bypassed) against an in-process single-worker server, timed per
/// round trip.  `cold` rebuilds the worker's context per request — the
/// baseline the warm-vs-cold gate compares against.  The request stream is
/// identical on both servers (same workload key, so the worker's generator
/// memo serves both equally); the only asymmetry left is workspace pool
/// reuse, which is exactly the margin the serving layer exists to keep.
fn measure_service_latency(name: &'static str, n: usize, reqs: usize, cold: bool) -> ServiceRow {
    let server = Server::start(ServerConfig {
        cold_ctx: cold,
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral loopback port");
    let mut client = Client::connect(server.addr()).expect("connect to the in-process server");
    let req = ComputeRequest::workload(Kind::Decompose, n, 0x5EED, 0)
        .digest_only()
        .no_cache();
    // Untimed warm-up: pages in the code path on both servers and generates
    // the workload into the worker's memo; only the warm server's workspace
    // pools carry into the timed window.
    for _ in 0..2 {
        expect_reply(client.request(&req));
    }
    let mut lats = Vec::with_capacity(reqs);
    let (mut work, mut rounds) = (0u64, 0u64);
    let t0 = Instant::now();
    for _ in 0..reqs {
        let t = Instant::now();
        let reply = expect_reply(client.request(&req));
        lats.push(t.elapsed().as_secs_f64() * 1e3);
        (work, rounds) = (reply.work, reply.rounds);
    }
    let rps = reqs as f64 / t0.elapsed().as_secs_f64();
    lats.sort_by(f64::total_cmp);
    let (p50_ms, p99_ms) = (percentile(&lats, 50), percentile(&lats, 99));
    // The row's trace comes from the serving run itself: one traced request
    // outside the timed window, summarized by the worker and shipped back.
    let traced = expect_reply(client.request(&req.clone().traced()));
    let trace = traced
        .trace_json
        .expect("a traced request must carry its summary");
    server.shutdown();
    println!("{name:>22} n={n:>8}: p50 {p50_ms:9.3} ms  p99 {p99_ms:9.3} ms  ({rps:8.1} req/s)");
    ServiceRow {
        name,
        n,
        batch: 1,
        p50_ms,
        p99_ms,
        rps,
        work,
        rounds,
        trace,
    }
}

/// One throughput row: `total` partition workload requests at domain size
/// `n`, pushed through frames of `batch` members (plain round trips when
/// `batch == 1`, explicit batch frames otherwise — the worker fuses each
/// frame's members into one engine invocation).  Work/rounds accumulate
/// over every member reply, so the column records the charge cost of the
/// fused plan actually served.
fn measure_service_batch(n: usize, batch: usize, total: usize) -> ServiceRow {
    let server = Server::start(ServerConfig::default()).expect("bind an ephemeral loopback port");
    let mut client = Client::connect(server.addr()).expect("connect to the in-process server");
    let members: Vec<ComputeRequest> = (0..total)
        .map(|j| {
            ComputeRequest::workload(Kind::Partition, n, 0xBA7C4 + j as u64, 8)
                .digest_only()
                .no_cache()
        })
        .collect();
    // Untimed warm-up pass over the same frames.
    for chunk in members.chunks(batch) {
        if batch == 1 {
            expect_reply(client.request(&chunk[0]));
        } else {
            client
                .batch(chunk)
                .expect("batch transport")
                .into_iter()
                .for_each(|r| {
                    expect_reply(Ok(r.outcome));
                });
        }
    }
    let mut lats = Vec::with_capacity(total.div_ceil(batch));
    let (mut work, mut rounds) = (0u64, 0u64);
    let t0 = Instant::now();
    for chunk in members.chunks(batch) {
        let t = Instant::now();
        if batch == 1 {
            let reply = expect_reply(client.request(&chunk[0]));
            work += reply.work;
            rounds += reply.rounds;
        } else {
            for response in client.batch(chunk).expect("batch transport") {
                let reply = expect_reply(Ok(response.outcome));
                work += reply.work;
                rounds += reply.rounds;
            }
        }
        lats.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let rps = total as f64 / t0.elapsed().as_secs_f64();
    lats.sort_by(f64::total_cmp);
    let (p50_ms, p99_ms) = (percentile(&lats, 50), percentile(&lats, 99));
    let traced = expect_reply(client.request(&members[0].clone().traced()));
    let trace = traced
        .trace_json
        .expect("a traced request must carry its summary");
    server.shutdown();
    println!(
        "{:>22} n={n:>8}: p50 {p50_ms:9.3} ms  p99 {p99_ms:9.3} ms  ({rps:8.1} req/s, batch {batch})",
        "service_batch"
    );
    ServiceRow {
        name: "service_batch",
        n,
        batch,
        p50_ms,
        p99_ms,
        rps,
        work,
        rounds,
        trace,
    }
}

/// One out-of-cache tier measurement: a routine under one explicit (or
/// auto-resolved) scatter engine.
struct BignRow {
    name: &'static str,
    n: usize,
    engine: &'static str,
    ms: f64,
    work: u64,
    rounds: u64,
}

impl BignRow {
    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"n\": {}, \"engine\": \"{}\", ",
                "\"ms\": {:.3}, \"work\": {}, \"rounds\": {}}}"
            ),
            self.name, self.n, self.engine, self.ms, self.work, self.rounds,
        )
    }
}

/// The out-of-cache bench tier (`--bign`): every scatter-dispatching
/// routine at a footprint far past the probed LLC, one row per
/// `ScatterEngine` *including* `Auto`, written to
/// `BENCH_parprim_bign.json`.  This is the tier that proves where the
/// engines cross over and that the footprint-adaptive selector lands on
/// the right side: past the LLC a direct store misses on nearly every
/// slot, while the combining tiles turn the same stream into bucketed
/// line-sized bursts.  Two in-run gates:
///
/// * charges are asserted bit-identical across all three engines for the
///   scatter and CSR rows (`decompose` charge equality across engines is
///   pinned by `tests/charge_determinism.rs`; its tracked pass here runs
///   once, under `Auto`, and its charges label all three rows), and
/// * `Auto` must land within 10% of the best explicit engine on every
///   routine that actually dispatches on the selection — the acceptance
///   bound for the selector.  (`csr_build` at default bign scale is in
///   the bucketed fallback, which never consults the scatter engine; its
///   three rows are the same code, so the gate is skipped there as
///   vacuous — it would only measure environment noise.)
///
/// Every routine times all three engines against **shared state**: one
/// context (so all engines hit the same warm workspace pools and the same
/// physical pages) and one destination/output buffer set, with the
/// selector swapped per run via `with_scatter_engine` and the engine
/// order rotated per rep.  Per-engine buffers would hand each engine
/// different allocation luck — THP backing and heap fragmentation at the
/// moment its multi-GB buffers were carved — which at this footprint
/// dwarfs the engine effect itself (observed: the *same machine code*
/// measuring 10–14% apart between separately-allocated contexts); and
/// running engines in per-engine blocks lands slow environmental drift
/// entirely on whichever runs last — the same ordering-bias class the
/// warm/checked pair fix addresses ([`measure_warm_pair`]).
///
/// Workloads are generated chunked (see
/// [`sfcp_bench::workloads::bign_function`]) and the scatter permutation
/// is the zero-memory multiplicative bijection
/// ([`sfcp_bench::workloads::scatter_dest`]): at `n = 10^8` a shuffled
/// index array alone would be 400 MB of harness state.
fn run_bign(out_path: &str, n: usize) {
    use sfcp_bench::workloads::{bign_function, scatter_dest};

    let engines: [(&str, ScatterEngine); 3] = [
        ("direct", ScatterEngine::Direct),
        ("combining", ScatterEngine::Combining),
        ("auto", ScatterEngine::Auto),
    ];
    let probe_ctx = Ctx::untracked(Mode::Parallel);
    let llc = probe_ctx.topology().llc_bytes();
    let resolved = probe_ctx.scatter_engine_for(n * std::mem::size_of::<u32>());
    println!(
        "bign tier: n={n}, dest footprint {} MB, probed LLC {} MB, Auto resolves to {resolved:?}",
        n * 4 / (1 << 20),
        llc / (1 << 20),
    );

    let mut rows: Vec<BignRow> = Vec::new();

    // At the default n = 1e8 each rep is seconds long and best-of-few is
    // already tight; a small `--bign-n` smoke has millisecond reps where
    // the 10% gate needs more samples for the minima to converge.
    let reps_fast = (100_000_000 / n.max(1)).clamp(3, 15);
    let reps_slow = (100_000_000 / n.max(1)).clamp(2, 5);

    // -- scatter: a full permutation store through the subsystem. --
    {
        let run = |ctx: &Ctx, dest: &mut Vec<u32>| {
            sfcp_parprim::scatter::scatter_into(ctx, dest, n, |s| {
                Some((scatter_dest(n, s), s as u32))
            });
        };
        let stats = |engine: ScatterEngine| {
            let ctx = Ctx::parallel().with_scatter_engine(engine);
            let mut dest = vec![0u32; n];
            run(&ctx, &mut dest);
            ctx.stats()
        };
        let all_stats: Vec<Stats> = engines.iter().map(|&(_, e)| stats(e)).collect();
        assert!(
            all_stats.windows(2).all(|w| w[0] == w[1]),
            "scatter: engines must charge identical work/depth at n={n}"
        );
        // Shared-state timing (see the function doc): one ctx + one dest
        // for all engines, selector swapped per run, order rotated per rep.
        let mut ctx = Ctx::untracked(Mode::Parallel);
        let mut dest = vec![0u32; n];
        let mut best = [f64::INFINITY; 3];
        for &(_, e) in &engines {
            ctx = ctx.with_scatter_engine(e);
            run(&ctx, &mut dest); // warm pools + pages under every engine
        }
        for rep in 0..reps_fast {
            for k in 0..engines.len() {
                let i = (rep + k) % engines.len();
                ctx = ctx.with_scatter_engine(engines[i].1);
                let t = Instant::now();
                run(&ctx, &mut dest);
                best[i] = best[i].min(t.elapsed().as_secs_f64() * 1e3);
                std::hint::black_box(&dest);
            }
        }
        for (i, &(label, _)) in engines.iter().enumerate() {
            let ms = best[i];
            println!("{:>22} n={n:>10}: {label:>9} {ms:10.3} ms", "bign scatter");
            rows.push(BignRow {
                name: "scatter",
                n,
                engine: label,
                ms,
                work: all_stats[i].work,
                rounds: all_stats[i].rounds,
            });
        }
    }

    // -- csr_build + decompose share the chunked function workload. --
    let g = bign_function(n);
    let f = g.table();

    // CSR of the buddy-edge incidence stream, exactly the decompose-gating
    // build (at this key count the builder is in the bucketed fallback —
    // `direct_build_max_keys` caps the counting array far below n — and the
    // scatter engine drives the value-placement passes).
    {
        let run = |ctx: &Ctx, offsets: &mut Vec<u32>, items: &mut Vec<u32>| {
            sfcp_parprim::csr::build_csr_into(
                ctx,
                n,
                2 * n,
                |s| {
                    let x = s / 2;
                    if f[x] as usize == x {
                        None
                    } else if s % 2 == 0 {
                        Some((x as u32, (x as u32) * 2 + 1))
                    } else {
                        Some((f[x], (x as u32) * 2))
                    }
                },
                offsets,
                items,
            );
        };
        let stats = |engine: ScatterEngine| {
            let ctx = Ctx::parallel().with_scatter_engine(engine);
            let (mut offsets, mut items) = (Vec::new(), Vec::new());
            run(&ctx, &mut offsets, &mut items);
            ctx.stats()
        };
        let all_stats: Vec<Stats> = engines.iter().map(|&(_, e)| stats(e)).collect();
        assert!(
            all_stats.windows(2).all(|w| w[0] == w[1]),
            "csr_build: engines must charge identical work/depth at n={n}"
        );
        let mut ctx = Ctx::untracked(Mode::Parallel);
        let (mut offsets, mut items) = (Vec::new(), Vec::new());
        let mut best = [f64::INFINITY; 3];
        for &(_, e) in &engines {
            ctx = ctx.with_scatter_engine(e);
            run(&ctx, &mut offsets, &mut items); // warm pools + pages
        }
        for rep in 0..reps_fast {
            for k in 0..engines.len() {
                let i = (rep + k) % engines.len();
                ctx = ctx.with_scatter_engine(engines[i].1);
                let t = Instant::now();
                run(&ctx, &mut offsets, &mut items);
                best[i] = best[i].min(t.elapsed().as_secs_f64() * 1e3);
                std::hint::black_box(offsets.len() + items.len());
            }
        }
        for (i, &(label, _)) in engines.iter().enumerate() {
            let ms = best[i];
            println!(
                "{:>22} n={n:>10}: {label:>9} {ms:10.3} ms",
                "bign csr_build"
            );
            rows.push(BignRow {
                name: "csr_build",
                n,
                engine: label,
                ms,
                work: all_stats[i].work,
                rounds: all_stats[i].rounds,
            });
        }
    }

    // -- decompose: the whole pipeline on warm pools per engine. --
    {
        // One tracked pass (under Auto) labels all three rows; cross-engine
        // charge equality at every size is pinned by charge_determinism.
        let charges = {
            let ctx = Ctx::parallel().with_scatter_engine(ScatterEngine::Auto);
            let d = sfcp_forest::decompose(&ctx, &g, sfcp_forest::cycles::CycleMethod::Euler);
            std::hint::black_box(d.num_cycles());
            ctx.stats()
        };
        let mut ctx = Ctx::untracked(Mode::Parallel);
        let mut best = [f64::INFINITY; 3];
        for &(_, e) in &engines {
            ctx = ctx.with_scatter_engine(e);
            let d = sfcp_forest::decompose(&ctx, &g, sfcp_forest::cycles::CycleMethod::Euler);
            std::hint::black_box(d.num_cycles()); // warm pools + pages
        }
        for rep in 0..reps_slow {
            for k in 0..engines.len() {
                let i = (rep + k) % engines.len();
                ctx = ctx.with_scatter_engine(engines[i].1);
                let t = Instant::now();
                let d = sfcp_forest::decompose(&ctx, &g, sfcp_forest::cycles::CycleMethod::Euler);
                best[i] = best[i].min(t.elapsed().as_secs_f64() * 1e3);
                std::hint::black_box(d.num_cycles());
            }
        }
        for (i, &(label, _)) in engines.iter().enumerate() {
            let ms = best[i];
            println!(
                "{:>22} n={n:>10}: {label:>9} {ms:10.3} ms",
                "bign decompose"
            );
            rows.push(BignRow {
                name: "decompose",
                n,
                engine: label,
                ms,
                work: charges.work,
                rounds: charges.rounds,
            });
        }
    }

    // The selector gate: Auto within 10% of the best explicit engine on
    // every routine that dispatches on the selection.  (Auto *is* one of
    // the explicit engines after resolution, so this bounds pure selection
    // overhead plus noise.)  `csr_build` only consults the scatter engine
    // in its direct-build regime; past `direct_build_max_keys` the
    // bucketed fallback runs identical code under all three selections and
    // the ratio would gate nothing but environment noise, so it is skipped
    // (the charge-equality assert above still covers it).
    let csr_dispatches =
        n <= sfcp_parprim::csr::direct_build_max_keys(&Ctx::untracked(Mode::Parallel));
    for name in ["scatter", "csr_build", "decompose"] {
        let of = |engine: &str| {
            rows.iter()
                .find(|r| r.name == name && r.engine == engine)
                .map(|r| r.ms)
                .expect("row present")
        };
        let (auto, best_explicit) = (of("auto"), of("direct").min(of("combining")));
        let ratio = auto / best_explicit;
        if name == "csr_build" && !csr_dispatches {
            println!(
                "bign gate: csr_build skipped — {n} keys is past direct_build_max_keys, \
                 the bucketed fallback never consults the scatter engine \
                 (auto {auto:.3} ms vs best explicit {best_explicit:.3} ms is noise only)"
            );
            continue;
        }
        println!("bign gate: {name} auto {auto:.3} ms vs best explicit {best_explicit:.3} ms ({ratio:.3}x)");
        assert!(
            ratio < 1.10,
            "{name}: Auto selection is {ratio:.2}x the best explicit engine at n={n} \
             (must stay within 10%)"
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"sfcp_parprim_out_of_cache\",\n");
    json.push_str(&format!(
        "  \"threads\": {},\n",
        std::thread::available_parallelism().map_or(0, usize::from)
    ));
    json.push_str(&format!("  \"llc_bytes\": {llc},\n"));
    json.push_str("  \"results\": [\n");
    let body: Vec<String> = rows.iter().map(BignRow::json).collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(out_path, &json).expect("failed to write bign benchmark json");
    println!("wrote {out_path}");
}

/// Extract `field` from the row of `json` whose name/n match, e.g.
/// `{"name": "decompose", "n": 100000, ..., "packed_ms": 12.3, ...}`.
/// The file is this binary's own output format, so a string scan suffices.
fn committed_field(json: &str, name: &str, n: usize, field: &str) -> Option<f64> {
    let row_key = format!("\"name\": \"{name}\", \"n\": {n},");
    let row = json.lines().find(|l| l.contains(&row_key))?;
    let tail = row.split(&format!("\"{field}\": ")).nth(1)?;
    tail.split([',', '}']).next()?.trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut committed_path = "BENCH_parprim.json".to_string();
    let mut smoke = false;
    let mut bign = false;
    let mut bign_n: usize = 100_000_000;
    let mut trace_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--bign" => bign = true,
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).expect("--trace needs a path").clone());
            }
            "--bign-n" => {
                i += 1;
                bign_n = args
                    .get(i)
                    .expect("--bign-n needs a size")
                    .parse()
                    .expect("--bign-n must be an integer");
            }
            "--committed" => {
                i += 1;
                committed_path = args.get(i).expect("--committed needs a path").clone();
            }
            other => out_path = Some(other.to_string()),
        }
        i += 1;
    }
    if bign {
        assert!(!smoke, "--bign and --smoke are separate tiers");
        assert!(
            trace_path.is_none(),
            "--trace is a main-tier flag (the bign tier has no traced pass)"
        );
        let out = out_path.unwrap_or_else(|| "BENCH_parprim_bign.json".to_string());
        run_bign(&out, bign_n);
        return;
    }
    // A smoke run must never clobber the committed trajectory it is about to
    // read back, so its default output goes elsewhere.
    let out_path = out_path.unwrap_or_else(|| {
        if smoke {
            "bench_smoke.json".to_string()
        } else {
            "BENCH_parprim.json".to_string()
        }
    });
    assert!(
        !smoke || out_path != committed_path,
        "--smoke would overwrite the committed baseline {committed_path} before comparing \
         against it; pass a different output path"
    );
    let sizes: &[usize] = if smoke {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };
    let mut rows: Vec<Row> = Vec::new();
    let mut service_rows: Vec<ServiceRow> = Vec::new();
    // Median paired checked/warm ratio at the largest size (overwritten per
    // tier; sizes ascend, so the last assignment is the largest n).
    let mut checked_paired_ratio = f64::NAN;

    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ n as u64);
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..2 * n as u64)).collect();
        let pairs: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0..n as u64), rng.gen_range(0..n as u64)))
            .collect();
        let reps = if n >= 1_000_000 { 3 } else { 5 };

        rows.push(measure("dense_ranks_by_sort", n, reps, |ctx: &Ctx| {
            let (ranks, _) = sfcp_parprim::rank::dense_ranks_by_sort(ctx, &keys);
            std::hint::black_box(&ranks);
        }));
        rows.push(measure("radix_sort_pairs", n, reps, |ctx: &Ctx| {
            let order = sfcp_parprim::intsort::radix_sort_pairs(ctx, &pairs);
            std::hint::black_box(&order);
        }));
        let g = sfcp_forest::generators::random_function(n, 0xDECADE);
        // The buddy-edge incidence CSR of `g` — the exact build that gates
        // `cycle_nodes_euler` — through the parallel CSR subsystem (packed)
        // vs the sequential count/prefix/scatter baseline (permutation).
        let f = g.table();
        // `build_csr_into` with retained output buffers — the pooled hot
        // path the call sites use — and extra reps: the row is cheap enough
        // that best-of-few is dominated by jitter otherwise.  The stream
        // mirrors `cycle_nodes_euler`'s exactly, including the self-loop
        // filter (the `None`-slot path).
        let mut offsets = Vec::new();
        let mut items = Vec::new();
        rows.push(measure("csr_build", n, 3 * reps, move |ctx: &Ctx| {
            sfcp_parprim::csr::build_csr_into(
                ctx,
                n,
                2 * n,
                |s| {
                    let x = s / 2;
                    if f[x] as usize == x {
                        None // self-loop edges are excluded, as in cycle_nodes_euler
                    } else if s % 2 == 0 {
                        Some((x as u32, (x as u32) * 2 + 1))
                    } else {
                        Some((f[x], (x as u32) * 2))
                    }
                },
                &mut offsets,
                &mut items,
            );
            std::hint::black_box(offsets.len() + items.len());
        }));
        // The list-ranking engine on a multi-list successor array shaped
        // like the fused Euler domain: one shuffled permutation split into
        // a handful of independent chains.
        let next: Vec<u32> = {
            let mut perm: Vec<u32> = (0..n as u32).collect();
            perm.shuffle(&mut rng);
            let mut next: Vec<u32> = (0..n as u32).collect();
            for part in perm.chunks(n.div_ceil(8)) {
                for w in part.windows(2) {
                    next[w[0] as usize] = w[1];
                }
            }
            next
        };
        rows.push(measure("list_rank", n, reps, |ctx: &Ctx| {
            let ranks = sfcp_parprim::listrank::list_rank(ctx, &next);
            std::hint::black_box(ranks.len());
        }));
        // Euler-tour construction over a random relabeled forest: tour
        // successors, the 2n-arc ranking, and the position finish.
        let forest = {
            let mut parent: Vec<u32> = (0..n as u32).collect();
            for (i, p) in parent.iter_mut().enumerate().skip(8) {
                *p = rng.gen_range(0..i) as u32;
            }
            let mut relabel: Vec<u32> = (0..n as u32).collect();
            relabel.shuffle(&mut rng);
            let mut shuffled = vec![0u32; n];
            for i in 0..n {
                shuffled[relabel[i] as usize] = relabel[parent[i] as usize];
            }
            sfcp_parprim::euler::RootedForest::from_parents(
                &Ctx::untracked(Mode::Parallel),
                shuffled,
            )
        };
        rows.push(measure("euler_build", n, reps, |ctx: &Ctx| {
            let tour = sfcp_parprim::euler::EulerTour::build(ctx, &forest);
            std::hint::black_box(tour.len());
        }));
        // The scatter subsystem on a shuffled permutation store.
        let scatter_idx: Vec<u32> = {
            let mut idx: Vec<u32> = (0..n as u32).collect();
            idx.shuffle(&mut rng);
            idx
        };
        rows.push(measure_scatter(n, 2 * reps, &scatter_idx));
        rows.push(measure("decompose", n, reps, |ctx: &Ctx| {
            let d = sfcp_forest::decompose(ctx, &g, sfcp_forest::cycles::CycleMethod::Euler);
            std::hint::black_box(d.num_cycles());
        }));
        // The unchecked warm row and the validated (`try_`) row, timed
        // interleaved on the same pre-warmed context: the checked path's
        // whole point is to be free (size envelope check + catch_unwind
        // around the identical pipeline), and the gate below holds it
        // within noise of `decompose_warm` — which requires correlated
        // sampling, not two independent best-of-k loops.
        let (warm_row, checked_row, pair_ratio) = measure_warm_pair(
            "decompose_warm",
            "decompose_checked",
            n,
            2 * reps,
            |ctx: &Ctx| {
                let d = sfcp_forest::decompose(ctx, &g, sfcp_forest::cycles::CycleMethod::Euler);
                std::hint::black_box(d.num_cycles());
            },
            |ctx: &Ctx| {
                let d =
                    sfcp_forest::try_decompose(ctx, &g, sfcp_forest::cycles::CycleMethod::Euler)
                        .expect("a valid instance must decompose");
                std::hint::black_box(d.num_cycles());
            },
        );
        rows.push(warm_row);
        rows.push(checked_row);
        checked_paired_ratio = pair_ratio;
        let inst = Instance::random(n, 8, 0xC0FFEE);
        rows.push(measure("coarsest_parallel", n, reps, |ctx: &Ctx| {
            let q = coarsest_partition(ctx, &inst, Algorithm::Parallel);
            std::hint::black_box(q.num_blocks());
        }));
        // The service latency pair at the same size: warm persistent worker
        // vs the cold rebuild-per-request baseline, over loopback TCP.
        let service_reqs = if n >= 1_000_000 { 12 } else { 40 };
        service_rows.push(measure_service_latency(
            "service_warm",
            n,
            service_reqs,
            false,
        ));
        service_rows.push(measure_service_latency(
            "service_cold",
            n,
            service_reqs,
            true,
        ));
    }

    // The service throughput tier: fixed work (128 partition requests at
    // n = 2048) through frames of 1, 8 and 64 members.
    for batch in [1, 8, 64] {
        service_rows.push(measure_service_batch(2048, batch, 128));
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"sfcp_parprim_sort_rank_engine\",\n");
    // Schema 2: every result row carries a "trace" span/decision summary
    // (see `Row::trace`).  Bumped from the unversioned (implicitly 1)
    // schema; `bench-engines` lint enforces the field's presence at this
    // version.
    json.push_str("  \"schema\": 2,\n");
    json.push_str(&format!(
        "  \"threads\": {},\n",
        std::thread::available_parallelism().map_or(0, usize::from)
    ));
    // Historical header kept for old tooling; rows now carry their own
    // (authoritative) per-row "engines" labels — see `Row::engines`.
    json.push_str("  \"engines\": [\"packed\", \"permutation\"],\n");
    json.push_str("  \"results\": [\n");
    let body: Vec<String> = rows
        .iter()
        .map(Row::json)
        .chain(service_rows.iter().map(ServiceRow::json))
        .collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("failed to write benchmark json");
    println!("wrote {out_path}");

    // `--trace <path>`: one warm traced decompose at the largest measured
    // size under the default engines, exported as a Chrome/Perfetto trace
    // (load it at ui.perfetto.dev or chrome://tracing).  Runs outside the
    // timed windows above, so it cannot perturb the trajectory numbers.
    if let Some(path) = &trace_path {
        let n = *sizes.last().expect("at least one size");
        let g = sfcp_forest::generators::random_function(n, 0xDECADE);
        let ctx = Ctx::untracked(Mode::Parallel)
            .with_sort_engine(DEFAULT_ENGINES.sort)
            .with_rank_engine(DEFAULT_ENGINES.rank);
        let d = sfcp_forest::decompose(&ctx, &g, sfcp_forest::cycles::CycleMethod::Euler);
        std::hint::black_box(d.num_cycles()); // warm the pools, untraced
        ctx.trace().enable();
        let d = sfcp_forest::decompose(&ctx, &g, sfcp_forest::cycles::CycleMethod::Euler);
        std::hint::black_box(d.num_cycles());
        std::fs::write(path, ctx.trace().snapshot().to_chrome_json())
            .expect("failed to write trace json");
        println!("wrote {path} (chrome://tracing / ui.perfetto.dev)");
    }

    // The acceptance gate for the packed engine: end-to-end coarsest_parallel
    // at the largest size must not be slower than the permutation baseline.
    // Enforced (with slack for noisy shared runners): a genuine regression
    // fails this binary and therefore the CI bench-smoke step.
    let end_to_end = rows
        .iter()
        .filter(|r| r.name == "coarsest_parallel")
        .max_by_key(|r| r.n)
        .expect("end-to-end row present");
    let speedup = end_to_end.permutation_ms / end_to_end.packed_ms;
    println!(
        "end-to-end n={}: packed is {speedup:.2}x the baseline",
        end_to_end.n
    );
    assert!(
        speedup > 0.9,
        "perf regression: packed engine is {speedup:.2}x the permutation baseline \
         end-to-end (must stay >= ~1.0; 0.9 allows for runner noise)"
    );

    // The validated entry point must be free: at the largest size, the
    // `try_decompose` row (size check + catch_unwind around the identical
    // pipeline) stays within noise of the unchecked warm row.  The gated
    // statistic is the **median paired ratio** from the order-alternating
    // interleaved reps, not the ratio of the two best-of-k columns: the
    // paired median is immune both to the fixed-order cache bias (each
    // member leads half the reps) and to the two minima landing in
    // different scheduler windows.  The absolute floor covers timer
    // granularity on fast runs.
    let largest = rows.iter().map(|r| r.n).max().unwrap();
    let warm = rows
        .iter()
        .find(|r| r.name == "decompose_warm" && r.n == largest)
        .expect("decompose_warm row present");
    let checked = rows
        .iter()
        .find(|r| r.name == "decompose_checked" && r.n == largest)
        .expect("decompose_checked row present");
    let overhead = checked_paired_ratio;
    println!(
        "checked-path overhead n={largest}: median paired {overhead:.3}x \
         (best-of-k {:.3} ms vs {:.3} ms)",
        checked.packed_ms, warm.packed_ms
    );
    assert!(
        overhead < 1.10 || checked.packed_ms - warm.packed_ms < 0.5,
        "the validated decompose path costs {overhead:.2}x the unchecked warm path \
         (median paired ratio; must stay within noise — the try_ surface is a size \
         check + catch_unwind)"
    );

    // The serving-layer gate: at the largest size, the warm worker's p50
    // must beat the cold rebuild-per-request baseline by at least the
    // workspace pool warm-up margin.  The committed trajectory measures the
    // margin at ~1.19x (n = 1e6) and ~1.33x (n = 1e5); 1.10 leaves noise
    // headroom while still failing if warm serving ever stops paying.
    let service_at = |name: &str, filt: &dyn Fn(&&ServiceRow) -> bool| {
        service_rows
            .iter()
            .find(|r| r.name == name && filt(r))
            .unwrap_or_else(|| panic!("{name} row present"))
    };
    let warm_p50 = service_at("service_warm", &|r| r.n == largest).p50_ms;
    let cold_p50 = service_at("service_cold", &|r| r.n == largest).p50_ms;
    let margin = cold_p50 / warm_p50;
    println!(
        "service warm-vs-cold n={largest}: warm p50 {warm_p50:.3} ms vs cold \
         {cold_p50:.3} ms ({margin:.2}x)"
    );
    assert!(
        margin >= 1.10,
        "warm service p50 is only {margin:.2}x faster than the cold rebuild-per-request \
         baseline at n={largest} (must be >= 1.10 — the persistent-worker margin is the \
         serving layer's reason to exist)"
    );

    // The batching gate: pushing the same 128 requests through 64-member
    // frames must out-throughput the one-request-per-round-trip drain
    // (frame fusion plus round-trip amortization; small slack for runner
    // noise on the millisecond-scale frames).
    let rps_solo = service_at("service_batch", &|r| r.batch == 1).rps;
    let rps_batched = service_at("service_batch", &|r| r.batch == 64).rps;
    println!(
        "service batching: {rps_batched:.1} req/s at batch 64 vs {rps_solo:.1} req/s unbatched \
         ({:.2}x)",
        rps_batched / rps_solo
    );
    assert!(
        rps_batched > rps_solo * 0.95,
        "batched serving ({rps_batched:.1} req/s at 64/frame) fails to out-throughput the \
         unbatched drain ({rps_solo:.1} req/s) — batching must never cost throughput"
    );

    // Smoke gate: the decompose, csr_build, list_rank, and euler_build
    // entries must not regress more than 10% against the committed
    // trajectory (same n as measured in this run).  The raw wall-clock
    // ratio is normalized by the radix_sort_pairs ratio of the same two
    // files: that row touches neither the decomposition code, the CSR
    // builder, nor the list-ranking engines, so a uniformly slower or
    // faster machine cancels out and the gate tracks genuine regressions
    // rather than runner hardware.
    if smoke {
        let committed = std::fs::read_to_string(&committed_path)
            .unwrap_or_else(|e| panic!("cannot read committed bench {committed_path}: {e}"));
        let calib = rows
            .iter()
            .find(|r| r.name == "radix_sort_pairs")
            .expect("calibration row present");
        let committed_calib_ms =
            committed_field(&committed, "radix_sort_pairs", calib.n, "packed_ms").unwrap_or_else(
                || {
                    panic!(
                        "no radix_sort_pairs n={} entry in {committed_path}",
                        calib.n
                    )
                },
            );
        let machine = calib.packed_ms / committed_calib_ms;
        for gated in [
            "decompose",
            "decompose_warm",
            "decompose_checked",
            "csr_build",
            "list_rank",
            "euler_build",
            "scatter",
        ] {
            let fresh = rows
                .iter()
                .find(|r| r.name == gated)
                .unwrap_or_else(|| panic!("{gated} row present"));
            let committed_ms = committed_field(&committed, gated, fresh.n, "packed_ms")
                .unwrap_or_else(|| panic!("no {gated} n={} entry in {committed_path}", fresh.n));
            let raw = fresh.packed_ms / committed_ms;
            let ratio = raw / machine;
            println!(
                "smoke: {gated} n={} is {:.3} ms vs committed {:.3} ms \
                 (raw {raw:.2}x, machine-normalized {ratio:.2}x)",
                fresh.n, fresh.packed_ms, committed_ms
            );
            // Relative gate with a small absolute floor covering timer and
            // scheduler granularity on the ~1 ms csr_build row (a quarter
            // millisecond of excess is never treated as a regression; real
            // regressions of the ~20 ms decompose row clear it by an order
            // of magnitude).
            let excess_ms = fresh.packed_ms - committed_ms * machine;
            assert!(
                ratio < 1.10 || excess_ms < 0.25,
                "{gated} regressed {ratio:.2}x machine-normalized (> 1.10, +{excess_ms:.3} ms) \
                 against the committed {committed_path} entry ({:.3} ms vs {committed_ms:.3} ms, \
                 calibration {machine:.2}x)",
                fresh.packed_ms
            );
        }
        // The serving path is gated the same way on its warm p50: a
        // regression here that leaves the library rows green means the
        // service layer itself (framing, dispatch, context reuse) got
        // slower.  The floor is wider than the library rows' because one
        // p50 over 40 loopback round trips carries more scheduler noise
        // than a best-of-k minimum.
        let fresh = service_rows
            .iter()
            .find(|r| r.name == "service_warm")
            .expect("service_warm row present");
        let committed_ms = committed_field(&committed, "service_warm", fresh.n, "p50_ms")
            .unwrap_or_else(|| panic!("no service_warm n={} entry in {committed_path}", fresh.n));
        let raw = fresh.p50_ms / committed_ms;
        let ratio = raw / machine;
        let excess_ms = fresh.p50_ms - committed_ms * machine;
        println!(
            "smoke: service_warm n={} p50 is {:.3} ms vs committed {committed_ms:.3} ms \
             (raw {raw:.2}x, machine-normalized {ratio:.2}x)",
            fresh.n, fresh.p50_ms
        );
        assert!(
            ratio < 1.15 || excess_ms < 1.0,
            "service_warm p50 regressed {ratio:.2}x machine-normalized (> 1.15, \
             +{excess_ms:.3} ms) against the committed {committed_path} entry \
             ({:.3} ms vs {committed_ms:.3} ms, calibration {machine:.2}x)",
            fresh.p50_ms
        );
    }
}

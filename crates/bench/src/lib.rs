//! Shared helpers for the benchmark harness (workload construction, table
//! formatting).  The actual experiments live in `benches/` (criterion) and in
//! the `complexity_table` / `speedup_table` binaries under `src/bin/`.

pub mod tables;
pub mod workloads;

//! Shared helpers for the benchmark harness (workload construction, table
//! formatting).  The actual experiments live in `benches/` (criterion) and in
//! the `complexity_table` / `speedup_table` binaries under `src/bin/`.

#![forbid(unsafe_code)]

pub mod tables;
pub mod workloads;

//! Experiment E7 (table T7): ablation of the residual tree-labelling step —
//! doubling over root paths (O(log n) depth) vs level-by-level (O(n) work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfcp::parallel::{coarsest_parallel_with, ParallelConfig, TreeLabelMethod};
use sfcp_bench::workloads::{deep_instance, random_instance};
use sfcp_pram::{Ctx, Mode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_labeling");
    for (name, instance) in [
        ("deep", deep_instance(1 << 16)),
        ("random", random_instance(1 << 16)),
    ] {
        for method in [TreeLabelMethod::Doubling, TreeLabelMethod::Levelwise] {
            let config = ParallelConfig {
                tree_method: method,
                ..ParallelConfig::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("{method:?}"), name),
                &instance,
                |b, inst| {
                    b.iter(|| {
                        let ctx = Ctx::untracked(Mode::Parallel);
                        coarsest_parallel_with(&ctx, inst, config)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench
}
criterion_main!(benches);

//! Experiment E11 (table T10): the parallel primitives the algorithm is built
//! from — prefix sums, integer sorting vs comparison sorting, list ranking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfcp_pram::{Ctx, Mode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    for &n in &[1usize << 16, 1 << 19] {
        let values: Vec<u64> = (0..n as u64)
            .map(|i| (i * 2_654_435_761) % 1_000_003)
            .collect();
        group.bench_with_input(BenchmarkId::new("prefix_sums", n), &values, |b, v| {
            b.iter(|| {
                let ctx = Ctx::untracked(Mode::Parallel);
                sfcp_parprim::scan::inclusive_scan(&ctx, v)
            })
        });
        group.bench_with_input(BenchmarkId::new("radix_sort", n), &values, |b, v| {
            b.iter(|| {
                let ctx = Ctx::untracked(Mode::Parallel);
                sfcp_parprim::intsort::radix_sort_u64(&ctx, v)
            })
        });
        group.bench_with_input(BenchmarkId::new("merge_sort", n), &values, |b, v| {
            b.iter(|| {
                let ctx = Ctx::untracked(Mode::Parallel);
                let mut data = v.clone();
                sfcp_parprim::merge::parallel_merge_sort(&ctx, &mut data);
                data
            })
        });
        let mut next: Vec<u32> = (1..=n as u32).collect();
        next[n - 1] = (n - 1) as u32;
        group.bench_with_input(
            BenchmarkId::new("list_rank_ruling_set", n),
            &next,
            |b, v| {
                b.iter(|| {
                    let ctx = Ctx::untracked(Mode::Parallel);
                    sfcp_parprim::listrank::list_rank_ruling_set(&ctx, v)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("list_rank_wyllie", n), &next, |b, v| {
            b.iter(|| {
                let ctx = Ctx::untracked(Mode::Parallel);
                sfcp_parprim::listrank::list_rank_wyllie(&ctx, v)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench
}
criterion_main!(benches);

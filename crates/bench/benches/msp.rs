//! Experiment E4 (table T4): minimal starting point of a circular string —
//! Booth (sequential) vs the paper's simple and efficient algorithms vs rank
//! doubling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfcp_bench::workloads::random_string;
use sfcp_pram::{Ctx, Mode};
use sfcp_strings::msp::{minimal_starting_point, MspMethod};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("msp");
    for &n in &[1usize << 15, 1 << 18] {
        let s = random_string(n, 8);
        for method in [
            MspMethod::Booth,
            MspMethod::Simple,
            MspMethod::Doubling,
            MspMethod::Efficient,
        ] {
            group.bench_with_input(BenchmarkId::new(format!("{method:?}"), n), &s, |b, s| {
                b.iter(|| {
                    let ctx = Ctx::untracked(Mode::Parallel);
                    minimal_starting_point(&ctx, s, method)
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench
}
criterion_main!(benches);

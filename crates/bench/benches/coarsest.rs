//! Experiment E1/E2 (tables T1/T2): the full coarsest partition problem on
//! random functional graphs — the paper's algorithm vs all baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfcp::{coarsest_partition, Algorithm, ALL_ALGORITHMS};
use sfcp_bench::workloads::random_instance;
use sfcp_pram::{Ctx, Mode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("coarsest_random");
    for &n in &[1usize << 14, 1 << 17] {
        let instance = random_instance(n);
        for algorithm in ALL_ALGORITHMS {
            let slow_sequential = algorithm == Algorithm::Naive || algorithm == Algorithm::Hopcroft;
            if slow_sequential && n > (1 << 14) {
                continue; // the quadratic oracle / splitter baseline is too slow here
            }
            group.bench_with_input(
                BenchmarkId::new(format!("{algorithm:?}"), n),
                &instance,
                |b, inst| {
                    b.iter(|| {
                        let ctx = Ctx::untracked(Mode::Parallel);
                        coarsest_partition(&ctx, inst, algorithm)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench
}
criterion_main!(benches);

//! Experiment E3 (table T3): cycles-only inputs — the cycle labelling half of
//! the algorithm (Section 3) dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfcp::{coarsest_partition, Algorithm};
use sfcp_bench::workloads::cycles_instance;
use sfcp_pram::{Ctx, Mode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("coarsest_cycles_only");
    for &n in &[1usize << 14, 1 << 17] {
        let instance = cycles_instance(n);
        for algorithm in [
            Algorithm::SequentialLinear,
            Algorithm::Doubling,
            Algorithm::Parallel,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{algorithm:?}"), n),
                &instance,
                |b, inst| {
                    b.iter(|| {
                        let ctx = Ctx::untracked(Mode::Parallel);
                        coarsest_partition(&ctx, inst, algorithm)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench
}
criterion_main!(benches);

//! Experiment E6 (table T6): grouping cycles into equivalence classes —
//! the paper's *Algorithm partition* (CRCW doubling) vs string sorting vs
//! hashing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfcp::cycle_equivalence::{group_cycles, GroupingMethod};
use sfcp_bench::workloads::canonical_cycle_strings;
use sfcp_pram::{Ctx, Mode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_grouping");
    for &(k, len) in &[(1024usize, 64usize), (4096, 64), (1024, 512)] {
        let strings = canonical_cycle_strings(k, len);
        for method in [
            GroupingMethod::Partition,
            GroupingMethod::StringSort,
            GroupingMethod::Hash,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{method:?}"), format!("{k}x{len}")),
                &strings,
                |b, s| {
                    b.iter(|| {
                        let ctx = Ctx::untracked(Mode::Parallel);
                        group_cycles(&ctx, s, method)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench
}
criterion_main!(benches);

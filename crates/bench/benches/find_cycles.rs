//! Experiment E8 (table T8): cycle-node detection — sequential peeling vs
//! pointer jumping vs the paper's Euler-tour buddy-edge method (Section 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfcp_forest::cycles::{cycle_nodes, CycleMethod};
use sfcp_forest::generators::random_function;
use sfcp_pram::{Ctx, Mode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_cycles");
    for &n in &[1usize << 15, 1 << 18] {
        let g = random_function(n, 77);
        for method in [
            CycleMethod::Sequential,
            CycleMethod::Jump,
            CycleMethod::Euler,
        ] {
            group.bench_with_input(BenchmarkId::new(format!("{method:?}"), n), &g, |b, g| {
                b.iter(|| {
                    let ctx = Ctx::untracked(Mode::Parallel);
                    cycle_nodes(&ctx, g, method)
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench
}
criterion_main!(benches);

//! Experiment E5 (table T5): lexicographic sorting of variable-length strings
//! — the paper's pair-contraction algorithm vs a parallel comparison sort.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfcp_bench::workloads::string_list;
use sfcp_pram::{Ctx, Mode};
use sfcp_strings::string_sort::{sort_strings, StringSortMethod};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("string_sort");
    for &n in &[1usize << 15, 1 << 18] {
        let strings = string_list(n);
        for method in [StringSortMethod::Comparison, StringSortMethod::Contraction] {
            group.bench_with_input(
                BenchmarkId::new(format!("{method:?}"), n),
                &strings,
                |b, s| {
                    b.iter(|| {
                        let ctx = Ctx::untracked(Mode::Parallel);
                        sort_strings(&ctx, s, method)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench
}
criterion_main!(benches);

//! Marking the cycle nodes of a pseudo-forest — *Algorithm finding cycle
//! nodes* (Section 5) and two cross-checking alternatives.
//!
//! * [`cycle_nodes_seq`] — sequential baseline: repeatedly peel nodes of
//!   in-degree zero (Kahn-style); whatever survives lies on a cycle. `O(n)`.
//! * [`cycle_nodes_jump`] — pointer jumping: compute `f^(2^⌈log n⌉)` by
//!   repeated squaring; its image is exactly the set of cycle nodes.
//!   `O(n log n)` work, `O(log n)` depth.
//! * [`cycle_nodes_euler`] — the paper's method: add a *buddy* edge
//!   `(f(x), x)` for every edge `(x, f(x))`, build the Euler partition of the
//!   resulting undirected multigraph via the Tarjan–Vishkin successor
//!   function, and observe that each pseudo-tree yields exactly two Euler
//!   cycles with a tree edge and its buddy on the *same* cycle and a cycle
//!   edge and its buddy on *different* cycles (a unicyclic ribbon graph has
//!   exactly two faces, bridges border one face twice, cycle edges border
//!   both).  Near-linear work, `O(log n)` depth.

use crate::graph::FunctionalGraph;
use sfcp_parprim::jump::permutation_cycle_min_flagged_into;
use sfcp_parprim::listrank::{is_sampled_ruler, RULER_FLAG};
use sfcp_parprim::scatter::{combining_tasks, ScatterTiles};
use sfcp_pram::{Ctx, ScatterEngine};

/// Which cycle-node detection algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CycleMethod {
    /// Sequential in-degree peeling (baseline).
    Sequential,
    /// Pointer jumping / repeated squaring of `f`.
    Jump,
    /// The paper's Euler-tour buddy-edge method (Section 5).
    #[default]
    Euler,
}

/// Mark the nodes lying on cycles: `out[x] == true` iff `x` is a cycle node.
#[must_use]
pub fn cycle_nodes(ctx: &Ctx, g: &FunctionalGraph, method: CycleMethod) -> Vec<bool> {
    match method {
        CycleMethod::Sequential => cycle_nodes_seq(ctx, g),
        CycleMethod::Jump => cycle_nodes_jump(ctx, g),
        CycleMethod::Euler => cycle_nodes_euler(ctx, g),
    }
}

/// Sequential in-degree peeling.
#[must_use]
pub fn cycle_nodes_seq(ctx: &Ctx, g: &FunctionalGraph) -> Vec<bool> {
    let n = g.len();
    let mut indeg = g.in_degrees(ctx);
    let mut queue: Vec<u32> = (0..n as u32).filter(|&x| indeg[x as usize] == 0).collect();
    let mut removed = vec![false; n];
    while let Some(x) = queue.pop() {
        removed[x as usize] = true;
        let y = g.apply(x);
        indeg[y as usize] -= 1;
        if indeg[y as usize] == 0 {
            queue.push(y);
        }
    }
    ctx.charge_step(n as u64);
    removed.iter().map(|&r| !r).collect()
}

/// Pointer jumping: the image of `f^(2^⌈log₂ n⌉)` is the set of cycle nodes
/// (after `≥ n` steps every walk has entered its cycle, and every cycle node
/// is the landing point of the walk that starts `2^⌈log₂ n⌉` steps behind it
/// on the cycle).
#[must_use]
pub fn cycle_nodes_jump(ctx: &Ctx, g: &FunctionalGraph) -> Vec<bool> {
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    let ws = ctx.workspace();
    let mut power = ws.take_u32(n);
    power.copy_from_slice(g.table());
    let mut next_power = ws.take_u32(n);
    for _ in 0..sfcp_pram::ceil_log2(n).max(1) {
        {
            let power_ref = &power;
            ctx.par_update(&mut next_power, |x, p| {
                *p = power_ref[power_ref[x] as usize]
            });
        }
        std::mem::swap(&mut *power, &mut *next_power);
    }
    let mut on_cycle = vec![false; n];
    // Concurrent idempotent writes of `true` — common-CRCW style.
    let ptr = SendPtr(on_cycle.as_mut_ptr());
    ctx.par_for_idx(n, |x| {
        let p = ptr;
        // SAFETY: all writers write the same value to the cell.
        unsafe {
            *p.0.add(power[x] as usize) = true;
        }
    });
    on_cycle
}

/// The paper's Euler-tour buddy-edge method (Section 5).
#[must_use]
pub fn cycle_nodes_euler(ctx: &Ctx, g: &FunctionalGraph) -> Vec<bool> {
    let _span = ctx.span("cycle_nodes_euler");
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    let f = g.table();
    let ws = ctx.workspace();

    // Self-loops (fixed points of f) are cycles of length one; they would
    // degenerate in the multigraph construction, so mark them directly and
    // exclude their edges from the Euler machinery.
    let mut is_self_loop = ws.take_u8(n);
    ctx.par_update(&mut is_self_loop, |x, s| *s = u8::from(f[x] as usize == x));

    // Edge x is the undirected edge {x, f(x)} (skipped for self-loops).
    // Arc 2x is x → f(x) ("forward"), arc 2x+1 is f(x) → x (the "buddy").
    //
    // Build, for every vertex v, the circular list of its incident edge
    // endpoints.  Endpoint kinds: (edge x, tail) at vertex x — packed as
    // `2x + 1` — and (edge x, head) at vertex f(x) — packed as `2x`.
    // CSR by vertex via the parallel builder: stream slot 2x carries the
    // tail endpoint, slot 2x + 1 the head endpoint, reproducing the
    // rotation order of the former sequential cursor sweep (any rotation
    // system works — a unicyclic ribbon graph has two faces in every
    // embedding — but a deterministic one keeps runs reproducible).  The
    // builder charges its documented count/prefix/scatter model, one round
    // of `num_keys = n` operations more than the fused sequential build it
    // replaces charged (see DESIGN.md, "CSR construction").
    let mut start = ws.take_u32(0);
    let mut incident = ws.take_u32(0);
    {
        let is_self_loop = &is_self_loop;
        sfcp_parprim::csr::build_csr_into(
            ctx,
            n,
            2 * n,
            |s| {
                let x = s / 2;
                if is_self_loop[x] == 1 {
                    None
                } else if s % 2 == 0 {
                    Some((x as u32, (x as u32) * 2 + 1)) // tail endpoint at x
                } else {
                    Some((f[x], (x as u32) * 2)) // head endpoint at f(x)
                }
            },
            &mut start,
            &mut incident,
        );
    }

    // Arc numbering: arc_out of endpoint (e, tail at x)  = 2e   (x → f(x)),
    //                arc_out of endpoint (e, head at f(x)) = 2e+1 (f(x) → x).
    // The corresponding incoming arc at that endpoint is the other one.
    // Successor (face-tracing) permutation: the arc entering v along the
    // endpoint at position p continues with the outgoing arc of the endpoint
    // at position p+1 (cyclically) in v's incident list.
    // Unused arc slots (self-loop edges) stay as self-loops of the
    // permutation and are ignored afterwards.
    //
    // The ruler flags of the cycle-min contraction ride along in bit 31 of
    // every word as it is written (fixed points and the deterministic hash
    // sample — the `has_pred` fold of DESIGN.md "Bucketed scatters"), so
    // `permutation_cycle_min_flagged_into` skips its validation and
    // sampling pre-passes entirely, charging them without executing.  Arc
    // ids at or above 2^31 cannot carry the flag bit — graphs that large
    // fall back to the unflagged construction and the untrusted cycle-min
    // entry, exactly the pre-fold pipeline.
    let num_arcs = 2 * n;
    let flagging = num_arcs < (1 << 31);
    let id_flag = if flagging { RULER_FLAG } else { 0 };
    let mut succ = ws.take_u32(num_arcs);
    for (a, s) in succ.iter_mut().enumerate() {
        *s = a as u32 | id_flag; // identity = fixed point = ruler
    }
    {
        // Per-vertex emission of the incoming-arc → outgoing-arc pairs; the
        // random stores go through the scatter engine on the context.
        fn emit_vertex<W: FnMut(usize, u32)>(
            start: &[u32],
            incident: &[u32],
            num_arcs: usize,
            flagging: bool,
            v: usize,
            write: &mut W,
        ) {
            let s = start[v] as usize;
            let e = start[v + 1] as usize;
            if e == s {
                return;
            }
            for idx in s..e {
                let endpoint = incident[idx];
                let edge = endpoint >> 1;
                let is_tail = endpoint & 1 == 1;
                // Incoming arc at this endpoint: the arc pointing *to* v along
                // `edge`.  If v is the tail (v == x) the incoming arc is the
                // buddy 2e+1 (f(x) → x); if v is the head it is 2e (x → f(x)).
                let in_arc = if is_tail { 2 * edge + 1 } else { 2 * edge };
                // Next endpoint in v's rotation.
                let next_idx = if idx + 1 == e { s } else { idx + 1 };
                let next_endpoint = incident[next_idx];
                let next_edge = next_endpoint >> 1;
                let next_is_tail = next_endpoint & 1 == 1;
                // Outgoing arc of the next endpoint: the arc leaving v.
                let out_arc = if next_is_tail {
                    2 * next_edge
                } else {
                    2 * next_edge + 1
                };
                let flag = u32::from(flagging && is_sampled_ruler(in_arc as usize, num_arcs));
                write(in_arc as usize, out_arc | (flag << 31));
            }
        }
        let succ_ptr = SendPtr(succ.as_mut_ptr());
        match ctx.resolve_scatter("cycle_succ_scatter", num_arcs * std::mem::size_of::<u32>()) {
            ScatterEngine::Direct => {
                let (start, incident) = (&start, &incident);
                ctx.par_for_idx(n, |v| {
                    let p = succ_ptr;
                    emit_vertex(
                        start,
                        incident,
                        num_arcs,
                        flagging,
                        v,
                        // SAFETY: each incoming arc is written exactly once
                        // (it has a unique endpoint position).
                        &mut |slot, val| unsafe {
                            *p.0.add(slot) = val;
                        },
                    );
                });
            }
            ScatterEngine::Combining => {
                ctx.charge_step(n as u64);
                let num_tasks = combining_tasks(n);
                let block = n.div_ceil(num_tasks);
                let tiles = ScatterTiles::new(ctx, num_arcs, num_tasks);
                let (start, incident) = (&start, &incident);
                sfcp_parprim::for_each_block(ctx, num_tasks, |t| {
                    let p = succ_ptr;
                    let mut sink = tiles.sink(t, p.0);
                    for v in t * block..((t + 1) * block).min(n) {
                        emit_vertex(start, incident, num_arcs, flagging, v, &mut |slot, val| {
                            sink.push(slot, val);
                        });
                    }
                    sink.flush();
                });
            }
            ScatterEngine::Auto => unreachable!("Auto resolves to an explicit engine"),
        }
        ctx.charge_work(2 * n as u64);
    }

    // Faces = cycles of the successor permutation (a genuine permutation by
    // construction — the trusted flagged entry point charges the validation
    // of the untrusted one without executing it).
    let mut face = ws.take_u32(0);
    if flagging {
        permutation_cycle_min_flagged_into(ctx, &succ, &mut face);
    } else {
        sfcp_parprim::jump::permutation_cycle_min_into(ctx, &succ, &mut face);
    }

    // An edge lies on the graph cycle iff its two arcs are on different faces;
    // its tail endpoint x is then a cycle node.  Self-loops are cycle nodes.
    let (is_self_loop, face) = (&is_self_loop, &face);
    ctx.par_map_idx(n, |x| {
        if is_self_loop[x] == 1 {
            true
        } else {
            face[2 * x] != face[2 * x + 1]
        }
    })
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` only smuggles a raw base pointer into parallel tasks
// whose writes target disjoint indices; every dereference site carries its
// own SAFETY argument for that disjointness, and the pointee buffer is
// borrowed for the whole parallel region, so it outlives every task.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` across tasks only copies the pointer value —
// no shared-reference method dereferences it, so aliased access to the
// pointee can never originate from the `Sync` impl itself.
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    fn all_methods() -> [CycleMethod; 3] {
        [
            CycleMethod::Sequential,
            CycleMethod::Jump,
            CycleMethod::Euler,
        ]
    }

    fn check_agreement(g: &FunctionalGraph) -> Vec<bool> {
        let ctx = Ctx::parallel().with_grain(16);
        let expected = cycle_nodes_seq(&ctx, g);
        for m in all_methods() {
            assert_eq!(
                cycle_nodes(&ctx, g, m),
                expected,
                "{m:?} on f = {:?}",
                g.table()
            );
        }
        expected
    }

    #[test]
    fn empty_and_tiny() {
        let ctx = Ctx::parallel();
        let empty = FunctionalGraph::new(vec![]);
        for m in all_methods() {
            assert!(cycle_nodes(&ctx, &empty, m).is_empty());
        }
        // A single fixed point.
        check_agreement(&FunctionalGraph::new(vec![0]));
        // A 2-cycle.
        check_agreement(&FunctionalGraph::new(vec![1, 0]));
        // A fixed point with a tail: 1 → 0 → 0.
        check_agreement(&FunctionalGraph::new(vec![0, 0]));
    }

    #[test]
    fn paper_example_is_all_cycles() {
        let g = generators::paper_example_function();
        let marks = check_agreement(&g);
        assert!(
            marks.iter().all(|&m| m),
            "Fig. 1 consists of two simple cycles"
        );
    }

    #[test]
    fn identity_and_constant_functions() {
        // Identity: every node is a fixed point.
        let marks = check_agreement(&FunctionalGraph::new((0..10).collect()));
        assert!(marks.iter().all(|&m| m));
        // Constant function: only the fixed point 0 is on a cycle.
        let marks = check_agreement(&FunctionalGraph::new(vec![0; 10]));
        assert_eq!(marks.iter().filter(|&&m| m).count(), 1);
        assert!(marks[0]);
    }

    #[test]
    fn structured_generators_agree() {
        check_agreement(&generators::cycles_only(&[1, 2, 3, 5, 8], 1));
        check_agreement(&generators::long_tail(300, 7, 2));
        check_agreement(&generators::star(200, 5, 3));
        check_agreement(&generators::equal_cycles(10, 6, 4));
    }

    #[test]
    fn random_functions_agree_large() {
        for seed in 0..5 {
            let g = generators::random_function(5000, seed);
            check_agreement(&g);
        }
    }

    #[test]
    fn euler_work_is_within_a_constant_of_jump() {
        // The paper's method is work-optimal when the Euler cycles are
        // labelled with an optimal connectivity/list-ranking routine; this
        // implementation labels them by pointer jumping over the 2n arcs
        // (documented substitution in DESIGN.md), so its work is a constant
        // factor of the `O(n log n)` pointer-jumping detector, not below it.
        // Experiment E8 reports the measured constants.
        let g = generators::random_function(100_000, 11);
        let ctx_euler = Ctx::parallel();
        let _ = cycle_nodes_euler(&ctx_euler, &g);
        let ctx_jump = Ctx::parallel();
        let _ = cycle_nodes_jump(&ctx_jump, &g);
        let ratio = ctx_euler.stats().work as f64 / ctx_jump.stats().work as f64;
        assert!(
            ratio < 8.0,
            "Euler-method work should stay within a small constant of pointer jumping, got {ratio:.2}×"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn methods_agree_on_random_functions(
            n in 1usize..200,
            seed in 0u64..500,
        ) {
            let g = generators::random_function(n, seed);
            check_agreement(&g);
        }

        #[test]
        fn methods_agree_on_cycle_collections(
            lengths in proptest::collection::vec(1usize..12, 1..10),
            seed in 0u64..100,
        ) {
            let g = generators::cycles_only(&lengths, seed);
            let marks = check_agreement(&g);
            prop_assert!(marks.iter().all(|&m| m));
        }
    }

    /// Miri target: the incoming-arc emission scatter and the jump/Euler
    /// labeling paths.
    #[test]
    fn miri_jump_and_euler_agree_with_seq() {
        let ctx = Ctx::parallel();
        let g = generators::paper_example_function();
        let want = cycle_nodes_seq(&ctx, &g);
        assert_eq!(cycle_nodes_jump(&ctx, &g), want);
        assert_eq!(cycle_nodes_euler(&ctx, &g), want);
    }
}

//! Full structural decomposition of a pseudo-forest: cycles with leaders and
//! positions, the rooted forest of tree nodes, and node levels.
//!
//! This packages step 1 of *Algorithm cycle node labeling* ("label each cycle
//! with one of the indices of the cycle, and then rank all the nodes in each
//! cycle starting from the chosen index") together with the data Section 4
//! assumes ("each tree has been rooted at an arbitrary node of the cycle",
//! levels known, Euler-tour-ready children lists).

use crate::cycles::{cycle_nodes, CycleMethod};
use crate::graph::FunctionalGraph;
use sfcp_parprim::euler::{EulerTour, RootedForest};
use sfcp_parprim::listrank::{list_rank, ListRankMethod};
use sfcp_pram::Ctx;

/// The decomposition of a functional graph into cycles and hanging trees.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Whether each node lies on a cycle.
    pub is_cycle: Vec<bool>,
    /// For every node, the id (0-based, by ascending leader) of the cycle of
    /// its pseudo-tree.
    pub cycle_of: Vec<u32>,
    /// For cycle nodes, the position within their cycle counting forward from
    /// the leader (`u32::MAX` for tree nodes).
    pub cycle_pos: Vec<u32>,
    /// The cycles: `cycles[c]` lists the member nodes in cycle order starting
    /// at the leader (the smallest node id of the cycle).
    pub cycles: Vec<Vec<u32>>,
    /// The hanging trees: every cycle node is a root, every non-cycle node's
    /// parent is `f(x)`.
    pub forest: RootedForest,
    /// Euler tour of `forest`.
    pub tour: EulerTour,
    /// Distance of every node to its cycle (0 for cycle nodes).
    pub levels: Vec<u32>,
}

/// Compute the decomposition.
#[must_use]
pub fn decompose(ctx: &Ctx, g: &FunctionalGraph, method: CycleMethod) -> Decomposition {
    let n = g.len();
    let f = g.table();
    let is_cycle = cycle_nodes(ctx, g, method);

    // ---- Cycle structure ----------------------------------------------
    // Compact the cycle nodes and rank them around their cycles.
    let cycle_ids: Vec<u32> = sfcp_parprim::compact::compact_indices(ctx, n, |x| is_cycle[x]);
    let m = cycle_ids.len();
    let mut compact_index = vec![u32::MAX; n];
    for (j, &x) in cycle_ids.iter().enumerate() {
        compact_index[x as usize] = j as u32;
    }
    ctx.charge_step(m as u64);

    // Successor of a cycle node within the compacted numbering.
    let cycle_succ: Vec<u32> = ctx.par_map_idx(m, |j| {
        let x = cycle_ids[j] as usize;
        compact_index[f[x] as usize]
    });
    // Leader of every cycle = minimum compacted index on the cycle; since
    // cycle_ids is ascending, that is also the minimum node id.
    let leader_compact = sfcp_parprim::jump::permutation_cycle_min(ctx, &cycle_succ);

    // Rank around the cycle from the leader: break each cycle just before its
    // leader and list-rank the resulting chains.
    let broken_next: Vec<u32> = ctx.par_map_idx(m, |j| {
        if leader_compact[cycle_succ[j] as usize] == cycle_succ[j] {
            // The successor is the leader: terminate here.
            j as u32
        } else {
            cycle_succ[j]
        }
    });
    let dist_to_end = list_rank(ctx, &broken_next, ListRankMethod::RulingSet);
    // Cycle length = dist(leader) + 1; position = length - 1 - dist.
    let mut cycle_pos = vec![u32::MAX; n];
    let mut cycle_of = vec![u32::MAX; n];
    // Dense cycle numbering by ascending leader node id.
    let leaders: Vec<u32> =
        sfcp_parprim::compact::compact_indices(ctx, m, |j| leader_compact[j] as usize == j);
    let mut cycle_number_of_leader = vec![u32::MAX; m];
    for (c, &lj) in leaders.iter().enumerate() {
        cycle_number_of_leader[lj as usize] = c as u32;
    }
    ctx.charge_step(leaders.len() as u64);

    let cycle_len_of_leader: Vec<u32> =
        ctx.par_map_idx(leaders.len(), |c| dist_to_end[leaders[c] as usize] + 1);

    {
        let pos_ptr = SendPtr(cycle_pos.as_mut_ptr());
        let of_ptr = SendPtr(cycle_of.as_mut_ptr());
        ctx.par_for_idx(m, |j| {
            let x = cycle_ids[j] as usize;
            let leader = leader_compact[j] as usize;
            let c = cycle_number_of_leader[leader];
            let len = dist_to_end[leader] + 1;
            let pos = len - 1 - dist_to_end[j];
            let (pp, op) = (pos_ptr, of_ptr);
            // Safety: one write per cycle node.
            unsafe {
                *pp.0.add(x) = pos;
                *op.0.add(x) = c;
            }
        });
    }

    // Materialize the cycles as node sequences.
    let mut cycles: Vec<Vec<u32>> = cycle_len_of_leader
        .iter()
        .map(|&len| vec![0u32; len as usize])
        .collect();
    {
        // Scatter every cycle node into its slot (disjoint writes).
        let ptrs: Vec<SendPtr<u32>> = cycles.iter_mut().map(|v| SendPtr(v.as_mut_ptr())).collect();
        let ptrs_ref = &ptrs;
        ctx.par_for_idx(m, |j| {
            let x = cycle_ids[j];
            let c = cycle_of[x as usize] as usize;
            let pos = cycle_pos[x as usize] as usize;
            // Safety: (cycle, position) pairs are unique.
            unsafe {
                *ptrs_ref[c].0.add(pos) = x;
            }
        });
    }

    // ---- Tree structure -------------------------------------------------
    // Root every pseudo-tree at its cycle nodes: cycle nodes become roots of
    // the forest, tree nodes keep parent f(x).
    let parents: Vec<u32> = ctx.par_map_idx(n, |x| if is_cycle[x] { x as u32 } else { f[x] });
    let forest = RootedForest::from_parents(ctx, parents);
    let tour = EulerTour::build(ctx, &forest);
    let levels = tour.levels(ctx);

    // Propagate the cycle id to tree nodes through their root.
    let roots = sfcp_parprim::jump::find_roots(ctx, forest.parents());
    let cycle_of = ctx.par_map_idx(n, |x| cycle_of[roots[x] as usize]);

    Decomposition {
        is_cycle,
        cycle_of,
        cycle_pos,
        cycles,
        forest,
        tour,
        levels,
    }
}

impl Decomposition {
    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.is_cycle.len()
    }

    /// Whether the decomposition is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.is_cycle.is_empty()
    }

    /// Number of cycles (= number of pseudo-trees / components).
    #[must_use]
    pub fn num_cycles(&self) -> usize {
        self.cycles.len()
    }

    /// The root (cycle node) of the pseudo-tree containing `x`.
    #[must_use]
    pub fn root_of(&self, x: u32) -> u32 {
        if self.is_cycle[x as usize] {
            x
        } else {
            // Walk is not needed: the forest is rooted at cycle nodes, so the
            // Euler tour's level-0 ancestor is found by parent jumps; for a
            // convenience accessor a short walk is fine (levels are usually
            // small), but use the precomputed structures in hot paths.
            let mut cur = x;
            while !self.is_cycle[cur as usize] {
                cur = self.forest.parent(cur);
            }
            cur
        }
    }
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    fn check_invariants(g: &FunctionalGraph, d: &Decomposition) {
        let n = g.len();
        assert_eq!(d.len(), n);
        // Every cycle is consistent: consecutive members are connected by f,
        // the leader is the smallest member, positions match indices.
        for (c, cycle) in d.cycles.iter().enumerate() {
            assert!(!cycle.is_empty());
            let leader = cycle[0];
            assert_eq!(*cycle.iter().min().unwrap(), leader);
            for (i, &x) in cycle.iter().enumerate() {
                assert!(d.is_cycle[x as usize]);
                assert_eq!(d.cycle_of[x as usize], c as u32);
                assert_eq!(d.cycle_pos[x as usize], i as u32);
                assert_eq!(
                    g.apply(x),
                    cycle[(i + 1) % cycle.len()],
                    "cycle {c} broken at {x}"
                );
            }
        }
        // Every cycle node appears in exactly one cycle.
        let total_cycle_nodes: usize = d.cycles.iter().map(Vec::len).sum();
        assert_eq!(total_cycle_nodes, d.is_cycle.iter().filter(|&&b| b).count());
        // Levels: cycle nodes at level 0; tree nodes one deeper than f(x).
        for x in 0..n as u32 {
            if d.is_cycle[x as usize] {
                assert_eq!(d.levels[x as usize], 0);
            } else {
                assert_eq!(d.levels[x as usize], d.levels[g.apply(x) as usize] + 1);
                // Same component as its parent.
                assert_eq!(d.cycle_of[x as usize], d.cycle_of[g.apply(x) as usize]);
            }
        }
    }

    #[test]
    fn paper_example_decomposition() {
        let ctx = Ctx::parallel();
        let g = generators::paper_example_function();
        let d = decompose(&ctx, &g, CycleMethod::Euler);
        check_invariants(&g, &d);
        assert_eq!(d.num_cycles(), 2);
        let mut lens: Vec<usize> = d.cycles.iter().map(Vec::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![4, 12]);
        assert!(d.is_cycle.iter().all(|&b| b));
    }

    #[test]
    fn all_methods_give_same_decomposition() {
        let ctx = Ctx::parallel();
        let g = generators::random_function(2000, 5);
        let a = decompose(&ctx, &g, CycleMethod::Sequential);
        let b = decompose(&ctx, &g, CycleMethod::Jump);
        let c = decompose(&ctx, &g, CycleMethod::Euler);
        assert_eq!(a.is_cycle, b.is_cycle);
        assert_eq!(a.is_cycle, c.is_cycle);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.cycles, c.cycles);
        assert_eq!(a.levels, c.levels);
        check_invariants(&g, &c);
    }

    #[test]
    fn structures_on_edge_cases() {
        let ctx = Ctx::parallel();
        for g in [
            FunctionalGraph::new(vec![0]),
            FunctionalGraph::new(vec![0; 12]),
            FunctionalGraph::new((0..12).collect()),
            generators::long_tail(200, 1, 9),
            generators::star(100, 3, 2),
        ] {
            let d = decompose(&ctx, &g, CycleMethod::Euler);
            check_invariants(&g, &d);
        }
    }

    #[test]
    fn root_of_matches_levels() {
        let ctx = Ctx::parallel();
        let g = generators::long_tail(64, 8, 3);
        let d = decompose(&ctx, &g, CycleMethod::Euler);
        for x in 0..64u32 {
            let r = d.root_of(x);
            assert!(d.is_cycle[r as usize]);
            assert_eq!(g.iterate(x, d.levels[x as usize] as usize), r);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn invariants_on_random_functions(n in 1usize..150, seed in 0u64..200) {
            let ctx = Ctx::parallel().with_grain(16);
            let g = generators::random_function(n, seed);
            let d = decompose(&ctx, &g, CycleMethod::Euler);
            check_invariants(&g, &d);
        }
    }
}

//! Full structural decomposition of a pseudo-forest: cycles with leaders and
//! positions, the rooted forest of tree nodes, and node levels.
//!
//! This packages step 1 of *Algorithm cycle node labeling* ("label each cycle
//! with one of the indices of the cycle, and then rank all the nodes in each
//! cycle starting from the chosen index") together with the data Section 4
//! assumes ("each tree has been rooted at an arbitrary node of the cycle",
//! levels known, Euler-tour-ready children lists).

use crate::cycles::{cycle_nodes, CycleMethod};
use crate::graph::FunctionalGraph;
use sfcp_parprim::euler::{EulerTour, RootedForest};
use sfcp_parprim::listrank::{is_sampled_ruler, list_rank_flagged_into};
use sfcp_pram::{Ctx, Error};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The decomposition of a functional graph into cycles and hanging trees.
///
/// The cycles are stored in one flat CSR layout (`cycle_offsets` +
/// `cycle_nodes`) instead of a nested `Vec<Vec<u32>>`: one allocation for all
/// cycles, contiguous in memory for the canonization pass that streams over
/// them, and scatter-friendly for the parallel materialization pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// Whether each node lies on a cycle.
    pub is_cycle: Vec<bool>,
    /// For every node, the id (0-based, by ascending leader) of the cycle of
    /// its pseudo-tree.
    pub cycle_of: Vec<u32>,
    /// For cycle nodes, the position within their cycle counting forward from
    /// the leader (`u32::MAX` for tree nodes).
    pub cycle_pos: Vec<u32>,
    /// CSR offsets into [`Decomposition::cycle_nodes`], length
    /// `num_cycles() + 1`: cycle `c` occupies
    /// `cycle_nodes[cycle_offsets[c] .. cycle_offsets[c + 1]]`.
    pub cycle_offsets: Vec<u32>,
    /// Member nodes of every cycle in cycle order starting at the leader (the
    /// smallest node id of the cycle); cycles concatenated by ascending
    /// leader id.
    pub cycle_nodes: Vec<u32>,
    /// The hanging trees: every cycle node is a root, every non-cycle node's
    /// parent is `f(x)`.
    pub forest: RootedForest,
    /// Euler tour of `forest`.
    pub tour: EulerTour,
    /// Distance of every node to its cycle (0 for cycle nodes).
    pub levels: Vec<u32>,
    /// The root (cycle node) of every node's pseudo-tree — the root array
    /// computed **once** per decomposition and threaded through the tour
    /// finish, the `cycle_of` propagation, and (by `sfcp-core`'s tree
    /// labelling) the Lemma 4.1 correspondence, instead of re-running
    /// pointer jumping at each consumer.
    pub roots: Vec<u32>,
}

/// Compute the decomposition.
///
/// Every intermediate of the pipeline — compacted ids, cycle successors, the
/// broken-cycle ranking, leader numbering — is checked out from the `ctx`
/// workspace, so repeated decompositions allocate only the returned structure
/// once the pools are warm.
///
/// The two rankings of the pipeline — the `2n` Euler-tour arcs and the `m`
/// broken-cycle successor chains — are laid out back to back in **one**
/// successor buffer and ranked with a **single** engine invocation (the
/// fused Euler ranking; see DESIGN.md, "List ranking engines"), so the
/// sampling, walk, and contraction passes of the selected
/// [`sfcp_pram::RankEngine`] run once instead of twice.
/// Fallible [`decompose`]: validates the size envelope up front, converts any
/// mid-pipeline panic (including injected faults, see [`sfcp_pram::faults`])
/// into a typed [`Error`], and runs the [`Ctx::recover`] protocol before
/// returning, so the context — and its warm buffer pools — stays usable:
/// `outstanding() == 0`, stable `pooled_bytes()`, and bit-identical charges
/// on the next successful run (see DESIGN.md, "Failure model and recovery").
///
/// # Errors
/// [`Error::TooLarge`] when `2 * g.len() + m` could reach `2^31` (the fused
/// Euler + broken-cycle ranking domain must keep bit 31 free for the ruler
/// flag, so `n` is capped at `2^30` up front); [`Error::Injected`] /
/// [`Error::Panicked`] when the pipeline unwinds.
pub fn try_decompose(
    ctx: &Ctx,
    g: &FunctionalGraph,
    method: CycleMethod,
) -> Result<Decomposition, Error> {
    // The fused ranking domain is 2n + m with m <= n, so n < 2^31 / 3 would
    // be exact; the simpler n < 2^30 bound is what MAX_DOMAIN/2 gives and is
    // already far beyond the u32 node-id space the structure retains.
    if g.len() >= sfcp_pram::MAX_DOMAIN / 2 {
        return Err(Error::TooLarge {
            n: g.len(),
            max: sfcp_pram::MAX_DOMAIN / 2,
        });
    }
    match catch_unwind(AssertUnwindSafe(|| decompose(ctx, g, method))) {
        Ok(d) => Ok(d),
        Err(payload) => {
            let err = Error::from_panic(payload);
            ctx.recover();
            Err(err)
        }
    }
}

#[must_use]
pub fn decompose(ctx: &Ctx, g: &FunctionalGraph, method: CycleMethod) -> Decomposition {
    let mut span_all = ctx.span("decompose");
    span_all.attr("n", g.len() as u64);
    let n = g.len();
    let f = g.table();
    let span_phase = ctx.span("cycle_nodes");
    let is_cycle = cycle_nodes(ctx, g, method);
    drop(span_phase);
    let ws = ctx.workspace();

    // ---- Cycle structure ----------------------------------------------
    // Compact the cycle nodes and rank them around their cycles.
    let span_phase = ctx.span("cycle_structure");
    let mut cycle_ids = ws.take_u32(0);
    sfcp_parprim::compact::compact_indices_into(ctx, n, |x| is_cycle[x], &mut cycle_ids);
    let m = cycle_ids.len();
    // Only the compacted (cycle-node) slots are ever read back, and all of
    // them are written below, so the checkout needs no fill.
    let mut compact_index = ws.take_u32(n);
    for (j, &x) in cycle_ids.iter().enumerate() {
        compact_index[x as usize] = j as u32;
    }
    ctx.charge_step(m as u64);

    // Successor of a cycle node within the compacted numbering.
    let mut cycle_succ = ws.take_u32(m);
    {
        let (cycle_ids, compact_index) = (&cycle_ids, &compact_index);
        ctx.par_update(&mut cycle_succ, |j, s| {
            let x = cycle_ids[j] as usize;
            *s = compact_index[f[x] as usize];
        });
    }
    // Leader of every cycle = minimum compacted index on the cycle; since
    // cycle_ids is ascending, that is also the minimum node id.
    let mut leader_compact = ws.take_u32(0);
    sfcp_parprim::jump::permutation_cycle_min_into(ctx, &cycle_succ, &mut leader_compact);

    // Dense cycle numbering by ascending leader node id.
    let mut leaders = ws.take_u32(0);
    {
        let leader_compact = &leader_compact;
        sfcp_parprim::compact::compact_indices_into(
            ctx,
            m,
            |j| leader_compact[j] as usize == j,
            &mut leaders,
        );
    }
    let num_cycles = leaders.len();
    // Again only leader slots are read back, so no fill.
    let mut cycle_number_of_leader = ws.take_u32(m);
    for (c, &lj) in leaders.iter().enumerate() {
        cycle_number_of_leader[lj as usize] = c as u32;
    }
    ctx.charge_step(num_cycles as u64);
    drop(span_phase);

    // ---- Fused Euler ranking domain ---------------------------------------
    // The pipeline needs two rankings: the 2n Euler-tour arcs (positions
    // along each tree's tour) and the m broken-cycle chains (rank of every
    // cycle node forward from its leader).  Both are successor lists, so
    // they share one buffer — tour arcs in [..2n], chains (shifted by 2n)
    // in [2n..] — and ONE engine invocation ranks them together: one
    // segment walk, one contracted doubling for both.  The ruler flags of
    // the ranking engines are ORed into each word as it is written — heads
    // are known analytically (the down arc of every root; the leader of
    // every chain), so the engines' `has_pred` sampling passes disappear
    // (the `has_pred` fold; see DESIGN.md "Bucketed scatters").
    let num_arcs = 2 * n;
    let domain = num_arcs + m;
    let span_phase = ctx.span("fused_successors");
    let mut fused_succ = ws.take_u32(domain);
    {
        // Break each cycle just before its leader: the chain element j
        // terminates when its successor is the leader.  Flags: a chain's
        // head is its leader (nothing points to it — its predecessor
        // terminated), terminals flag themselves, and the hash sample rides
        // along.
        let (cycle_succ, leader_compact) = (&cycle_succ, &leader_compact);
        ctx.par_update(&mut fused_succ[num_arcs..], |j, b| {
            let slot = (num_arcs + j) as u32;
            let val = if leader_compact[cycle_succ[j] as usize] == cycle_succ[j] {
                // The successor is the leader: terminate here.
                slot
            } else {
                num_arcs as u32 + cycle_succ[j]
            };
            let ruler = leader_compact[j] as usize == j // head
                || val == slot // terminal
                || is_sampled_ruler(slot as usize, domain);
            *b = val | (u32::from(ruler) << 31);
        });
    }

    // ---- Tree structure ---------------------------------------------------
    // Root every pseudo-tree at its cycle nodes: cycle nodes become roots of
    // the forest, tree nodes keep parent f(x).  The parents are acyclic by
    // construction (tree nodes point along f towards a cycle-node root), so
    // release builds take the unchecked fast path; debug builds run the
    // checked constructor, which charges identically by design.
    drop(span_phase);
    let span_phase = ctx.span("tree_structure");
    let parents: Vec<u32> = ctx.par_map_idx(n, |x| if is_cycle[x] { x as u32 } else { f[x] });
    let forest = if cfg!(debug_assertions) {
        RootedForest::from_parents_checked(ctx, parents)
            .expect("decompose builds acyclic in-range parents")
    } else {
        RootedForest::from_parents(ctx, parents)
    };
    EulerTour::arc_successors_flagged_into(ctx, &forest, &mut fused_succ[..num_arcs], domain);
    drop(span_phase);

    // The root array, computed ONCE per decomposition (pointer jumping) and
    // threaded through the tour finish, the cycle_of propagation below, and
    // tree labelling (retained on the returned structure) — formerly three
    // independent find_roots runs per coarsest invocation.
    let mut roots = Vec::new();
    sfcp_parprim::jump::find_roots_into(ctx, forest.parents(), &mut roots);

    // The single fused ranking: arc a's tour rank lands in [..2n], chain
    // element j's distance-to-chain-end in [2n + j].
    let mut fused_ranks = ws.take_u32(0);
    list_rank_flagged_into(ctx, &fused_succ, &mut fused_ranks);
    let tour = EulerTour::from_arc_ranks_with_roots(ctx, &forest, &fused_ranks[..num_arcs], &roots);
    let dist_to_end = &fused_ranks[num_arcs..];

    // Cycle length = dist(leader) + 1; position = length - 1 - dist.
    let span_phase = ctx.span("cycle_csr");
    let mut cycle_pos = vec![u32::MAX; n];
    let mut cycle_of = vec![u32::MAX; n];

    // CSR offsets: cycle c (by ascending leader) has length
    // dist_to_end[leader] + 1; exclusive prefix sums give the offsets.
    let mut cycle_offsets = vec![0u32; num_cycles + 1];
    {
        let off_ptr = SendPtr(cycle_offsets.as_mut_ptr());
        let (leaders, dist_to_end) = (&leaders, &dist_to_end);
        ctx.par_for_idx(num_cycles, |c| {
            let p = off_ptr;
            // SAFETY: one write per cycle, at slot c + 1.
            unsafe {
                *p.0.add(c + 1) = dist_to_end[leaders[c] as usize] + 1;
            }
        });
    }
    // Uncharged glue: this prefix sweep replaces the per-cycle Vec
    // allocation loop of the nested-cycles layout, which was equally
    // uncharged — charging it here would break the byte-identical charge
    // parity with the pre-CSR pipeline that the bench rows pin.
    for c in 0..num_cycles {
        cycle_offsets[c + 1] += cycle_offsets[c];
    }
    debug_assert_eq!(cycle_offsets[num_cycles] as usize, m);

    {
        let pos_ptr = SendPtr(cycle_pos.as_mut_ptr());
        let of_ptr = SendPtr(cycle_of.as_mut_ptr());
        let (cycle_ids, leader_compact, cycle_number_of_leader, dist_to_end) = (
            &cycle_ids,
            &leader_compact,
            &cycle_number_of_leader,
            &dist_to_end,
        );
        ctx.par_for_idx(m, |j| {
            let x = cycle_ids[j] as usize;
            let leader = leader_compact[j] as usize;
            let c = cycle_number_of_leader[leader];
            let len = dist_to_end[leader] + 1;
            let pos = len - 1 - dist_to_end[j];
            let (pp, op) = (pos_ptr, of_ptr);
            // SAFETY: one write per cycle node.
            unsafe {
                *pp.0.add(x) = pos;
                *op.0.add(x) = c;
            }
        });
    }

    // Materialize the cycles into the flat CSR node array (disjoint writes:
    // (cycle, position) pairs are unique and cover every slot).
    let mut cycle_nodes_flat = vec![0u32; m];
    {
        let node_ptr = SendPtr(cycle_nodes_flat.as_mut_ptr());
        let (cycle_ids, cycle_offsets) = (&cycle_ids, &cycle_offsets);
        let (cycle_of, cycle_pos) = (&cycle_of, &cycle_pos);
        ctx.par_for_idx(m, |j| {
            let x = cycle_ids[j];
            let c = cycle_of[x as usize] as usize;
            let pos = cycle_pos[x as usize] as usize;
            let p = node_ptr;
            // SAFETY: see above.
            unsafe {
                *p.0.add(cycle_offsets[c] as usize + pos) = x;
            }
        });
    }
    drop(span_phase);

    let levels = tour.levels(ctx);

    // Propagate the cycle id to tree nodes through the threaded root array.
    let span_phase = ctx.span("propagate_cycle_of");
    let cycle_of = {
        let (cycle_of, roots) = (&cycle_of, &roots);
        ctx.par_map_idx(n, |x| cycle_of[roots[x] as usize])
    };
    drop(span_phase);

    Decomposition {
        is_cycle,
        cycle_of,
        cycle_pos,
        cycle_offsets,
        cycle_nodes: cycle_nodes_flat,
        forest,
        tour,
        levels,
        roots,
    }
}

impl Decomposition {
    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.is_cycle.len()
    }

    /// Whether the decomposition is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.is_cycle.is_empty()
    }

    /// Number of cycles (= number of pseudo-trees / components).
    #[must_use]
    pub fn num_cycles(&self) -> usize {
        self.cycle_offsets.len() - 1
    }

    /// The member nodes of cycle `c`, in cycle order starting at the leader.
    #[must_use]
    pub fn cycle(&self, c: usize) -> &[u32] {
        let s = self.cycle_offsets[c] as usize;
        let e = self.cycle_offsets[c + 1] as usize;
        &self.cycle_nodes[s..e]
    }

    /// Length of cycle `c`.
    #[must_use]
    pub fn cycle_len(&self, c: usize) -> usize {
        (self.cycle_offsets[c + 1] - self.cycle_offsets[c]) as usize
    }

    /// Iterator over all cycles as node slices, by ascending leader id.
    pub fn cycles(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.num_cycles()).map(|c| self.cycle(c))
    }

    /// The root (cycle node) of the pseudo-tree containing `x` — a lookup
    /// into the once-computed [`Decomposition::roots`] array.
    #[must_use]
    pub fn root_of(&self, x: u32) -> u32 {
        self.roots[x as usize]
    }
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` only smuggles a raw base pointer into parallel tasks
// whose writes target disjoint indices; every dereference site carries its
// own SAFETY argument for that disjointness, and the pointee buffer is
// borrowed for the whole parallel region, so it outlives every task.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` across tasks only copies the pointer value —
// no shared-reference method dereferences it, so aliased access to the
// pointee can never originate from the `Sync` impl itself.
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    fn check_invariants(g: &FunctionalGraph, d: &Decomposition) {
        let n = g.len();
        assert_eq!(d.len(), n);
        // CSR well-formedness: offsets are monotone and cover cycle_nodes.
        assert_eq!(d.cycle_offsets.len(), d.num_cycles() + 1);
        assert_eq!(d.cycle_offsets[0], 0);
        assert!(d.cycle_offsets.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            *d.cycle_offsets.last().unwrap() as usize,
            d.cycle_nodes.len()
        );
        // Every cycle is consistent: consecutive members are connected by f,
        // the leader is the smallest member, positions match indices.
        for (c, cycle) in d.cycles().enumerate() {
            assert!(!cycle.is_empty());
            let leader = cycle[0];
            assert_eq!(*cycle.iter().min().unwrap(), leader);
            for (i, &x) in cycle.iter().enumerate() {
                assert!(d.is_cycle[x as usize]);
                assert_eq!(d.cycle_of[x as usize], c as u32);
                assert_eq!(d.cycle_pos[x as usize], i as u32);
                assert_eq!(
                    g.apply(x),
                    cycle[(i + 1) % cycle.len()],
                    "cycle {c} broken at {x}"
                );
            }
        }
        // Every cycle node appears in exactly one cycle.
        assert_eq!(
            d.cycle_nodes.len(),
            d.is_cycle.iter().filter(|&&b| b).count()
        );
        // Levels: cycle nodes at level 0; tree nodes one deeper than f(x).
        for x in 0..n as u32 {
            if d.is_cycle[x as usize] {
                assert_eq!(d.levels[x as usize], 0);
            } else {
                assert_eq!(d.levels[x as usize], d.levels[g.apply(x) as usize] + 1);
                // Same component as its parent.
                assert_eq!(d.cycle_of[x as usize], d.cycle_of[g.apply(x) as usize]);
            }
        }
    }

    #[test]
    fn paper_example_decomposition() {
        let ctx = Ctx::parallel();
        let g = generators::paper_example_function();
        let d = decompose(&ctx, &g, CycleMethod::Euler);
        check_invariants(&g, &d);
        assert_eq!(d.num_cycles(), 2);
        let mut lens: Vec<usize> = d.cycles().map(<[u32]>::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![4, 12]);
        assert!(d.is_cycle.iter().all(|&b| b));
    }

    #[test]
    fn all_methods_give_same_decomposition() {
        let ctx = Ctx::parallel();
        let g = generators::random_function(2000, 5);
        let a = decompose(&ctx, &g, CycleMethod::Sequential);
        let b = decompose(&ctx, &g, CycleMethod::Jump);
        let c = decompose(&ctx, &g, CycleMethod::Euler);
        assert_eq!(a.is_cycle, b.is_cycle);
        assert_eq!(a.is_cycle, c.is_cycle);
        assert_eq!(a.cycle_offsets, b.cycle_offsets);
        assert_eq!(a.cycle_nodes, b.cycle_nodes);
        assert_eq!(a.cycle_offsets, c.cycle_offsets);
        assert_eq!(a.cycle_nodes, c.cycle_nodes);
        assert_eq!(a.levels, c.levels);
        assert_eq!(a, b, "full decompositions must agree (Sequential vs Jump)");
        assert_eq!(a, c, "full decompositions must agree (Sequential vs Euler)");
        check_invariants(&g, &c);
    }

    #[test]
    fn structures_on_edge_cases() {
        let ctx = Ctx::parallel();
        for g in [
            FunctionalGraph::new(vec![0]),
            FunctionalGraph::new(vec![0; 12]),
            FunctionalGraph::new((0..12).collect()),
            generators::long_tail(200, 1, 9),
            generators::star(100, 3, 2),
        ] {
            let d = decompose(&ctx, &g, CycleMethod::Euler);
            check_invariants(&g, &d);
        }
    }

    #[test]
    fn root_of_matches_levels() {
        let ctx = Ctx::parallel();
        let g = generators::long_tail(64, 8, 3);
        let d = decompose(&ctx, &g, CycleMethod::Euler);
        for x in 0..64u32 {
            let r = d.root_of(x);
            assert!(d.is_cycle[r as usize]);
            assert_eq!(g.iterate(x, d.levels[x as usize] as usize), r);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn invariants_on_random_functions(n in 1usize..150, seed in 0u64..200) {
            let ctx = Ctx::parallel().with_grain(16);
            let g = generators::random_function(n, seed);
            let d = decompose(&ctx, &g, CycleMethod::Euler);
            check_invariants(&g, &d);
        }
    }

    /// Miri target: the full decomposition pipeline (cycle labeling, chain
    /// layout, level scatter) under both parallel cycle methods.
    #[test]
    fn miri_decompose_methods_agree() {
        let ctx = Ctx::parallel();
        let g = generators::random_function(300, 5);
        let a = decompose(&ctx, &g, CycleMethod::Sequential);
        let b = decompose(&ctx, &g, CycleMethod::Jump);
        let c = decompose(&ctx, &g, CycleMethod::Euler);
        assert_eq!(a, b);
        assert_eq!(a, c);
        check_invariants(&g, &c);
    }
}

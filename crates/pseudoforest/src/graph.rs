//! The functional graph `G = (V, E)` with `V = {0, …, n-1}` and
//! `E = {(x, f(x))}` — a pseudo-forest.

use sfcp_pram::{Ctx, Error};

/// A total function on `{0, …, n-1}`, i.e. the array `A_f` of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalGraph {
    f: Vec<u32>,
}

impl FunctionalGraph {
    /// Wrap a function table.
    ///
    /// # Panics
    /// Panics if any value is out of range.
    #[must_use]
    pub fn new(f: Vec<u32>) -> Self {
        Self::try_new(f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`FunctionalGraph::new`]: the constructor for untrusted
    /// function tables.
    ///
    /// # Errors
    /// [`Error::TooLarge`] when `f.len() >= 2^31` (node ids must stay below
    /// the bit-31 ruler flag of the ranking machinery) and
    /// [`Error::OutOfRange`] when any value is not a node id.
    pub fn try_new(f: Vec<u32>) -> Result<Self, Error> {
        sfcp_pram::check_index_width(f.len())?;
        let n = f.len();
        for (x, &y) in f.iter().enumerate() {
            if y as usize >= n {
                return Err(Error::OutOfRange {
                    what: "f",
                    index: x,
                    value: y,
                    len: n,
                });
            }
        }
        Ok(FunctionalGraph { f })
    }

    /// Number of elements of the ground set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.f.len()
    }

    /// Whether the ground set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.f.is_empty()
    }

    /// `f(x)`.
    #[inline]
    #[must_use]
    pub fn apply(&self, x: u32) -> u32 {
        self.f[x as usize]
    }

    /// The raw function table.
    #[must_use]
    pub fn table(&self) -> &[u32] {
        &self.f
    }

    /// `f^k(x)` by repeated application (used in tests and small examples).
    #[must_use]
    pub fn iterate(&self, x: u32, k: usize) -> u32 {
        let mut cur = x;
        for _ in 0..k {
            cur = self.apply(cur);
        }
        cur
    }

    /// In-degrees of all nodes.
    #[must_use]
    pub fn in_degrees(&self, ctx: &Ctx) -> Vec<u32> {
        let n = self.len();
        let mut deg = vec![0u32; n];
        for &y in &self.f {
            deg[y as usize] += 1;
        }
        ctx.charge_step(n as u64);
        deg
    }

    /// The function table of `f∘f` (pointer-jumping one step), used by the
    /// doubling-based cycle detection.
    #[must_use]
    pub fn squared_table(&self, ctx: &Ctx) -> Vec<u32> {
        ctx.par_map_idx(self.len(), |x| self.f[self.f[x] as usize])
    }
}

impl From<Vec<u32>> for FunctionalGraph {
    fn from(f: Vec<u32>) -> Self {
        FunctionalGraph::new(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let g = FunctionalGraph::new(vec![1, 2, 0, 0]);
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
        assert_eq!(g.apply(0), 1);
        assert_eq!(g.apply(3), 0);
        assert_eq!(g.iterate(0, 0), 0);
        assert_eq!(g.iterate(0, 1), 1);
        assert_eq!(g.iterate(0, 3), 0);
        assert_eq!(g.table(), &[1, 2, 0, 0]);
    }

    #[test]
    fn empty_graph() {
        let g = FunctionalGraph::new(vec![]);
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = FunctionalGraph::new(vec![0, 5, 1]);
    }

    #[test]
    fn try_new_reports_the_offending_entry() {
        let err = FunctionalGraph::try_new(vec![0, 5, 1]).unwrap_err();
        assert!(matches!(
            err,
            Error::OutOfRange {
                index: 1,
                value: 5,
                len: 3,
                ..
            }
        ));
        assert!(FunctionalGraph::try_new(vec![0, 2, 1]).is_ok());
    }

    #[test]
    fn degrees_and_squares() {
        let ctx = Ctx::parallel();
        let g = FunctionalGraph::new(vec![1, 2, 0, 0, 0]);
        assert_eq!(g.in_degrees(&ctx), vec![3, 1, 1, 0, 0]);
        assert_eq!(g.squared_table(&ctx), vec![2, 0, 1, 1, 1]);
    }
}

//! Deterministic functional-graph generators for tests, examples and the
//! benchmark harness.
//!
//! Every generator takes an explicit seed (when randomised) so that every
//! experiment in `EXPERIMENTS.md` is reproducible bit for bit.

use crate::graph::FunctionalGraph;
use rand::prelude::*;

/// A uniformly random function on `{0, …, n-1}`.
///
/// The expected structure is the classic "random mapping": about `√(πn/2)`
/// nodes lie on cycles and the trees hanging off them have depth `O(√n)`.
#[must_use]
pub fn random_function(n: usize, seed: u64) -> FunctionalGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    FunctionalGraph::new((0..n).map(|_| rng.gen_range(0..n.max(1)) as u32).collect())
}

/// Entries filled per derived-seed chunk by [`random_function_chunked`]:
/// 4 Mi entries = 16 MB of output per chunk, so the generator streams even
/// at `n = 10^8` (400 MB of table) without ever holding more than one
/// chunk's RNG state.
pub const GEN_CHUNK: usize = 1 << 22;

/// A uniformly random function on `{0, …, n-1}`, generated in fixed-size
/// chunks with per-chunk derived seeds — the big-`n` workload generator for
/// the out-of-cache bench tier.
///
/// Each [`GEN_CHUNK`]-entry chunk `c` is filled from its own
/// `StdRng::seed_from_u64(splitmix(seed, c))` stream, so the output is
/// deterministic per `(n, seed)`, independent of how chunks are scheduled,
/// and chunks could be filled in parallel without changing a single entry.
/// Same random-mapping law as [`random_function`], different bit stream —
/// the two generators are *not* interchangeable under one seed.
#[must_use]
pub fn random_function_chunked(n: usize, seed: u64) -> FunctionalGraph {
    let mut f = vec![0u32; n];
    for (c, chunk) in f.chunks_mut(GEN_CHUNK).enumerate() {
        // splitmix64 finalizer over (seed, chunk id): cheap, well mixed, and
        // stable — the chunk streams never collide with plain seed + c.
        let mut z = seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let mut rng = StdRng::seed_from_u64(z);
        for s in chunk.iter_mut() {
            *s = rng.gen_range(0..n.max(1)) as u32;
        }
    }
    FunctionalGraph::new(f)
}

/// A function whose graph is a disjoint union of simple cycles with the given
/// lengths (total `n = Σ lengths`), with node ids shuffled.
///
/// # Panics
/// Panics if any length is zero.
#[must_use]
pub fn cycles_only(lengths: &[usize], seed: u64) -> FunctionalGraph {
    let n: usize = lengths.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.shuffle(&mut rng);
    let mut f = vec![0u32; n];
    let mut used = 0usize;
    for &len in lengths {
        assert!(len > 0, "cycle length must be positive");
        let members = &ids[used..used + len];
        for i in 0..len {
            f[members[i] as usize] = members[(i + 1) % len];
        }
        used += len;
    }
    FunctionalGraph::new(f)
}

/// `k` cycles, all of the same length `len` (a convenient shape for the cycle
/// equivalence experiments of Section 3.2).
#[must_use]
pub fn equal_cycles(k: usize, len: usize, seed: u64) -> FunctionalGraph {
    cycles_only(&vec![len; k], seed)
}

/// One long path `0 → 1 → … ` feeding into a cycle of length `cycle_len`
/// at the end — the deepest possible tree structure, stressing the
/// level-dependent steps.
#[must_use]
pub fn long_tail(n: usize, cycle_len: usize, seed: u64) -> FunctionalGraph {
    assert!(cycle_len >= 1 && cycle_len <= n, "invalid cycle length");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.shuffle(&mut rng);
    let mut f = vec![0u32; n];
    // ids[0..cycle_len] form the cycle; the rest is a path feeding into it.
    for i in 0..cycle_len {
        f[ids[i] as usize] = ids[(i + 1) % cycle_len];
    }
    for i in cycle_len..n {
        // Chain: ids[i] -> ids[i - 1]; the first chain node points into the cycle.
        f[ids[i] as usize] = ids[i - 1];
    }
    FunctionalGraph::new(f)
}

/// A "star of stars": a single fixed point with all other nodes mapping to a
/// small set of hubs that map to the fixed point — very shallow, very high
/// in-degree, stressing the child-list handling of the Euler tour.
#[must_use]
pub fn star(n: usize, hubs: usize, seed: u64) -> FunctionalGraph {
    assert!(n >= 1);
    let hubs = hubs.clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut f = vec![0u32; n];
    // Node 0 is the fixed point (cycle of length 1), nodes 1..=hubs are hubs.
    for (x, item) in f.iter_mut().enumerate().take((hubs + 1).min(n)).skip(1) {
        let _ = x;
        *item = 0;
    }
    for item in f.iter_mut().skip(hubs + 1) {
        *item = rng.gen_range(1..=hubs) as u32;
    }
    FunctionalGraph::new(f)
}

/// The 16-node instance of Example 2.2 / Fig. 1 of the paper (two cycles of
/// lengths 12 and 4, no tree nodes).  Node ids are zero-based; the paper's
/// node `i` is our node `i - 1`.
#[must_use]
pub fn paper_example_function() -> FunctionalGraph {
    // A_f[1..16] = [2,4,6,8,10,12,1,3,5,7,9,11,14,15,16,13]  (1-based)
    let one_based = [2u32, 4, 6, 8, 10, 12, 1, 3, 5, 7, 9, 11, 14, 15, 16, 13];
    FunctionalGraph::new(one_based.iter().map(|&v| v - 1).collect())
}

/// The B-labels of Example 2.2, zero-based block ids (paper block `j` is our
/// `j - 1`).
#[must_use]
pub fn paper_example_blocks() -> Vec<u32> {
    // A_B[1..16] = [1,2,1,1,2,2,3,3,1,1,3,1,1,2,1,3]  (1-based labels)
    [1u32, 2, 1, 1, 2, 2, 3, 3, 1, 1, 3, 1, 1, 2, 1, 3]
        .iter()
        .map(|&v| v - 1)
        .collect()
}

/// The expected output labelling `A_Q` of Example 3.1 (zero-based classes).
#[must_use]
pub fn paper_example_expected_q() -> Vec<u32> {
    // A_Q[1..16] = [1,2,1,3,2,2,4,4,1,3,4,3,1,2,3,4]
    [1u32, 2, 1, 3, 2, 2, 4, 4, 1, 3, 4, 3, 1, 2, 3, 4]
        .iter()
        .map(|&v| v - 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_function_is_deterministic_per_seed() {
        let a = random_function(1000, 7);
        let b = random_function(1000, 7);
        let c = random_function(1000, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn chunked_generator_is_deterministic_and_chunk_stable() {
        let a = random_function_chunked(1000, 7);
        let b = random_function_chunked(1000, 7);
        let c = random_function_chunked(1000, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Chunk independence: the first GEN_CHUNK-aligned prefix of a longer
        // table equals the shorter table only when n (the range) matches, so
        // instead pin that crossing a chunk boundary keeps earlier chunks
        // bit-identical: same n, table prefix unchanged by later chunks.
        // (All of n = 1000 fits in one chunk; exercise the boundary path
        // with a tiny synthetic chunk walk instead.)
        let big = random_function_chunked(GEN_CHUNK + 17, 3);
        let again = random_function_chunked(GEN_CHUNK + 17, 3);
        assert_eq!(big.table()[GEN_CHUNK..], again.table()[GEN_CHUNK..]);
        assert_eq!(big.table()[..64], again.table()[..64]);
    }

    #[test]
    fn cycles_only_structure() {
        let g = cycles_only(&[3, 5, 1], 42);
        assert_eq!(g.len(), 9);
        // Every node returns to itself after its cycle length steps; check a
        // weaker global property: f^60(x) == x for all x (60 = lcm multiple).
        for x in 0..9u32 {
            assert_eq!(g.iterate(x, 60), x);
        }
    }

    #[test]
    fn equal_cycles_covers_all_nodes() {
        let g = equal_cycles(8, 16, 3);
        assert_eq!(g.len(), 128);
        for x in 0..128u32 {
            assert_eq!(g.iterate(x, 16), x);
            assert_ne!(g.apply(x), x);
        }
    }

    #[test]
    fn long_tail_reaches_cycle() {
        let g = long_tail(100, 5, 1);
        assert_eq!(g.len(), 100);
        // After at most n steps every node must be on the cycle of length 5.
        for x in 0..100u32 {
            let y = g.iterate(x, 100);
            assert_eq!(g.iterate(y, 5), y, "node {x} did not reach the 5-cycle");
        }
    }

    #[test]
    fn star_shape() {
        let g = star(50, 4, 0);
        assert_eq!(g.apply(0), 0);
        for x in 1..=4u32 {
            assert_eq!(g.apply(x), 0);
        }
        for x in 5..50u32 {
            assert!(g.apply(x) >= 1 && g.apply(x) <= 4);
        }
    }

    #[test]
    fn paper_example_wiring() {
        let g = paper_example_function();
        assert_eq!(g.len(), 16);
        // The paper's cycle C is (1,2,4,8,3,6,12,11,9,5,10,7) — check a few hops
        // (zero-based: 0→1→3→7→2→5→11→10→8→4→9→6→0).
        let cycle_c = [0u32, 1, 3, 7, 2, 5, 11, 10, 8, 4, 9, 6];
        for i in 0..cycle_c.len() {
            assert_eq!(g.apply(cycle_c[i]), cycle_c[(i + 1) % cycle_c.len()]);
        }
        // Cycle D is (13,14,15,16) → zero-based (12,13,14,15).
        let cycle_d = [12u32, 13, 14, 15];
        for i in 0..cycle_d.len() {
            assert_eq!(g.apply(cycle_d[i]), cycle_d[(i + 1) % cycle_d.len()]);
        }
        assert_eq!(paper_example_blocks().len(), 16);
        assert_eq!(paper_example_expected_q().len(), 16);
    }
}

//! # sfcp-forest — the functional-graph (pseudo-forest) substrate
//!
//! The graph of a function `f : S → S` has out-degree one everywhere, so each
//! connected component is a *pseudo-tree*: exactly one cycle, with trees
//! hanging off the cycle nodes (Section 2 of the paper).  This crate provides
//! everything the coarsest-partition algorithms need to know about that
//! structure:
//!
//! * [`graph::FunctionalGraph`] — a validated wrapper around the array
//!   `A_f[x] = f(x)`;
//! * [`generators`] — deterministic instance generators (uniformly random
//!   functions, pure cycle collections with controlled lengths, long paths,
//!   stars, the paper's 16-node example of Fig. 1);
//! * [`cycles`] — three ways to mark the cycle nodes: a sequential
//!   degree-peeling baseline, a pointer-jumping method (`O(n log n)` work),
//!   and the paper's Euler-tour / buddy-edge method of Section 5 (near-linear
//!   work);
//! * [`structure`] — the full decomposition used by the labelling steps:
//!   cycles as node sequences with leaders and in-cycle positions, the rooted
//!   forest of tree nodes (each tree rooted at a cycle node), and node levels.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cycles;
pub mod generators;
pub mod graph;
pub mod structure;

pub use cycles::{cycle_nodes, CycleMethod};
pub use graph::FunctionalGraph;
pub use structure::{decompose, try_decompose, Decomposition};

//! Execution context: one code path, two execution modes, one cost model.
//!
//! Every algorithm in the workspace is written against [`Ctx`]: a bundle of
//! an execution [`Mode`] (sequential or rayon-parallel) and a [`Tracker`].
//! The helpers on `Ctx` express the canonical PRAM idiom — "for all `i` in
//! parallel do …" — and charge one round plus `n` operations per invocation
//! (callers charge extra work explicitly when the per-item body is not
//! constant-time).  Because the charges do not depend on the mode, the
//! measured work/depth of a run is identical whether it executed on one
//! thread or sixteen; only the wall-clock time differs.

use crate::topology::Topology;
use crate::trace::{Span, Trace};
use crate::tracker::{Stats, Tracker};
use crate::workspace::Workspace;
use rayon::prelude::*;

/// How parallel loops are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Run every parallel loop as a plain sequential loop on the calling
    /// thread.  Useful for baselines, debugging, and measuring the pure
    /// operation counts without scheduling noise.
    Sequential,
    /// Run parallel loops on the global rayon thread pool.
    #[default]
    Parallel,
}

/// Reference task grain (minimum items per rayon task) on hosts with
/// 64-byte cache lines.  The live default is derived per-host by
/// [`Topology::default_grain`] — 32 cache lines of 4-byte elements per task —
/// which reproduces this value on mainstream hardware; the constant remains
/// as the documented reference point.
pub const DEFAULT_GRAIN: usize = 2048;

/// Which integer-sort/rank engine `sfcp-parprim` routes through.
///
/// Both engines are **stable**, produce identical results, and charge
/// identical work/depth (a regression-tested invariant), so the choice only
/// affects wall-clock time and allocation behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortEngine {
    /// Packed key–payload records physically moved between ping-pong
    /// workspace buffers each counting pass (sequential streaming reads and
    /// writes), with the dense-rank finish fused into one blocked pass.
    #[default]
    Packed,
    /// The permutation-returning engine: every counting pass gathers
    /// `keys[order[i]]` through the index permutation and the dense-rank
    /// pipeline runs boundary/scan/scatter as three separate passes with
    /// fresh intermediate vectors.  Kept as the measured baseline.
    Permutation,
}

/// Which list-ranking/contraction engine `sfcp-parprim` routes through.
///
/// `RulingSet` and `CacheBucket` are two physical layouts of the same
/// documented sparse-ruling-set substitution: they produce identical ranks
/// and charge **identical** work/depth (a regression-tested invariant), so
/// switching between them only affects wall-clock time.  `PointerJump` is
/// the `O(n log n)`-work Wyllie model baseline and charges its own
/// (documented, larger) cost — the engine analogue of the
/// `ListRankMethod` ablation the paper's experiments quantify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankEngine {
    /// Wyllie pointer jumping over the full array: `O(n log n)` work,
    /// `O(log n)` depth.  The documented model baseline.
    PointerJump,
    /// Sparse ruling set with sequential two-pass segment walks — the
    /// measured contraction baseline (`O(n)` expected work).
    RulingSet,
    /// Sparse ruling set whose segment walks run as cache-bucketed
    /// wavefront batches: a block of walks advances in lockstep, so the
    /// dependent pointer-chase of one walk overlaps the memory latency of
    /// its neighbours instead of serialising on it.  Charge-identical to
    /// [`RankEngine::RulingSet`].
    #[default]
    CacheBucket,
}

impl RankEngine {
    /// Every engine variant — the list the parity/determinism/leak suites
    /// sweep.  Extend this alongside the enum so every gate picks a new
    /// engine up automatically.
    pub const ALL: [RankEngine; 3] = [
        RankEngine::PointerJump,
        RankEngine::RulingSet,
        RankEngine::CacheBucket,
    ];
}

/// Which scatter-write engine `sfcp-parprim` routes random `(index, value)`
/// stores through.
///
/// Both engines produce identical destination contents and charge
/// **identical** work/depth (a regression-tested invariant, like the other
/// engine selectors), so the choice only affects wall-clock and the staging
/// buffers checked out of the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScatterEngine {
    /// Plain random stores straight into the destination — the model
    /// baseline.  Fastest whenever the destination is cache-resident (on
    /// hosts with a large last-level cache this covers surprisingly large
    /// problems).
    Direct,
    /// Software write-combining: stores are staged into cache-resident
    /// per-bucket tiles (bucketed by the high bits of the destination
    /// index) and flushed a tile at a time, so each flush touches one small
    /// destination window instead of the whole array.  Pays off when the
    /// destination outgrows the last-level cache; charge-identical to
    /// [`ScatterEngine::Direct`].
    Combining,
    /// Footprint-adaptive: each scatter pass resolves to [`Direct`] or
    /// [`Combining`] by comparing its destination footprint in bytes against
    /// the probed last-level cache, gated on more than one core being
    /// active ([`Ctx::scatter_engine_for`]).  The resolution itself charges
    /// nothing and the candidates charge identically, so `Auto` is
    /// charge-identical to both explicit engines.
    ///
    /// [`Direct`]: ScatterEngine::Direct
    /// [`Combining`]: ScatterEngine::Combining
    #[default]
    Auto,
}

impl ScatterEngine {
    /// Every engine variant — swept by the parity/determinism/leak suites,
    /// like [`RankEngine::ALL`].
    pub const ALL: [ScatterEngine; 3] = [
        ScatterEngine::Direct,
        ScatterEngine::Combining,
        ScatterEngine::Auto,
    ];
}

/// Execution context shared by all algorithms: execution mode + cost tracker
/// + scratch-buffer workspace.
#[derive(Debug)]
pub struct Ctx {
    mode: Mode,
    tracker: Tracker,
    grain: usize,
    engine: SortEngine,
    rank_engine: RankEngine,
    scatter_engine: ScatterEngine,
    topology: Topology,
    workspace: Workspace,
    trace: Trace,
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx::new(Mode::Parallel)
    }
}

impl Ctx {
    /// A context with the given mode and a fresh enabled [`Tracker`].
    #[must_use]
    pub fn new(mode: Mode) -> Self {
        let topology = Topology::probe();
        Ctx {
            mode,
            tracker: Tracker::new(),
            grain: topology.default_grain(),
            engine: SortEngine::default(),
            rank_engine: RankEngine::default(),
            scatter_engine: ScatterEngine::default(),
            topology,
            workspace: Workspace::new(),
            trace: Trace::new(),
        }
    }

    /// A sequential context (enabled tracker).
    #[must_use]
    pub fn sequential() -> Self {
        Ctx::new(Mode::Sequential)
    }

    /// A parallel context (enabled tracker).
    #[must_use]
    pub fn parallel() -> Self {
        Ctx::new(Mode::Parallel)
    }

    /// A parallel context whose tracker is disabled — the configuration used
    /// for pure wall-clock benchmarking.
    #[must_use]
    pub fn untracked(mode: Mode) -> Self {
        let topology = Topology::probe();
        Ctx {
            mode,
            tracker: Tracker::disabled(),
            grain: topology.default_grain(),
            engine: SortEngine::default(),
            rank_engine: RankEngine::default(),
            scatter_engine: ScatterEngine::default(),
            topology,
            workspace: Workspace::new(),
            trace: Trace::new(),
        }
    }

    /// Enable span/decision tracing on this context (builder form of
    /// [`Trace::enable`]; see [`crate::trace`] for the span model and the
    /// disabled-cost contract).
    #[must_use]
    pub fn with_tracing(self) -> Self {
        self.trace.enable();
        self
    }

    /// Replace the task grain size (minimum items per rayon task).
    #[must_use]
    pub fn with_grain(mut self, grain: usize) -> Self {
        self.grain = grain.max(1);
        self
    }

    /// Select the integer-sort/rank engine (default: [`SortEngine::Packed`]).
    #[must_use]
    pub fn with_sort_engine(mut self, engine: SortEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The selected integer-sort/rank engine.
    #[inline]
    #[must_use]
    pub fn sort_engine(&self) -> SortEngine {
        self.engine
    }

    /// Select the list-ranking/contraction engine
    /// (default: [`RankEngine::CacheBucket`]).
    #[must_use]
    pub fn with_rank_engine(mut self, engine: RankEngine) -> Self {
        self.rank_engine = engine;
        self
    }

    /// The selected list-ranking/contraction engine.
    #[inline]
    #[must_use]
    pub fn rank_engine(&self) -> RankEngine {
        self.rank_engine
    }

    /// Select the scatter-write engine (default: [`ScatterEngine::Auto`]).
    #[must_use]
    pub fn with_scatter_engine(mut self, engine: ScatterEngine) -> Self {
        self.scatter_engine = engine;
        self
    }

    /// The selected scatter-write engine (possibly [`ScatterEngine::Auto`];
    /// scatter passes resolve it per destination via
    /// [`Ctx::scatter_engine_for`]).
    #[inline]
    #[must_use]
    pub fn scatter_engine(&self) -> ScatterEngine {
        self.scatter_engine
    }

    /// Mutating twin of [`Ctx::with_sort_engine`] for long-running owners
    /// (e.g. a service worker that re-targets its persistent context per
    /// request without rebuilding it — pools and probed topology stay warm).
    pub fn set_sort_engine(&mut self, engine: SortEngine) {
        self.engine = engine;
    }

    /// Mutating twin of [`Ctx::with_rank_engine`]; see
    /// [`Ctx::set_sort_engine`].
    pub fn set_rank_engine(&mut self, engine: RankEngine) {
        self.rank_engine = engine;
    }

    /// Mutating twin of [`Ctx::with_scatter_engine`]; see
    /// [`Ctx::set_sort_engine`].
    pub fn set_scatter_engine(&mut self, engine: ScatterEngine) {
        self.scatter_engine = engine;
    }

    /// Resolve the scatter engine for a pass whose destination occupies
    /// `dest_bytes`: explicit selections pass through; [`ScatterEngine::Auto`]
    /// picks [`ScatterEngine::Combining`] when the destination outgrows the
    /// probed last-level cache **and** more than one core is active, and
    /// [`ScatterEngine::Direct`] otherwise.  Never returns `Auto`, and
    /// charges nothing — selection is charge-neutral because both candidates
    /// charge identically (see DESIGN.md, "Footprint-adaptive selection").
    ///
    /// The core-count term is measured, not theoretical: combining's payoff
    /// is keeping each destination cache line's writers on one core and
    /// batching its ownership traffic, so with a single core the staging
    /// pass is pure overhead — on the 1-core reference container the big-`n`
    /// tier (`BENCH_parprim_bign.json`) has direct stores ahead of the
    /// combining tiles even at 3.6× the probed LLC.
    #[inline]
    #[must_use]
    pub fn scatter_engine_for(&self, dest_bytes: usize) -> ScatterEngine {
        match self.scatter_engine {
            ScatterEngine::Auto => {
                if self.topology.cores() > 1 && dest_bytes > self.topology.llc_bytes() {
                    ScatterEngine::Combining
                } else {
                    ScatterEngine::Direct
                }
            }
            explicit => explicit,
        }
    }

    /// Resolve the scatter engine for the dispatch site `site`, recording an
    /// engine-decision record (site, destination footprint, probed LLC and
    /// core count, resolved engine) when tracing is enabled.  The traced and
    /// untraced paths resolve identically via [`Ctx::scatter_engine_for`] and
    /// both charge nothing, so the record is an observation, never an input.
    ///
    /// All scatter dispatch sites in the workspace route through this (the
    /// `trace-span` lint keeps engine passes instrumented); plain
    /// [`Ctx::scatter_engine_for`] remains for tests and predictions.
    #[inline]
    #[must_use]
    pub fn resolve_scatter(&self, site: &'static str, dest_bytes: usize) -> ScatterEngine {
        let resolved = self.scatter_engine_for(dest_bytes);
        if self.trace.is_enabled() {
            self.record_scatter_decision(site, dest_bytes, resolved);
        }
        resolved
    }

    /// Slow path of [`Ctx::resolve_scatter`]: write the decision record.
    #[cold]
    fn record_scatter_decision(
        &self,
        site: &'static str,
        dest_bytes: usize,
        resolved: ScatterEngine,
    ) {
        let name = match resolved {
            ScatterEngine::Direct => "Direct",
            ScatterEngine::Combining => "Combining",
            // `scatter_engine_for` never returns `Auto`.
            ScatterEngine::Auto => "Auto",
        };
        self.trace.decision(
            site,
            dest_bytes as u64,
            self.topology.llc_bytes() as u64,
            self.topology.cores() as u64,
            name,
        );
    }

    /// Replace the probed host topology (tests: mock the LLC boundary so
    /// footprint-adaptive selection flips without a 100 MB input).
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// The host topology snapshot this context consults for physical tuning
    /// (never for charges).
    #[inline]
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The scratch-buffer workspace: checkout/return of reusable vectors so
    /// that per-round allocations in doubling loops amortise to zero.
    #[inline]
    #[must_use]
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// The execution mode.
    #[inline]
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Whether parallel loops actually run on the thread pool.
    #[inline]
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.mode == Mode::Parallel
    }

    /// The task grain size (minimum items per rayon task).
    #[inline]
    #[must_use]
    pub fn grain(&self) -> usize {
        self.grain
    }

    /// The underlying cost tracker.
    #[inline]
    #[must_use]
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }

    /// The span/decision trace recorder (disabled by default; enable with
    /// [`Ctx::with_tracing`] or [`Trace::enable`]).
    #[inline]
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Open an instrumentation span named `name`, closed (and recorded) when
    /// the returned guard drops.  While tracing is disabled this is a single
    /// relaxed atomic load returning a no-op guard — the zero-cost contract
    /// engine passes rely on (see [`crate::trace`]).  Charges nothing in any
    /// state.
    #[inline]
    #[must_use]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        if !self.trace.is_enabled() {
            return Span::disabled();
        }
        self.trace.open(name, &self.tracker, &self.workspace)
    }

    /// Accumulated costs so far.
    #[must_use]
    pub fn stats(&self) -> Stats {
        self.tracker.stats()
    }

    /// Reset the cost counters.  Spans still open at this point are
    /// invalidated — their snapshots predate the reset, so letting them close
    /// normally would record nonsense deltas ([`Trace::invalidate_open`]).
    pub fn reset_stats(&self) {
        self.trace.invalidate_open();
        self.tracker.reset();
    }

    /// Recover the context after a failed invocation (a caught panic or an
    /// injected fault): reconcile the workspace ([`Workspace::recover`] —
    /// `outstanding()` back to zero, pooled bytes recounted from the pools,
    /// epoch bumped) and reset the cost counters, so the next run on this
    /// context starts from a clean tracker over warm pools and produces
    /// bit-identical charges to a run on a freshly warmed context.  The
    /// `try_` wrappers across the workspace call this before returning an
    /// `Err` (see DESIGN.md, "Failure model and recovery").
    /// Open trace spans are invalidated first: a span that was open across
    /// the failed invocation snapshotted counters that this recovery resets,
    /// so its close discards instead of recording negative-looking deltas
    /// (the fault-injection suite exercises exactly this).
    pub fn recover(&self) {
        self.trace.invalidate_open();
        self.workspace.recover();
        self.tracker.reset();
    }

    /// Charge extra work (operations) without a round.
    #[inline]
    pub fn charge_work(&self, ops: u64) {
        self.tracker.charge_work(ops);
    }

    /// Charge extra depth (rounds) without work.
    #[inline]
    pub fn charge_rounds(&self, rounds: u64) {
        self.tracker.charge_rounds(rounds);
    }

    /// Charge one synchronous parallel step performing `ops` operations.
    #[inline]
    pub fn charge_step(&self, ops: u64) {
        self.tracker.charge_step(ops);
    }

    // ------------------------------------------------------------------
    // Parallel loop helpers.
    // ------------------------------------------------------------------

    /// `for all i in 0..n pardo out[i] = f(i)` — one round, `n` operations.
    pub fn par_map_idx<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync + Send,
    {
        self.charge_step(n as u64);
        match self.mode {
            Mode::Sequential => (0..n).map(f).collect(),
            Mode::Parallel => (0..n)
                .into_par_iter()
                .with_min_len(self.grain)
                .map(f)
                .collect(),
        }
    }

    /// `for all i in 0..n pardo f(i)` (side effects only) — one round, `n` ops.
    pub fn par_for_idx<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        self.charge_step(n as u64);
        match self.mode {
            Mode::Sequential => (0..n).for_each(f),
            Mode::Parallel => (0..n).into_par_iter().with_min_len(self.grain).for_each(f),
        }
    }

    /// Parallel map over a slice — one round, `items.len()` operations.
    pub fn par_map_slice<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync + Send,
    {
        self.charge_step(items.len() as u64);
        match self.mode {
            Mode::Sequential => items.iter().map(f).collect(),
            Mode::Parallel => items.par_iter().with_min_len(self.grain).map(f).collect(),
        }
    }

    /// Parallel in-place update of a mutable slice; `f` receives the index and
    /// a mutable reference — one round, `items.len()` operations.
    pub fn par_update<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync + Send,
    {
        self.charge_step(items.len() as u64);
        match self.mode {
            Mode::Sequential => {
                for (i, item) in items.iter_mut().enumerate() {
                    f(i, item);
                }
            }
            Mode::Parallel => items
                .par_iter_mut()
                .with_min_len(self.grain)
                .enumerate()
                .for_each(|(i, item)| f(i, item)),
        }
    }

    /// Parallel loop over equally sized chunks of a mutable slice; `f`
    /// receives the chunk index and the chunk.  Used by blocked scans and
    /// radix passes.  Charges one round and `items.len()` operations.
    pub fn par_chunks_mut<T, F>(&self, items: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync + Send,
    {
        let chunk = chunk.max(1);
        self.charge_step(items.len() as u64);
        match self.mode {
            Mode::Sequential => {
                for (i, c) in items.chunks_mut(chunk).enumerate() {
                    f(i, c);
                }
            }
            Mode::Parallel => items
                .par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(i, c)| f(i, c)),
        }
    }

    /// Parallel loop over equally sized chunks of a shared slice.
    pub fn par_chunks<T, F>(&self, items: &[T], chunk: usize, f: F)
    where
        T: Sync,
        F: Fn(usize, &[T]) + Sync + Send,
    {
        let chunk = chunk.max(1);
        self.charge_step(items.len() as u64);
        match self.mode {
            Mode::Sequential => {
                for (i, c) in items.chunks(chunk).enumerate() {
                    f(i, c);
                }
            }
            Mode::Parallel => items
                .par_chunks(chunk)
                .enumerate()
                .for_each(|(i, c)| f(i, c)),
        }
    }

    /// Parallel unstable sort — charged as a sorting step
    /// (`n` operations per round over `ceil(log2 n)` rounds, the comparison
    /// model cost; integer sorting in `sfcp-parprim` charges less work, which
    /// is exactly the difference the paper exploits).
    pub fn par_sort_unstable<T: Ord + Send>(&self, items: &mut [T]) {
        let n = items.len() as u64;
        let rounds = crate::ceil_log2(items.len()) as u64;
        self.tracker.charge_work(n.saturating_mul(rounds.max(1)));
        self.tracker.charge_rounds(rounds.max(1));
        match self.mode {
            Mode::Sequential => items.sort_unstable(),
            Mode::Parallel => items.par_sort_unstable(),
        }
    }

    /// Parallel unstable sort by key, charged like [`Ctx::par_sort_unstable`].
    pub fn par_sort_unstable_by_key<T, K, F>(&self, items: &mut [T], key: F)
    where
        T: Send,
        K: Ord + Send,
        F: Fn(&T) -> K + Sync + Send,
    {
        let n = items.len() as u64;
        let rounds = crate::ceil_log2(items.len()) as u64;
        self.tracker.charge_work(n.saturating_mul(rounds.max(1)));
        self.tracker.charge_rounds(rounds.max(1));
        match self.mode {
            Mode::Sequential => items.sort_unstable_by_key(key),
            Mode::Parallel => items.par_sort_unstable_by_key(key),
        }
    }

    /// Parallel stable sort by key.
    pub fn par_sort_by_key<T, K, F>(&self, items: &mut [T], key: F)
    where
        T: Send,
        K: Ord + Send,
        F: Fn(&T) -> K + Sync + Send,
    {
        let n = items.len() as u64;
        let rounds = crate::ceil_log2(items.len()) as u64;
        self.tracker.charge_work(n.saturating_mul(rounds.max(1)));
        self.tracker.charge_rounds(rounds.max(1));
        match self.mode {
            Mode::Sequential => items.sort_by_key(key),
            Mode::Parallel => items.par_sort_by_key(key),
        }
    }

    /// Parallel reduce with an associative combiner over `0..n` mapped through
    /// `map` — charged as one round of `n` operations plus `log n` combine
    /// rounds.
    pub fn par_reduce_idx<T, M, R>(&self, n: usize, identity: T, map: M, reduce: R) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync + Send,
        R: Fn(T, T) -> T + Sync + Send,
    {
        self.charge_step(n as u64);
        self.charge_rounds(crate::ceil_log2(n) as u64);
        match self.mode {
            Mode::Sequential => (0..n).map(map).fold(identity, reduce),
            Mode::Parallel => (0..n)
                .into_par_iter()
                .with_min_len(self.grain)
                .map(map)
                .reduce(|| identity.clone(), reduce),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_modes() -> [Ctx; 2] {
        [Ctx::sequential(), Ctx::parallel()]
    }

    #[test]
    fn par_map_idx_matches_sequential_semantics() {
        for ctx in both_modes() {
            let v = ctx.par_map_idx(100, |i| i * 2);
            assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_for_idx_side_effects() {
        use std::sync::atomic::{AtomicU64, Ordering};
        for ctx in both_modes() {
            let acc = AtomicU64::new(0);
            ctx.par_for_idx(1000, |i| {
                acc.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(acc.load(Ordering::Relaxed), 999 * 1000 / 2);
        }
    }

    #[test]
    fn par_map_slice_and_update() {
        for ctx in both_modes() {
            let input: Vec<u32> = (0..257).collect();
            let doubled = ctx.par_map_slice(&input, |&x| x * 2);
            assert_eq!(doubled[200], 400);

            let mut data: Vec<u32> = vec![0; 513];
            ctx.par_update(&mut data, |i, x| *x = i as u32 + 1);
            assert_eq!(data[0], 1);
            assert_eq!(data[512], 513);
        }
    }

    #[test]
    fn par_chunks_cover_everything() {
        for ctx in both_modes() {
            let mut data = vec![0u32; 1000];
            ctx.par_chunks_mut(&mut data, 64, |ci, chunk| {
                for x in chunk.iter_mut() {
                    *x = ci as u32;
                }
            });
            assert_eq!(data[0], 0);
            assert_eq!(data[63], 0);
            assert_eq!(data[64], 1);
            assert_eq!(data[999], (999 / 64) as u32);
        }
    }

    #[test]
    fn sorts_work_in_both_modes() {
        for ctx in both_modes() {
            let mut v: Vec<i64> = (0..500).rev().collect();
            ctx.par_sort_unstable(&mut v);
            assert!(v.windows(2).all(|w| w[0] <= w[1]));

            let mut pairs: Vec<(u32, u32)> = (0..300).map(|i| (300 - i, i)).collect();
            ctx.par_sort_by_key(&mut pairs, |p| p.0);
            assert!(pairs.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }

    #[test]
    fn reduce_matches() {
        for ctx in both_modes() {
            let total = ctx.par_reduce_idx(1000, 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(total, 999 * 1000 / 2);
        }
    }

    #[test]
    fn work_and_rounds_are_mode_independent() {
        let seq = Ctx::sequential();
        let par = Ctx::parallel();
        for ctx in [&seq, &par] {
            let _ = ctx.par_map_idx(1024, |i| i + 1);
            ctx.par_for_idx(512, |_| ());
            let mut v: Vec<u32> = (0..256).rev().collect();
            ctx.par_sort_unstable(&mut v);
        }
        assert_eq!(seq.stats(), par.stats());
        assert!(seq.stats().work >= 1024 + 512);
    }

    #[test]
    fn untracked_records_nothing() {
        let ctx = Ctx::untracked(Mode::Parallel);
        let _ = ctx.par_map_idx(4096, |i| i);
        assert_eq!(ctx.stats(), Stats::ZERO);
    }
}

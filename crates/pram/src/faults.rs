//! Deterministic fault injection for the failure-model test harness.
//!
//! Modeled on the `find_roots_invocations` test hook of `sfcp-parprim`: a
//! process-global layer that is **zero-cost when disabled** (a single relaxed
//! atomic load per hook) and charges nothing to the cost model in any state,
//! so arming it never perturbs tracked work/depth.
//!
//! Two hook families thread through the stack:
//!
//! * [`on_checkout`] — called by `Workspace::take` **before** any counter
//!   increments or pool pops, so an injected fault at a checkout leaves the
//!   workspace counters reconciled (`outstanding()` unaffected);
//! * [`on_engine_pass`] — called at the entry of every `sfcp-parprim` engine
//!   primitive that checks out buffers (list ranking, pointer jumping, CSR
//!   build, sorting, scans, compaction, scatters, Euler-tour passes).
//!
//! A test *arms* an injection with [`arm`]: when the `k`-th event at the
//! chosen [`FaultSite`] occurs, the hook panics with a typed
//! [`InjectedFault`] payload, which the `try_` wrappers downcast into
//! [`crate::Error::Injected`].  [`FaultKind::AllocFail`] simulates an
//! allocation failure at that point (real Rust OOM aborts the process, so
//! the simulation unwinds with the typed payload instead); both kinds
//! exercise the identical unwind-recovery path.
//!
//! The state is process-global, so tests that use this module must
//! serialize themselves (e.g. behind a `static Mutex`) — the fault-injection
//! integration suite runs in its own test binary for exactly that reason.

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Where an injected fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The `k`-th `Workspace::take` checkout.
    Checkout,
    /// The `k`-th engine-primitive entry in `sfcp-parprim`.
    EnginePass,
}

/// What failure an injection simulates.  Both kinds unwind with the typed
/// [`InjectedFault`] payload; the kind is carried through to the surfaced
/// error so tests can distinguish the scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A forced panic (an invariant violation mid-pass).
    Panic,
    /// A simulated allocation failure (a checkout or engine pass that could
    /// not obtain memory).
    AllocFail,
}

/// The panic payload of an injected fault — the typed value `try_` wrappers
/// downcast into [`crate::Error::Injected`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Which hook fired.
    pub site: FaultSite,
    /// The zero-based event index at which it fired.
    pub index: u64,
    /// The simulated failure kind.
    pub kind: FaultKind,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            FaultKind::Panic => "forced panic",
            FaultKind::AllocFail => "simulated allocation failure",
        };
        let site = match self.site {
            FaultSite::Checkout => "workspace checkout",
            FaultSite::EnginePass => "engine pass",
        };
        write!(f, "injected fault: {kind} at {site} #{}", self.index)
    }
}

struct FaultState {
    checkouts: u64,
    passes: u64,
    armed: Option<(FaultSite, u64, FaultKind)>,
}

/// Fast-path gate: hooks return after one relaxed load while the layer is
/// disabled, so production runs never take the state lock.
static ACTIVE: AtomicBool = AtomicBool::new(false);

static STATE: Mutex<FaultState> = Mutex::new(FaultState {
    checkouts: 0,
    passes: 0,
    armed: None,
});

/// Disable the layer and zero the event counters.
pub fn reset() {
    ACTIVE.store(false, Ordering::SeqCst);
    let mut st = STATE.lock();
    st.checkouts = 0;
    st.passes = 0;
    st.armed = None;
}

/// Enable counting: hooks tally events without firing, so a test can learn
/// how many injection points a workload has (read them with [`counts`]).
pub fn start_counting() {
    let mut st = STATE.lock();
    st.checkouts = 0;
    st.passes = 0;
    st.armed = None;
    drop(st);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Events observed since the last [`start_counting`] / [`arm`]:
/// `(checkouts, engine_passes)`.
#[must_use]
pub fn counts() -> (u64, u64) {
    let st = STATE.lock();
    (st.checkouts, st.passes)
}

/// Arm an injection: the `index`-th (zero-based) event at `site` unwinds
/// with an [`InjectedFault`] payload of the given `kind`.  Counters restart
/// at zero.  The injection fires at most once; [`reset`] disarms.
pub fn arm(site: FaultSite, index: u64, kind: FaultKind) {
    let mut st = STATE.lock();
    st.checkouts = 0;
    st.passes = 0;
    st.armed = Some((site, index, kind));
    drop(st);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Hook: a workspace checkout is about to happen.  Called by
/// `Workspace::take` before any counter increment or pool pop.
#[inline]
pub fn on_checkout() {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    hit(FaultSite::Checkout);
}

/// Hook: an engine primitive is entered.  Called at the top of every
/// `sfcp-parprim` entry point that checks out buffers.
#[inline]
pub fn on_engine_pass() {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    hit(FaultSite::EnginePass);
}

#[cold]
fn hit(site: FaultSite) {
    let fired = {
        let mut st = STATE.lock();
        let counter = match site {
            FaultSite::Checkout => &mut st.checkouts,
            FaultSite::EnginePass => &mut st.passes,
        };
        let index = *counter;
        *counter += 1;
        match st.armed {
            Some((armed_site, armed_index, kind)) if armed_site == site && armed_index == index => {
                // Fire at most once even if the same index recurs after a
                // counter reset race.
                st.armed = None;
                Some(InjectedFault { site, index, kind })
            }
            _ => None,
        }
    };
    // Panic outside the lock so the state mutex is never held across the
    // unwind.
    if let Some(fault) = fired {
        std::panic::panic_any(fault);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The fault layer is process-global; these unit tests run in the same
    // binary as the rest of the crate's tests, so they serialize on a local
    // lock and always leave the layer reset.
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_hooks_count_nothing() {
        let _g = GUARD.lock().unwrap();
        reset();
        on_checkout();
        on_engine_pass();
        assert_eq!(counts(), (0, 0));
    }

    #[test]
    fn counting_tallies_both_sites() {
        let _g = GUARD.lock().unwrap();
        start_counting();
        on_checkout();
        on_checkout();
        on_engine_pass();
        assert_eq!(counts(), (2, 1));
        reset();
        assert_eq!(counts(), (0, 0));
    }

    #[test]
    fn armed_fault_fires_at_exact_index_with_typed_payload() {
        let _g = GUARD.lock().unwrap();
        arm(FaultSite::Checkout, 2, FaultKind::AllocFail);
        on_checkout();
        on_checkout();
        on_engine_pass(); // different site: never fires
        let caught = std::panic::catch_unwind(on_checkout).unwrap_err();
        let fault = caught
            .downcast::<InjectedFault>()
            .expect("payload must be the typed fault");
        assert_eq!(
            *fault,
            InjectedFault {
                site: FaultSite::Checkout,
                index: 2,
                kind: FaultKind::AllocFail,
            }
        );
        // One-shot: the same index does not re-fire.
        on_checkout();
        reset();
    }
}

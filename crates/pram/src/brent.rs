//! Brent's scheduling principle.
//!
//! A PRAM algorithm with work `W(n)` and depth `D(n)` can be simulated on
//! `p` processors in time `O(W(n)/p + D(n))`.  The paper's comparison of
//! algorithms ("runs in O(log n) time using O(n log log n) operations") is a
//! statement about `W` and `D`; the benchmark harness uses this module to
//! convert measured `(work, rounds)` pairs into *predicted* p-processor
//! running times so the paper's comparison table (Section 1) can be
//! regenerated as experiment E1/E2 in `EXPERIMENTS.md`.

use crate::tracker::Stats;

/// Predicted number of time steps on `p` processors by Brent's theorem.
///
/// `p == 0` is treated as `p == 1`.
#[must_use]
pub fn predicted_time(stats: Stats, p: usize) -> f64 {
    let p = p.max(1) as f64;
    stats.work as f64 / p + stats.rounds as f64
}

/// A small helper bundling the quantities the experiment tables report for a
/// single measured run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrentModel {
    /// Problem size the run was measured at.
    pub n: usize,
    /// Measured work (operations).
    pub work: u64,
    /// Measured depth (rounds).
    pub rounds: u64,
}

impl BrentModel {
    /// Build a model row from a problem size and a tracker snapshot.
    #[must_use]
    pub fn from_stats(n: usize, stats: Stats) -> Self {
        BrentModel {
            n,
            work: stats.work,
            rounds: stats.rounds,
        }
    }

    /// Work divided by `n` — constant for linear-work algorithms, ~`log n`
    /// for `O(n log n)`-work algorithms, ~`log log n` for the paper's bound.
    #[must_use]
    pub fn work_per_n(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.work as f64 / self.n as f64
        }
    }

    /// Rounds divided by `log2 n` — roughly constant for `O(log n)`-depth
    /// algorithms.
    #[must_use]
    pub fn rounds_per_log_n(&self) -> f64 {
        let log_n = (self.n.max(2) as f64).log2();
        self.rounds as f64 / log_n
    }

    /// Predicted time on `p` processors (Brent).
    #[must_use]
    pub fn time_on(&self, p: usize) -> f64 {
        predicted_time(
            Stats {
                work: self.work,
                rounds: self.rounds,
            },
            p,
        )
    }

    /// Predicted self-relative speedup on `p` processors vs one processor.
    #[must_use]
    pub fn speedup_on(&self, p: usize) -> f64 {
        let t1 = self.time_on(1);
        let tp = self.time_on(p);
        if tp == 0.0 {
            1.0
        } else {
            t1 / tp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_time_basic() {
        let stats = Stats {
            work: 1000,
            rounds: 10,
        };
        assert!((predicted_time(stats, 1) - 1010.0).abs() < 1e-9);
        assert!((predicted_time(stats, 10) - 110.0).abs() < 1e-9);
        assert!(
            (predicted_time(stats, 0) - 1010.0).abs() < 1e-9,
            "p=0 behaves like p=1"
        );
    }

    #[test]
    fn speedup_saturates_at_depth() {
        let m = BrentModel {
            n: 1 << 20,
            work: 1 << 24,
            rounds: 100,
        };
        // With unboundedly many processors the time approaches the depth, so
        // the speedup approaches work/depth + 1.
        let huge = m.speedup_on(1 << 30);
        let ideal = (m.work as f64 + 100.0) / 100.0;
        assert!((huge - ideal).abs() / ideal < 1e-3);
        // Speedup is monotone in p.
        assert!(m.speedup_on(2) > m.speedup_on(1));
        assert!(m.speedup_on(16) > m.speedup_on(4));
    }

    #[test]
    fn work_per_n_and_rounds_per_log() {
        let m = BrentModel {
            n: 1024,
            work: 10 * 1024,
            rounds: 30,
        };
        assert!((m.work_per_n() - 10.0).abs() < 1e-9);
        assert!((m.rounds_per_log_n() - 3.0).abs() < 1e-9);
        let zero = BrentModel {
            n: 0,
            work: 0,
            rounds: 0,
        };
        assert_eq!(zero.work_per_n(), 0.0);
    }
}

//! Host cache-topology probe: the one place physical tuning constants come
//! from.
//!
//! Every cache-aware layer in this workspace used to carry its own
//! host-tuned constant — a 2048-element grain in [`crate::Ctx`], a 4M-counter
//! histogram budget in the radix `block_plan`, 64 wavefront lanes in the
//! bucketed list-ranking walks, 2 KB scatter tiles — all calibrated on one
//! container and silently wrong everywhere else.  [`Topology`] probes the
//! actual machine once (Linux sysfs, with documented fallbacks) and derives
//! each of those quantities, so the physical geometry follows the host while
//! the *model* (tracked work/depth charges) never reads any of it.
//!
//! # Charge discipline
//!
//! Nothing in this module may influence a tracked charge.  Charges are a
//! machine-independent model: the same input must produce bit-identical
//! `work`/`rounds` on every host, at every thread count, under every engine
//! (see `DESIGN.md`, "Charge discipline").  The probe therefore only feeds
//! *physical* decisions — block counts, tile sizes, lane widths, and the
//! footprint-adaptive engine resolution ([`crate::Ctx::scatter_engine_for`])
//! whose candidate engines charge identically by construction.
//!
//! # Mocking
//!
//! Tests pin behaviour on both sides of the LLC boundary by overriding the
//! probed values: `Topology::probe().with_llc_bytes(1 << 20)` attached via
//! `Ctx::with_topology` moves the boundary without needing 100 MB inputs.

use std::sync::OnceLock;

/// Conservative fallback last-level cache size (32 MB) when sysfs is absent
/// (non-Linux, sandboxed, or exotic hosts).
const FALLBACK_LLC_BYTES: usize = 32 << 20;
/// Fallback per-core L2 size (1 MB).
const FALLBACK_L2_BYTES: usize = 1 << 20;
/// Fallback L1 data-cache size (32 KB).
const FALLBACK_L1D_BYTES: usize = 32 << 10;
/// Fallback cache-line size; 64 bytes on every mainstream CPU of the last
/// two decades.
const FALLBACK_CACHE_LINE: usize = 64;

/// A snapshot of the host's memory hierarchy: cache capacities, line size,
/// and core count.  Cheap to copy; carried by value on [`crate::Ctx`].
///
/// Obtain one with [`Topology::probe`] (cached after the first call) and
/// adjust it for tests with the `with_*` builders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    llc_bytes: usize,
    l2_bytes: usize,
    l1d_bytes: usize,
    cache_line: usize,
    cores: usize,
}

impl Topology {
    /// Probe the host once and return the cached snapshot.
    ///
    /// On Linux this reads `/sys/devices/system/cpu/cpu0/cache/index*/`
    /// (`level`, `type`, `size`, `coherency_line_size`), taking the
    /// highest-level data/unified cache as the LLC.  Any field that cannot
    /// be read falls back to a conservative default (32 MB LLC, 1 MB L2,
    /// 32 KB L1d, 64 B lines, 1 core).
    pub fn probe() -> Self {
        static PROBED: OnceLock<Topology> = OnceLock::new();
        *PROBED.get_or_init(Self::probe_uncached)
    }

    /// The documented fallback snapshot (what [`Topology::probe`] returns
    /// when sysfs is unavailable), with the core count still taken from the
    /// runtime.  Public so docs/tests can reference the exact values.
    pub fn fallback() -> Self {
        Topology {
            llc_bytes: FALLBACK_LLC_BYTES,
            l2_bytes: FALLBACK_L2_BYTES,
            l1d_bytes: FALLBACK_L1D_BYTES,
            cache_line: FALLBACK_CACHE_LINE,
            cores: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }

    fn probe_uncached() -> Self {
        let mut topo = Self::fallback();
        let base = "/sys/devices/system/cpu/cpu0/cache";
        let mut best_level = 0u32;
        for index in 0..10 {
            let dir = format!("{base}/index{index}");
            let Some(level) = read_sysfs_u32(&format!("{dir}/level")) else {
                continue;
            };
            let kind = std::fs::read_to_string(format!("{dir}/type")).unwrap_or_default();
            if kind.trim() == "Instruction" {
                continue;
            }
            let Some(size) = read_sysfs_size(&format!("{dir}/size")) else {
                continue;
            };
            if let Some(line) = read_sysfs_u32(&format!("{dir}/coherency_line_size")) {
                if line > 0 {
                    topo.cache_line = line as usize;
                }
            }
            match level {
                1 => topo.l1d_bytes = size,
                2 => topo.l2_bytes = size,
                _ => {}
            }
            if level >= best_level {
                best_level = level;
                topo.llc_bytes = size;
            }
        }
        topo
    }

    /// Last-level cache capacity in bytes (the footprint boundary the
    /// adaptive engine selection compares against).
    pub fn llc_bytes(&self) -> usize {
        self.llc_bytes
    }

    /// Per-core L2 capacity in bytes.
    pub fn l2_bytes(&self) -> usize {
        self.l2_bytes
    }

    /// L1 data-cache capacity in bytes.
    pub fn l1d_bytes(&self) -> usize {
        self.l1d_bytes
    }

    /// Cache-line size in bytes.
    pub fn cache_line(&self) -> usize {
        self.cache_line
    }

    /// Number of logical cores available to this process.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Override the LLC capacity (tests: mock the footprint boundary).
    #[must_use]
    pub fn with_llc_bytes(mut self, bytes: usize) -> Self {
        self.llc_bytes = bytes.max(1);
        self
    }

    /// Override the L2 capacity.
    #[must_use]
    pub fn with_l2_bytes(mut self, bytes: usize) -> Self {
        self.l2_bytes = bytes.max(1);
        self
    }

    /// Override the L1d capacity.
    #[must_use]
    pub fn with_l1d_bytes(mut self, bytes: usize) -> Self {
        self.l1d_bytes = bytes.max(1);
        self
    }

    /// Override the cache-line size.
    #[must_use]
    pub fn with_cache_line(mut self, bytes: usize) -> Self {
        self.cache_line = bytes.max(1);
        self
    }

    /// Override the core count (tests: pin the multi-core arm of the
    /// engine selection on single-core runners and vice versa).
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores.max(1);
        self
    }

    // -----------------------------------------------------------------------
    // Derived physical tuning quantities.  Each replaces a constant that was
    // previously hand-tuned to this repository's original 64-byte-line /
    // large-LLC container; the derivations reproduce the old values on that
    // host exactly and scale sanely elsewhere.  None of these may appear in
    // a tracked charge.
    // -----------------------------------------------------------------------

    /// Default parallel grain: the minimum items per rayon task.  32 cache
    /// lines of 4-byte elements per task (2048 on 64-byte lines), clamped to
    /// `[1024, 8192]` so degenerate line sizes stay sane.
    pub fn default_grain(&self) -> usize {
        (self.cache_line * 32).clamp(1024, 8192)
    }

    /// Entries per write-combining scatter tile: 32 cache lines of staging
    /// per bucket at 16 bytes per entry (128 entries / 2 KB tiles on 64-byte
    /// lines), clamped to `[64, 512]`.
    pub fn scatter_tile_entries(&self) -> usize {
        ((self.cache_line * 32) / 16).clamp(64, 512)
    }

    /// Concurrent lanes per wavefront batch in the bucketed list-ranking
    /// walks.  Each lane keeps ~12 bytes of hot state in L1 alongside the
    /// ruler tables; `l1d / 768` reproduces the tuned 64 lanes at 48 KB L1d,
    /// clamped to `[16, 64]` (the compile-time lane-array bound).
    pub fn wavefront_lanes(&self) -> usize {
        (self.l1d_bytes / 768).clamp(16, 64)
    }

    /// Counter budget for the radix-sort histogram matrix (`blocks × radix`
    /// `u32` cells): an eighth of the LLC, with a 64K floor.  On hosts with
    /// ≥ 32 MB of LLC this is at least the historical 4M-counter budget's
    /// effective use (the block cap of 256 binds first), so block plans are
    /// unchanged there; on small-LLC hosts it shrinks the matrix to fit.
    pub fn radix_counter_budget(&self) -> usize {
        (self.llc_bytes / 8 / std::mem::size_of::<u32>()).max(1 << 16)
    }

    /// Largest CSR key count for which the direct blocked build (per-block
    /// histogram rows of `num_keys` `u32` counters) is allowed: the rows of
    /// the counting pass should fit in half the LLC.  Clamped to a 64K floor
    /// so tiny hosts still take the direct path on small inputs.
    pub fn csr_direct_counter_budget(&self) -> usize {
        (self.llc_bytes / 2 / std::mem::size_of::<u32>()).max(1 << 16)
    }
}

/// Read and parse a small integer sysfs file (`"64\n"` → 64).
fn read_sysfs_u32(path: &str) -> Option<u32> {
    std::fs::read_to_string(path).ok()?.trim().parse().ok()
}

/// Read and parse a sysfs size file (`"107520K\n"` → 110 100 480).
fn read_sysfs_size(path: &str) -> Option<usize> {
    let raw = std::fs::read_to_string(path).ok()?;
    let s = raw.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1usize << 10),
        b'M' | b'm' => (&s[..s.len() - 1], 1usize << 20),
        b'G' | b'g' => (&s[..s.len() - 1], 1usize << 30),
        _ => (s, 1),
    };
    let value: usize = digits.parse().ok()?;
    (value > 0).then_some(value * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_sane_and_cached() {
        let t = Topology::probe();
        assert!(t.llc_bytes() >= t.l1d_bytes());
        assert!(t.cache_line() >= 16 && t.cache_line() <= 1024);
        assert!(t.cores() >= 1);
        assert_eq!(t, Topology::probe());
    }

    #[test]
    fn derived_values_reproduce_tuned_constants_on_reference_host() {
        // 64-byte lines / 48 KB L1d — the host the historical constants were
        // tuned on — must reproduce them exactly.
        let t = Topology::fallback()
            .with_cache_line(64)
            .with_l1d_bytes(48 << 10);
        assert_eq!(t.default_grain(), 2048);
        assert_eq!(t.scatter_tile_entries(), 128);
        assert_eq!(t.wavefront_lanes(), 64);
    }

    #[test]
    fn derived_values_shrink_on_small_hosts_within_bounds() {
        let t = Topology::fallback()
            .with_cache_line(32)
            .with_l1d_bytes(16 << 10)
            .with_llc_bytes(2 << 20);
        assert_eq!(t.default_grain(), 1024);
        assert_eq!(t.scatter_tile_entries(), 64);
        assert!(t.wavefront_lanes() >= 16 && t.wavefront_lanes() <= 64);
        assert_eq!(t.radix_counter_budget(), 1 << 16);
        assert_eq!(t.csr_direct_counter_budget(), (2 << 20) / 8);
    }

    #[test]
    fn size_parsing_handles_suffixes() {
        assert_eq!(read_sysfs_size("/nonexistent"), None);
        // Parsing internals via a temp file.
        let dir = std::env::temp_dir().join("sfcp_topology_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("size");
        std::fs::write(&p, "107520K\n").unwrap();
        assert_eq!(read_sysfs_size(p.to_str().unwrap()), Some(107520 << 10));
        std::fs::write(&p, "8M\n").unwrap();
        assert_eq!(read_sysfs_size(p.to_str().unwrap()), Some(8 << 20));
    }
}

//! # sfcp-pram — a work/depth PRAM cost model over rayon
//!
//! The JáJá–Ryu algorithm (and every algorithm in this workspace) is stated
//! for the **arbitrary CRCW PRAM**: `p` synchronous processors sharing a
//! memory in which concurrent reads always succeed and, on concurrent writes
//! to the same cell, *some* (arbitrary) writer wins.  Nobody has a PRAM, so
//! this crate provides the substitution described in `DESIGN.md`:
//!
//! * a [`Tracker`] that counts **operations** (total work) and **rounds**
//!   (parallel steps ≈ depth), the two quantities the paper's theorems bound;
//! * an execution context [`Ctx`] that lets the *same* algorithm code run
//!   either sequentially or thread-parallel (via rayon) while charging the
//!   identical work/depth costs, so that measured operation counts are
//!   deterministic and independent of the thread count;
//! * arbitrary-CRCW shared-memory cells ([`crcw::ArbitraryCell`]) and an
//!   insert-if-absent table ([`crcw::CrcwTable`]) standing in for the paper's
//!   `BB[1..n, 1..n]` auxiliary array;
//! * a scratch-buffer [`Workspace`] on every [`Ctx`] — checkout/return pools
//!   of reusable vectors so the `O(log n)`-round doubling loops allocate
//!   O(1) buffers per run, plus the [`SortEngine`] selector that routes the
//!   integer-sort/rank layer between the packed cache-aware engine and the
//!   permutation baseline;
//! * a failure model: typed [`Error`]s for the fallible (`try_`) surface of
//!   the downstream crates, a poison/recover protocol on the workspace
//!   ([`Workspace::recover`] / [`Ctx::recover`]) so a context survives a
//!   failed invocation with warm pools, and a deterministic fault-injection
//!   layer ([`faults`]) that is zero-cost when disabled;
//! * an observability layer ([`trace`]): RAII spans ([`Ctx::span`]) opened
//!   at every engine pass and pipeline phase, recording wall time, charge
//!   deltas, and workspace churn into a per-context ring, plus
//!   engine-decision records at every `Auto`-scatter resolution
//!   ([`Ctx::resolve_scatter`]) — also zero-cost when disabled, and
//!   charge-neutral in every state;
//! * [`brent::predicted_time`], Brent's scheduling principle
//!   (`time ≈ work / p + depth`), used by the benchmark harness to convert
//!   (work, depth) pairs into the per-processor running times that the
//!   paper's comparison table is phrased in.
//!
//! ## Quick example
//!
//! ```
//! use sfcp_pram::{Ctx, Mode};
//!
//! let ctx = Ctx::new(Mode::Parallel);
//! let squares: Vec<u64> = ctx.par_map_idx(1000, |i| (i * i) as u64);
//! assert_eq!(squares[31], 961);
//! let stats = ctx.stats();
//! assert!(stats.work >= 1000);   // at least one operation per element
//! assert!(stats.rounds >= 1);    // one parallel round
//! ```

// Every public item of this crate is part of the documented substitution
// surface; the CI rustdoc gate (`RUSTDOCFLAGS="-D warnings" cargo doc`)
// turns a missing or broken doc into a build failure.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod brent;
pub mod crcw;
pub mod ctx;
pub mod error;
pub mod faults;
pub mod fxhash;
pub mod topology;
pub mod trace;
pub mod tracker;
pub mod workspace;

pub use brent::{predicted_time, BrentModel};
pub use crcw::{ArbitraryCell, CommonCell, CrcwTable};
pub use ctx::{Ctx, Mode, RankEngine, ScatterEngine, SortEngine};
pub use error::{check_index_width, Error, MAX_DOMAIN};
pub use topology::Topology;
pub use trace::{Span, Trace, TraceSnapshot, TraceSummary};
pub use tracker::{Stats, Tracker};
pub use workspace::{Rec, Scratch, Workspace, WorkspaceStats};

/// Convenience: smallest power of two `>= x` (returns 1 for `x == 0`).
///
/// Several of the paper's algorithms (the simple m.s.p. tournament,
/// *Algorithm partition*) assume power-of-two sizes "for convenience"; the
/// implementations pad with sentinels using this helper.
#[inline]
pub fn next_pow2(x: usize) -> usize {
    x.max(1).next_power_of_two()
}

/// Convenience: `ceil(log2(x))` with `ceil_log2(0) == 0` and `ceil_log2(1) == 0`.
#[inline]
pub fn ceil_log2(x: usize) -> u32 {
    if x <= 1 {
        0
    } else {
        usize::BITS - (x - 1).leading_zeros()
    }
}

/// Convenience: `floor(log2(x))` with `floor_log2(0) == 0`.
#[inline]
pub fn floor_log2(x: usize) -> u32 {
    if x == 0 {
        0
    } else {
        usize::BITS - 1 - x.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pow2_basic() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 4);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1023), 1024);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    fn ceil_log2_basic() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 20), 20);
        assert_eq!(ceil_log2((1 << 20) + 1), 21);
    }

    #[test]
    fn floor_log2_basic() {
        assert_eq!(floor_log2(0), 0);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(1 << 20), 20);
        assert_eq!(floor_log2((1 << 20) + 5), 20);
    }

    #[test]
    fn log_identities() {
        for x in 1..2000usize {
            let c = ceil_log2(x);
            let f = floor_log2(x);
            assert!((1usize << c) >= x);
            assert!((1usize << f) <= x);
            if x.is_power_of_two() {
                assert_eq!(c, f);
            } else {
                assert_eq!(c, f + 1);
            }
        }
    }
}

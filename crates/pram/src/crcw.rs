//! Arbitrary-CRCW shared memory abstractions.
//!
//! The paper's model allows many processors to write the same memory cell in
//! one step; an *arbitrary* one of them succeeds.  Two idioms in the paper
//! rely on this:
//!
//! * electing a representative among concurrent writers (e.g. choosing a
//!   leader for each cycle, or the "first marked position" style steps) —
//!   modelled by [`ArbitraryCell`];
//! * *Algorithm partition* (Section 3.2) writes positions into a huge table
//!   `BB[EQ[d1], EQ[d2]]` so that every distinct pair of labels ends up with
//!   exactly one representative position — modelled by [`CrcwTable`], an
//!   insert-if-absent concurrent map (the `O(n^2)` table of the paper, with
//!   the memory reduced the same way the paper cites \[3\] for).
//!
//! The *common* CRCW variant (all concurrent writers must write the same
//! value) is provided as [`CommonCell`] with a debug-mode check.

use crate::fxhash::FxBuildHasher;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

/// A shared cell with arbitrary-CRCW write semantics.
///
/// Within one "round" (between [`ArbitraryCell::clear`] calls), the first
/// successful writer wins and later writes are ignored.  Which concurrent
/// writer succeeds is unspecified — exactly the arbitrary CRCW contract.
#[derive(Debug)]
pub struct ArbitraryCell {
    /// Encodes `Option<u64>`: `EMPTY` means no write has happened.
    slot: AtomicU64,
}

const EMPTY: u64 = u64::MAX;

impl Default for ArbitraryCell {
    fn default() -> Self {
        Self::new()
    }
}

impl ArbitraryCell {
    /// An empty cell.
    #[must_use]
    pub fn new() -> Self {
        ArbitraryCell {
            slot: AtomicU64::new(EMPTY),
        }
    }

    /// Attempt to write `value` (must be `< u64::MAX`).  Returns the value
    /// that ended up stored (the winner's value).
    pub fn write(&self, value: u64) -> u64 {
        debug_assert!(value != EMPTY, "u64::MAX is reserved as the empty marker");
        match self
            .slot
            .compare_exchange(EMPTY, value, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => value,
            Err(current) => current,
        }
    }

    /// Read the cell, `None` if nobody has written since the last clear.
    #[must_use]
    pub fn read(&self) -> Option<u64> {
        let v = self.slot.load(Ordering::Acquire);
        if v == EMPTY {
            None
        } else {
            Some(v)
        }
    }

    /// Reset the cell to empty (a new round).
    pub fn clear(&self) {
        self.slot.store(EMPTY, Ordering::Release);
    }
}

/// A shared cell with *common*-CRCW write semantics: concurrent writers are
/// required to write the same value.  Violations are caught in debug builds.
#[derive(Debug)]
pub struct CommonCell {
    slot: AtomicU64,
}

impl Default for CommonCell {
    fn default() -> Self {
        Self::new()
    }
}

impl CommonCell {
    /// An empty cell.
    #[must_use]
    pub fn new() -> Self {
        CommonCell {
            slot: AtomicU64::new(EMPTY),
        }
    }

    /// Write `value`; in debug builds, panics if a different value was
    /// already written this round (which would violate the common-CRCW
    /// contract the calling algorithm claims to obey).
    pub fn write(&self, value: u64) {
        debug_assert!(value != EMPTY, "u64::MAX is reserved as the empty marker");
        let prev = self.slot.swap(value, Ordering::AcqRel);
        debug_assert!(
            prev == EMPTY || prev == value,
            "common CRCW violation: {prev} overwritten by {value}"
        );
    }

    /// Read the cell, `None` if nobody has written since the last clear.
    #[must_use]
    pub fn read(&self) -> Option<u64> {
        let v = self.slot.load(Ordering::Acquire);
        if v == EMPTY {
            None
        } else {
            Some(v)
        }
    }

    /// Reset the cell to empty.
    pub fn clear(&self) {
        self.slot.store(EMPTY, Ordering::Release);
    }
}

/// Number of shards used by [`CrcwTable`]; a power of two so the shard can be
/// selected with a mask.
const SHARDS: usize = 64;

/// A concurrent insert-if-absent table standing in for the paper's
/// `BB[1..n, 1..n]` auxiliary array.
///
/// `insert_arbitrary(key, value)` stores `value` only if `key` is absent and
/// returns the value that is stored after the call — i.e. every key ends up
/// with exactly one representative chosen arbitrarily among the concurrent
/// writers, which is precisely how *Algorithm partition* uses `BB`.
#[derive(Debug)]
pub struct CrcwTable<K: Eq + Hash> {
    shards: Vec<Mutex<HashMap<K, u64, FxBuildHasher>>>,
    hasher: FxBuildHasher,
}

impl<K: Eq + Hash> Default for CrcwTable<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash> CrcwTable<K> {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty table pre-sized for roughly `cap` keys.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        let per_shard = cap / SHARDS + 1;
        CrcwTable {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(HashMap::with_capacity_and_hasher(per_shard, FxBuildHasher)))
                .collect(),
            hasher: FxBuildHasher,
        }
    }

    #[inline]
    fn shard_of(&self, key: &K) -> usize {
        use std::hash::BuildHasher;

        // Use the high bits: the low bits pick the bucket inside the shard.
        (self.hasher.hash_one(key) >> 57) as usize & (SHARDS - 1)
    }

    /// Insert `value` for `key` if absent; return the stored value (the
    /// winner).  Concurrent calls with the same key race arbitrarily, which
    /// is the intended CRCW behaviour.
    pub fn insert_arbitrary(&self, key: K, value: u64) -> u64 {
        let shard = self.shard_of(&key);
        let mut guard = self.shards[shard].lock();
        *guard.entry(key).or_insert(value)
    }

    /// Read the representative for `key`, if any.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<u64> {
        let shard = self.shard_of(key);
        let guard = self.shards[shard].lock();
        guard.get(key).copied()
    }

    /// Total number of distinct keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove all entries (a new round of *Algorithm partition*).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn arbitrary_cell_first_writer_wins() {
        let cell = ArbitraryCell::new();
        assert_eq!(cell.read(), None);
        assert_eq!(cell.write(7), 7);
        assert_eq!(cell.write(9), 7);
        assert_eq!(cell.read(), Some(7));
        cell.clear();
        assert_eq!(cell.read(), None);
        assert_eq!(cell.write(9), 9);
    }

    #[test]
    fn arbitrary_cell_concurrent_single_winner() {
        let cell = ArbitraryCell::new();
        let winners = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cell = &cell;
                let winners = &winners;
                scope.spawn(move || {
                    let stored = cell.write(t + 1);
                    if stored == t + 1 {
                        winners.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        // Exactly one thread observed its own value as the stored one at the
        // moment of writing.  (Others may later read the winner's value.)
        assert_eq!(winners.load(Ordering::Relaxed), 1);
        assert!(cell.read().is_some());
    }

    #[test]
    fn common_cell_roundtrip() {
        let cell = CommonCell::new();
        assert_eq!(cell.read(), None);
        cell.write(42);
        cell.write(42);
        assert_eq!(cell.read(), Some(42));
        cell.clear();
        assert_eq!(cell.read(), None);
    }

    #[test]
    #[should_panic(expected = "common CRCW violation")]
    #[cfg(debug_assertions)]
    fn common_cell_detects_violation() {
        let cell = CommonCell::new();
        cell.write(1);
        cell.write(2);
    }

    #[test]
    fn crcw_table_insert_if_absent() {
        let table: CrcwTable<(u32, u32)> = CrcwTable::new();
        assert!(table.is_empty());
        assert_eq!(table.insert_arbitrary((1, 2), 10), 10);
        assert_eq!(table.insert_arbitrary((1, 2), 99), 10);
        assert_eq!(table.insert_arbitrary((2, 1), 20), 20);
        assert_eq!(table.get(&(1, 2)), Some(10));
        assert_eq!(table.get(&(3, 3)), None);
        assert_eq!(table.len(), 2);
        table.clear();
        assert!(table.is_empty());
    }

    #[test]
    fn crcw_table_concurrent_unique_representative() {
        let table: CrcwTable<u64> = CrcwTable::with_capacity(1024);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let table = &table;
                scope.spawn(move || {
                    for key in 0..1000u64 {
                        // All threads insert different values for the same key.
                        let _ = table.insert_arbitrary(key, t * 10_000 + key);
                    }
                });
            }
        });
        assert_eq!(table.len(), 1000);
        for key in 0..1000u64 {
            let v = table.get(&key).unwrap();
            // The stored value must come from one of the writers of this key.
            assert_eq!(v % 10_000, key);
        }
    }
}

//! Span/counter instrumentation: phase trees, Perfetto export, and
//! engine-decision logging.
//!
//! The repo's *model* costs (work/depth charges) are deterministic and
//! regression-pinned, but the *physical* behaviour of a run — wall time per
//! pass, workspace churn, which engine [`ScatterEngine::Auto`] actually
//! resolved and why — used to be visible only through ad-hoc `Instant`
//! printlns.  This module is the structured replacement: RAII **spans**
//! ([`Ctx::span`]) opened at every engine pass and pipeline phase, recorded
//! into an in-memory ring on the context, plus **engine-decision records**
//! captured at every `Auto`-scatter resolution ([`Ctx::resolve_scatter`]).
//!
//! ## Disabled-cost contract
//!
//! Like the fault-injection layer ([`crate::faults`]), tracing is
//! dependency-free and **zero-cost when disabled**: [`Ctx::span`] performs a
//! single relaxed atomic load and returns a no-op guard, and
//! [`Ctx::resolve_scatter`] adds the same single load to the untraced
//! resolution.  In *any* state the layer charges nothing to the cost model —
//! span open/close only reads the tracker, workspace counters, and the
//! monotonic clock — so tracked work/depth is bit-identical with tracing on
//! or off (`tests/charge_determinism.rs` pins this across the engine grid).
//!
//! ## Span model
//!
//! A span is opened with `ctx.span("name")` and closed when the returned
//! [`Span`] guard drops.  Spans opened while another is open nest: the
//! recorder keeps an open-span stack, so the closed records form a forest
//! (the *phase tree*).  Each closed span records wall time, the charge delta
//! ([`Tracker::since`]), workspace deltas (checkouts, misses, and the
//! `pooled_bytes` high-water), and optional structured attributes
//! ([`Span::attr`]).
//!
//! Recovery ([`Ctx::recover`] / [`Ctx::reset_stats`]) **invalidates** open
//! spans: the recorder epoch is bumped, and a guard whose epoch is stale
//! discards itself at close instead of recording garbage deltas against a
//! reset tracker (counted in [`TraceSnapshot::open_discarded`]).
//!
//! ## Sinks
//!
//! A [`TraceSnapshot`] (taken with [`Trace::snapshot`]) renders three ways:
//!
//! * [`TraceSnapshot::render_tree`] — a human-readable phase tree with
//!   total/self wall time and charges per node (what
//!   `examples/profile_decompose.rs` prints);
//! * [`TraceSnapshot::to_chrome_json`] — a Chrome/Perfetto-compatible
//!   `trace.json` (open it in `ui.perfetto.dev`); spans become complete
//!   (`"ph":"X"`) events, engine decisions become instant (`"ph":"i"`)
//!   events;
//! * [`TraceSnapshot::summary`] — a compact machine-readable aggregation by
//!   span name ([`TraceSummary::to_json`]), which `bench_json` embeds per
//!   row.
//!
//! [`ScatterEngine::Auto`]: crate::ScatterEngine::Auto
//! [`Ctx::span`]: crate::Ctx::span
//! [`Ctx::resolve_scatter`]: crate::Ctx::resolve_scatter
//! [`Ctx::recover`]: crate::Ctx::recover
//! [`Ctx::reset_stats`]: crate::Ctx::reset_stats
//! [`Tracker::since`]: crate::Tracker::since

use crate::tracker::{Stats, Tracker};
use crate::workspace::Workspace;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Default ring capacity: the recorder keeps at most this many closed spans
/// (and, independently, this many decision records), dropping the oldest
/// once full.  A warm 1e6 decompose emits well under a hundred spans, so the
/// default comfortably holds hundreds of traced runs.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// One closed span: a node of the phase tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Recorder-unique id (monotonic per enable-epoch).
    pub id: u32,
    /// Id of the enclosing span, if one was open.
    pub parent: Option<u32>,
    /// Nesting depth at open time (0 for roots).
    pub depth: u16,
    /// Static span name (`"decompose"`, `"list_rank"`, …).
    pub name: &'static str,
    /// Open time in nanoseconds since the trace was enabled.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub wall_ns: u64,
    /// Work/depth charged between open and close ([`Tracker::since`]).
    pub charge: Stats,
    /// Workspace checkouts served between open and close.
    pub checkouts: u64,
    /// Checkouts that missed the pools (fresh allocations) in the span.
    pub misses: u64,
    /// High-water mark of `Workspace::pooled_bytes` observed at the span's
    /// endpoints (pool residency is accounted at return time, so the close
    /// value is the interesting one for warm-pool sizing).
    pub pooled_bytes_hw: u64,
    /// Structured attributes attached via [`Span::attr`].
    pub attrs: Vec<(&'static str, u64)>,
}

/// One engine-decision record: an `Auto`-scatter resolution with the inputs
/// that drove it (see `Ctx::scatter_engine_for`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Id of the span open when the decision was taken, if any.
    pub span: Option<u32>,
    /// Static name of the dispatch site (`"scatter_into"`, …).
    pub site: &'static str,
    /// Destination footprint of the pass in bytes.
    pub dest_bytes: u64,
    /// The probed last-level cache size consulted.
    pub llc_bytes: u64,
    /// The probed core count consulted.
    pub cores: u64,
    /// The resolved engine (`"Direct"` or `"Combining"`).
    pub resolved: &'static str,
    /// Decision time in nanoseconds since the trace was enabled.
    pub at_ns: u64,
}

/// Everything the recorder needs under one lock.
#[derive(Debug)]
struct TraceState {
    /// Monotonic base set when tracing is enabled; all record timestamps are
    /// offsets from it.
    base: Option<Instant>,
    spans: VecDeque<SpanRecord>,
    decisions: VecDeque<DecisionRecord>,
    /// Ids of currently open spans, innermost last.
    stack: Vec<u32>,
    next_id: u32,
    /// Bumped by `invalidate_open`; guards from an older epoch discard.
    epoch: u64,
    dropped_spans: u64,
    open_discarded: u64,
    capacity: usize,
}

/// The per-[`Ctx`](crate::Ctx) trace recorder: an enable flag plus a ring of
/// closed [`SpanRecord`]s and [`DecisionRecord`]s.
#[derive(Debug)]
pub struct Trace {
    /// Fast-path gate: `Ctx::span` / `Ctx::resolve_scatter` return after one
    /// relaxed load while tracing is disabled, so hot paths never take the
    /// state lock.
    active: AtomicBool,
    state: Mutex<TraceState>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Trace {
    /// A disabled recorder with the default ring capacity.
    #[must_use]
    pub fn new() -> Self {
        Trace {
            active: AtomicBool::new(false),
            state: Mutex::new(TraceState {
                base: None,
                spans: VecDeque::new(),
                decisions: VecDeque::new(),
                stack: Vec::new(),
                next_id: 0,
                epoch: 0,
                dropped_spans: 0,
                open_discarded: 0,
                capacity: DEFAULT_RING_CAPACITY,
            }),
        }
    }

    /// Whether spans and decisions are being recorded.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Start recording.  Sets the timestamp base if this is the first enable
    /// (timestamps of later records stay monotonic across disable/enable).
    pub fn enable(&self) {
        let mut st = self.state.lock();
        if st.base.is_none() {
            st.base = Some(Instant::now());
        }
        drop(st);
        self.active.store(true, Ordering::SeqCst);
    }

    /// Stop recording.  Spans currently open are invalidated (their close
    /// discards) — a half-traced pass would otherwise record a misleading
    /// fragment.
    pub fn disable(&self) {
        self.active.store(false, Ordering::SeqCst);
        self.invalidate_open();
    }

    /// Replace the ring capacity (both rings), dropping oldest records as
    /// needed to fit.
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        let mut st = self.state.lock();
        st.capacity = capacity;
        while st.spans.len() > capacity {
            st.spans.pop_front();
            st.dropped_spans += 1;
        }
        while st.decisions.len() > capacity {
            st.decisions.pop_front();
        }
    }

    /// Discard all recorded spans and decisions (open spans are invalidated
    /// too; the enable flag is untouched).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.spans.clear();
        st.decisions.clear();
        st.stack.clear();
        st.epoch += 1;
        st.dropped_spans = 0;
        st.open_discarded = 0;
    }

    /// Invalidate every currently open span: bump the recorder epoch and
    /// clear the open stack, so stale guards discard at close instead of
    /// recording deltas against reset counters (each discard is tallied in
    /// [`TraceSnapshot::open_discarded`] when the guard actually drops).
    /// Called by `Ctx::recover` and `Ctx::reset_stats`.
    pub fn invalidate_open(&self) {
        let mut st = self.state.lock();
        st.stack.clear();
        st.epoch += 1;
    }

    /// Open a span.  Internal: reached through `Ctx::span`, which performs
    /// the disabled fast-path check first.
    pub(crate) fn open<'a>(
        &'a self,
        name: &'static str,
        tracker: &'a Tracker,
        workspace: &'a Workspace,
    ) -> Span<'a> {
        let now = Instant::now();
        let mut st = self.state.lock();
        let base = *st.base.get_or_insert(now);
        let id = st.next_id;
        st.next_id = st.next_id.wrapping_add(1);
        let parent = st.stack.last().copied();
        let depth = st.stack.len().min(u16::MAX as usize) as u16;
        st.stack.push(id);
        let epoch = st.epoch;
        drop(st);
        let ws0 = workspace.stats();
        Span {
            inner: Some(OpenSpan {
                trace: self,
                tracker,
                workspace,
                name,
                id,
                parent,
                depth,
                epoch,
                start: now,
                start_ns: ns_since(base, now),
                charge0: tracker.stats(),
                checkouts0: ws0.checkouts,
                misses0: ws0.misses,
                pooled0: workspace.pooled_bytes(),
                attrs: Vec::new(),
            }),
        }
    }

    /// Record an engine decision against the innermost open span (if any).
    /// Internal: reached through `Ctx::resolve_scatter` after its fast-path
    /// check.
    pub(crate) fn decision(
        &self,
        site: &'static str,
        dest_bytes: u64,
        llc_bytes: u64,
        cores: u64,
        resolved: &'static str,
    ) {
        let now = Instant::now();
        let mut st = self.state.lock();
        let base = *st.base.get_or_insert(now);
        let span = st.stack.last().copied();
        let rec = DecisionRecord {
            span,
            site,
            dest_bytes,
            llc_bytes,
            cores,
            resolved,
            at_ns: ns_since(base, now),
        };
        if st.decisions.len() == st.capacity {
            st.decisions.pop_front();
        }
        st.decisions.push_back(rec);
    }

    /// Close a span (guard drop).
    fn close(&self, open: &OpenSpan<'_>) {
        let wall_ns = u64::try_from(open.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let charge = open.tracker.since(open.charge0);
        let ws = open.workspace.stats();
        let pooled = open.workspace.pooled_bytes();
        let mut st = self.state.lock();
        if st.epoch != open.epoch {
            // Recovery (or disable/clear) invalidated this span while it was
            // open: the counters it snapshotted have been reset, so any
            // delta it could record would be garbage.
            st.open_discarded += 1;
            return;
        }
        // Pop our own id (nested guards close innermost-first, so this is
        // normally the top of the stack; tolerate out-of-order drops).
        if let Some(pos) = st.stack.iter().rposition(|&id| id == open.id) {
            st.stack.truncate(pos);
        }
        let rec = SpanRecord {
            id: open.id,
            parent: open.parent,
            depth: open.depth,
            name: open.name,
            start_ns: open.start_ns,
            wall_ns,
            charge,
            checkouts: ws.checkouts.saturating_sub(open.checkouts0),
            misses: ws.misses.saturating_sub(open.misses0),
            pooled_bytes_hw: pooled.max(open.pooled0),
            attrs: open.attrs.clone(),
        };
        if st.spans.len() == st.capacity {
            st.spans.pop_front();
            st.dropped_spans += 1;
        }
        st.spans.push_back(rec);
    }

    /// A point-in-time copy of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> TraceSnapshot {
        let st = self.state.lock();
        TraceSnapshot {
            spans: st.spans.iter().cloned().collect(),
            decisions: st.decisions.iter().cloned().collect(),
            dropped_spans: st.dropped_spans,
            open_discarded: st.open_discarded,
        }
    }
}

fn ns_since(base: Instant, now: Instant) -> u64 {
    u64::try_from(now.saturating_duration_since(base).as_nanos()).unwrap_or(u64::MAX)
}

/// The live data a span guard carries between open and close.
struct OpenSpan<'a> {
    trace: &'a Trace,
    tracker: &'a Tracker,
    workspace: &'a Workspace,
    name: &'static str,
    id: u32,
    parent: Option<u32>,
    depth: u16,
    epoch: u64,
    start: Instant,
    start_ns: u64,
    charge0: Stats,
    checkouts0: u64,
    misses0: u64,
    pooled0: u64,
    attrs: Vec<(&'static str, u64)>,
}

/// RAII span guard returned by [`Ctx::span`](crate::Ctx::span).  Recording
/// happens when the guard drops; a guard from a disabled recorder is a
/// no-op shell.
pub struct Span<'a> {
    inner: Option<OpenSpan<'a>>,
}

impl Span<'_> {
    /// A guard that records nothing (what `Ctx::span` returns while tracing
    /// is disabled).
    #[must_use]
    pub fn disabled() -> Self {
        Span { inner: None }
    }

    /// Whether this guard will record a span at drop.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a structured `key = value` attribute to the span (no-op when
    /// not recording).  Used for per-pass facts: element counts, doubling
    /// round indices, bucket counts.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if let Some(open) = &mut self.inner {
            open.attrs.push((key, value));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(open) = self.inner.take() {
            open.trace.close(&open);
        }
    }
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("recording", &self.inner.is_some())
            .finish()
    }
}

/// A point-in-time copy of the recorder contents, plus the sinks.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Closed spans, oldest first (the ring may have dropped earlier ones).
    pub spans: Vec<SpanRecord>,
    /// Engine-decision records, oldest first.
    pub decisions: Vec<DecisionRecord>,
    /// Spans the ring evicted to stay within capacity.
    pub dropped_spans: u64,
    /// Open spans invalidated by recovery/disable and discarded at close.
    pub open_discarded: u64,
}

impl TraceSnapshot {
    /// Spans with the given name, in record order.
    #[must_use]
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// Render the phase tree: one line per span, children indented under
    /// parents, with total and self wall time, charges, and workspace
    /// checkouts.  Roots are ordered by start time.
    #[must_use]
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "phase                                     total ms   self ms         work  rounds  checkouts\n",
        );
        // Children of each span id (usize::MAX collects the roots), in
        // record order, which open order preserves within a parent.
        let present: std::collections::HashSet<u32> = self.spans.iter().map(|s| s.id).collect();
        let mut order: Vec<usize> = (0..self.spans.len()).collect();
        order.sort_by_key(|&i| self.spans[i].start_ns);
        let mut children: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for &i in &order {
            let s = &self.spans[i];
            let key = match s.parent {
                Some(p) if present.contains(&p) => u64::from(p),
                _ => u64::MAX,
            };
            children.entry(key).or_default().push(i);
        }
        let mut stack: Vec<(usize, usize)> = children
            .get(&u64::MAX)
            .map(|roots| roots.iter().rev().map(|&i| (i, 0)).collect())
            .unwrap_or_default();
        while let Some((i, indent)) = stack.pop() {
            let s = &self.spans[i];
            let child_ids = children.get(&u64::from(s.id));
            let child_ns: u64 = child_ids
                .map(|c| c.iter().map(|&j| self.spans[j].wall_ns).sum())
                .unwrap_or(0);
            let self_ns = s.wall_ns.saturating_sub(child_ns);
            let mut label = String::new();
            for _ in 0..indent {
                label.push_str("  ");
            }
            label.push_str(s.name);
            for (k, v) in &s.attrs {
                label.push_str(&format!(" {k}={v}"));
            }
            out.push_str(&format!(
                "{label:<40} {:>9.3} {:>9.3} {:>12} {:>7} {:>10}\n",
                s.wall_ns as f64 / 1e6,
                self_ns as f64 / 1e6,
                s.charge.work,
                s.charge.rounds,
                s.checkouts,
            ));
            if let Some(c) = child_ids {
                for &j in c.iter().rev() {
                    stack.push((j, indent + 1));
                }
            }
        }
        if !self.decisions.is_empty() {
            out.push_str(
                "\nscatter decisions (site: dest_bytes vs llc_bytes @ cores -> engine):\n",
            );
            for d in &self.decisions {
                out.push_str(&format!(
                    "  {}: {} vs {} @ {} -> {}\n",
                    d.site, d.dest_bytes, d.llc_bytes, d.cores, d.resolved
                ));
            }
        }
        if self.dropped_spans > 0 || self.open_discarded > 0 {
            out.push_str(&format!(
                "\n({} span(s) evicted by the ring, {} open span(s) discarded by recovery)\n",
                self.dropped_spans, self.open_discarded
            ));
        }
        out
    }

    /// Export as Chrome trace-event JSON (the format `chrome://tracing` and
    /// `ui.perfetto.dev` load).  Spans are complete (`"ph":"X"`) events with
    /// microsecond timestamps; engine decisions are instant (`"ph":"i"`)
    /// events carrying their inputs in `args`.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"work\":{},\"rounds\":{},\
                 \"checkouts\":{},\"misses\":{},\"pooled_bytes_hw\":{}",
                json_str(s.name),
                s.start_ns as f64 / 1e3,
                s.wall_ns as f64 / 1e3,
                s.charge.work,
                s.charge.rounds,
                s.checkouts,
                s.misses,
                s.pooled_bytes_hw,
            ));
            for (k, v) in &s.attrs {
                out.push_str(&format!(",{}:{v}", json_str(k)));
            }
            out.push_str("}}");
        }
        for d in &self.decisions {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n{{\"name\":\"scatter_decision\",\"cat\":\"decision\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":0,\"tid\":0,\"ts\":{:.3},\"args\":{{\"site\":{},\"dest_bytes\":{},\
                 \"llc_bytes\":{},\"cores\":{},\"resolved\":{}}}}}",
                d.at_ns as f64 / 1e3,
                json_str(d.site),
                d.dest_bytes,
                d.llc_bytes,
                d.cores,
                json_str(d.resolved),
            ));
        }
        out.push_str("\n]}");
        out
    }

    /// Aggregate by span name (first-seen order) into the compact summary
    /// `bench_json` embeds per row.
    #[must_use]
    pub fn summary(&self) -> TraceSummary {
        let mut rows: Vec<SummaryRow> = Vec::new();
        // Self time needs per-span child sums.
        let mut child_ns: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let present: std::collections::HashSet<u32> = self.spans.iter().map(|s| s.id).collect();
        for s in &self.spans {
            if let Some(p) = s.parent {
                if present.contains(&p) {
                    *child_ns.entry(p).or_insert(0) += s.wall_ns;
                }
            }
        }
        for s in &self.spans {
            let self_ns = s
                .wall_ns
                .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
            match rows.iter_mut().find(|r| r.name == s.name) {
                Some(r) => {
                    r.count += 1;
                    r.wall_ns += s.wall_ns;
                    r.self_ns += self_ns;
                    r.work += s.charge.work;
                    r.rounds += s.charge.rounds;
                    r.checkouts += s.checkouts;
                }
                None => rows.push(SummaryRow {
                    name: s.name,
                    count: 1,
                    wall_ns: s.wall_ns,
                    self_ns,
                    work: s.charge.work,
                    rounds: s.charge.rounds,
                    checkouts: s.checkouts,
                }),
            }
        }
        let mut decisions: Vec<DecisionSummaryRow> = Vec::new();
        for d in &self.decisions {
            match decisions
                .iter_mut()
                .find(|r| r.site == d.site && r.resolved == d.resolved)
            {
                Some(r) => r.count += 1,
                None => decisions.push(DecisionSummaryRow {
                    site: d.site,
                    resolved: d.resolved,
                    count: 1,
                }),
            }
        }
        TraceSummary { rows, decisions }
    }
}

/// Per-name aggregate of recorded spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryRow {
    /// Span name.
    pub name: &'static str,
    /// Number of spans recorded under this name.
    pub count: u64,
    /// Total wall nanoseconds across those spans.
    pub wall_ns: u64,
    /// Total self (minus recorded children) wall nanoseconds.
    pub self_ns: u64,
    /// Total work charged inside those spans.
    pub work: u64,
    /// Total rounds charged inside those spans.
    pub rounds: u64,
    /// Total workspace checkouts inside those spans.
    pub checkouts: u64,
}

/// Per-(site, resolution) aggregate of engine decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionSummaryRow {
    /// Dispatch-site name.
    pub site: &'static str,
    /// Resolved engine name.
    pub resolved: &'static str,
    /// Number of decisions with this (site, resolution).
    pub count: u64,
}

/// The machine-readable trace aggregation ([`TraceSnapshot::summary`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Per-name span aggregates, in first-seen order.
    pub rows: Vec<SummaryRow>,
    /// Per-(site, resolution) decision aggregates, in first-seen order.
    pub decisions: Vec<DecisionSummaryRow>,
}

impl TraceSummary {
    /// Serialize as one compact JSON object:
    /// `{"spans":[{"name":…,"count":…,"wall_ns":…,"self_ns":…,"work":…,
    /// "rounds":…,"checkouts":…},…],"decisions":[{"site":…,"resolved":…,
    /// "count":…},…]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"spans\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"count\":{},\"wall_ns\":{},\"self_ns\":{},\
                 \"work\":{},\"rounds\":{},\"checkouts\":{}}}",
                json_str(r.name),
                r.count,
                r.wall_ns,
                r.self_ns,
                r.work,
                r.rounds,
                r.checkouts
            ));
        }
        out.push_str("],\"decisions\":[");
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"site\":{},\"resolved\":{},\"count\":{}}}",
                json_str(d.site),
                json_str(d.resolved),
                d.count
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string quoting for the hand-rolled exporters (names are
/// static ASCII identifiers, but quote defensively).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Trace, Tracker, Workspace) {
        (Trace::new(), Tracker::new(), Workspace::new())
    }

    #[test]
    fn disabled_guard_is_inert() {
        let span = Span::disabled();
        assert!(!span.is_recording());
        drop(span);
    }

    #[test]
    fn spans_nest_into_a_tree_with_deltas() {
        let (trace, tracker, ws) = fixture();
        trace.enable();
        {
            let mut outer = trace.open("outer", &tracker, &ws);
            outer.attr("n", 42);
            tracker.charge_step(100);
            {
                let _inner = trace.open("inner", &tracker, &ws);
                tracker.charge_step(10);
                let buf = ws.take_u32(64);
                drop(buf);
            }
        }
        let snap = trace.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let inner = &snap.spans[0];
        let outer = &snap.spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.depth, 0);
        assert_eq!(
            inner.charge,
            Stats {
                work: 10,
                rounds: 1
            }
        );
        assert_eq!(
            outer.charge,
            Stats {
                work: 110,
                rounds: 2
            }
        );
        assert_eq!(inner.checkouts, 1);
        assert_eq!(outer.checkouts, 1);
        assert_eq!(outer.attrs, vec![("n", 42)]);
        assert!(outer.wall_ns >= inner.wall_ns);
    }

    #[test]
    fn invalidated_open_span_discards_instead_of_recording() {
        let (trace, tracker, ws) = fixture();
        trace.enable();
        let span = trace.open("orphan", &tracker, &ws);
        tracker.charge_step(50);
        trace.invalidate_open(); // what Ctx::recover / reset_stats call
        tracker.reset();
        drop(span);
        let snap = trace.snapshot();
        assert!(snap.spans.is_empty());
        assert_eq!(snap.open_discarded, 1);
    }

    #[test]
    fn ring_evicts_oldest() {
        let (trace, tracker, ws) = fixture();
        trace.set_capacity(4);
        trace.enable();
        for _ in 0..10 {
            drop(trace.open("s", &tracker, &ws));
        }
        let snap = trace.snapshot();
        assert_eq!(snap.spans.len(), 4);
        assert_eq!(snap.dropped_spans, 6);
    }

    #[test]
    fn decisions_record_inputs_and_attach_to_open_span() {
        let (trace, tracker, ws) = fixture();
        trace.enable();
        let span = trace.open("pass", &tracker, &ws);
        trace.decision("scatter_into", 1 << 20, 1 << 17, 4, "Combining");
        drop(span);
        let snap = trace.snapshot();
        assert_eq!(snap.decisions.len(), 1);
        let d = &snap.decisions[0];
        assert_eq!(d.site, "scatter_into");
        assert_eq!(d.resolved, "Combining");
        assert_eq!(d.span, Some(snap.spans[0].id));
        assert_eq!(d.dest_bytes, 1 << 20);
        assert_eq!(d.llc_bytes, 1 << 17);
        assert_eq!(d.cores, 4);
    }

    #[test]
    fn sinks_render_without_panicking_and_contain_names() {
        let (trace, tracker, ws) = fixture();
        trace.enable();
        {
            let _outer = trace.open("decompose", &tracker, &ws);
            let _inner = trace.open("list_rank", &tracker, &ws);
            trace.decision("scatter_into", 8, 16, 1, "Direct");
        }
        let snap = trace.snapshot();
        let tree = snap.render_tree();
        assert!(tree.contains("decompose"));
        assert!(tree.contains("  list_rank"));
        assert!(tree.contains("scatter_into"));
        let json = snap.to_chrome_json();
        assert!(json.contains("\"name\":\"decompose\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        let summary = snap.summary();
        assert_eq!(summary.rows.len(), 2);
        assert_eq!(summary.decisions.len(), 1);
        let sj = summary.to_json();
        assert!(sj.starts_with("{\"spans\":["));
        assert!(sj.contains("\"site\":\"scatter_into\""));
    }

    #[test]
    fn clear_resets_recorder_and_invalidates() {
        let (trace, tracker, ws) = fixture();
        trace.enable();
        let open = trace.open("stale", &tracker, &ws);
        drop(trace.open("done", &tracker, &ws));
        trace.clear();
        drop(open); // stale epoch: discarded, not recorded
        let snap = trace.snapshot();
        assert!(snap.spans.is_empty());
        assert_eq!(snap.open_discarded, 1);
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}

//! A small, fast, non-cryptographic hasher (the FxHash algorithm used by the
//! Rust compiler), implemented locally to avoid an extra dependency.
//!
//! The coarsest-partition algorithms hash small fixed-size keys — pairs of
//! `u32`/`u64` labels — extremely often (every doubling round of *Algorithm
//! partition* and of the tree-labelling step hashes every live node).  The
//! default SipHash is noticeably slower for such keys; FxHash is the standard
//! choice for integer keys per the performance guide.

use std::hash::{BuildHasher, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash implementation.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; use as the `S` parameter of `HashMap`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hash a single `u64` to a `u64` with FxHash (handy for cheap fingerprints).
#[must_use]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

/// Hash a pair of `u64`s (the shape used by the doubling algorithms).
#[must_use]
pub fn hash_pair(a: u64, b: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(a);
    h.write_u64(b);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_u64(12345), hash_u64(12345));
        assert_eq!(hash_pair(1, 2), hash_pair(1, 2));
    }

    #[test]
    fn distinguishes_order() {
        assert_ne!(hash_pair(1, 2), hash_pair(2, 1));
    }

    #[test]
    fn spreads_small_integers() {
        use std::collections::HashSet;
        let hashes: HashSet<u64> = (0..10_000u64).map(hash_u64).collect();
        assert_eq!(hashes.len(), 10_000, "no collisions on tiny dense keys");
    }

    #[test]
    fn map_and_set_work() {
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert((i, i + 1), i);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map[&(500, 501)], 500);

        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(3);
        set.insert(3);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn write_bytes_consistent_with_chunks() {
        // Hashing the same logical bytes must always produce the same digest.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(h1.finish(), h2.finish());
    }
}

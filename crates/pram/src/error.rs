//! Typed errors for the fallible public surface.
//!
//! Every validation failure a caller can trigger from outside — out-of-range
//! indices, non-permutation successor arrays, cyclic "forests", mismatched
//! array lengths, domains too large for the bit-31 ruler flag — is a variant
//! of [`Error`], and every crate in the workspace exposes `try_`-variants of
//! its entry points returning `Result<_, Error>` next to the historical
//! panicking ones (which now panic with the same [`Error`] rendered through
//! its `Display`).  Failures that escape as panics anyway — engine-internal
//! invariant violations, or faults injected by [`crate::faults`] — are
//! captured by the `try_` wrappers via `catch_unwind` and surfaced as
//! [`Error::Panicked`] / [`Error::Injected`], after which
//! [`crate::Ctx::recover`] restores the context for reuse (see DESIGN.md,
//! "Failure model and recovery").

use std::fmt;

/// Exclusive upper bound on domain lengths of the flagged-successor
/// machinery: bit 31 of a successor word is the ruler flag
/// (`sfcp-parprim`'s `RULER_FLAG`), so element indices must fit in 31 bits.
/// A domain of `MAX_DOMAIN - 1` elements (indices `0 ..= MAX_DOMAIN - 2`) is
/// the largest representable; `MAX_DOMAIN` elements would let an index
/// collide with the flag bit and **silently corrupt** — which is why the
/// constructors reject it up front ([`check_index_width`]).
pub const MAX_DOMAIN: usize = 1 << 31;

/// Reject domain lengths whose indices would collide with the bit-31 ruler
/// flag: `Ok` for `n < 2^31`, [`Error::TooLarge`] otherwise.  Called by the
/// validating constructors (`FunctionalGraph::try_new` and friends); the
/// boundary (`2^31 - 1` accepted, `2^31` rejected) is pinned by a unit test
/// here so it never needs an 8 GiB allocation to exercise.
pub fn check_index_width(n: usize) -> Result<(), Error> {
    if n >= MAX_DOMAIN {
        Err(Error::TooLarge { n, max: MAX_DOMAIN })
    } else {
        Ok(())
    }
}

/// A typed validation or execution error from the fallible surface.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An index-valued entry points outside its domain.
    OutOfRange {
        /// Name of the offending array (e.g. `"f"`, `"parent"`, `"succ"`).
        what: &'static str,
        /// Position of the offending entry.
        index: usize,
        /// The out-of-range value.
        value: u32,
        /// The domain length the value must stay below.
        len: usize,
    },
    /// Two arrays that must be parallel have different lengths.
    LengthMismatch {
        /// What the two arrays are (e.g. `"A_f and A_B"`).
        what: &'static str,
        /// Length of the first array.
        left: usize,
        /// Length of the second array.
        right: usize,
    },
    /// A successor array that must be a permutation repeats an element.
    NotAPermutation {
        /// The repeated element.
        duplicate: u32,
    },
    /// A parent array that must be a rooted forest contains a cycle.
    CycleDetected {
        /// A node on the offending cycle.
        node: u32,
    },
    /// The domain is too large for the bit-31 ruler-flag representation
    /// (see [`MAX_DOMAIN`]).
    TooLarge {
        /// The rejected domain length.
        n: usize,
        /// The exclusive upper bound it violated.
        max: usize,
    },
    /// A `try_` wrapper caught a panic that was not a typed injected fault
    /// (an internal invariant assert, an index bound, …).
    Panicked {
        /// The panic message, when the payload was a string.
        message: String,
    },
    /// A `try_` wrapper caught a fault injected by [`crate::faults`].
    Injected(crate::faults::InjectedFault),
}

impl Error {
    /// Convert a caught panic payload (from `std::panic::catch_unwind`) into
    /// a typed error: an [`crate::faults::InjectedFault`] payload becomes
    /// [`Error::Injected`], string payloads become [`Error::Panicked`].
    #[must_use]
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> Error {
        match payload.downcast::<crate::faults::InjectedFault>() {
            Ok(fault) => Error::Injected(*fault),
            Err(payload) => {
                let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Error::Panicked { message }
            }
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfRange {
                what,
                index,
                value,
                len,
            } => write!(f, "{what}[{index}] = {value} is out of range for n = {len}"),
            Error::LengthMismatch { what, left, right } => {
                write!(f, "{what} must have equal length (got {left} and {right})")
            }
            Error::NotAPermutation { duplicate } => {
                write!(f, "succ is not a permutation: {duplicate} repeated")
            }
            Error::CycleDetected { node } => write!(
                f,
                "parent array contains a cycle (not a rooted forest) through node {node}"
            ),
            Error::TooLarge { n, max } => write!(
                f,
                "domain length {n} is too large: indices must stay below {max} \
                 (bit 31 is the ruler flag)"
            ),
            Error::Panicked { message } => write!(f, "computation panicked: {message}"),
            Error::Injected(fault) => fault.fmt(f),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bit-31 boundary, pinned without an 8 GiB allocation: a domain of
    /// `2^31 - 1` elements is representable, `2^31` is not.
    #[test]
    fn index_width_boundary() {
        assert_eq!(check_index_width(0), Ok(()));
        assert_eq!(check_index_width((1 << 31) - 1), Ok(()));
        assert_eq!(
            check_index_width(1 << 31),
            Err(Error::TooLarge {
                n: 1 << 31,
                max: 1 << 31
            })
        );
        assert_eq!(
            check_index_width((1 << 31) + 1),
            Err(Error::TooLarge {
                n: (1 << 31) + 1,
                max: 1 << 31
            })
        );
    }

    #[test]
    fn display_messages_keep_the_panicking_surface_wording() {
        // The `try_` variants and the historical panicking entry points share
        // these renderings; the substrings are what the long-standing
        // `#[should_panic(expected = …)]` tests match on.
        let e = Error::OutOfRange {
            what: "f",
            index: 1,
            value: 5,
            len: 3,
        };
        assert!(e.to_string().contains("out of range"));
        let e = Error::NotAPermutation { duplicate: 7 };
        assert!(e.to_string().contains("not a permutation"));
        let e = Error::CycleDetected { node: 2 };
        assert!(e.to_string().contains("not a rooted forest"));
        let e = Error::LengthMismatch {
            what: "A_f and A_B",
            left: 2,
            right: 1,
        };
        assert!(e.to_string().contains("equal length"));
    }

    #[test]
    fn from_panic_classifies_payloads() {
        let str_payload: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(
            Error::from_panic(str_payload),
            Error::Panicked {
                message: "boom".to_string()
            }
        );
        let string_payload: Box<dyn std::any::Any + Send> = Box::new("ouch".to_string());
        assert_eq!(
            Error::from_panic(string_payload),
            Error::Panicked {
                message: "ouch".to_string()
            }
        );
        let fault = crate::faults::InjectedFault {
            site: crate::faults::FaultSite::Checkout,
            index: 3,
            kind: crate::faults::FaultKind::Panic,
        };
        let fault_payload: Box<dyn std::any::Any + Send> = Box::new(fault.clone());
        assert_eq!(Error::from_panic(fault_payload), Error::Injected(fault));
        let opaque: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert!(matches!(
            Error::from_panic(opaque),
            Error::Panicked { message } if message.contains("non-string")
        ));
    }

    #[test]
    fn error_trait_object_safety() {
        let e: Box<dyn std::error::Error> = Box::new(Error::TooLarge { n: 1, max: 0 });
        assert!(!e.to_string().is_empty());
    }
}

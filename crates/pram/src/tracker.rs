//! Work/depth accounting.
//!
//! PRAM algorithms are analysed in the *work–depth* model: the **work** is
//! the total number of primitive operations executed over all processors and
//! the **depth** (here called *rounds*) is the number of synchronous parallel
//! steps.  The paper's claims — `O(n log log n)` operations, `O(log n)` time —
//! are exactly bounds on these two quantities, so reproducing them requires a
//! way to *count* them rather than only measuring wall-clock time.
//!
//! The [`Tracker`] is a pair of relaxed atomic counters.  To keep the
//! overhead negligible, algorithms charge work **in bulk**: a parallel loop
//! over `n` items performing a constant amount of per-item work charges `n`
//! (or `c·n`) operations once, and one round.  This makes the counts
//! deterministic (identical in sequential and parallel mode) and keeps the
//! perturbation of wall-clock benchmarks well under the measurement noise.

use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of accumulated costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Total number of primitive operations charged (the PRAM "operations"
    /// or "work" measure).
    pub work: u64,
    /// Number of synchronous parallel rounds charged (the PRAM "time" or
    /// "depth" measure, up to constant factors).
    pub rounds: u64,
}

impl Stats {
    /// The zero cost.
    pub const ZERO: Stats = Stats { work: 0, rounds: 0 };

    /// Component-wise sum of two cost snapshots.
    #[must_use]
    pub fn plus(self, other: Stats) -> Stats {
        Stats {
            work: self.work + other.work,
            rounds: self.rounds + other.rounds,
        }
    }

    /// Work per element, useful for checking near-linear work empirically.
    #[must_use]
    pub fn work_per(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.work as f64 / n as f64
        }
    }
}

/// Shared work/depth counters.
///
/// A `Tracker` can be cheaply shared by reference between all the algorithm
/// layers of a single run.  Counting can be disabled entirely (see
/// [`Tracker::disabled`]); a disabled tracker still accepts charges but they
/// are not recorded, which lets hot code stay branch-light.
#[derive(Debug, Default)]
pub struct Tracker {
    enabled: bool,
    work: AtomicU64,
    rounds: AtomicU64,
}

impl Tracker {
    /// A tracker that records charges.
    #[must_use]
    pub fn new() -> Self {
        Tracker {
            enabled: true,
            work: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
        }
    }

    /// A tracker that ignores all charges (zero overhead apart from a branch).
    #[must_use]
    pub fn disabled() -> Self {
        Tracker {
            enabled: false,
            work: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
        }
    }

    /// Whether charges are recorded.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Charge `ops` operations of work.
    #[inline]
    pub fn charge_work(&self, ops: u64) {
        if self.enabled {
            self.work.fetch_add(ops, Ordering::Relaxed);
        }
    }

    /// Charge `r` parallel rounds of depth.
    #[inline]
    pub fn charge_rounds(&self, r: u64) {
        if self.enabled {
            self.rounds.fetch_add(r, Ordering::Relaxed);
        }
    }

    /// Charge one parallel step that performs `ops` operations in total.
    #[inline]
    pub fn charge_step(&self, ops: u64) {
        if self.enabled {
            self.work.fetch_add(ops, Ordering::Relaxed);
            self.rounds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Read the accumulated costs.
    #[must_use]
    pub fn stats(&self) -> Stats {
        Stats {
            work: self.work.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
        }
    }

    /// Reset both counters to zero.
    pub fn reset(&self) {
        self.work.store(0, Ordering::Relaxed);
        self.rounds.store(0, Ordering::Relaxed);
    }

    /// Costs accumulated since the given earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: Stats) -> Stats {
        let now = self.stats();
        Stats {
            work: now.work.saturating_sub(earlier.work),
            rounds: now.rounds.saturating_sub(earlier.rounds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let t = Tracker::new();
        t.charge_work(10);
        t.charge_rounds(2);
        t.charge_step(5);
        let s = t.stats();
        assert_eq!(s.work, 15);
        assert_eq!(s.rounds, 3);
    }

    #[test]
    fn disabled_ignores_charges() {
        let t = Tracker::disabled();
        t.charge_work(10);
        t.charge_step(100);
        assert_eq!(t.stats(), Stats::ZERO);
        assert!(!t.is_enabled());
    }

    #[test]
    fn reset_and_since() {
        let t = Tracker::new();
        t.charge_step(100);
        let snap = t.stats();
        t.charge_step(50);
        let delta = t.since(snap);
        assert_eq!(delta.work, 50);
        assert_eq!(delta.rounds, 1);
        t.reset();
        assert_eq!(t.stats(), Stats::ZERO);
    }

    #[test]
    fn stats_plus_and_work_per() {
        let a = Stats {
            work: 10,
            rounds: 1,
        };
        let b = Stats {
            work: 30,
            rounds: 4,
        };
        let c = a.plus(b);
        assert_eq!(
            c,
            Stats {
                work: 40,
                rounds: 5
            }
        );
        assert!((c.work_per(10) - 4.0).abs() < 1e-12);
        assert_eq!(Stats::ZERO.work_per(0), 0.0);
    }

    #[test]
    fn concurrent_charging_is_consistent() {
        let t = Tracker::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        t.charge_step(3);
                    }
                });
            }
        });
        let s = t.stats();
        assert_eq!(s.work, 8 * 1000 * 3);
        assert_eq!(s.rounds, 8 * 1000);
    }
}

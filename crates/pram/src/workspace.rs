//! Scratch-buffer workspace: checkout/return pools of reusable vectors.
//!
//! Every doubling-style algorithm in this workspace runs `O(log n)` rounds,
//! and each round used to allocate (and immediately drop) a handful of
//! full-length vectors — pair lists, rank arrays, radix ping-pong buffers.
//! The [`Workspace`] turns those into *checkouts* from per-type pools: a
//! buffer is taken with [`Workspace::take_u32`] (etc.), used for the round,
//! and automatically returned to the pool when its [`Scratch`] guard drops.
//! A converged doubling loop therefore allocates O(1) buffers per *run*
//! instead of O(1) per *round* (see DESIGN.md, "Workspace").
//!
//! Buffers keep their capacity in the pool, so a checkout at a size that has
//! been seen before costs only a pop + `Vec::resize` truncation (no element
//! writes).  Newly grown regions are zero-filled — contents of a checked-out
//! buffer are unspecified (stale or zero), and callers must fully overwrite
//! what they read.
//!
//! The pools sit behind mutexes, but checkouts happen at *round* granularity
//! (a handful per parallel step), so contention is negligible.

use parking_lot::Mutex;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// A 16-byte key–payload record: the unit the packed radix sort physically
/// moves between ping-pong buffers (`sfcp-parprim`'s cache-aware engine
/// streams these instead of gathering keys through an index permutation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[repr(C)]
pub struct Rec {
    /// Sort key.
    pub key: u64,
    /// Payload carried alongside the key (callers usually store an index).
    pub pay: u32,
}

impl Rec {
    /// Pack a key and its payload into one record.
    #[inline]
    #[must_use]
    pub fn new(key: u64, pay: u32) -> Self {
        Rec { key, pay }
    }
}

/// Allocation statistics, for asserting buffer reuse in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// Total checkouts served.
    pub checkouts: u64,
    /// Checkouts that could not pop a pooled buffer (fresh `Vec`).
    pub misses: u64,
    /// Buffers returned to the pools (guard drops).
    pub returns: u64,
}

impl WorkspaceStats {
    /// Checkouts whose guard has not yet been dropped.  Zero whenever no
    /// [`Scratch`] guard is live — the leak-test invariant.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.checkouts - self.returns
    }
}

/// Pools of reusable scratch vectors, one per element type.
#[derive(Debug, Default)]
pub struct Workspace {
    u8s: Mutex<Vec<Vec<u8>>>,
    u32s: Mutex<Vec<Vec<u32>>>,
    u64s: Mutex<Vec<Vec<u64>>>,
    i64s: Mutex<Vec<Vec<i64>>>,
    recs: Mutex<Vec<Vec<Rec>>>,
    pairs: Mutex<Vec<Vec<(u64, u64)>>>,
    checkouts: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    pooled_bytes: AtomicU64,
    epoch: AtomicU64,
}

/// Element types the workspace pools.
pub trait Poolable: Copy + Default + Send + Sync + 'static {
    /// The pool holding returned buffers of this element type.
    fn pool(ws: &Workspace) -> &Mutex<Vec<Vec<Self>>>;
}

impl Poolable for u8 {
    fn pool(ws: &Workspace) -> &Mutex<Vec<Vec<u8>>> {
        &ws.u8s
    }
}

impl Poolable for u32 {
    fn pool(ws: &Workspace) -> &Mutex<Vec<Vec<u32>>> {
        &ws.u32s
    }
}

impl Poolable for i64 {
    fn pool(ws: &Workspace) -> &Mutex<Vec<Vec<i64>>> {
        &ws.i64s
    }
}

impl Poolable for u64 {
    fn pool(ws: &Workspace) -> &Mutex<Vec<Vec<u64>>> {
        &ws.u64s
    }
}

impl Poolable for Rec {
    fn pool(ws: &Workspace) -> &Mutex<Vec<Vec<Rec>>> {
        &ws.recs
    }
}

impl Poolable for (u64, u64) {
    fn pool(ws: &Workspace) -> &Mutex<Vec<Vec<(u64, u64)>>> {
        &ws.pairs
    }
}

impl Workspace {
    /// A fresh workspace with empty pools.
    #[must_use]
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Check out a buffer of exactly `len` elements.  Contents are
    /// unspecified (stale pool data or zeros); the caller must fully
    /// overwrite every element it reads.
    #[must_use]
    pub fn take<T: Poolable>(&self, len: usize) -> Scratch<'_, T> {
        // The fault hook fires before any counter increment or pool pop, so
        // an injected failure at this checkout leaves every counter and pool
        // exactly as they were — the unwind releases live `Scratch` guards
        // (returning their buffers) and `outstanding()` stays reconciled.
        crate::faults::on_checkout();
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        let mut buf = match T::pool(self).lock().pop() {
            Some(buf) => {
                self.pooled_bytes.fetch_sub(
                    (buf.capacity() * std::mem::size_of::<T>()) as u64,
                    Ordering::Relaxed,
                );
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        };
        buf.resize(len, T::default());
        Scratch { buf, ws: self }
    }

    /// Check out a `Vec<u8>` of length `len` (0/1 flag arrays).
    #[must_use]
    pub fn take_u8(&self, len: usize) -> Scratch<'_, u8> {
        self.take(len)
    }

    /// Check out a `Vec<u32>` of length `len`.
    #[must_use]
    pub fn take_u32(&self, len: usize) -> Scratch<'_, u32> {
        self.take(len)
    }

    /// Check out a `Vec<i64>` of length `len` (signed scan deltas).
    #[must_use]
    pub fn take_i64(&self, len: usize) -> Scratch<'_, i64> {
        self.take(len)
    }

    /// Check out a `Vec<u64>` of length `len`.
    #[must_use]
    pub fn take_u64(&self, len: usize) -> Scratch<'_, u64> {
        self.take(len)
    }

    /// Check out a record buffer of length `len` (radix ping-pong).
    #[must_use]
    pub fn take_recs(&self, len: usize) -> Scratch<'_, Rec> {
        self.take(len)
    }

    /// Check out a pair buffer of length `len`.
    #[must_use]
    pub fn take_pairs(&self, len: usize) -> Scratch<'_, (u64, u64)> {
        self.take(len)
    }

    /// Checkout/miss counters (monotone; misses stop growing once the pools
    /// are warm — the property the reuse regression tests assert).
    #[must_use]
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
        }
    }

    /// Number of buffers currently sitting in the pools (returned and
    /// available).  Stable across repeated identical runs once the pools are
    /// warm — together with `stats().outstanding() == 0` this is the
    /// leak-test invariant.
    #[must_use]
    pub fn pooled_buffers(&self) -> usize {
        self.u8s.lock().len()
            + self.u32s.lock().len()
            + self.u64s.lock().len()
            + self.i64s.lock().len()
            + self.recs.lock().len()
            + self.pairs.lock().len()
    }

    /// Capacity (in bytes) currently held by the pools.  Measured at *return*
    /// time, so growth that happens **after** checkout — a `take_u32(0)`
    /// followed by `push`/`resize` on the guard, the pattern every `_into`
    /// output buffer and the acyclicity stack use — is reported here even
    /// though the checkout itself was size 0.  Like
    /// [`Workspace::pooled_buffers`], this is stable across repeated
    /// identical runs once the pools are warm; a monotone climb under a
    /// fixed workload means some caller keeps growing a pooled buffer.
    #[must_use]
    pub fn pooled_bytes(&self) -> u64 {
        self.pooled_bytes.load(Ordering::Relaxed)
    }

    /// Recovery epoch: incremented by every [`Workspace::recover`] call.
    /// A caller holding per-workspace caches can compare epochs to notice
    /// that a recovery happened in between.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Reconcile the workspace after a failed invocation (the poison/recover
    /// protocol; see DESIGN.md, "Failure model and recovery").
    ///
    /// The `Scratch` guards are unwind-safe — a panic that unwinds through
    /// algorithm code drops every live guard, returning its buffer to the
    /// pool — so after `catch_unwind` the pools already hold every buffer.
    /// This call closes the remaining gaps a mid-`take` failure could leave:
    ///
    /// * `returns` is set to `checkouts`, so [`WorkspaceStats::outstanding`]
    ///   reads zero again;
    /// * `pooled_bytes` is recomputed from the pools themselves (the
    ///   source of truth), erasing any drift from a checkout that
    ///   unwound between its accounting steps;
    /// * the [`Workspace::epoch`] is bumped.
    ///
    /// The pools and their buffers are kept — a recovered workspace is warm,
    /// and the next identical run serves every checkout from the pools with
    /// bit-identical charges (the fault-injection suite pins this).
    pub fn recover(&self) {
        let checkouts = self.checkouts.load(Ordering::Relaxed);
        self.returns.store(checkouts, Ordering::Relaxed);
        let bytes = pool_capacity_bytes(&self.u8s)
            + pool_capacity_bytes(&self.u32s)
            + pool_capacity_bytes(&self.u64s)
            + pool_capacity_bytes(&self.i64s)
            + pool_capacity_bytes(&self.recs)
            + pool_capacity_bytes(&self.pairs);
        self.pooled_bytes.store(bytes, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }
}

/// Total capacity (bytes) of the buffers currently held by one pool.
fn pool_capacity_bytes<T>(pool: &Mutex<Vec<Vec<T>>>) -> u64 {
    pool.lock()
        .iter()
        .map(|buf| (buf.capacity() * std::mem::size_of::<T>()) as u64)
        .sum()
}

/// RAII guard for a checked-out buffer; dereferences to `Vec<T>` and returns
/// the buffer (with its capacity) to the pool on drop.
#[derive(Debug)]
pub struct Scratch<'ws, T: Poolable> {
    buf: Vec<T>,
    ws: &'ws Workspace,
}

impl<T: Poolable> Deref for Scratch<'_, T> {
    type Target = Vec<T>;

    fn deref(&self) -> &Vec<T> {
        &self.buf
    }
}

impl<T: Poolable> DerefMut for Scratch<'_, T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }
}

impl<T: Poolable> Drop for Scratch<'_, T> {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        // Account the buffer at the capacity it returns with: any growth that
        // happened while it was checked out shows up in `pooled_bytes`.
        self.ws.pooled_bytes.fetch_add(
            (buf.capacity() * std::mem::size_of::<T>()) as u64,
            Ordering::Relaxed,
        );
        T::pool(self.ws).lock().push(buf);
        self.ws.returns.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_has_requested_length() {
        let ws = Workspace::new();
        let a = ws.take_u32(100);
        assert_eq!(a.len(), 100);
        let b = ws.take_u64(7);
        assert_eq!(b.len(), 7);
        let c = ws.take_recs(3);
        assert_eq!(c.len(), 3);
        let d = ws.take_pairs(2);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn buffers_are_reused_after_return() {
        let ws = Workspace::new();
        {
            let mut a = ws.take_u32(1000);
            a[999] = 7;
        }
        // Second checkout pops the returned buffer: no miss.
        let before = ws.stats();
        let b = ws.take_u32(500);
        assert_eq!(b.len(), 500);
        let after = ws.stats();
        assert_eq!(
            after.misses, before.misses,
            "warm checkout must not allocate"
        );
        assert_eq!(after.checkouts, before.checkouts + 1);
    }

    #[test]
    fn growing_a_reused_buffer_zero_fills_the_tail() {
        let ws = Workspace::new();
        {
            let mut a = ws.take_u64(4);
            for x in a.iter_mut() {
                *x = u64::MAX;
            }
        }
        let b = ws.take_u64(8);
        // The tail beyond any previously initialised length is zeroed.
        assert!(b[4..].iter().all(|&x| x == 0));
    }

    #[test]
    fn pools_are_type_separated() {
        let ws = Workspace::new();
        drop(ws.take_u32(10));
        let s = ws.stats();
        assert_eq!(s.checkouts, 1);
        // A u64 checkout cannot reuse the returned u32 buffer.
        drop(ws.take_u64(10));
        assert_eq!(ws.stats().misses, 2);
    }

    #[test]
    fn nested_checkouts_get_distinct_buffers() {
        let ws = Workspace::new();
        let mut a = ws.take_u32(16);
        let mut b = ws.take_u32(16);
        a[0] = 1;
        b[0] = 2;
        assert_eq!(a[0], 1);
        assert_eq!(b[0], 2);
    }

    #[test]
    fn rec_layout_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Rec>(), 16);
    }

    #[test]
    fn u8_and_i64_pools_work() {
        let ws = Workspace::new();
        {
            let mut f = ws.take_u8(64);
            f.fill(1);
            let mut d = ws.take_i64(64);
            d[0] = -5;
            assert_eq!(d[0], -5);
            assert_eq!(f[63], 1);
        }
        // Warm re-checkout hits the pools.
        let before = ws.stats();
        drop(ws.take_u8(32));
        drop(ws.take_i64(32));
        assert_eq!(ws.stats().misses, before.misses);
    }

    #[test]
    fn outstanding_tracks_live_guards() {
        let ws = Workspace::new();
        assert_eq!(ws.stats().outstanding(), 0);
        let a = ws.take_u32(8);
        let b = ws.take_u64(8);
        assert_eq!(ws.stats().outstanding(), 2);
        drop(a);
        assert_eq!(ws.stats().outstanding(), 1);
        drop(b);
        assert_eq!(ws.stats().outstanding(), 0);
        assert_eq!(ws.pooled_buffers(), 2);
    }

    #[test]
    fn pooled_bytes_reports_growth_after_checkout() {
        let ws = Workspace::new();
        assert_eq!(ws.pooled_bytes(), 0);
        {
            // Checked out at size 0, grown to 1000 elements while out: the
            // pool must account the grown capacity on return.
            let mut stack = ws.take_u32(0);
            for i in 0..1000u32 {
                stack.push(i);
            }
        }
        assert!(
            ws.pooled_bytes() >= 4000,
            "growth after checkout must be reported, got {} bytes",
            ws.pooled_bytes()
        );
        // Re-checkout removes the buffer (and its bytes) from the pool…
        let held = ws.take_u32(10);
        assert_eq!(ws.pooled_bytes(), 0);
        // …and returning it restores the full grown capacity.
        let cap_bytes = (held.capacity() * std::mem::size_of::<u32>()) as u64;
        drop(held);
        assert_eq!(ws.pooled_bytes(), cap_bytes);
    }

    #[test]
    fn pooled_bytes_stable_across_identical_runs() {
        let ws = Workspace::new();
        let run = |ws: &Workspace| {
            let mut a = ws.take_u32(0);
            a.extend(0..500u32);
            let b = ws.take_u64(64);
            drop((a, b));
        };
        run(&ws);
        let warm = ws.pooled_bytes();
        assert!(warm > 0);
        for _ in 0..5 {
            run(&ws);
            assert_eq!(ws.pooled_bytes(), warm);
        }
    }

    #[test]
    fn guards_return_buffers_on_panic_unwind() {
        let ws = Workspace::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _a = ws.take_u32(64);
            let _b = ws.take_u64(64);
            panic!("mid-run failure");
        }));
        assert!(result.is_err());
        // Both guards dropped during the unwind: nothing outstanding, both
        // buffers back in the pools with their bytes accounted.
        assert_eq!(ws.stats().outstanding(), 0);
        assert_eq!(ws.pooled_buffers(), 2);
        assert_eq!(ws.pooled_bytes(), 64 * 4 + 64 * 8);
    }

    #[test]
    fn recover_reconciles_counters_and_recounts_bytes() {
        let ws = Workspace::new();
        drop(ws.take_u32(100));
        // Simulate a mid-`take` unwind that incremented `checkouts` without a
        // matching return by leaking a guard.
        std::mem::forget(ws.take_u32(100));
        assert_eq!(ws.stats().outstanding(), 1);
        let epoch_before = ws.epoch();
        ws.recover();
        assert_eq!(ws.stats().outstanding(), 0);
        assert_eq!(ws.epoch(), epoch_before + 1);
        // Bytes recomputed from the pools themselves (the leaked buffer is
        // gone; the pool is empty), and the workspace is reusable.
        assert_eq!(ws.pooled_bytes(), 0);
        assert_eq!(ws.pooled_buffers(), 0);
        drop(ws.take_u32(50));
        assert_eq!(ws.stats().outstanding(), 0);
        assert_eq!(ws.pooled_buffers(), 1);
    }

    #[test]
    fn recover_on_a_healthy_workspace_is_idempotent() {
        let ws = Workspace::new();
        drop(ws.take_u32(128));
        drop(ws.take_u64(16));
        let stats = ws.stats();
        let bytes = ws.pooled_bytes();
        let buffers = ws.pooled_buffers();
        ws.recover();
        assert_eq!(ws.stats(), stats);
        assert_eq!(ws.pooled_bytes(), bytes);
        assert_eq!(ws.pooled_buffers(), buffers);
    }

    #[test]
    fn pooled_buffers_stable_across_identical_runs() {
        let ws = Workspace::new();
        let run = |ws: &Workspace| {
            let a = ws.take_u32(100);
            let b = ws.take_u8(100);
            let c = ws.take_i64(100);
            drop((a, b, c));
        };
        run(&ws);
        let warm = ws.pooled_buffers();
        for _ in 0..5 {
            run(&ws);
            assert_eq!(ws.pooled_buffers(), warm);
        }
    }
}

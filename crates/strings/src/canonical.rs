//! Sequential least-rotation (minimal starting point) baselines.
//!
//! The m.s.p. problem "is known to admit a sequential linear-time algorithm"
//! (Booth; Shiloach) — these are the baselines the parallel algorithms are
//! compared against in experiment E4, and the reference oracles for the
//! property tests.
//!
//! * [`booth_msp`] — Booth's failure-function algorithm, `O(n)` time.
//! * [`duval_msp`] — the least-rotation variant of Duval's Lyndon
//!   factorisation ("Zhou's algorithm"), also `O(n)`, included as an
//!   independent second oracle.
//! * [`naive_msp`] — the obvious `O(n²)` scan, used only in tests.
//!
//! All of them return the smallest index that starts a minimal rotation, so
//! they agree even on repeating (periodic) inputs.

/// Booth's least-rotation algorithm: the smallest index starting a
/// lexicographically minimal rotation of `s`.  `O(n)` time, `O(n)` space.
#[must_use]
pub fn booth_msp(s: &[u32]) -> usize {
    let n = s.len();
    if n == 0 {
        return 0;
    }
    // Standard formulation over the doubled string with a failure function.
    let mut f = vec![usize::MAX; 2 * n];
    let mut k = 0usize; // least rotation candidate
    for j in 1..2 * n {
        let sj = s[j % n];
        let mut i = f[j - k - 1];
        while i != usize::MAX && sj != s[(k + i + 1) % n] {
            if sj < s[(k + i + 1) % n] {
                k = j - i - 1;
            }
            i = f[i];
        }
        if i == usize::MAX && sj != s[(k + i.wrapping_add(1)) % n] {
            // i == MAX means no border; compare with the first character.
            if sj < s[k % n] {
                k = j;
            }
            f[j - k] = usize::MAX;
        } else {
            f[j - k] = i.wrapping_add(1);
        }
    }
    k
}

/// Least rotation via a Duval-style two-pointer scan (`O(n)` time, `O(1)`
/// extra space).  Returns the smallest starting index of a minimal rotation.
#[must_use]
pub fn duval_msp(s: &[u32]) -> usize {
    let n = s.len();
    if n == 0 {
        return 0;
    }
    let at = |idx: usize| s[idx % n];
    let (mut i, mut j, mut k) = (0usize, 1usize, 0usize);
    while i < n && j < n && k < n {
        let a = at(i + k);
        let b = at(j + k);
        if a == b {
            k += 1;
            continue;
        }
        if a > b {
            i += k + 1;
        } else {
            j += k + 1;
        }
        if i == j {
            j += 1;
        }
        k = 0;
    }
    i.min(j)
}

/// Naive `O(n²)` minimal starting point (smallest index on ties).
#[must_use]
pub fn naive_msp(s: &[u32]) -> usize {
    let n = s.len();
    if n == 0 {
        return 0;
    }
    let mut best = 0usize;
    for cand in 1..n {
        if crate::compare_rotations(s, cand, best) == std::cmp::Ordering::Less {
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_single() {
        assert_eq!(booth_msp(&[]), 0);
        assert_eq!(duval_msp(&[]), 0);
        assert_eq!(naive_msp(&[]), 0);
        assert_eq!(booth_msp(&[7]), 0);
        assert_eq!(duval_msp(&[7]), 0);
    }

    #[test]
    fn known_cases() {
        // "baca" → rotations: baca, acab, caba, abac → minimal "abac" at 3.
        let s = [2u32, 1, 3, 1];
        assert_eq!(naive_msp(&s), 3);
        assert_eq!(booth_msp(&s), 3);
        assert_eq!(duval_msp(&s), 3);

        // Already minimal.
        let t = [1u32, 1, 2, 3];
        assert_eq!(naive_msp(&t), 0);
        assert_eq!(booth_msp(&t), 0);
        assert_eq!(duval_msp(&t), 0);

        // All equal symbols: every rotation equal, smallest index is 0.
        let u = [4u32; 6];
        assert_eq!(naive_msp(&u), 0);
        assert_eq!(booth_msp(&u), 0);
        assert_eq!(duval_msp(&u), 0);
    }

    #[test]
    fn paper_example_34_string() {
        let s = [3u32, 2, 1, 3, 2, 3, 4, 3, 1, 2, 3, 4, 2, 1, 1, 1, 3, 2, 2];
        let expected = naive_msp(&s);
        assert_eq!(expected, 13, "the minimal rotation starts at the 1,1,1 run");
        assert_eq!(booth_msp(&s), expected);
        assert_eq!(duval_msp(&s), expected);
    }

    #[test]
    fn repeating_string_returns_first_minimal_start() {
        let s = [2u32, 1, 2, 1];
        assert_eq!(naive_msp(&s), 1);
        assert_eq!(booth_msp(&s), 1);
        assert_eq!(duval_msp(&s), 1);
    }

    #[test]
    fn adversarial_runs() {
        // Long run of equal symbols followed by a smaller one.
        let mut s = vec![1u32; 50];
        s.push(0);
        s.extend(vec![1u32; 30]);
        let expected = naive_msp(&s);
        assert_eq!(booth_msp(&s), expected);
        assert_eq!(duval_msp(&s), expected);
    }

    proptest! {
        #[test]
        fn booth_matches_naive(s in proptest::collection::vec(0u32..4, 1..120)) {
            prop_assert_eq!(booth_msp(&s), naive_msp(&s));
        }

        #[test]
        fn duval_matches_naive(s in proptest::collection::vec(0u32..4, 1..120)) {
            prop_assert_eq!(duval_msp(&s), naive_msp(&s));
        }

        #[test]
        fn larger_alphabet(s in proptest::collection::vec(0u32..1000, 1..200)) {
            let expected = naive_msp(&s);
            prop_assert_eq!(booth_msp(&s), expected);
            prop_assert_eq!(duval_msp(&s), expected);
        }
    }
}

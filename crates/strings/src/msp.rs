//! Parallel minimal starting point (m.s.p.) algorithms — Section 3.1 of the
//! paper.
//!
//! Three parallel algorithms are provided, all taking a circular string over
//! `u32` symbols and returning the index of the minimal rotation start:
//!
//! * [`simple_msp`] — *Algorithm simple m.s.p.*: a block tournament.  Every
//!   position starts as a candidate; in round `i`, each block of `2^i`
//!   positions holds at most one surviving candidate, and the two candidates
//!   of a merged block are compared over `2^i` symbols (ties eliminate the
//!   later candidate, justified by Lemma 3.3).  `O(n log n)` work,
//!   `O(log n)` rounds.
//! * [`efficient_msp`] — *Algorithm efficient m.s.p.*: mark the positions
//!   where a run of the minimum symbol starts, contract the string into
//!   ordered pairs between marked positions, integer-sort the pairs and
//!   replace them by their ranks, and recurse on the (≤ 2n/3)-length string;
//!   once the string is short, finish with the tournament.  With the radix
//!   sort standing in for Bhatt-et-al. integer sorting this is the
//!   `O(n log log n)`-work, `O(log n)`-depth algorithm of Lemma 3.7.
//! * [`doubling_msp`] — a rank-doubling (suffix-array style) baseline:
//!   compute the rank of every rotation by `log n` rounds of pair ranking.
//!   `O(n log n)` work, included as the "obvious" parallel competitor.
//!
//! The facade [`minimal_starting_point`] first reduces the input to its
//! smallest repeating prefix (the algorithms require a nonrepeating input;
//! the m.s.p. of the prefix is an m.s.p. of the original string) and
//! normalises the answer to the smallest starting index so that all methods
//! and the sequential baselines agree exactly.

use crate::canonical::booth_msp;
use crate::period::smallest_period;
use sfcp_parprim::rank::dense_ranks_of_pairs_into;
use sfcp_parprim::reduce::min_value;
use sfcp_pram::Ctx;

/// Which m.s.p. algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MspMethod {
    /// Booth's sequential linear-time algorithm (baseline).
    Booth,
    /// The paper's simple block tournament (`O(n log n)` work).
    Simple,
    /// The paper's recursive pair-contraction algorithm
    /// (`O(n log log n)` work) — the headline result of Section 3.1.
    #[default]
    Efficient,
    /// Rank doubling over rotations (`O(n log n)` work baseline).
    Doubling,
}

/// Fallible [`minimal_starting_point`]: validates the size envelope and
/// converts any mid-run panic (internal assert or fault injected through
/// [`sfcp_pram::faults`]) into a typed [`sfcp_pram::Error`], running
/// [`Ctx::recover`] before returning so the context stays usable.
///
/// # Errors
/// [`sfcp_pram::Error::TooLarge`] when `s.len() >= 2^31`;
/// [`sfcp_pram::Error::Injected`] / [`sfcp_pram::Error::Panicked`] when the
/// run unwinds.
pub fn try_minimal_starting_point(
    ctx: &Ctx,
    s: &[u32],
    method: MspMethod,
) -> Result<usize, sfcp_pram::Error> {
    sfcp_pram::check_index_width(s.len())?;
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        minimal_starting_point(ctx, s, method)
    })) {
        Ok(p) => Ok(p),
        Err(payload) => {
            let err = sfcp_pram::Error::from_panic(payload);
            ctx.recover();
            Err(err)
        }
    }
}

/// Minimal starting point of the circular string `s` (smallest index among
/// minimal rotation starts), using `method`.  Handles repeating inputs.
#[must_use]
pub fn minimal_starting_point(ctx: &Ctx, s: &[u32], method: MspMethod) -> usize {
    let n = s.len();
    if n <= 1 {
        return 0;
    }
    if method == MspMethod::Booth {
        return booth_msp(s);
    }
    // Reduce to the smallest repeating prefix: its m.s.p. is an m.s.p. of the
    // original string, and the prefix is nonrepeating by construction.
    let p = smallest_period(ctx, s);
    let reduced = &s[..p];
    if p == 1 {
        return 0;
    }
    let msp = match method {
        MspMethod::Booth => unreachable!(),
        MspMethod::Simple => simple_msp(ctx, reduced),
        MspMethod::Efficient => efficient_msp(ctx, reduced),
        MspMethod::Doubling => doubling_msp(ctx, reduced),
    };
    debug_assert!(msp < p);
    // Every position msp + k·p of the original is a minimal start; the
    // canonical answer is the smallest one, which is msp itself.
    msp
}

// ---------------------------------------------------------------------------
// Algorithm simple m.s.p. (block tournament).
// ---------------------------------------------------------------------------

/// The paper's *Algorithm simple m.s.p.* generalised to arbitrary `n` (the
/// paper assumes `n = 2^k` "for convenience"): candidates live in conceptual
/// blocks of size `2^i`; merging two blocks compares the two candidates over
/// `2^i` symbols and, on a tie, keeps the earlier one (Lemma 3.3).
///
/// Requires a **nonrepeating** circular string (unique m.s.p.); for repeating
/// inputs use [`minimal_starting_point`], which reduces to the period first.
#[must_use]
pub fn simple_msp(ctx: &Ctx, s: &[u32]) -> usize {
    let n = s.len();
    if n <= 1 {
        return 0;
    }
    let padded = sfcp_pram::next_pow2(n);
    // candidates[b] = surviving candidate of block b, or u32::MAX if the
    // block is empty (only possible for the padding blocks past n).
    let mut candidates: Vec<u32> = (0..padded)
        .map(|i| if i < n { i as u32 } else { u32::MAX })
        .collect();
    ctx.charge_step(padded as u64);

    let mut width = 1usize; // current block size 2^(i-1)
    while candidates.len() > 1 {
        let compare_len = (2 * width).min(n);
        let next: Vec<u32> = ctx.par_map_idx(candidates.len() / 2, |b| {
            let left = candidates[2 * b];
            let right = candidates[2 * b + 1];
            match (left, right) {
                (u32::MAX, r) => r,
                (l, u32::MAX) => l,
                (l, r) => {
                    // Compare the rotations starting at l and r over
                    // `compare_len` symbols.
                    let (l, r) = (l as usize, r as usize);
                    let mut winner = l; // tie ⇒ keep the earlier (Lemma 3.3)
                    for k in 0..compare_len {
                        let a = s[(l + k) % n];
                        let b = s[(r + k) % n];
                        match a.cmp(&b) {
                            std::cmp::Ordering::Less => {
                                winner = l;
                                break;
                            }
                            std::cmp::Ordering::Greater => {
                                winner = r;
                                break;
                            }
                            std::cmp::Ordering::Equal => continue,
                        }
                    }
                    winner as u32
                }
            }
        });
        // Each of the (#blocks / 2) comparisons costs up to `compare_len`.
        ctx.charge_work((candidates.len() as u64 / 2) * compare_len as u64);
        candidates = next;
        width *= 2;
    }
    candidates[0] as usize
}

// ---------------------------------------------------------------------------
// Algorithm efficient m.s.p. (recursive pair contraction).
// ---------------------------------------------------------------------------

/// The paper's *Algorithm efficient m.s.p.*.
///
/// Requires a **nonrepeating** circular string.
///
/// All full-length scratch of the contraction loop (the contracted string,
/// origin map, pair list and rank buffer) is workspace-backed and reused
/// across rounds: the loop allocates O(1) buffers per run.
#[must_use]
pub fn efficient_msp(ctx: &Ctx, s: &[u32]) -> usize {
    let n = s.len();
    if n <= 1 {
        return 0;
    }
    // The recursion stops once the contracted string has at most
    // max(n / log n, 32) symbols, exactly as in step 4 of the paper; the
    // remaining instance is handed to the tournament (step 5).
    let threshold = (n / (sfcp_pram::ceil_log2(n) as usize).max(1)).max(32);

    // Current contracted circular string and, for every contracted position,
    // the original position it stands for.
    let ws = ctx.workspace();
    let mut elems = ws.take_u64(n);
    ctx.par_update(&mut elems, |i, e| *e = u64::from(s[i]) + 1);
    let mut origin = ws.take_u32(n);
    ctx.par_update(&mut origin, |i, o| *o = i as u32);
    let mut pairs = ws.take_pairs(0);
    let mut new_origin = ws.take_u32(0);
    let mut ranks = ws.take_u32(0);

    loop {
        let len = elems.len();
        if len <= 1 {
            return origin[0] as usize;
        }
        if len <= threshold {
            // Step 5: finish with the simple tournament on the contracted
            // string (it is still nonrepeating — see the module tests — and
            // its m.s.p. corresponds to the original m.s.p. by Lemma 3.5).
            let contracted: Vec<u32> = ctx.par_map_slice(&elems, |&e| e as u32);
            let pos = simple_msp(ctx, &contracted);
            return origin[pos] as usize;
        }

        // Step 1: mark the starts of runs of the minimum symbol.
        let m = min_value(ctx, &elems);
        let marked: Vec<bool> =
            ctx.par_map_idx(len, |j| elems[j] == m && elems[(j + len - 1) % len] != m);
        let marks: Vec<u32> = sfcp_parprim::compact::compact_indices(ctx, len, |j| marked[j]);
        match marks.len() {
            0 => {
                // Every symbol equals the minimum — the string is repeating
                // (period 1), which the precondition excludes; still, answer
                // correctly by returning the smallest original position.
                let first = sfcp_parprim::reduce::min_index(ctx, &origin);
                return origin[first] as usize;
            }
            1 => return origin[marks[0] as usize] as usize,
            _ => {}
        }

        // Step 2: between consecutive marked positions, group the symbols in
        // ordered pairs; an odd-length run pads its last pair with the current
        // minimum symbol `m`, exactly as in the paper ("we represent it as the
        // pair (c, m)").  The pad must be `m` — a run ends precisely because
        // the next symbol is `m`, so padding with `m` keeps pair comparisons
        // faithful to comparisons of the underlying rotations.
        let k = marks.len();
        // Run lengths (cyclically, run r spans marks[r] .. marks[r+1]-1).
        let run_len: Vec<u32> = ctx.par_map_idx(k, |r| {
            let start = marks[r] as usize;
            let end = marks[(r + 1) % k] as usize;
            ((end + len - start - 1) % len + 1) as u32
        });
        let pairs_per_run: Vec<u64> = ctx.par_map_slice(&run_len, |&l| u64::from(l.div_ceil(2)));
        let (run_offset, total_pairs) = sfcp_parprim::scan::exclusive_scan(ctx, &pairs_per_run);
        let total_pairs = total_pairs as usize;

        // Build the pair list and the origin of each pair (the original
        // position of its first symbol), in cyclic order of the runs.
        pairs.resize(total_pairs, (0, 0));
        new_origin.resize(total_pairs, 0);
        {
            let pairs_ptr = SendPtr(pairs.as_mut_ptr());
            let origin_ptr = SendPtr(new_origin.as_mut_ptr());
            let elems_ref = &elems;
            let origin_ref = &origin;
            ctx.par_for_idx(k, |r| {
                let start = marks[r] as usize;
                let l = run_len[r] as usize;
                let base = run_offset[r] as usize;
                let (pp, op) = (pairs_ptr, origin_ptr);
                for g in 0..l.div_ceil(2) {
                    let first = (start + 2 * g) % len;
                    let a = elems_ref[first];
                    let b = if 2 * g + 1 < l {
                        elems_ref[(start + 2 * g + 1) % len]
                    } else {
                        m
                    };
                    // SAFETY: each pair slot belongs to exactly one run/group.
                    unsafe {
                        *pp.0.add(base + g) = (a, b);
                        *op.0.add(base + g) = origin_ref[first];
                    }
                }
            });
            ctx.charge_work(len as u64);
        }

        // Step 3: sort the pairs, replace each by its (order-preserving) rank.
        let _distinct = dense_ranks_of_pairs_into(ctx, &pairs, &mut ranks);
        // Shift by one so the blank value stays reserved in the next round.
        elems.resize(total_pairs, 0);
        {
            let ranks = &ranks;
            ctx.par_update(&mut elems, |g, e| *e = u64::from(ranks[g]) + 1);
        }
        std::mem::swap(&mut *origin, &mut *new_origin);
        debug_assert!(elems.len() <= 2 * len / 3 + 1);
    }
}

// ---------------------------------------------------------------------------
// Rank-doubling baseline.
// ---------------------------------------------------------------------------

/// Rank-doubling m.s.p.: compute, in `⌈log n⌉` rounds, the rank of every
/// rotation by repeatedly ranking pairs `(rank[i], rank[i + 2^k mod n])`.
/// After the last round every rotation has a distinct rank (for nonrepeating
/// inputs) and the position with rank 0 is the m.s.p.
#[must_use]
pub fn doubling_msp(ctx: &Ctx, s: &[u32]) -> usize {
    let n = s.len();
    if n <= 1 {
        return 0;
    }
    let (mut rank, mut distinct) = sfcp_parprim::rank::dense_ranks_by_sort(
        ctx,
        &s.iter().map(|&c| u64::from(c)).collect::<Vec<_>>(),
    );
    // Per-round scratch is workspace-backed and ping-ponged across rounds.
    let ws = ctx.workspace();
    let mut pairs = ws.take_pairs(n);
    let mut next_rank = ws.take_u32(0);
    let mut width = 1usize;
    while width < n && distinct < n {
        {
            let rank = &rank;
            ctx.par_update(&mut pairs, |i, p| {
                *p = (u64::from(rank[i]), u64::from(rank[(i + width) % n]));
            });
        }
        distinct = dense_ranks_of_pairs_into(ctx, &pairs, &mut next_rank);
        std::mem::swap(&mut rank, &mut *next_rank);
        width *= 2;
    }
    // Position of the minimum rank (smallest index on ties, which only occur
    // for repeating inputs).
    sfcp_parprim::reduce::min_index(ctx, &rank)
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` only smuggles a raw base pointer into parallel tasks
// whose writes target disjoint indices; every dereference site carries its
// own SAFETY argument for that disjointness, and the pointee buffer is
// borrowed for the whole parallel region, so it outlives every task.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` across tasks only copies the pointer value —
// no shared-reference method dereferences it, so aliased access to the
// pointee can never originate from the `Sync` impl itself.
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::naive_msp;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn all_methods() -> [MspMethod; 4] {
        [
            MspMethod::Booth,
            MspMethod::Simple,
            MspMethod::Efficient,
            MspMethod::Doubling,
        ]
    }

    #[test]
    fn trivial_inputs() {
        let ctx = Ctx::parallel();
        for m in all_methods() {
            assert_eq!(minimal_starting_point(&ctx, &[], m), 0);
            assert_eq!(minimal_starting_point(&ctx, &[9], m), 0);
            assert_eq!(minimal_starting_point(&ctx, &[3, 3, 3], m), 0);
        }
    }

    #[test]
    fn paper_example_34() {
        // Example 3.4's circular string; its minimal rotation starts at the
        // "1,1,1" run (index 13), as the sequential baselines confirm.
        let s = [3u32, 2, 1, 3, 2, 3, 4, 3, 1, 2, 3, 4, 2, 1, 1, 1, 3, 2, 2];
        let ctx = Ctx::parallel();
        let expected = naive_msp(&s);
        assert_eq!(expected, 13);
        for m in all_methods() {
            assert_eq!(minimal_starting_point(&ctx, &s, m), expected, "{m:?}");
        }
    }

    #[test]
    fn paper_example_31_period_string() {
        // The cycle C of Example 3.1 has B-label string with period (1,2,1,3);
        // rotating the period to its m.s.p. gives (1,2,1,3) → m.s.p. 0 — but
        // the minimal rotation of (1,2,1,3) itself starts at index 2: (1,3,1,2)
        // vs (1,2,1,3)… compare: (1,2,..) < (1,3,..), so m.s.p. is 0.
        let s = [1u32, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3];
        let ctx = Ctx::parallel();
        let expected = naive_msp(&s);
        assert_eq!(expected, 0);
        for m in all_methods() {
            assert_eq!(minimal_starting_point(&ctx, &s, m), expected, "{m:?}");
        }
    }

    #[test]
    fn nonrepeating_direct_calls_agree() {
        let ctx = Ctx::parallel().with_grain(16);
        let cases: Vec<Vec<u32>> = vec![
            vec![2, 1],
            vec![1, 2, 3, 4, 5],
            vec![5, 4, 3, 2, 1],
            vec![2, 1, 2, 2, 1, 1],
            vec![1, 1, 2, 1, 2, 2, 1, 2],
            vec![7, 3, 6, 9, 2, 8, 4, 1, 3, 5],
        ];
        for s in cases {
            let expected = naive_msp(&s);
            assert_eq!(simple_msp(&ctx, &s), expected, "simple on {s:?}");
            assert_eq!(efficient_msp(&ctx, &s), expected, "efficient on {s:?}");
            assert_eq!(doubling_msp(&ctx, &s), expected, "doubling on {s:?}");
        }
    }

    #[test]
    fn large_random_strings() {
        let mut rng = StdRng::seed_from_u64(2024);
        let ctx = Ctx::parallel();
        for &n in &[1000usize, 4096, 10_001] {
            for alphabet in [2u32, 5, 1000] {
                let s: Vec<u32> = (0..n).map(|_| rng.gen_range(0..alphabet)).collect();
                let expected = booth_msp(&s);
                for m in all_methods() {
                    assert_eq!(
                        minimal_starting_point(&ctx, &s, m),
                        expected,
                        "{m:?} on n={n}, alphabet={alphabet}"
                    );
                }
            }
        }
    }

    #[test]
    fn adversarial_long_runs() {
        let ctx = Ctx::parallel();
        // Strings like 1^a 0 1^b 0 … stress the run-marking logic.
        let mut s = Vec::new();
        for (a, b) in [(37usize, 11usize), (5, 5), (1, 63)] {
            s.clear();
            s.extend(std::iter::repeat_n(1u32, a));
            s.push(0);
            s.extend(std::iter::repeat_n(1u32, b));
            s.push(0);
            s.extend(std::iter::repeat_n(2u32, 7));
            let expected = naive_msp(&s);
            for m in all_methods() {
                assert_eq!(
                    minimal_starting_point(&ctx, &s, m),
                    expected,
                    "{m:?} on {s:?}"
                );
            }
        }
    }

    /// The paper's claim is about asymptotic work: *simple m.s.p.* is
    /// `Θ(n log n)` while *efficient m.s.p.* is `O(n log log n)`.  The
    /// observable consequence at test-sized inputs is that the per-symbol
    /// work of the simple algorithm grows with `log n` while the efficient
    /// algorithm's stays (nearly) flat.  Experiment E4 reports the full curve.
    #[test]
    fn efficient_msp_work_grows_slower_than_simple() {
        let work_of = |n: usize, method: MspMethod| -> f64 {
            let mut rng = StdRng::seed_from_u64(5);
            let s: Vec<u32> = (0..n).map(|_| rng.gen_range(0..8)).collect();
            let ctx = Ctx::parallel();
            let _ = minimal_starting_point(&ctx, &s, method);
            ctx.stats().work as f64 / n as f64
        };
        let (n1, n2) = (1usize << 12, 1usize << 16);
        let simple_growth = work_of(n2, MspMethod::Simple) / work_of(n1, MspMethod::Simple);
        let efficient_growth =
            work_of(n2, MspMethod::Efficient) / work_of(n1, MspMethod::Efficient);
        assert!(
            efficient_growth < simple_growth,
            "per-symbol work growth: efficient {efficient_growth:.3} should be below simple {simple_growth:.3}"
        );
        // And the efficient algorithm's per-symbol work is essentially flat.
        assert!(
            efficient_growth < 1.25,
            "efficient m.s.p. per-symbol work grew by {efficient_growth:.3}× over a 16× size increase"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn all_methods_match_booth_small_alphabet(s in proptest::collection::vec(0u32..3, 2..250)) {
            let ctx = Ctx::parallel().with_grain(16);
            let expected = naive_msp(&s);
            for m in all_methods() {
                prop_assert_eq!(minimal_starting_point(&ctx, &s, m), expected);
            }
        }

        #[test]
        fn all_methods_match_booth_binary(s in proptest::collection::vec(0u32..2, 2..400)) {
            let ctx = Ctx::parallel().with_grain(16);
            let expected = naive_msp(&s);
            for m in all_methods() {
                prop_assert_eq!(minimal_starting_point(&ctx, &s, m), expected);
            }
        }
    }

    /// Miri target: the rank/scatter passes inside all three MSP methods.
    #[test]
    fn miri_msp_methods_agree() {
        let s: Vec<u32> = (0..96u32).map(|i| i.wrapping_mul(13) % 5).collect();
        let ctx = Ctx::parallel();
        let want = simple_msp(&ctx, &s);
        assert_eq!(efficient_msp(&ctx, &s), want);
        assert_eq!(doubling_msp(&ctx, &s), want);
    }
}

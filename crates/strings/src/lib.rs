//! # sfcp-strings — circular string canonization and string sorting
//!
//! Section 3 of JáJá & Ryu reduces the cycle-labelling half of the coarsest
//! partition problem to two string problems, both of independent interest:
//!
//! 1. **Minimal starting point (m.s.p.) of a circular string** — the rotation
//!    that is lexicographically least.  The paper gives two parallel
//!    algorithms: the *simple* block tournament (`O(n log n)` work,
//!    `O(log n)` depth) and the *efficient* recursive pair-contraction
//!    (`O(n log log n)` work, `O(log n)` depth), plus it builds on the
//!    classical sequential solutions (Booth, Shiloach).
//! 2. **Lexicographic sorting of variable-length strings** whose total length
//!    is `n` over a polynomial alphabet, again by pair contraction, in
//!    `O(n log log n)` work and `O(log n)` depth.
//!
//! This crate implements all of them:
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`period`] | smallest repeating prefix (= smallest period dividing the length) of a circular string, sequential (failure function) and parallel (divisor checks) |
//! | [`canonical`] | sequential m.s.p. baselines: Booth's algorithm, a Lyndon/Duval-based least rotation, and a naive quadratic reference |
//! | [`msp`] | the parallel m.s.p. algorithms: the paper's *simple* tournament, the paper's *efficient* contraction, and a rank-doubling baseline; plus the [`msp::minimal_starting_point`] facade that handles repeating inputs |
//! | [`string_sort`] | the paper's pair-contraction string sorting and a parallel comparison-sort baseline |
//!
//! Symbols are `u32`s (the alphabet of the coarsest-partition application is
//! the set of initial block labels, which is at most `n`); the blank symbol
//! `#` that "precedes any symbol" is represented internally by reserving `0`
//! and shifting real symbols up by one.
//!
//! ```
//! use sfcp_pram::Ctx;
//! use sfcp_strings::msp::{minimal_starting_point, MspMethod};
//!
//! let ctx = Ctx::parallel();
//! // Example 3.4 of the paper.
//! let s: Vec<u32> = vec![3, 2, 1, 3, 2, 3, 4, 3, 1, 2, 3, 4, 2, 1, 1, 1, 3, 2, 2];
//! let msp = minimal_starting_point(&ctx, &s, MspMethod::Efficient);
//! // The minimal rotation starts at the run "1,1,1,3,2,2,...".
//! assert_eq!(msp, 13);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod canonical;
pub mod msp;
pub mod period;
pub mod string_sort;

pub use canonical::{booth_msp, naive_msp};
pub use msp::{minimal_starting_point, try_minimal_starting_point, MspMethod};
pub use period::{smallest_period, smallest_period_seq};
pub use string_sort::{sort_strings, try_sort_strings, StringSortMethod};

/// Compare two rotations of the same circular string lexicographically.
///
/// Returns the ordering of rotation `i` versus rotation `j`, comparing at
/// most `s.len()` symbols (two rotations of the same circular string are
/// equal iff they agree on all `n` symbols).
#[must_use]
pub fn compare_rotations(s: &[u32], i: usize, j: usize) -> std::cmp::Ordering {
    let n = s.len();
    for k in 0..n {
        let a = s[(i + k) % n];
        let b = s[(j + k) % n];
        match a.cmp(&b) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// Materialize the rotation of `s` starting at `start`.
#[must_use]
pub fn rotation(s: &[u32], start: usize) -> Vec<u32> {
    let n = s.len();
    (0..n).map(|k| s[(start + k) % n]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn compare_rotations_correctness() {
        let s = [2u32, 1, 3, 1];
        // rotation 1 = [1,3,1,2], rotation 3 = [1,2,1,3]
        assert_eq!(rotation(&s, 1), vec![1, 3, 1, 2]);
        assert_eq!(rotation(&s, 3), vec![1, 2, 1, 3]);
        assert_eq!(compare_rotations(&s, 3, 1), Ordering::Less);
        assert_eq!(compare_rotations(&s, 1, 3), Ordering::Greater);
        assert_eq!(compare_rotations(&s, 2, 2), Ordering::Equal);
    }

    #[test]
    fn equal_rotations_of_repeating_string() {
        let s = [1u32, 2, 1, 2];
        assert_eq!(compare_rotations(&s, 0, 2), Ordering::Equal);
        assert_eq!(compare_rotations(&s, 1, 3), Ordering::Equal);
        assert_eq!(compare_rotations(&s, 0, 1), Ordering::Less);
    }
}

//! Smallest repeating prefix of a circular string.
//!
//! For a cycle `C` with B-label string `S`, the *smallest repeating prefix*
//! `P` is the shortest prefix with `P^j = S`.  Its length is the smallest
//! period of `S` that divides `|S|`; every node of the cycle gets the same
//! Q-label as the node `|P|` positions ahead (Lemma 2.1(ii)), so the cycle
//! labelling algorithm first replaces each cycle's label string by `P`.
//!
//! Two implementations:
//! * [`smallest_period_seq`] — the classical KMP failure-function
//!   computation, `O(n)` sequential time (the route Paige–Tarjan–Bonic take);
//! * [`smallest_period`] — a parallel check of each divisor `d | n` in
//!   increasing order (`S` is `d`-periodic iff `S[i] = S[i mod d]` for all
//!   `i`), `O(log n)`-ish depth per check and `O(n)` work per check.  The
//!   number of divisors of `n` is `n^{o(1)}`, and in the coarsest-partition
//!   pipeline the strings are almost always aperiodic so only a couple of
//!   divisors are ever inspected.  (The paper cites the Breslauer–Galil
//!   string-matching machinery for an `O(log log n)`-time bound; the divisor
//!   sweep is the practical substitution and is cross-checked against the
//!   sequential algorithm in the tests.)

use sfcp_pram::Ctx;

/// Smallest period `p` of `s` such that `p` divides `s.len()` — i.e. the
/// length of the smallest repeating prefix of the circular string `s`.
/// Returns `s.len()` for aperiodic strings and `0` for the empty string.
///
/// Sequential `O(n)` via the KMP failure function.
#[must_use]
pub fn smallest_period_seq(s: &[u32]) -> usize {
    let n = s.len();
    if n == 0 {
        return 0;
    }
    // failure[i] = length of the longest proper border of s[..=i].
    let mut failure = vec![0usize; n];
    let mut k = 0usize;
    for i in 1..n {
        while k > 0 && s[i] != s[k] {
            k = failure[k - 1];
        }
        if s[i] == s[k] {
            k += 1;
        }
        failure[i] = k;
    }
    let p = n - failure[n - 1];
    if n.is_multiple_of(p) {
        p
    } else {
        n
    }
}

/// Parallel smallest period (same contract as [`smallest_period_seq`]).
#[must_use]
pub fn smallest_period(ctx: &Ctx, s: &[u32]) -> usize {
    let n = s.len();
    if n == 0 {
        return 0;
    }
    if n == 1 {
        return 1;
    }
    // Divisors of n in increasing order.
    let mut divisors = Vec::new();
    let mut d = 1usize;
    while d * d <= n {
        if n.is_multiple_of(d) {
            divisors.push(d);
            if d != n / d {
                divisors.push(n / d);
            }
        }
        d += 1;
    }
    divisors.sort_unstable();
    ctx.charge_step(divisors.len() as u64);

    for &p in &divisors {
        if p == n {
            break;
        }
        // Cheap rejection first: almost every non-period is refuted within a
        // handful of positions, so probe a short prefix sequentially before
        // paying for the full parallel check.
        let probe = (n - p).min(64);
        ctx.charge_work(probe as u64);
        if (0..probe).any(|i| s[i + p] != s[i]) {
            continue;
        }
        // s is p-periodic iff s[i] == s[i - p] for all i >= p.
        let periodic =
            ctx.par_reduce_idx(n - p, true, |i| s[i + p] == s[i % p.max(1)], |a, b| a && b);
        if periodic {
            return p;
        }
    }
    n
}

/// Convenience: the smallest repeating prefix itself.
#[must_use]
pub fn smallest_repeating_prefix(ctx: &Ctx, s: &[u32]) -> Vec<u32> {
    let p = smallest_period(ctx, s);
    s[..p].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference_period(s: &[u32]) -> usize {
        let n = s.len();
        if n == 0 {
            return 0;
        }
        'outer: for p in 1..=n {
            if !n.is_multiple_of(p) {
                continue;
            }
            for i in p..n {
                if s[i] != s[i % p] {
                    continue 'outer;
                }
            }
            return p;
        }
        n
    }

    #[test]
    fn simple_cases() {
        let ctx = Ctx::parallel();
        assert_eq!(smallest_period_seq(&[]), 0);
        assert_eq!(smallest_period(&ctx, &[]), 0);
        assert_eq!(smallest_period_seq(&[5]), 1);
        assert_eq!(smallest_period(&ctx, &[5]), 1);
        assert_eq!(smallest_period_seq(&[1, 1, 1, 1]), 1);
        assert_eq!(smallest_period(&ctx, &[1, 1, 1, 1]), 1);
        assert_eq!(smallest_period_seq(&[1, 2, 1, 2]), 2);
        assert_eq!(smallest_period(&ctx, &[1, 2, 1, 2]), 2);
        assert_eq!(smallest_period_seq(&[1, 2, 3]), 3);
        assert_eq!(smallest_period(&ctx, &[1, 2, 3]), 3);
    }

    #[test]
    fn paper_example_31() {
        // Example 3.1: the B-label string of cycle C is (1,2,1,3,1,2,1,3,1,2,1,3)
        // and its smallest repeating prefix is (1,2,1,3).
        let ctx = Ctx::parallel();
        let s = [1u32, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3];
        assert_eq!(smallest_period_seq(&s), 4);
        assert_eq!(smallest_period(&ctx, &s), 4);
        assert_eq!(smallest_repeating_prefix(&ctx, &s), vec![1, 2, 1, 3]);
        // Cycle D has B-label string (1,2,1,3): aperiodic.
        let d = [1u32, 2, 1, 3];
        assert_eq!(smallest_period_seq(&d), 4);
        assert_eq!(smallest_period(&ctx, &d), 4);
    }

    #[test]
    fn period_must_divide_length() {
        // "aab" repeated twice then one extra "a": the failure function would
        // suggest a border, but no proper divisor period exists for length 7.
        let ctx = Ctx::parallel();
        let s = [1u32, 1, 2, 1, 1, 2, 1];
        assert_eq!(smallest_period_seq(&s), 7);
        assert_eq!(smallest_period(&ctx, &s), 7);
    }

    #[test]
    fn longer_structured_period() {
        let ctx = Ctx::parallel();
        let base = [3u32, 1, 4, 1, 5];
        let mut s = Vec::new();
        for _ in 0..12 {
            s.extend_from_slice(&base);
        }
        assert_eq!(smallest_period_seq(&s), 5);
        assert_eq!(smallest_period(&ctx, &s), 5);
    }

    proptest! {
        #[test]
        fn par_and_seq_match_reference(
            base in proptest::collection::vec(0u32..4, 1..12),
            reps in 1usize..6,
        ) {
            let mut s = Vec::new();
            for _ in 0..reps {
                s.extend_from_slice(&base);
            }
            let ctx = Ctx::parallel().with_grain(16);
            let expected = reference_period(&s);
            prop_assert_eq!(smallest_period_seq(&s), expected);
            prop_assert_eq!(smallest_period(&ctx, &s), expected);
        }

        #[test]
        fn random_strings(s in proptest::collection::vec(0u32..3, 1..200)) {
            let ctx = Ctx::parallel().with_grain(16);
            let expected = reference_period(&s);
            prop_assert_eq!(smallest_period_seq(&s), expected);
            prop_assert_eq!(smallest_period(&ctx, &s), expected);
        }
    }
}

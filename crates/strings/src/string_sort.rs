//! Lexicographic sorting of variable-length strings — *Algorithm sorting
//! strings* (Section 3.1, Lemma 3.8).
//!
//! Input: a list of `m` strings over an alphabet of size polynomial in `n`,
//! where `n` is the total number of symbols.  The paper's algorithm contracts
//! the instance round by round: every string is cut into ordered pairs (the
//! last pair of an odd-length string padded with the blank `#`, which
//! precedes every symbol), all pairs are integer-sorted and replaced by their
//! ranks, halving every string; after `O(log log n)` rounds the instance has
//! at most `n / log n` symbols and a comparison sort finishes the job.  With
//! the radix sort standing in for Bhatt-et-al. integer sorting this is the
//! `O(n log log n)`-work, `O(log n)`-depth algorithm of Lemma 3.8.
//!
//! The key invariant (checked by the property tests) is that the pair→rank
//! encoding preserves the relative lexicographic order of the strings at
//! every round, including prefix cases (`"ab" < "abc"`), because the blank
//! sorts strictly below every real symbol.

use sfcp_parprim::merge::parallel_merge_sort;
use sfcp_parprim::rank::dense_ranks_of_pairs_into;
use sfcp_pram::Ctx;

/// Which string sorting algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StringSortMethod {
    /// The paper's pair-contraction algorithm (integer sorting per round).
    #[default]
    Contraction,
    /// Direct parallel comparison sort on the string slices
    /// (`O(n log m)`-ish work depending on shared prefixes) — the baseline.
    Comparison,
}

/// Fallible [`sort_strings`]: validates the size envelope and converts any
/// mid-run panic (internal assert or fault injected through
/// [`sfcp_pram::faults`]) into a typed [`sfcp_pram::Error`], running
/// [`Ctx::recover`] before returning so the context stays usable.
///
/// # Errors
/// [`sfcp_pram::Error::TooLarge`] when the string count or total symbol
/// count reaches `2^31`; [`sfcp_pram::Error::Injected`] /
/// [`sfcp_pram::Error::Panicked`] when the run unwinds.
pub fn try_sort_strings(
    ctx: &Ctx,
    strings: &[Vec<u32>],
    method: StringSortMethod,
) -> Result<Vec<u32>, sfcp_pram::Error> {
    sfcp_pram::check_index_width(strings.len())?;
    let total: usize = strings.iter().map(Vec::len).sum();
    sfcp_pram::check_index_width(total)?;
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sort_strings(ctx, strings, method)
    })) {
        Ok(order) => Ok(order),
        Err(payload) => {
            let err = sfcp_pram::Error::from_panic(payload);
            ctx.recover();
            Err(err)
        }
    }
}

/// Sort `strings` lexicographically and return the permutation of indices in
/// sorted order.  Equal strings keep their original relative order (the
/// result is a stable order), which also makes the output deterministic.
#[must_use]
pub fn sort_strings(ctx: &Ctx, strings: &[Vec<u32>], method: StringSortMethod) -> Vec<u32> {
    match method {
        StringSortMethod::Contraction => sort_strings_contraction(ctx, strings),
        StringSortMethod::Comparison => sort_strings_comparison(ctx, strings),
    }
}

/// Baseline: comparison sort of the strings (ties broken by original index).
#[must_use]
pub fn sort_strings_comparison(ctx: &Ctx, strings: &[Vec<u32>]) -> Vec<u32> {
    let m = strings.len();
    let mut order: Vec<u32> = (0..m as u32).collect();
    // Charge the comparison-model cost: each of the O(m log m) comparisons
    // can touch up to the length of the shorter string; charge the average
    // string length per comparison.
    let total: u64 = strings.iter().map(|s| s.len() as u64).sum();
    let avg = if m == 0 { 0 } else { total / m as u64 + 1 };
    let log_m = u64::from(sfcp_pram::ceil_log2(m.max(2)));
    ctx.charge_work(m as u64 * log_m * avg);
    ctx.charge_rounds(log_m);
    if ctx.is_parallel() {
        use rayon::prelude::*;
        order.par_sort_by(|&a, &b| {
            strings[a as usize]
                .cmp(&strings[b as usize])
                .then(a.cmp(&b))
        });
    } else {
        order.sort_by(|&a, &b| {
            strings[a as usize]
                .cmp(&strings[b as usize])
                .then(a.cmp(&b))
        });
    }
    order
}

/// The paper's contraction-based string sorting.
#[must_use]
pub fn sort_strings_contraction(ctx: &Ctx, strings: &[Vec<u32>]) -> Vec<u32> {
    let m = strings.len();
    if m <= 1 {
        return (0..m as u32).collect();
    }
    let total_symbols: usize = strings.iter().map(Vec::len).sum();
    // Encoded strings: symbols shifted by +1 so that 0 is the blank `#`.
    let mut encoded: Vec<Vec<u64>> = ctx.par_map_slice(strings, |s| {
        s.iter().map(|&c| u64::from(c) + 1).collect::<Vec<u64>>()
    });

    // Step 4 threshold: keep contracting until at most n / log n symbols
    // remain (or every string is a single symbol).
    let threshold =
        (total_symbols / (sfcp_pram::ceil_log2(total_symbols.max(2)) as usize).max(1)).max(64);

    // The pair list and rank buffer are workspace-backed and reused across
    // the O(log log n) contraction rounds.
    let ws = ctx.workspace();
    let mut pairs = ws.take_pairs(0);
    let mut ranks = ws.take_u32(0);

    loop {
        let current_total: usize = encoded.iter().map(Vec::len).sum();
        let max_len = encoded.iter().map(Vec::len).max().unwrap_or(0);
        ctx.charge_step(m as u64);
        if max_len <= 1 || current_total <= threshold {
            break;
        }

        // Steps 2–3: cut every string into pairs, rank all pairs globally,
        // rewrite every string as its sequence of pair ranks.
        let pairs_per_string: Vec<u64> =
            ctx.par_map_slice(&encoded, |s| s.len().div_ceil(2) as u64);
        let (offsets, total_pairs) = sfcp_parprim::scan::exclusive_scan(ctx, &pairs_per_string);
        let total_pairs = total_pairs as usize;

        pairs.resize(total_pairs, (0, 0));
        {
            let ptr = SendPtr(pairs.as_mut_ptr());
            let encoded_ref = &encoded;
            ctx.par_for_idx(m, |i| {
                let s = &encoded_ref[i];
                let base = offsets[i] as usize;
                let p = ptr;
                for g in 0..s.len().div_ceil(2) {
                    let a = s[2 * g];
                    let b = if 2 * g + 1 < s.len() { s[2 * g + 1] } else { 0 };
                    // SAFETY: every (string, group) pair owns one distinct slot.
                    unsafe {
                        *p.0.add(base + g) = (a, b);
                    }
                }
            });
            ctx.charge_work(current_total as u64);
        }

        let _distinct = dense_ranks_of_pairs_into(ctx, &pairs, &mut ranks);

        encoded = ctx.par_map_idx(m, |i| {
            let base = offsets[i] as usize;
            let count = pairs_per_string[i] as usize;
            // Shift by +1 to keep 0 reserved as the blank in the next round.
            (0..count).map(|g| u64::from(ranks[base + g]) + 1).collect()
        });
    }

    // Step 5: comparison sort of the contracted instance.  Keys are
    // (encoded string, original index) so that equal strings stay in their
    // original relative order.
    let mut keyed: Vec<(Vec<u64>, u32)> = encoded
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, i as u32))
        .collect();
    ctx.charge_step(m as u64);
    sort_keyed(ctx, &mut keyed);
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Final comparison sort: if the contracted strings are single symbols we can
/// sort fixed-size keys with the parallel merge sort; otherwise fall back to
/// a slice-comparison sort (still on an instance of ≤ n / log n symbols).
fn sort_keyed(ctx: &Ctx, keyed: &mut [(Vec<u64>, u32)]) {
    let all_unit = keyed.iter().all(|(s, _)| s.len() <= 1);
    if all_unit {
        let mut fixed: Vec<(u64, u32)> = keyed
            .iter()
            .map(|(s, i)| (s.first().copied().map_or(0, |x| x), *i))
            .collect();
        parallel_merge_sort(ctx, &mut fixed);
        let lookup: std::collections::HashMap<u32, usize> = fixed
            .iter()
            .enumerate()
            .map(|(pos, &(_, i))| (i, pos))
            .collect();
        keyed.sort_by_key(|(_, i)| lookup[i]);
        ctx.charge_step(keyed.len() as u64);
    } else {
        let total: u64 = keyed.iter().map(|(s, _)| s.len() as u64).sum();
        ctx.charge_work(total * u64::from(sfcp_pram::ceil_log2(keyed.len().max(2))));
        ctx.charge_rounds(u64::from(sfcp_pram::ceil_log2(keyed.len().max(2))));
        if ctx.is_parallel() {
            use rayon::prelude::*;
            keyed.par_sort();
        } else {
            keyed.sort();
        }
    }
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` only smuggles a raw base pointer into parallel tasks
// whose writes target disjoint indices; every dereference site carries its
// own SAFETY argument for that disjointness, and the pointee buffer is
// borrowed for the whole parallel region, so it outlives every task.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` across tasks only copies the pointer value —
// no shared-reference method dereferences it, so aliased access to the
// pointee can never originate from the `Sync` impl itself.
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn reference_sort(strings: &[Vec<u32>]) -> Vec<u32> {
        let mut order: Vec<u32> = (0..strings.len() as u32).collect();
        order.sort_by(|&a, &b| {
            strings[a as usize]
                .cmp(&strings[b as usize])
                .then(a.cmp(&b))
        });
        order
    }

    fn check(strings: &[Vec<u32>]) {
        let ctx = Ctx::parallel().with_grain(16);
        let expected = reference_sort(strings);
        assert_eq!(
            sort_strings(&ctx, strings, StringSortMethod::Contraction),
            expected,
            "contraction sort on {strings:?}"
        );
        assert_eq!(
            sort_strings(&ctx, strings, StringSortMethod::Comparison),
            expected,
            "comparison sort on {strings:?}"
        );
    }

    #[test]
    fn empty_and_singleton() {
        check(&[]);
        check(&[vec![]]);
        check(&[vec![3, 1, 4]]);
    }

    #[test]
    fn basic_cases() {
        check(&[vec![2], vec![1], vec![3]]);
        check(&[vec![1, 2], vec![1], vec![1, 2, 3], vec![1, 1]]);
        // Prefix relationships.
        check(&[vec![1, 2, 3], vec![1, 2], vec![1], vec![], vec![1, 2, 3, 0]]);
        // Duplicates must stay in input order (stability).
        check(&[vec![5, 5], vec![5, 5], vec![5], vec![5, 5]]);
    }

    #[test]
    fn different_length_scales() {
        let strings = vec![
            vec![1; 100],
            vec![1; 99],
            {
                let mut s = vec![1; 99];
                s.push(0);
                s
            },
            vec![0; 3],
            vec![2],
            vec![],
        ];
        check(&strings);
    }

    #[test]
    fn large_random_instance() {
        let mut rng = StdRng::seed_from_u64(7);
        let strings: Vec<Vec<u32>> = (0..2000)
            .map(|_| {
                let len = rng.gen_range(0..40);
                (0..len).map(|_| rng.gen_range(0..6)).collect()
            })
            .collect();
        check(&strings);
    }

    #[test]
    fn skewed_lengths() {
        let mut rng = StdRng::seed_from_u64(11);
        // A few very long strings sharing long prefixes plus many short ones:
        // the regime where contraction pays off.
        let mut strings: Vec<Vec<u32>> = Vec::new();
        let shared: Vec<u32> = (0..1000).map(|_| rng.gen_range(0..3)).collect();
        for _ in 0..8 {
            let mut s = shared.clone();
            let extra = rng.gen_range(0..10);
            for _ in 0..extra {
                s.push(rng.gen_range(0..3));
            }
            strings.push(s);
        }
        for _ in 0..200 {
            let len = rng.gen_range(0..5);
            strings.push((0..len).map(|_| rng.gen_range(0..3)).collect());
        }
        check(&strings);
    }

    /// Lemma 3.8's observable consequence at test sizes: the contraction
    /// sort's work per input symbol stays flat as the number of strings
    /// grows, while a comparison sort's grows with `log m` (every comparison
    /// re-reads the shared prefixes).  Experiment E5 reports the full curve.
    #[test]
    fn contraction_work_grows_slower_than_comparison() {
        let work_of = |m: usize, method: StringSortMethod| -> f64 {
            let mut rng = StdRng::seed_from_u64(3);
            let shared: Vec<u32> = (0..14).map(|_| rng.gen_range(0..3)).collect();
            let strings: Vec<Vec<u32>> = (0..m)
                .map(|_| {
                    let mut s = shared.clone();
                    s.push(rng.gen_range(0..5));
                    s.push(rng.gen_range(0..5));
                    s
                })
                .collect();
            let total: usize = strings.iter().map(Vec::len).sum();
            let ctx = Ctx::parallel();
            let _ = sort_strings(&ctx, &strings, method);
            ctx.stats().work as f64 / total as f64
        };
        let (m1, m2) = (512usize, 8192usize);
        let comparison_growth =
            work_of(m2, StringSortMethod::Comparison) / work_of(m1, StringSortMethod::Comparison);
        let contraction_growth =
            work_of(m2, StringSortMethod::Contraction) / work_of(m1, StringSortMethod::Contraction);
        assert!(
            contraction_growth < comparison_growth,
            "per-symbol work growth: contraction {contraction_growth:.3} should be below comparison {comparison_growth:.3}"
        );
        assert!(
            contraction_growth < 1.2,
            "contraction per-symbol work grew by {contraction_growth:.3}× over a 16× instance increase"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_reference(
            strings in proptest::collection::vec(
                proptest::collection::vec(0u32..5, 0..20),
                0..60,
            )
        ) {
            check(&strings);
        }

        #[test]
        fn matches_reference_large_alphabet(
            strings in proptest::collection::vec(
                proptest::collection::vec(0u32..1_000_000, 0..8),
                0..40,
            )
        ) {
            check(&strings);
        }
    }

    /// Miri target: the contraction sort's scatter/rank machinery.
    #[test]
    fn miri_sort_strings_small() {
        check(&[vec![3, 1], vec![2, 2, 2], vec![1], vec![3, 1], vec![]]);
    }
}

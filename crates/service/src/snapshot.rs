//! `Snapshot` — versioned, checksummed serialization of computed results,
//! and the bounded LRU response cache built on it.
//!
//! A snapshot carries the answer **and** the run's tracked charges, so a
//! cache hit replays exactly what a cold compute would have reported (the
//! charge discipline makes charges input-determined, which is what makes
//! them cacheable at all).  The format is fixed-layout little-endian:
//!
//! ```text
//! magic "SFCPSNAP" (8) · version u32 · kind u32 · work u64 · rounds u64
//! · payload (kind-dependent) · fxhash checksum over all prior bytes (u64)
//! ```
//!
//! Decoding is total: every read is bounds-checked and every failure is a
//! typed [`SnapshotError`] — the bytes may come from another process or a
//! corrupted store.  `tests/snapshot_roundtrip.rs` drives encode→decode
//! identity and bit-flip/truncation corruption through this contract.

use sfcp_pram::fxhash::FxHashMap;
use std::collections::VecDeque;
use std::fmt;
use std::hash::Hasher;

/// Leading magic bytes.
pub const MAGIC: [u8; 8] = *b"SFCPSNAP";
/// Current format version.
pub const VERSION: u32 = 1;

/// The result payload of a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotPayload {
    /// Canonical partition labels.
    Labels(Vec<u32>),
    /// Minimal starting point of a circular string.
    Msp(u64),
    /// Decomposition summary (counters + structure fingerprint).
    Decomposition {
        /// Number of cycles.
        num_cycles: u64,
        /// Total nodes on cycles.
        num_cycle_nodes: u64,
        /// FxHash over the decomposition arrays.
        digest: u64,
    },
}

impl SnapshotPayload {
    fn kind_tag(&self) -> u32 {
        match self {
            SnapshotPayload::Labels(_) => 1,
            SnapshotPayload::Msp(_) => 2,
            SnapshotPayload::Decomposition { .. } => 3,
        }
    }
}

/// A cached result: payload plus the tracked charges of the run that
/// produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The computed result.
    pub payload: SnapshotPayload,
    /// Tracked work charge of the producing run.
    pub work: u64,
    /// Tracked rounds charge of the producing run.
    pub rounds: u64,
}

/// Why a byte string is not a valid snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// Shorter than the fixed header + checksum.
    TooShort {
        /// Actual byte count.
        len: usize,
    },
    /// The magic bytes are wrong.
    BadMagic,
    /// Unknown format version.
    BadVersion {
        /// The version found.
        found: u32,
    },
    /// Unknown payload kind tag.
    BadKind {
        /// The tag found.
        found: u32,
    },
    /// The payload section is cut short (or its declared length
    /// overflows).
    Truncated,
    /// Bytes remain after the payload and checksum.
    TrailingBytes {
        /// How many.
        extra: usize,
    },
    /// The checksum does not match the content.
    ChecksumMismatch {
        /// Checksum recomputed from the content.
        computed: u64,
        /// Checksum stored in the trailer.
        stored: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TooShort { len } => write!(f, "snapshot too short ({len} bytes)"),
            SnapshotError::BadMagic => write!(f, "bad snapshot magic"),
            SnapshotError::BadVersion { found } => write!(f, "unknown snapshot version {found}"),
            SnapshotError::BadKind { found } => write!(f, "unknown snapshot kind {found}"),
            SnapshotError::Truncated => write!(f, "snapshot payload truncated"),
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after snapshot")
            }
            SnapshotError::ChecksumMismatch { computed, stored } => {
                write!(
                    f,
                    "snapshot checksum mismatch ({computed:#x} != {stored:#x})"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Header (magic + version + kind + charges) and checksum trailer sizes.
const HEADER: usize = 8 + 4 + 4 + 8 + 8;
const TRAILER: usize = 8;

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = sfcp_pram::fxhash::FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Bounds-checked little-endian reader.
struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        let end = self.i.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.b.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.b[self.i..end];
        self.i = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }
}

impl Snapshot {
    /// Serialize to the fixed-layout byte format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let payload_len = match &self.payload {
            SnapshotPayload::Labels(labels) => 8 + labels.len() * 4,
            SnapshotPayload::Msp(_) => 8,
            SnapshotPayload::Decomposition { .. } => 24,
        };
        let mut out = Vec::with_capacity(HEADER + payload_len + TRAILER);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.payload.kind_tag().to_le_bytes());
        out.extend_from_slice(&self.work.to_le_bytes());
        out.extend_from_slice(&self.rounds.to_le_bytes());
        match &self.payload {
            SnapshotPayload::Labels(labels) => {
                out.extend_from_slice(&(labels.len() as u64).to_le_bytes());
                for &v in labels {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            SnapshotPayload::Msp(k) => out.extend_from_slice(&k.to_le_bytes()),
            SnapshotPayload::Decomposition {
                num_cycles,
                num_cycle_nodes,
                digest,
            } => {
                out.extend_from_slice(&num_cycles.to_le_bytes());
                out.extend_from_slice(&num_cycle_nodes.to_le_bytes());
                out.extend_from_slice(&digest.to_le_bytes());
            }
        }
        let sum = checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Deserialize, validating structure and checksum.  Total: arbitrary
    /// corrupt bytes yield a typed error, never a panic.
    ///
    /// # Errors
    /// [`SnapshotError`] describing the first structural violation found.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < HEADER + TRAILER {
            return Err(SnapshotError::TooShort { len: bytes.len() });
        }
        let (content, trailer) = bytes.split_at(bytes.len() - TRAILER);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        let computed = checksum(content);
        if computed != stored {
            return Err(SnapshotError::ChecksumMismatch { computed, stored });
        }
        let mut r = Reader { b: content, i: 0 };
        if r.take(8)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion { found: version });
        }
        let kind = r.u32()?;
        let work = r.u64()?;
        let rounds = r.u64()?;
        let payload = match kind {
            1 => {
                let count = r.u64()?;
                let count = usize::try_from(count).map_err(|_| SnapshotError::Truncated)?;
                // The element read below is bounds-checked per element, but
                // reject absurd counts up front so a corrupt length cannot
                // trigger a huge allocation before failing.
                let need = count.checked_mul(4).ok_or(SnapshotError::Truncated)?;
                if r.b.len() - r.i < need {
                    return Err(SnapshotError::Truncated);
                }
                let mut labels = Vec::with_capacity(count);
                for _ in 0..count {
                    labels.push(u32::from_le_bytes(
                        r.take(4)?.try_into().expect("4-byte slice"),
                    ));
                }
                SnapshotPayload::Labels(labels)
            }
            2 => SnapshotPayload::Msp(r.u64()?),
            3 => SnapshotPayload::Decomposition {
                num_cycles: r.u64()?,
                num_cycle_nodes: r.u64()?,
                digest: r.u64()?,
            },
            found => return Err(SnapshotError::BadKind { found }),
        };
        if r.i != content.len() {
            return Err(SnapshotError::TrailingBytes {
                extra: content.len() - r.i,
            });
        }
        Ok(Snapshot {
            payload,
            work,
            rounds,
        })
    }
}

/// Counters exposed by [`SnapshotCache::stats`] (and over the wire by the
/// `probe` request).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a snapshot.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Resident entries.
    pub entries: usize,
    /// Resident encoded bytes.
    pub bytes: usize,
}

struct Entry {
    bytes: Vec<u8>,
    stamp: u64,
}

/// A bounded LRU over **encoded** snapshots, keyed by input digest
/// (FxHash over kind, engines, and input content).
///
/// Entries are stored encoded so every hit exercises the full
/// decode-and-verify path — a corrupted entry can never leak a wrong
/// answer; it drops out as a miss.
pub struct SnapshotCache {
    map: FxHashMap<u64, Entry>,
    /// Recency queue of `(key, stamp)`; stale pairs (stamp no longer
    /// matching the entry) are skipped lazily at eviction time.
    order: VecDeque<(u64, u64)>,
    next_stamp: u64,
    max_bytes: usize,
    cur_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SnapshotCache {
    /// An empty cache bounded to `max_bytes` of encoded snapshots
    /// (`0` disables caching entirely).
    #[must_use]
    pub fn new(max_bytes: usize) -> SnapshotCache {
        SnapshotCache {
            map: FxHashMap::default(),
            order: VecDeque::new(),
            next_stamp: 0,
            max_bytes,
            cur_bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up and decode; a hit refreshes recency.
    pub fn get(&mut self, key: u64) -> Option<Snapshot> {
        let decoded = self
            .map
            .get(&key)
            .map(|entry| Snapshot::decode(&entry.bytes));
        match decoded {
            None => {
                self.misses += 1;
                None
            }
            Some(Ok(snapshot)) => {
                let stamp = self.next_stamp;
                self.next_stamp += 1;
                if let Some(entry) = self.map.get_mut(&key) {
                    entry.stamp = stamp;
                }
                self.order.push_back((key, stamp));
                self.hits += 1;
                Some(snapshot)
            }
            Some(Err(_)) => {
                // A corrupt resident entry (cannot happen through this API,
                // but the store is bytes): drop it, report a miss.
                if let Some(entry) = self.map.remove(&key) {
                    self.cur_bytes -= entry.bytes.len();
                }
                self.misses += 1;
                None
            }
        }
    }

    /// Insert an encoded snapshot, evicting least-recently-used entries to
    /// stay within the byte budget.  Oversized snapshots are not admitted.
    pub fn insert(&mut self, key: u64, snapshot: &Snapshot) {
        let bytes = snapshot.encode();
        if bytes.len() > self.max_bytes {
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.cur_bytes -= old.bytes.len();
        }
        while self.cur_bytes + bytes.len() > self.max_bytes {
            let Some((victim, stamp)) = self.order.pop_front() else {
                break;
            };
            let live = self.map.get(&victim).is_some_and(|e| e.stamp == stamp);
            if live {
                let entry = self.map.remove(&victim).expect("live entry");
                self.cur_bytes -= entry.bytes.len();
                self.evictions += 1;
            }
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.cur_bytes += bytes.len();
        self.order.push_back((key, stamp));
        self.map.insert(key, Entry { bytes, stamp });
    }

    /// Flip a byte inside a resident entry (test support: proves a corrupt
    /// store degrades to a miss, never a wrong answer).
    #[doc(hidden)]
    pub fn corrupt_for_test(&mut self, key: u64) {
        if let Some(entry) = self.map.get_mut(&key) {
            let mid = entry.bytes.len() / 2;
            entry.bytes[mid] ^= 0x40;
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            bytes: self.cur_bytes,
        }
    }
}

/// FxHash fingerprint of a label array (what `digest:true` responses
/// carry; exported so the differential harness can fingerprint direct
/// library results identically).
#[must_use]
pub fn labels_digest(labels: &[u32]) -> u64 {
    let mut h = sfcp_pram::fxhash::FxHasher::default();
    h.write_u64(labels.len() as u64);
    for &v in labels {
        h.write_u32(v);
    }
    h.finish()
}

/// FxHash fingerprint of a decomposition's structure arrays (the
/// `decompose` response payload; exported for the differential harness).
#[must_use]
pub fn decomposition_digest(d: &sfcp_forest::Decomposition) -> u64 {
    let mut h = sfcp_pram::fxhash::FxHasher::default();
    h.write_u64(d.is_cycle.len() as u64);
    for &b in &d.is_cycle {
        h.write_u8(u8::from(b));
    }
    for arr in [
        &d.cycle_of,
        &d.cycle_pos,
        &d.cycle_offsets,
        &d.cycle_nodes,
        &d.levels,
        &d.roots,
    ] {
        h.write_u64(arr.len() as u64);
        for &v in arr {
            h.write_u32(v);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            payload: SnapshotPayload::Labels(vec![0, 1, 1, 2]),
            work: 1234,
            rounds: 56,
        }
    }

    #[test]
    fn encode_decode_identity() {
        for snap in [
            sample(),
            Snapshot {
                payload: SnapshotPayload::Msp(3),
                work: 9,
                rounds: 2,
            },
            Snapshot {
                payload: SnapshotPayload::Decomposition {
                    num_cycles: 4,
                    num_cycle_nodes: 17,
                    digest: 0xdead_beef,
                },
                work: 0,
                rounds: 0,
            },
        ] {
            assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let bytes = sample().encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    Snapshot::decode(&corrupt).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncations_are_typed() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                Snapshot::decode(&bytes[..len]).is_err(),
                "truncation to {len} accepted"
            );
        }
    }

    #[test]
    fn lru_eviction_respects_recency_and_budget() {
        let snap = |tag: u32| Snapshot {
            payload: SnapshotPayload::Labels(vec![tag; 8]),
            work: 1,
            rounds: 1,
        };
        let one = snap(0).encode().len();
        let mut cache = SnapshotCache::new(3 * one);
        cache.insert(1, &snap(1));
        cache.insert(2, &snap(2));
        cache.insert(3, &snap(3));
        assert!(cache.get(1).is_some(), "1 still resident");
        cache.insert(4, &snap(4)); // evicts 2 (LRU); 1 was refreshed
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert!(cache.get(4).is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= 3 * one);
    }

    #[test]
    fn zero_budget_disables_admission() {
        let mut cache = SnapshotCache::new(0);
        cache.insert(1, &sample());
        assert!(cache.get(1).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}

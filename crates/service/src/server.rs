//! The TCP front-end: accept loop, per-connection readers, and the shared
//! worker pool.
//!
//! Readers decode frames and enqueue jobs; each worker thread owns one
//! [`Worker`] (persistent context, snapshot cache) and drains the shared
//! queue.  With a non-zero [`BatchPolicy::deadline`], a worker that pulls a
//! fusable request holds it briefly to coalesce queued peers into one
//! fused invocation (cross-connection batching); explicit `batch` frames
//! fuse regardless of the deadline.
//!
//! Failure containment: a malformed payload answers with a typed error and
//! the connection stays open; an oversized length prefix answers and then
//! closes (the stream position is unrecoverable); a request that panics a
//! solver recovers the worker's context and answers with a typed error —
//! the worker thread never dies with the request.

use crate::batch::BatchPolicy;
use crate::error::ErrorReply;
use crate::proto::{
    read_frame, write_frame, ComputeRequest, FrameError, Input, Kind, Request, RequestBody,
    Response, DEFAULT_MAX_FRAME_BYTES,
};
use crate::worker::Worker;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads (each with its own persistent context and cache).
    pub workers: usize,
    /// Batching admission policy.
    pub policy: BatchPolicy,
    /// Per-worker snapshot-cache budget in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Rebuild the context per request (benchmark cold baseline only).
    pub cold_ctx: bool,
    /// Frame payload cap.
    pub max_frame_bytes: u32,
    /// TCP port on 127.0.0.1 (0 picks an ephemeral port).
    pub port: u16,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 1,
            policy: BatchPolicy::default(),
            cache_bytes: 64 << 20,
            cold_ctx: false,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            port: 0,
        }
    }
}

/// The serving front-end; [`Server::start`] returns a handle.
pub struct Server;

/// A running server: bound address plus shutdown/join plumbing.  Dropping
/// the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

/// One queued unit of work.
enum Job {
    Single {
        conn: Arc<Conn>,
        id: u64,
        req: ComputeRequest,
    },
    Batch {
        conn: Arc<Conn>,
        id: u64,
        subs: Vec<(u64, ComputeRequest)>,
    },
    Probe {
        conn: Arc<Conn>,
        id: u64,
    },
}

/// The write half of a connection; response frames are written whole under
/// the lock so concurrent workers never interleave bytes.
struct Conn {
    stream: Mutex<TcpStream>,
}

impl Conn {
    /// Best-effort send: a vanished peer is not the worker's problem.
    fn send(&self, payload: &[u8]) {
        if let Ok(mut stream) = self.stream.lock() {
            let _ = write_frame(&mut *stream, payload);
        }
    }
}

impl Server {
    /// Bind 127.0.0.1 and spawn the accept loop and worker pool.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));

        let mut threads = Vec::with_capacity(config.workers + 1);
        for index in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let shutdown = Arc::clone(&shutdown);
            // The worker (and its context) is built inside its thread: a
            // worker is a strictly single-threaded owner and never crosses
            // a thread boundary.
            threads.push(std::thread::spawn(move || {
                let worker = Worker::new(index, config.cache_bytes, config.policy, config.cold_ctx);
                worker_loop(worker, &rx, &shutdown);
            }));
        }
        {
            let shutdown = Arc::clone(&shutdown);
            let max_frame = config.max_frame_bytes;
            threads.push(std::thread::spawn(move || {
                accept_loop(&listener, &tx, &shutdown, max_frame);
            }));
        }
        Ok(ServerHandle {
            addr,
            shutdown,
            threads,
        })
    }
}

impl ServerHandle {
    /// The bound address (ephemeral port resolved).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the workers, and join the service threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        if let Ok(mut stream) = TcpStream::connect(self.addr) {
            let _ = stream.write_all(&[]);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &Sender<Job>,
    shutdown: &Arc<AtomicBool>,
    max_frame: u32,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let tx = tx.clone();
        let shutdown = Arc::clone(shutdown);
        // Readers are not joined on shutdown: they exit on client EOF or
        // when the job channel closes beneath them.
        std::thread::spawn(move || connection_loop(stream, &tx, &shutdown, max_frame));
    }
}

fn connection_loop(
    stream: TcpStream,
    tx: &Sender<Job>,
    shutdown: &Arc<AtomicBool>,
    max_frame: u32,
) {
    // Request/response ping-pong never benefits from Nagle coalescing, and
    // with it on, any response segment racing a delayed ACK stalls for the
    // peer's delayed-ACK timer (the client side sets nodelay too).
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(Conn {
        stream: Mutex::new(write_half),
    });
    let mut reader = stream;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut reader, max_frame) {
            Ok(None) => return,
            Ok(Some(payload)) => match Request::decode(&payload) {
                Err(err) => {
                    // Garbage inside a well-delimited frame: answer and
                    // keep the connection (framing is still in sync).
                    let id = err.id;
                    conn.send(
                        &Response {
                            id,
                            outcome: Err(err),
                        }
                        .encode(),
                    );
                }
                Ok(request) => {
                    let job = match request.body {
                        RequestBody::Probe => Job::Probe {
                            conn: Arc::clone(&conn),
                            id: request.id,
                        },
                        RequestBody::Compute(req) => Job::Single {
                            conn: Arc::clone(&conn),
                            id: request.id,
                            req,
                        },
                        RequestBody::Batch(subs) => Job::Batch {
                            conn: Arc::clone(&conn),
                            id: request.id,
                            subs,
                        },
                    };
                    if tx.send(job).is_err() {
                        return;
                    }
                }
            },
            Err(FrameError::TooLarge { declared, max }) => {
                // The declared length poisons the stream position: report,
                // then close.
                let err = ErrorReply::bad_request(format!(
                    "frame of {declared} bytes exceeds the {max}-byte cap"
                ));
                conn.send(
                    &Response {
                        id: 0,
                        outcome: Err(err),
                    }
                    .encode(),
                );
                return;
            }
            Err(FrameError::Io(_)) => return,
        }
    }
}

/// Domain size of a request, for admission accounting (workloads declare
/// it; inline inputs carry it).
fn approx_n(req: &ComputeRequest) -> usize {
    match &req.input {
        Input::Inline { f, .. } => f.len(),
        Input::Workload { n, .. } => *n,
    }
}

fn is_fusable(req: &ComputeRequest) -> bool {
    matches!(req.kind, Kind::Partition | Kind::MinimizeDfa) && !req.trace
}

fn worker_loop(mut worker: Worker, rx: &Arc<Mutex<Receiver<Job>>>, shutdown: &Arc<AtomicBool>) {
    loop {
        // Hold the queue lock only while collecting; processing runs
        // unlocked so other workers keep draining.
        let jobs = {
            let Ok(guard) = rx.lock() else { return };
            match guard.recv_timeout(Duration::from_millis(50)) {
                Err(RecvTimeoutError::Timeout) => {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
                Ok(first) => {
                    let policy = worker.policy();
                    let mut jobs = vec![first];
                    let fusable_first =
                        matches!(&jobs[0], Job::Single { req, .. } if is_fusable(req));
                    if fusable_first && policy.deadline > Duration::ZERO {
                        let start = Instant::now();
                        let mut total_n = match &jobs[0] {
                            Job::Single { req, .. } => approx_n(req),
                            _ => 0,
                        };
                        while jobs.len() < policy.max_batch {
                            let remaining = policy.deadline.saturating_sub(start.elapsed());
                            if remaining.is_zero() {
                                break;
                            }
                            match guard.recv_timeout(remaining) {
                                Err(_) => break,
                                Ok(job) => {
                                    let stop = match &job {
                                        Job::Single { req, .. } if is_fusable(req) => {
                                            total_n += approx_n(req);
                                            total_n > policy.max_fused_n
                                        }
                                        _ => true,
                                    };
                                    jobs.push(job);
                                    if stop {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    jobs
                }
            }
        };
        process_jobs(&mut worker, jobs);
    }
}

fn process_jobs(worker: &mut Worker, jobs: Vec<Job>) {
    // Coalesce the fusable singles into one implicit cohort; everything
    // else runs solo in arrival order.
    let mut cohort: Vec<(Arc<Conn>, u64, ComputeRequest)> = Vec::new();
    let mut solo: Vec<Job> = Vec::new();
    for job in jobs {
        match job {
            Job::Single { conn, id, req } if is_fusable(&req) => cohort.push((conn, id, req)),
            other => solo.push(other),
        }
    }
    if cohort.len() == 1 {
        let (conn, id, req) = cohort.pop().expect("len checked");
        conn.send(&worker.serve(id, &req).encode());
    } else if !cohort.is_empty() {
        let subs: Vec<(u64, ComputeRequest)> = cohort
            .iter()
            .map(|(_, id, req)| (*id, req.clone()))
            .collect();
        let batch = worker.serve_batch(0, &subs);
        for ((conn, _, _), response) in cohort.iter().zip(batch.responses) {
            conn.send(&response.encode());
        }
    }
    for job in solo {
        match job {
            Job::Single { conn, id, req } => conn.send(&worker.serve(id, &req).encode()),
            Job::Batch { conn, id, subs } => conn.send(&worker.serve_batch(id, &subs).encode()),
            Job::Probe { conn, id } => {
                let outcome = worker.handle_probe().map_err(|mut e| {
                    e.id = id;
                    e
                });
                conn.send(&Response { id, outcome }.encode());
            }
        }
    }
}

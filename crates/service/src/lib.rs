//! # `sfcp_service` — the batched, warm, snapshot-cached serving layer
//!
//! Every library entry point in this workspace pays a cold-start tax: a
//! fresh [`sfcp_pram::Ctx`] arrives with empty workspace pools, and the
//! measured warm-up margin at `n = 10^6` is ~20% of end-to-end latency
//! (`decompose` vs `decompose_warm` in `BENCH_parprim.json`).  This crate
//! is the long-running front-end that amortizes that tax to zero: worker
//! threads own persistent contexts, answers are cached as versioned
//! checksummed [`Snapshot`]s, and small requests fuse into one engine
//! invocation (DESIGN.md §13).
//!
//! The wire protocol is length-prefixed JSON over TCP ([`proto`]); the
//! request surface covers coarsest partition, unary DFA minimization,
//! circular-string canonization, and pseudoforest decomposition.  Answers
//! and charges are **bit-identical** to direct library calls — the
//! differential harness (`tests/service_differential.rs`) pins that across
//! the whole engine grid, which is only possible because the charge
//! discipline makes charges input-determined and therefore cacheable.
//!
//! ## Quickstart
//!
//! ```
//! use sfcp_service::{Client, ComputeRequest, ReplyPayload, Server, ServerConfig};
//!
//! // An in-process server on an ephemeral local port.
//! let server = Server::start(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//!
//! // The paper's 16-node example, served over the wire.
//! let inst = sfcp::Instance::paper_example();
//! let req = ComputeRequest::partition(inst.f().to_vec(), inst.blocks().to_vec());
//! let reply = client.request(&req).unwrap().unwrap();
//! let ReplyPayload::Labels(labels) = &reply.payload else { panic!() };
//! assert_eq!(labels.iter().max(), Some(&3), "four blocks, canonical labels");
//! assert!(reply.work > 0 && !reply.cached);
//!
//! // The identical request hits the snapshot cache — same answer, same
//! // charges, no recompute.
//! let again = client.request(&req).unwrap().unwrap();
//! assert!(again.cached);
//! assert_eq!(again.payload, reply.payload);
//! assert_eq!((again.work, again.rounds), (reply.work, reply.rounds));
//!
//! // Bad input is a typed error, and the worker keeps serving.
//! let bad = ComputeRequest::partition(vec![9, 0], vec![0, 0]);
//! let err = client.request(&bad).unwrap().unwrap_err();
//! assert_eq!(err.code, sfcp_service::ErrorCode::InvalidInput);
//! assert!(client.probe().unwrap().is_ok());
//!
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod batch;
pub mod client;
pub mod error;
pub mod json;
pub mod proto;
pub mod server;
pub mod snapshot;
pub mod worker;

pub use batch::BatchPolicy;
pub use client::{Client, ClientError};
pub use error::{ErrorCode, ErrorReply};
pub use proto::{ComputeRequest, Engines, Input, Kind, Reply, ReplyPayload, Request, Response};
pub use server::{Server, ServerConfig, ServerHandle};
pub use snapshot::{Snapshot, SnapshotCache, SnapshotError, SnapshotPayload};
pub use worker::Worker;

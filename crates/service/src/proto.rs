//! Wire protocol: length-prefixed JSON frames and the typed request /
//! response structs they carry.
//!
//! A frame is a little-endian `u32` byte count followed by exactly that
//! many bytes of UTF-8 JSON (one request or one response object).  The
//! length prefix is bounded by the server's configured maximum
//! ([`DEFAULT_MAX_FRAME_BYTES`] by default); an oversized prefix is a fatal
//! framing error (the stream position is unrecoverable), while garbage JSON
//! inside a well-framed payload is a per-request error and leaves the
//! connection usable.
//!
//! ## Request shapes
//!
//! ```json
//! {"id":1,"kind":"partition","f":[1,2,0,0],"blocks":[0,0,0,1]}
//! {"id":2,"kind":"minimize_dfa","delta":[1,2,0],"accepting":[0,0,1]}
//! {"id":3,"kind":"canonize","s":[2,1,2,1,1]}
//! {"id":4,"kind":"decompose","f":[1,2,0,0]}
//! {"id":5,"kind":"partition","workload":{"n":100000,"seed":7,"blocks":3}}
//! {"id":6,"kind":"batch","requests":[{"id":60,"kind":"partition",…},…]}
//! {"id":7,"kind":"probe"}
//! ```
//!
//! Common options on compute requests: `"engines":{"sort":…,"rank":…,
//! "scatter":…}` (defaults to the context defaults), `"digest":true`
//! (respond with a fingerprint instead of the label array), `"cache":false`
//! (bypass the snapshot cache), `"trace":true` (attach the span/decision
//! summary of the serving run).
//!
//! `u64` fingerprints ride as `"0x…"` hex strings: JSON numbers are f64 and
//! lose integer precision past 2^53.

use crate::error::{ErrorCode, ErrorReply};
use crate::json::{self, Value};
use sfcp_pram::{RankEngine, ScatterEngine, SortEngine};
use std::fmt;
use std::io::{Read, Write};

/// Default cap on a single frame's payload size (64 MiB — a 16M-element
/// inline instance; workload requests describe big inputs in a few bytes).
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 64 << 20;

/// A framing-layer failure.  Unlike a malformed payload, these poison the
/// stream position, so the peer closes the connection after reporting.
#[derive(Debug)]
pub enum FrameError {
    /// The transport failed.
    Io(std::io::Error),
    /// The length prefix exceeds the configured cap.
    TooLarge {
        /// The declared payload length.
        declared: u32,
        /// The configured cap.
        max: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one length-prefixed frame.
///
/// The prefix and payload go out as a **single** write: splitting them
/// leaves the payload queued behind Nagle's algorithm waiting for the ACK
/// of the prefix segment, and the peer's delayed-ACK timer turns every
/// response into a 40–200 ms stall (observed as a ~13x latency blowup on
/// small-request service rounds before the writes were coalesced).
///
/// # Errors
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame exceeds u32 length")
    })?;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one length-prefixed frame.  `Ok(None)` is a clean end-of-stream
/// (the peer closed between frames).
///
/// # Errors
/// [`FrameError::TooLarge`] when the prefix exceeds `max_bytes`;
/// [`FrameError::Io`] on transport failures (including EOF mid-frame).
pub fn read_frame(r: &mut impl Read, max_bytes: u32) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                )))
            }
            k => filled += k,
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_bytes {
        return Err(FrameError::TooLarge {
            declared: len,
            max: max_bytes,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// The request kinds that run the solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Single function coarsest partition of `(f, blocks)`.
    Partition,
    /// Unary DFA minimization: `delta`/`accepting` map onto `f`/`blocks`.
    MinimizeDfa,
    /// Circular-string canonization: least starting point of `s`.
    Canonize,
    /// Pseudoforest decomposition summary of `f`.
    Decompose,
}

impl Kind {
    /// The wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kind::Partition => "partition",
            Kind::MinimizeDfa => "minimize_dfa",
            Kind::Canonize => "canonize",
            Kind::Decompose => "decompose",
        }
    }
}

/// Engine selection riding on a compute request; the defaults match a fresh
/// [`sfcp_pram::Ctx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engines {
    /// Integer-sort/rank engine.
    pub sort: SortEngine,
    /// List-ranking/contraction engine.
    pub rank: RankEngine,
    /// Scatter-write engine.
    pub scatter: ScatterEngine,
}

impl Default for Engines {
    fn default() -> Self {
        Engines {
            sort: SortEngine::Packed,
            rank: RankEngine::CacheBucket,
            scatter: ScatterEngine::Auto,
        }
    }
}

impl Engines {
    /// Canonical wire names, also hashed into snapshot-cache keys (the
    /// rank engine changes documented charges, so cached charges must be
    /// keyed on it).
    #[must_use]
    pub fn names(&self) -> (&'static str, &'static str, &'static str) {
        let sort = match self.sort {
            SortEngine::Packed => "packed",
            SortEngine::Permutation => "permutation",
        };
        let rank = match self.rank {
            RankEngine::PointerJump => "pointer_jump",
            RankEngine::RulingSet => "ruling_set",
            RankEngine::CacheBucket => "cache_bucket",
        };
        let scatter = match self.scatter {
            ScatterEngine::Direct => "direct",
            ScatterEngine::Combining => "combining",
            ScatterEngine::Auto => "auto",
        };
        (sort, rank, scatter)
    }
}

/// The input payload of a compute request: inline arrays, or a server-side
/// generated workload (keeps parse cost out of latency benchmarks and big
/// inputs off the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input {
    /// Inline arrays; `blocks` is empty for `canonize`/`decompose`.
    Inline {
        /// The function table (or the string, for `canonize`).
        f: Vec<u32>,
        /// The initial block labels (partition kinds only).
        blocks: Vec<u32>,
    },
    /// Deterministic server-side generation from `(n, seed)`.
    Workload {
        /// Domain size.
        n: usize,
        /// Generator seed.
        seed: u64,
        /// Number of initial blocks (partition kinds) or alphabet size
        /// (`canonize`); ignored by `decompose`.
        param: u32,
    },
}

/// One compute request (everything except `batch`/`probe` framing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputeRequest {
    /// Which solver to run.
    pub kind: Kind,
    /// The input payload.
    pub input: Input,
    /// Engine selection for the serving run.
    pub engines: Engines,
    /// Respond with an FxHash fingerprint instead of the result array.
    pub digest_only: bool,
    /// Consult/fill the snapshot cache.
    pub use_cache: bool,
    /// Attach the span/decision trace summary of the serving run.
    pub trace: bool,
}

impl ComputeRequest {
    fn new(kind: Kind, input: Input) -> Self {
        ComputeRequest {
            kind,
            input,
            engines: Engines::default(),
            digest_only: false,
            use_cache: true,
            trace: false,
        }
    }

    /// A coarsest-partition request over inline arrays.
    #[must_use]
    pub fn partition(f: Vec<u32>, blocks: Vec<u32>) -> Self {
        ComputeRequest::new(Kind::Partition, Input::Inline { f, blocks })
    }

    /// A unary-DFA minimization request (`delta`, acceptance classes).
    #[must_use]
    pub fn minimize_dfa(delta: Vec<u32>, accepting: Vec<u32>) -> Self {
        ComputeRequest::new(
            Kind::MinimizeDfa,
            Input::Inline {
                f: delta,
                blocks: accepting,
            },
        )
    }

    /// A circular-string canonization request.
    #[must_use]
    pub fn canonize(s: Vec<u32>) -> Self {
        ComputeRequest::new(
            Kind::Canonize,
            Input::Inline {
                f: s,
                blocks: Vec::new(),
            },
        )
    }

    /// A pseudoforest decomposition-summary request.
    #[must_use]
    pub fn decompose(f: Vec<u32>) -> Self {
        ComputeRequest::new(
            Kind::Decompose,
            Input::Inline {
                f,
                blocks: Vec::new(),
            },
        )
    }

    /// A request over a server-side generated workload.
    #[must_use]
    pub fn workload(kind: Kind, n: usize, seed: u64, param: u32) -> Self {
        ComputeRequest::new(kind, Input::Workload { n, seed, param })
    }

    /// Select the engines for the serving run.
    #[must_use]
    pub fn with_engines(mut self, engines: Engines) -> Self {
        self.engines = engines;
        self
    }

    /// Respond with a fingerprint instead of the result array.
    #[must_use]
    pub fn digest_only(mut self) -> Self {
        self.digest_only = true;
        self
    }

    /// Bypass the snapshot cache.
    #[must_use]
    pub fn no_cache(mut self) -> Self {
        self.use_cache = false;
        self
    }

    /// Attach the serving run's trace summary to the response.
    #[must_use]
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The request body.
    pub body: RequestBody,
}

/// The body of a request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestBody {
    /// One compute request.
    Compute(ComputeRequest),
    /// An explicit batch: sub-requests admitted as one cohort.
    Batch(Vec<(u64, ComputeRequest)>),
    /// Introspection: the answering worker reports its workspace/cache
    /// state (tests assert recovery invariants through this).
    Probe,
}

impl Request {
    /// Parse a request frame payload.
    ///
    /// # Errors
    /// [`ErrorReply`] with [`ErrorCode::BadRequest`] on garbage JSON or a
    /// structurally invalid request (the connection stays usable).
    pub fn decode(payload: &[u8]) -> Result<Request, ErrorReply> {
        let value = json::parse(payload)
            .map_err(|e| ErrorReply::bad_request(format!("malformed JSON: {e}")))?;
        let id = req_id(&value);
        let body = decode_body(&value, true).map_err(|mut e| {
            e.id = id;
            e
        })?;
        Ok(Request { id, body })
    }

    /// Serialize to a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut members = vec![("id".to_string(), Value::Int(self.id as i64))];
        match &self.body {
            RequestBody::Probe => {
                members.push(("kind".into(), Value::Str("probe".into())));
            }
            RequestBody::Compute(req) => encode_compute(req, &mut members),
            RequestBody::Batch(subs) => {
                members.push(("kind".into(), Value::Str("batch".into())));
                let reqs = subs
                    .iter()
                    .map(|(id, req)| {
                        let mut m = vec![("id".to_string(), Value::Int(*id as i64))];
                        encode_compute(req, &mut m);
                        Value::Object(m)
                    })
                    .collect();
                members.push(("requests".into(), Value::Array(reqs)));
            }
        }
        Value::Object(members).to_json().into_bytes()
    }
}

/// Best-effort id extraction so error replies can still correlate.
fn req_id(value: &Value) -> u64 {
    value.get("id").and_then(Value::as_u64).unwrap_or(0)
}

fn decode_body(value: &Value, allow_batch: bool) -> Result<RequestBody, ErrorReply> {
    let kind = value
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| ErrorReply::bad_request("missing \"kind\"".into()))?;
    let kind = match kind {
        "probe" => return Ok(RequestBody::Probe),
        "batch" => {
            if !allow_batch {
                return Err(ErrorReply::bad_request("nested batch".into()));
            }
            let reqs = value
                .get("requests")
                .and_then(Value::as_array)
                .ok_or_else(|| ErrorReply::bad_request("batch without \"requests\"".into()))?;
            let mut subs = Vec::with_capacity(reqs.len());
            for sub in reqs {
                let sub_id = req_id(sub);
                match decode_body(sub, false)? {
                    RequestBody::Compute(req) => subs.push((sub_id, req)),
                    _ => {
                        return Err(ErrorReply::bad_request(
                            "batch members must be compute requests".into(),
                        ))
                    }
                }
            }
            return Ok(RequestBody::Batch(subs));
        }
        "partition" => Kind::Partition,
        "minimize_dfa" => Kind::MinimizeDfa,
        "canonize" => Kind::Canonize,
        "decompose" => Kind::Decompose,
        other => {
            return Err(ErrorReply::bad_request(format!("unknown kind {other:?}")));
        }
    };
    let input = decode_input(kind, value)?;
    let engines = decode_engines(value)?;
    Ok(RequestBody::Compute(ComputeRequest {
        kind,
        input,
        engines,
        digest_only: flag(value, "digest", false)?,
        use_cache: flag(value, "cache", true)?,
        trace: flag(value, "trace", false)?,
    }))
}

fn flag(value: &Value, key: &str, default: bool) -> Result<bool, ErrorReply> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ErrorReply::bad_request(format!("\"{key}\" must be a boolean"))),
    }
}

fn u32_array(value: &Value, key: &str) -> Result<Vec<u32>, ErrorReply> {
    let items = value
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| ErrorReply::bad_request(format!("missing \"{key}\" array")))?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let v = item
            .as_u64()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| ErrorReply::bad_request(format!("\"{key}\" must hold u32 values")))?;
        out.push(v);
    }
    Ok(out)
}

fn decode_input(kind: Kind, value: &Value) -> Result<Input, ErrorReply> {
    if let Some(w) = value.get("workload") {
        let n = w
            .get("n")
            .and_then(Value::as_usize)
            .ok_or_else(|| ErrorReply::bad_request("workload needs \"n\"".into()))?;
        let seed = w
            .get("seed")
            .and_then(Value::as_u64)
            .ok_or_else(|| ErrorReply::bad_request("workload needs \"seed\"".into()))?;
        let param_key = match kind {
            Kind::Partition | Kind::MinimizeDfa => Some("blocks"),
            Kind::Canonize => Some("alphabet"),
            Kind::Decompose => None,
        };
        let param = match param_key {
            None => 0,
            Some(key) => w
                .get(key)
                .and_then(Value::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .unwrap_or(2)
                .max(1),
        };
        return Ok(Input::Workload { n, seed, param });
    }
    let (f_key, blocks_key) = match kind {
        Kind::Partition => ("f", Some("blocks")),
        Kind::MinimizeDfa => ("delta", Some("accepting")),
        Kind::Canonize => ("s", None),
        Kind::Decompose => ("f", None),
    };
    let f = u32_array(value, f_key)?;
    let blocks = match blocks_key {
        Some(key) => u32_array(value, key)?,
        None => Vec::new(),
    };
    Ok(Input::Inline { f, blocks })
}

fn decode_engines(value: &Value) -> Result<Engines, ErrorReply> {
    let Some(e) = value.get("engines") else {
        return Ok(Engines::default());
    };
    let mut engines = Engines::default();
    if let Some(s) = e.get("sort") {
        engines.sort = match s.as_str() {
            Some("packed") => SortEngine::Packed,
            Some("permutation") => SortEngine::Permutation,
            _ => return Err(ErrorReply::bad_request("unknown sort engine".into())),
        };
    }
    if let Some(s) = e.get("rank") {
        engines.rank = match s.as_str() {
            Some("pointer_jump") => RankEngine::PointerJump,
            Some("ruling_set") => RankEngine::RulingSet,
            Some("cache_bucket") => RankEngine::CacheBucket,
            _ => return Err(ErrorReply::bad_request("unknown rank engine".into())),
        };
    }
    if let Some(s) = e.get("scatter") {
        engines.scatter = match s.as_str() {
            Some("direct") => ScatterEngine::Direct,
            Some("combining") => ScatterEngine::Combining,
            Some("auto") => ScatterEngine::Auto,
            _ => return Err(ErrorReply::bad_request("unknown scatter engine".into())),
        };
    }
    Ok(engines)
}

fn encode_compute(req: &ComputeRequest, members: &mut Vec<(String, Value)>) {
    members.push(("kind".into(), Value::Str(req.kind.name().into())));
    match &req.input {
        Input::Inline { f, blocks } => {
            let (f_key, blocks_key) = match req.kind {
                Kind::Partition => ("f", Some("blocks")),
                Kind::MinimizeDfa => ("delta", Some("accepting")),
                Kind::Canonize => ("s", None),
                Kind::Decompose => ("f", None),
            };
            members.push((f_key.into(), u32_values(f)));
            if let Some(key) = blocks_key {
                members.push((key.into(), u32_values(blocks)));
            }
        }
        Input::Workload { n, seed, param } => {
            let mut w = vec![
                ("n".to_string(), Value::Int(*n as i64)),
                ("seed".to_string(), Value::Int(*seed as i64)),
            ];
            match req.kind {
                Kind::Partition | Kind::MinimizeDfa => {
                    w.push(("blocks".into(), Value::Int(i64::from(*param))));
                }
                Kind::Canonize => w.push(("alphabet".into(), Value::Int(i64::from(*param)))),
                Kind::Decompose => {}
            }
            members.push(("workload".into(), Value::Object(w)));
        }
    }
    if req.engines != Engines::default() {
        let (sort, rank, scatter) = req.engines.names();
        members.push((
            "engines".into(),
            Value::Object(vec![
                ("sort".to_string(), Value::Str(sort.into())),
                ("rank".to_string(), Value::Str(rank.into())),
                ("scatter".to_string(), Value::Str(scatter.into())),
            ]),
        ));
    }
    if req.digest_only {
        members.push(("digest".into(), Value::Bool(true)));
    }
    if !req.use_cache {
        members.push(("cache".into(), Value::Bool(false)));
    }
    if req.trace {
        members.push(("trace".into(), Value::Bool(true)));
    }
}

fn u32_values(values: &[u32]) -> Value {
    Value::Array(values.iter().map(|&v| Value::Int(i64::from(v))).collect())
}

/// A successful reply body.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyPayload {
    /// Canonical partition labels (first-occurrence numbering).
    Labels(Vec<u32>),
    /// FxHash fingerprint of the canonical labels (`digest:true`).
    LabelsDigest(u64),
    /// Canonize: the minimal starting point.
    Msp(u64),
    /// Decompose: summary counters plus a structure fingerprint.
    Decomposition {
        /// Number of cycles in the pseudoforest.
        num_cycles: u64,
        /// Total nodes on cycles.
        num_cycle_nodes: u64,
        /// FxHash over the decomposition arrays.
        digest: u64,
    },
    /// Probe: the answering worker's state.
    Probe {
        /// Worker index.
        worker: u64,
        /// Outstanding workspace checkouts (0 when healthy).
        outstanding: u64,
        /// Pooled workspace bytes.
        pooled_bytes: u64,
        /// Snapshot-cache hits since start.
        cache_hits: u64,
        /// Snapshot-cache misses since start.
        cache_misses: u64,
        /// Bytes resident in the snapshot cache.
        cache_bytes: u64,
    },
}

/// One reply (the `ok:true` arm of a [`Response`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Wire name of the request kind (`"probe"` for probes).
    pub kind: &'static str,
    /// The payload.
    pub payload: ReplyPayload,
    /// Tracked work charge of the serving run (0 for cache hits?  No —
    /// cache hits replay the stored charges; see DESIGN.md §13).
    pub work: u64,
    /// Tracked rounds charge of the serving run.
    pub rounds: u64,
    /// Whether the answer came from the snapshot cache.
    pub cached: bool,
    /// Cohort size of the fused engine invocation that served this reply
    /// (1 when the request ran alone).
    pub fused: u32,
    /// Trace summary JSON of the serving run, when requested.
    pub trace_json: Option<String>,
}

/// A response frame: the echoed id plus either a reply or a typed error.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echoed request id.
    pub id: u64,
    /// Reply or typed error.
    pub outcome: Result<Reply, ErrorReply>,
}

/// A batch response frame: the echoed batch id plus per-member responses in
/// request order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResponse {
    /// Echoed batch frame id.
    pub id: u64,
    /// Per-member responses, in request order.
    pub responses: Vec<Response>,
}

fn hex_u64(v: u64) -> Value {
    Value::Str(format!("{v:#018x}"))
}

fn parse_hex_u64(v: &Value) -> Option<u64> {
    let s = v.as_str()?.strip_prefix("0x")?;
    u64::from_str_radix(s, 16).ok()
}

impl Response {
    /// Serialize to a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        self.to_value().to_json().into_bytes()
    }

    fn to_value(&self) -> Value {
        let mut members = vec![("id".to_string(), Value::Int(self.id as i64))];
        match &self.outcome {
            Err(err) => {
                members.push(("ok".into(), Value::Bool(false)));
                members.push(("code".into(), Value::Str(err.code.name().into())));
                members.push(("message".into(), Value::Str(err.message.clone())));
                members.push(("retryable".into(), Value::Bool(err.retryable)));
            }
            Ok(reply) => {
                members.push(("ok".into(), Value::Bool(true)));
                members.push(("kind".into(), Value::Str(reply.kind.into())));
                match &reply.payload {
                    ReplyPayload::Labels(labels) => {
                        members.push(("labels".into(), u32_values(labels)));
                    }
                    ReplyPayload::LabelsDigest(d) => {
                        members.push(("labels_digest".into(), hex_u64(*d)));
                    }
                    ReplyPayload::Msp(k) => {
                        members.push(("msp".into(), Value::Int(*k as i64)));
                    }
                    ReplyPayload::Decomposition {
                        num_cycles,
                        num_cycle_nodes,
                        digest,
                    } => {
                        members.push(("num_cycles".into(), Value::Int(*num_cycles as i64)));
                        members.push((
                            "num_cycle_nodes".into(),
                            Value::Int(*num_cycle_nodes as i64),
                        ));
                        members.push(("digest".into(), hex_u64(*digest)));
                    }
                    ReplyPayload::Probe {
                        worker,
                        outstanding,
                        pooled_bytes,
                        cache_hits,
                        cache_misses,
                        cache_bytes,
                    } => {
                        for (key, v) in [
                            ("worker", worker),
                            ("outstanding", outstanding),
                            ("pooled_bytes", pooled_bytes),
                            ("cache_hits", cache_hits),
                            ("cache_misses", cache_misses),
                            ("cache_bytes", cache_bytes),
                        ] {
                            members.push((key.into(), Value::Int(*v as i64)));
                        }
                    }
                }
                members.push(("work".into(), Value::Int(reply.work as i64)));
                members.push(("rounds".into(), Value::Int(reply.rounds as i64)));
                members.push(("cached".into(), Value::Bool(reply.cached)));
                members.push(("fused".into(), Value::Int(i64::from(reply.fused))));
                if let Some(trace) = &reply.trace_json {
                    // Already-serialized JSON from the trace summary; splice
                    // it back in as a parsed value to keep the frame valid.
                    let spliced = json::parse(trace.as_bytes()).unwrap_or(Value::Null);
                    members.push(("trace".into(), spliced));
                }
            }
        }
        Value::Object(members)
    }

    /// Parse a response frame payload.
    ///
    /// # Errors
    /// A human-readable description when the payload is not a valid
    /// response object (client-side use).
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let value = json::parse(payload).map_err(|e| format!("malformed response JSON: {e}"))?;
        Response::from_value(&value)
    }

    fn from_value(value: &Value) -> Result<Response, String> {
        let id = req_id(value);
        let ok = value
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or("response missing \"ok\"")?;
        if !ok {
            let code = value
                .get("code")
                .and_then(Value::as_str)
                .map(ErrorCode::from_name)
                .ok_or("error response missing \"code\"")?;
            let message = value
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string();
            let retryable = value
                .get("retryable")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            return Ok(Response {
                id,
                outcome: Err(ErrorReply {
                    id,
                    code,
                    message,
                    retryable,
                }),
            });
        }
        let kind_name = value
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("missing \"kind\"")?;
        let (kind, payload) = match kind_name {
            "probe" => {
                let get = |key: &str| value.get(key).and_then(Value::as_u64).unwrap_or(0);
                (
                    "probe",
                    ReplyPayload::Probe {
                        worker: get("worker"),
                        outstanding: get("outstanding"),
                        pooled_bytes: get("pooled_bytes"),
                        cache_hits: get("cache_hits"),
                        cache_misses: get("cache_misses"),
                        cache_bytes: get("cache_bytes"),
                    },
                )
            }
            "canonize" => {
                let k = value
                    .get("msp")
                    .and_then(Value::as_u64)
                    .ok_or("missing \"msp\"")?;
                ("canonize", ReplyPayload::Msp(k))
            }
            "decompose" => (
                "decompose",
                ReplyPayload::Decomposition {
                    num_cycles: value
                        .get("num_cycles")
                        .and_then(Value::as_u64)
                        .ok_or("missing \"num_cycles\"")?,
                    num_cycle_nodes: value
                        .get("num_cycle_nodes")
                        .and_then(Value::as_u64)
                        .ok_or("missing \"num_cycle_nodes\"")?,
                    digest: value
                        .get("digest")
                        .and_then(parse_hex_u64)
                        .ok_or("missing \"digest\"")?,
                },
            ),
            "partition" | "minimize_dfa" => {
                let kind = if kind_name == "partition" {
                    "partition"
                } else {
                    "minimize_dfa"
                };
                if let Some(d) = value.get("labels_digest") {
                    (
                        kind,
                        ReplyPayload::LabelsDigest(parse_hex_u64(d).ok_or("bad digest")?),
                    )
                } else {
                    let labels = value
                        .get("labels")
                        .and_then(Value::as_array)
                        .ok_or("missing \"labels\"")?
                        .iter()
                        .map(|v| {
                            v.as_u64()
                                .and_then(|v| u32::try_from(v).ok())
                                .ok_or("labels must hold u32 values")
                        })
                        .collect::<Result<Vec<u32>, _>>()?;
                    (kind, ReplyPayload::Labels(labels))
                }
            }
            other => return Err(format!("unknown response kind {other:?}")),
        };
        let trace_json = value.get("trace").map(Value::to_json);
        Ok(Response {
            id,
            outcome: Ok(Reply {
                kind,
                payload,
                work: value.get("work").and_then(Value::as_u64).unwrap_or(0),
                rounds: value.get("rounds").and_then(Value::as_u64).unwrap_or(0),
                cached: value
                    .get("cached")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
                fused: value
                    .get("fused")
                    .and_then(Value::as_u64)
                    .and_then(|v| u32::try_from(v).ok())
                    .unwrap_or(1),
                trace_json,
            }),
        })
    }
}

impl BatchResponse {
    /// Serialize to a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let members = vec![
            ("id".to_string(), Value::Int(self.id as i64)),
            ("ok".to_string(), Value::Bool(true)),
            ("kind".to_string(), Value::Str("batch".into())),
            (
                "responses".to_string(),
                Value::Array(self.responses.iter().map(Response::to_value).collect()),
            ),
        ];
        Value::Object(members).to_json().into_bytes()
    }

    /// Parse a batch response frame payload.
    ///
    /// # Errors
    /// A human-readable description when the payload is not a valid batch
    /// response.
    pub fn decode(payload: &[u8]) -> Result<BatchResponse, String> {
        let value = json::parse(payload).map_err(|e| format!("malformed response JSON: {e}"))?;
        if value.get("kind").and_then(Value::as_str) != Some("batch") {
            return Err("not a batch response".into());
        }
        let responses = value
            .get("responses")
            .and_then(Value::as_array)
            .ok_or("batch response missing \"responses\"")?
            .iter()
            .map(Response::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BatchResponse {
            id: req_id(&value),
            responses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = vec![
            Request {
                id: 1,
                body: RequestBody::Compute(
                    ComputeRequest::partition(vec![1, 2, 0], vec![0, 0, 1])
                        .with_engines(Engines {
                            sort: SortEngine::Permutation,
                            rank: RankEngine::PointerJump,
                            scatter: ScatterEngine::Combining,
                        })
                        .digest_only()
                        .no_cache()
                        .traced(),
                ),
            },
            Request {
                id: 2,
                body: RequestBody::Compute(ComputeRequest::workload(Kind::Canonize, 100, 7, 4)),
            },
            Request {
                id: 3,
                body: RequestBody::Probe,
            },
            Request {
                id: 4,
                body: RequestBody::Batch(vec![
                    (40, ComputeRequest::minimize_dfa(vec![0, 0], vec![0, 1])),
                    (41, ComputeRequest::decompose(vec![1, 0])),
                ]),
            },
        ];
        for req in reqs {
            let decoded = Request::decode(&req.encode()).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let responses = vec![
            Response {
                id: 9,
                outcome: Ok(Reply {
                    kind: "partition",
                    payload: ReplyPayload::Labels(vec![0, 1, 0]),
                    work: 123,
                    rounds: 7,
                    cached: true,
                    fused: 3,
                    trace_json: Some("{\"spans\":[],\"decisions\":[]}".into()),
                }),
            },
            Response {
                id: 10,
                outcome: Ok(Reply {
                    kind: "decompose",
                    payload: ReplyPayload::Decomposition {
                        num_cycles: 2,
                        num_cycle_nodes: 5,
                        digest: u64::MAX,
                    },
                    work: 1,
                    rounds: 1,
                    cached: false,
                    fused: 1,
                    trace_json: None,
                }),
            },
            Response {
                id: 11,
                outcome: Err(ErrorReply {
                    id: 11,
                    code: ErrorCode::Execution,
                    message: "injected".into(),
                    retryable: true,
                }),
            },
        ];
        for resp in responses {
            let decoded = Response::decode(&resp.encode()).unwrap();
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn oversized_frame_is_fatal_but_typed() {
        let mut buf: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0, 0];
        match read_frame(&mut buf, DEFAULT_MAX_FRAME_BYTES) {
            Err(FrameError::TooLarge { declared, max }) => {
                assert_eq!(declared, u32::MAX);
                assert_eq!(max, DEFAULT_MAX_FRAME_BYTES);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn frame_roundtrip_and_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"id\":1}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r: &[u8] = &buf;
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"{\"id\":1}");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }
}

//! Minimal RFC 8259 JSON tree: recursive-descent parser and serializer.
//!
//! The build environment has no registry access, so the wire format is
//! hand-rolled, mirroring the recursive-descent validator the trace
//! exporters are tested with (`tests/trace_observability.rs`) — except that
//! this one builds a [`Value`] tree and returns typed errors instead of
//! panicking: the decoder faces untrusted bytes off a socket.
//!
//! Deliberate limits (each is a typed error, never a panic):
//!
//! * nesting deeper than [`MAX_DEPTH`] is rejected (a 1 MiB `[[[[…` frame
//!   must not overflow the parser stack);
//! * numbers must be finite; integers outside `i64` fall back to `f64`;
//! * only complete, single values parse — trailing bytes are an error.

use std::fmt;

/// Maximum nesting depth the parser accepts.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that fits `i64` exactly (no fraction, no exponent).
    Int(i64),
    /// Any other finite number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (`None` on other variants or a missing
    /// key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i64`, when it is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    /// The value as a `usize`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => {
                // RFC 8259 has no NaN/Inf; the serializer never receives
                // them (responses carry only counters and latencies).
                debug_assert!(v.is_finite());
                out.push_str(&format!("{v}"));
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error: byte position and a static description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON value from `bytes`.
///
/// # Errors
/// [`JsonError`] on any syntax violation, non-UTF-8 string content, depth
/// beyond [`MAX_DEPTH`], or trailing bytes after the value.
pub fn parse(bytes: &[u8]) -> Result<Value, JsonError> {
    let mut p = Parser { b: bytes, i: 0 };
    let v = p.value(0)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing bytes after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.i, msg }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Result<u8, JsonError> {
        self.b
            .get(self.i)
            .copied()
            .ok_or_else(|| self.err("unexpected end of input"))
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek()? != c {
            return Err(self.err("unexpected character"));
        }
        self.i += 1;
        Ok(())
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.ws();
        match self.peek()? {
            b'{' => {
                self.eat(b'{')?;
                self.ws();
                let mut members = Vec::new();
                if self.peek()? != b'}' {
                    loop {
                        self.ws();
                        let key = self.string()?;
                        self.ws();
                        self.eat(b':')?;
                        let v = self.value(depth + 1)?;
                        members.push((key, v));
                        self.ws();
                        if self.peek()? == b',' {
                            self.i += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.ws();
                self.eat(b'}')?;
                Ok(Value::Object(members))
            }
            b'[' => {
                self.eat(b'[')?;
                self.ws();
                let mut items = Vec::new();
                if self.peek()? != b']' {
                    loop {
                        items.push(self.value(depth + 1)?);
                        self.ws();
                        if self.peek()? == b',' {
                            self.i += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.ws();
                self.eat(b']')?;
                Ok(Value::Array(items))
            }
            b'"' => self.string().map(Value::Str),
            b't' => self.lit(b"true").map(|()| Value::Bool(true)),
            b'f' => self.lit(b"false").map(|()| Value::Bool(false)),
            b'n' => self.lit(b"null").map(|()| Value::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, lit: &'static [u8]) -> Result<(), JsonError> {
        if !self.b[self.i..].starts_with(lit) {
            return Err(self.err("bad literal"));
        }
        self.i += lit.len();
        Ok(())
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = Vec::new();
        loop {
            let c = self.peek()?;
            self.i += 1;
            match c {
                b'"' => break,
                b'\\' => {
                    let esc = self.peek()?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs are rejected rather than
                            // combined; the protocol's strings are ASCII
                            // field names and hex digests.
                            let c = char::from_u32(u32::from(cp))
                                .ok_or_else(|| self.err("unpaired surrogate escape"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                c => out.push(c),
            }
        }
        String::from_utf8(out).map_err(|_| self.err("invalid UTF-8 in string"))
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let c = self.peek()?;
            self.i += 1;
            let d = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                b'A'..=b'F' => c - b'A' + 10,
                _ => return Err(self.err("bad \\u escape digit")),
            };
            v = (v << 4) | u16::from(d);
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.i;
        if self.peek()? == b'-' {
            self.i += 1;
        }
        let mut is_int = true;
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_int = false;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| JsonError {
            pos: start,
            msg: "bad number",
        })?;
        if is_int {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Value::Float(v)),
            _ => Err(JsonError {
                pos: start,
                msg: "bad number",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Value::Object(vec![
            ("id".into(), Value::Int(7)),
            ("ok".into(), Value::Bool(true)),
            (
                "labels".into(),
                Value::Array(vec![Value::Int(0), Value::Int(1)]),
            ),
            ("note".into(), Value::Str("a\"b\\c\nd".into())),
            ("null".into(), Value::Null),
        ]);
        let text = v.to_json();
        assert_eq!(parse(text.as_bytes()).unwrap(), v);
    }

    #[test]
    fn depth_limit_is_an_error_not_a_crash() {
        let deep = "[".repeat(100_000);
        let err = parse(deep.as_bytes()).unwrap_err();
        assert_eq!(err.msg, "nesting too deep");
    }

    #[test]
    fn garbage_is_typed() {
        for bad in [
            &b"{"[..],
            b"[1,]",
            b"{\"a\":}",
            b"\x00",
            b"tru",
            b"\"\\q\"",
            b"1 2",
            b"--3",
            b"\"\xff\xfe\"",
            b"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn numbers() {
        assert_eq!(parse(b"-42").unwrap(), Value::Int(-42));
        assert_eq!(parse(b"1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse(b"1e3").unwrap(), Value::Float(1000.0));
        assert!(parse(b"1e999").is_err(), "infinite numbers are rejected");
    }
}

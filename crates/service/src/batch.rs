//! Request batching: fuse many small partition instances into one engine
//! invocation, and the size/deadline admission policy that decides when.
//!
//! ## Why fusion is answer-preserving
//!
//! The union instance places the members side by side with disjoint label
//! ranges: member `i` at node offset `o_i` gets `f_u[o_i + x] = o_i +
//! f_i[x]` and `B_u[o_i + x] = o_i + canon(B_i)[x]` (canonical block labels
//! are `< n_i`, so offsetting by `o_i` keeps every member's initial blocks
//! disjoint from every other's).  `f_u` never crosses members, and
//! refinement only ever *splits* blocks — starting from an initial
//! partition that already separates the members, no block ever spans two
//! members.  The coarsest partition of the union restricted to member `i`
//! is therefore exactly member `i`'s coarsest partition, and after
//! first-occurrence canonicalization the label arrays are bit-identical to
//! a solo solve (`tests/service_differential.rs` pins this across the
//! engine grid).

use sfcp::Instance;
use sfcp_pram::fxhash::FxHashMap;
use std::time::Duration;

/// Admission policy for fusing queued requests into one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum cohort size.
    pub max_batch: usize,
    /// Maximum total fused domain size.
    pub max_fused_n: usize,
    /// How long a worker holds the first queued request while collecting
    /// more ([`Duration::ZERO`] disables cross-request coalescing; explicit
    /// `batch` frames still fuse).
    pub deadline: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 64,
            max_fused_n: 1 << 22,
            deadline: Duration::ZERO,
        }
    }
}

/// Canonical (first-occurrence) renumbering of arbitrary labels.
fn first_occurrence(labels: &[u32]) -> Vec<u32> {
    let mut map = FxHashMap::default();
    let mut out = Vec::with_capacity(labels.len());
    for &l in labels {
        let next = map.len() as u32;
        out.push(*map.entry(l).or_insert(next));
    }
    out
}

/// A fused union instance plus the `(offset, len)` span of each member.
#[derive(Debug, Clone)]
pub struct FusedInstance {
    /// The union instance.
    pub instance: Instance,
    /// Per-member `(node offset, length)` in request order.
    pub spans: Vec<(usize, usize)>,
}

/// Fuse member instances into one union instance (see the module docs for
/// the preservation argument).  The total fused domain must stay within
/// `u32` addressing (asserted); the worker's admission policy caps cohorts
/// far below that.
#[must_use]
pub fn fuse_instances(members: &[Instance]) -> FusedInstance {
    let total: usize = members.iter().map(Instance::len).sum();
    assert!(
        u32::try_from(total).is_ok(),
        "fused domain exceeds u32 addressing"
    );
    let mut f = Vec::with_capacity(total);
    let mut blocks = Vec::with_capacity(total);
    let mut spans = Vec::with_capacity(members.len());
    let mut offset = 0usize;
    for member in members {
        let off = offset as u32;
        f.extend(member.f().iter().map(|&v| off + v));
        blocks.extend(
            first_occurrence(member.blocks())
                .into_iter()
                .map(|v| off + v),
        );
        spans.push((offset, member.len()));
        offset += member.len();
    }
    FusedInstance {
        instance: Instance::new(f, blocks),
        spans,
    }
}

/// Slice a fused solution back into per-member canonical label arrays.
#[must_use]
pub fn split_canonical_labels(fused_labels: &[u32], spans: &[(usize, usize)]) -> Vec<Vec<u32>> {
    spans
        .iter()
        .map(|&(offset, len)| first_occurrence(&fused_labels[offset..offset + len]))
        .collect()
}

/// Canonical labels of a solo partition result (the service's wire form,
/// shared with [`split_canonical_labels`] so solo and fused paths agree).
#[must_use]
pub fn canonical_labels(partition: &sfcp::Partition) -> Vec<u32> {
    first_occurrence(partition.labels())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcp::{coarsest_partition, Algorithm};
    use sfcp_pram::Ctx;

    #[test]
    fn fused_solve_matches_solo_solves() {
        let members = vec![
            Instance::paper_example(),
            Instance::random(257, 3, 41),
            Instance::new(vec![0], vec![7]),
            Instance::random(64, 2, 9),
        ];
        let fused = fuse_instances(&members);
        let ctx = Ctx::parallel();
        let q = coarsest_partition(&ctx, &fused.instance, Algorithm::Parallel);
        let split = split_canonical_labels(q.labels(), &fused.spans);
        for (member, got) in members.iter().zip(&split) {
            let solo = coarsest_partition(&ctx, member, Algorithm::Parallel);
            assert_eq!(got, &canonical_labels(&solo));
        }
    }

    #[test]
    fn first_occurrence_is_canonical() {
        assert_eq!(first_occurrence(&[9, 9, 4, 9, 1]), vec![0, 0, 1, 0, 2]);
        assert!(first_occurrence(&[]).is_empty());
    }
}

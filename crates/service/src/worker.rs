//! A serving worker: one persistent [`Ctx`] (warm workspace pools), one
//! snapshot cache, one generated-workload cache.
//!
//! Every request kind funnels into a `pub fn handle_*` method returning a
//! typed `Result` — the facade-coverage lint enforces that naming, so no
//! handler can silently become panicking API.  The dispatch wrapper
//! additionally `catch_unwind`s the whole request and runs
//! [`Ctx::recover`] before reporting [`ErrorCode::Internal`]: a poisoned
//! request ends as a typed error on the wire and the worker keeps serving.

use crate::batch::{canonical_labels, fuse_instances, split_canonical_labels, BatchPolicy};
use crate::error::{ErrorCode, ErrorReply};
use crate::proto::{
    BatchResponse, ComputeRequest, Engines, Input, Kind, Reply, ReplyPayload, Response,
};
use crate::snapshot::{
    decomposition_digest, labels_digest, Snapshot, SnapshotCache, SnapshotPayload,
};
use sfcp::{try_coarsest_partition, Algorithm, Instance};
use sfcp_forest::cycles::CycleMethod;
use sfcp_forest::{generators, try_decompose, FunctionalGraph};
use sfcp_pram::{Ctx, Stats};
use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

/// Cap on server-side generated workload domains: a workload request is a
/// few wire bytes, so generation must not become a memory amplifier.
pub const MAX_WORKLOAD_N: usize = 1 << 26;

/// Generated inputs cached per worker, so repeated `(n, seed)` workloads
/// (the latency benchmark's steady state) skip regeneration.
enum GenEntry {
    Instance(Rc<Instance>),
    Graph(Rc<FunctionalGraph>),
    Text(Rc<Vec<u32>>),
}

/// Deterministic string workload: splitmix64 stream over `seed`, symbols
/// in `0..alphabet`.  Exported so the differential harness regenerates the
/// same input the server computed on.
#[must_use]
pub fn workload_string(n: usize, seed: u64, alphabet: u32) -> Vec<u32> {
    let alphabet = u64::from(alphabet.max(1));
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z % alphabet) as u32
        })
        .collect()
}

/// One serving worker.  Single-threaded owner of its context; the server
/// gives each worker thread exactly one.
pub struct Worker {
    index: usize,
    ctx: Ctx,
    cache: SnapshotCache,
    gen: Vec<((u8, u64, u64, u32), GenEntry)>,
    policy: BatchPolicy,
    cold_ctx: bool,
}

/// How many generated workloads a worker keeps around.
const GEN_CACHE_CAP: usize = 8;

impl Worker {
    /// A fresh worker.  `cache_bytes` bounds the snapshot cache (0
    /// disables it); `cold_ctx` rebuilds the context per request (the
    /// benchmark's cold-path baseline — never what you want in production).
    #[must_use]
    pub fn new(index: usize, cache_bytes: usize, policy: BatchPolicy, cold_ctx: bool) -> Worker {
        Worker {
            index,
            ctx: Ctx::parallel(),
            cache: SnapshotCache::new(cache_bytes),
            gen: Vec::new(),
            policy,
            cold_ctx,
        }
    }

    /// Serve one compute request, panic-safely: any escaped panic recovers
    /// the context and reports a typed internal error.
    pub fn serve(&mut self, id: u64, req: &ComputeRequest) -> Response {
        let outcome = catch_unwind(AssertUnwindSafe(|| self.dispatch(req)));
        let outcome = match outcome {
            Ok(result) => result.map_err(|mut e| {
                e.id = id;
                e
            }),
            Err(payload) => {
                self.ctx.recover();
                let err = sfcp_pram::Error::from_panic(payload);
                Err(ErrorReply {
                    id,
                    code: ErrorCode::Internal,
                    message: err.to_string(),
                    retryable: true,
                })
            }
        };
        Response { id, outcome }
    }

    /// Serve an explicit batch frame: partition-family members fuse into
    /// cohort invocations under the admission policy; other kinds run solo.
    pub fn serve_batch(&mut self, id: u64, subs: &[(u64, ComputeRequest)]) -> BatchResponse {
        let mut responses: Vec<Option<Response>> = vec![None; subs.len()];

        // Pass 1: solo kinds, cache hits, and input errors resolve
        // immediately; fusable members queue up.
        let mut fusable: Vec<(usize, Rc<Instance>)> = Vec::new();
        for (slot, (sub_id, req)) in subs.iter().enumerate() {
            let fuse_candidate = matches!(req.kind, Kind::Partition | Kind::MinimizeDfa)
                && !req.trace
                && subs.len() > 1;
            if !fuse_candidate {
                responses[slot] = Some(self.serve(*sub_id, req));
                continue;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| self.resolve_instance(req)));
            match outcome {
                Err(payload) => {
                    self.ctx.recover();
                    let err = sfcp_pram::Error::from_panic(payload);
                    responses[slot] = Some(Response {
                        id: *sub_id,
                        outcome: Err(ErrorReply {
                            id: *sub_id,
                            code: ErrorCode::Internal,
                            message: err.to_string(),
                            retryable: true,
                        }),
                    });
                }
                Ok(Err(mut e)) => {
                    e.id = *sub_id;
                    responses[slot] = Some(Response {
                        id: *sub_id,
                        outcome: Err(e),
                    });
                }
                Ok(Ok(instance)) => {
                    if req.use_cache {
                        let key = partition_key(&instance, &req.engines);
                        if let Some(snap) = self.cache.get(key) {
                            responses[slot] = Some(cached_partition_response(*sub_id, req, &snap));
                            continue;
                        }
                    }
                    fusable.push((slot, instance));
                }
            }
        }

        // Pass 2: chunk the fusable members in request order, grouped by
        // engine selection, under the size caps; singleton chunks fall back
        // to the solo path (identical semantics AND identical charges —
        // fusion canonicalizes initial blocks, which is only
        // charge-transparent when the whole cohort is compared against a
        // fused reference).
        let mut chunks: Vec<Vec<(usize, Rc<Instance>)>> = Vec::new();
        for (slot, instance) in fusable {
            let engines = subs[slot].1.engines;
            let fits = chunks.last().is_some_and(|chunk| {
                let chunk_n: usize = chunk.iter().map(|(_, i)| i.len()).sum();
                subs[chunk[0].0].1.engines == engines
                    && chunk.len() < self.policy.max_batch
                    && chunk_n + instance.len() <= self.policy.max_fused_n
            });
            if fits {
                chunks
                    .last_mut()
                    .expect("checked above")
                    .push((slot, instance));
            } else {
                chunks.push(vec![(slot, instance)]);
            }
        }
        for chunk in chunks {
            if chunk.len() == 1 {
                let (slot, _) = chunk[0];
                let (sub_id, req) = &subs[slot];
                responses[slot] = Some(self.serve(*sub_id, req));
                continue;
            }
            self.serve_fused_chunk(subs, &chunk, &mut responses);
        }

        let responses = responses
            .into_iter()
            .enumerate()
            .map(|(slot, r)| {
                r.unwrap_or_else(|| Response {
                    id: subs[slot].0,
                    outcome: Err(ErrorReply {
                        id: subs[slot].0,
                        code: ErrorCode::Internal,
                        message: "request fell through batch admission".into(),
                        retryable: true,
                    }),
                })
            })
            .collect();
        BatchResponse { id, responses }
    }

    /// One fused engine invocation for a same-engine chunk of ≥ 2 members.
    fn serve_fused_chunk(
        &mut self,
        subs: &[(u64, ComputeRequest)],
        chunk: &[(usize, Rc<Instance>)],
        responses: &mut [Option<Response>],
    ) {
        let engines = subs[chunk[0].0].1.engines;
        let members: Vec<Instance> = chunk.iter().map(|(_, i)| (**i).clone()).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let fused = fuse_instances(&members);
            self.apply_engines(&engines);
            self.ctx.reset_stats();
            let result = try_coarsest_partition(&self.ctx, &fused.instance, Algorithm::Parallel);
            let stats = self.ctx.stats();
            result.map(|q| (split_canonical_labels(q.labels(), &fused.spans), stats))
        }));
        let fused_result = match outcome {
            Ok(r) => r,
            Err(payload) => {
                self.ctx.recover();
                let err = sfcp_pram::Error::from_panic(payload);
                for &(slot, _) in chunk {
                    let sub_id = subs[slot].0;
                    responses[slot] = Some(Response {
                        id: sub_id,
                        outcome: Err(ErrorReply {
                            id: sub_id,
                            code: ErrorCode::Internal,
                            message: err.to_string(),
                            retryable: true,
                        }),
                    });
                }
                return;
            }
        };
        match fused_result {
            Err(e) => {
                // One poisoned member fails its whole cohort; every member
                // gets the typed (retryable) error, and the recovered
                // context serves the next request with baseline charges.
                for &(slot, _) in chunk {
                    let sub_id = subs[slot].0;
                    responses[slot] = Some(Response {
                        id: sub_id,
                        outcome: Err(ErrorReply::from_solver(sub_id, &e)),
                    });
                }
            }
            Ok((split, stats)) => {
                let cohort = u32::try_from(chunk.len()).unwrap_or(u32::MAX);
                for (&(slot, _), labels) in chunk.iter().zip(split) {
                    let (sub_id, req) = &subs[slot];
                    let payload = if req.digest_only {
                        ReplyPayload::LabelsDigest(labels_digest(&labels))
                    } else {
                        ReplyPayload::Labels(labels)
                    };
                    responses[slot] = Some(Response {
                        id: *sub_id,
                        outcome: Ok(Reply {
                            kind: req.kind.name(),
                            payload,
                            work: stats.work,
                            rounds: stats.rounds,
                            cached: false,
                            fused: cohort,
                            trace_json: None,
                        }),
                    });
                }
            }
        }
    }

    fn dispatch(&mut self, req: &ComputeRequest) -> Result<Reply, ErrorReply> {
        match req.kind {
            Kind::Partition => self.handle_partition(req),
            Kind::MinimizeDfa => self.handle_minimize(req),
            Kind::Canonize => self.handle_canonize(req),
            Kind::Decompose => self.handle_decompose(req),
        }
    }

    /// Coarsest partition of one instance, with snapshot caching.
    pub fn handle_partition(&mut self, req: &ComputeRequest) -> Result<Reply, ErrorReply> {
        let instance = self.resolve_instance(req)?;
        let key = partition_key(&instance, &req.engines);
        if req.use_cache {
            if let Some(snap) = self.cache.get(key) {
                return match cached_partition_response(0, req, &snap).outcome {
                    Ok(reply) => Ok(Reply {
                        kind: req.kind.name(),
                        ..reply
                    }),
                    Err(e) => Err(e),
                };
            }
        }
        self.apply_engines(&req.engines);
        let (result, stats, trace_json) = self.traced_run(req.trace, |ctx| {
            try_coarsest_partition(ctx, &instance, Algorithm::Parallel)
        });
        let q = result.map_err(|e| ErrorReply::from_solver(0, &e))?;
        let labels = canonical_labels(&q);
        if req.use_cache {
            self.cache.insert(
                key,
                &Snapshot {
                    payload: SnapshotPayload::Labels(labels.clone()),
                    work: stats.work,
                    rounds: stats.rounds,
                },
            );
        }
        let payload = if req.digest_only {
            ReplyPayload::LabelsDigest(labels_digest(&labels))
        } else {
            ReplyPayload::Labels(labels)
        };
        Ok(Reply {
            kind: req.kind.name(),
            payload,
            work: stats.work,
            rounds: stats.rounds,
            cached: false,
            fused: 1,
            trace_json,
        })
    }

    /// Unary-DFA minimization: the same refinement, DFA-flavored fields.
    pub fn handle_minimize(&mut self, req: &ComputeRequest) -> Result<Reply, ErrorReply> {
        self.handle_partition(req)
    }

    /// Circular-string canonization: least rotation starting point.
    pub fn handle_canonize(&mut self, req: &ComputeRequest) -> Result<Reply, ErrorReply> {
        let text = self.resolve_text(req)?;
        let key = input_key(3, &req.engines, &text);
        if req.use_cache {
            if let Some(snap) = self.cache.get(key) {
                if let SnapshotPayload::Msp(k) = snap.payload {
                    return Ok(Reply {
                        kind: req.kind.name(),
                        payload: ReplyPayload::Msp(k),
                        work: snap.work,
                        rounds: snap.rounds,
                        cached: true,
                        fused: 1,
                        trace_json: None,
                    });
                }
            }
        }
        self.apply_engines(&req.engines);
        let (result, stats, trace_json) = self.traced_run(req.trace, |ctx| {
            sfcp_strings::try_minimal_starting_point(ctx, &text, sfcp_strings::MspMethod::Efficient)
        });
        let msp = result.map_err(|e| ErrorReply::from_pram(0, &e))? as u64;
        if req.use_cache {
            self.cache.insert(
                key,
                &Snapshot {
                    payload: SnapshotPayload::Msp(msp),
                    work: stats.work,
                    rounds: stats.rounds,
                },
            );
        }
        Ok(Reply {
            kind: req.kind.name(),
            payload: ReplyPayload::Msp(msp),
            work: stats.work,
            rounds: stats.rounds,
            cached: false,
            fused: 1,
            trace_json,
        })
    }

    /// Pseudoforest decomposition summary.
    pub fn handle_decompose(&mut self, req: &ComputeRequest) -> Result<Reply, ErrorReply> {
        let graph = self.resolve_graph(req)?;
        let key = input_key(4, &req.engines, graph.table());
        if req.use_cache {
            if let Some(snap) = self.cache.get(key) {
                if let SnapshotPayload::Decomposition {
                    num_cycles,
                    num_cycle_nodes,
                    digest,
                } = snap.payload
                {
                    return Ok(Reply {
                        kind: req.kind.name(),
                        payload: ReplyPayload::Decomposition {
                            num_cycles,
                            num_cycle_nodes,
                            digest,
                        },
                        work: snap.work,
                        rounds: snap.rounds,
                        cached: true,
                        fused: 1,
                        trace_json: None,
                    });
                }
            }
        }
        self.apply_engines(&req.engines);
        let (result, stats, trace_json) = self.traced_run(req.trace, |ctx| {
            try_decompose(ctx, &graph, CycleMethod::Euler)
        });
        let d = result.map_err(|e| ErrorReply::from_pram(0, &e))?;
        let payload = ReplyPayload::Decomposition {
            num_cycles: d.num_cycles() as u64,
            num_cycle_nodes: d.cycle_nodes.len() as u64,
            digest: decomposition_digest(&d),
        };
        if req.use_cache {
            if let ReplyPayload::Decomposition {
                num_cycles,
                num_cycle_nodes,
                digest,
            } = payload
            {
                self.cache.insert(
                    key,
                    &Snapshot {
                        payload: SnapshotPayload::Decomposition {
                            num_cycles,
                            num_cycle_nodes,
                            digest,
                        },
                        work: stats.work,
                        rounds: stats.rounds,
                    },
                );
            }
        }
        Ok(Reply {
            kind: req.kind.name(),
            payload,
            work: stats.work,
            rounds: stats.rounds,
            cached: false,
            fused: 1,
            trace_json,
        })
    }

    /// Introspection: workspace and cache state of this worker (tests
    /// assert post-fault recovery invariants through this).
    pub fn handle_probe(&self) -> Result<Reply, ErrorReply> {
        let ws = self.ctx.workspace().stats();
        let cache = self.cache.stats();
        Ok(Reply {
            kind: "probe",
            payload: ReplyPayload::Probe {
                worker: self.index as u64,
                outstanding: ws.outstanding(),
                pooled_bytes: self.ctx.workspace().pooled_bytes(),
                cache_hits: cache.hits,
                cache_misses: cache.misses,
                cache_bytes: cache.bytes as u64,
            },
            work: 0,
            rounds: 0,
            cached: false,
            fused: 1,
            trace_json: None,
        })
    }

    /// The admission policy this worker batches under.
    #[must_use]
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Point the context at the request's engine selection.  In cold mode
    /// the context (pools and all) is rebuilt from scratch — the
    /// per-request cost every library entry point pays today, kept as the
    /// benchmark baseline.
    fn apply_engines(&mut self, engines: &Engines) {
        if self.cold_ctx {
            self.ctx = Ctx::parallel();
        }
        self.ctx.set_sort_engine(engines.sort);
        self.ctx.set_rank_engine(engines.rank);
        self.ctx.set_scatter_engine(engines.scatter);
    }

    /// Run a closure under fresh stats (and, when asked, a fresh trace),
    /// returning its result, the run's charges, and the trace summary.
    fn traced_run<T>(
        &mut self,
        trace: bool,
        run: impl FnOnce(&Ctx) -> T,
    ) -> (T, Stats, Option<String>) {
        if trace {
            self.ctx.trace().clear();
            self.ctx.trace().enable();
        }
        self.ctx.reset_stats();
        let result = run(&self.ctx);
        let stats = self.ctx.stats();
        let trace_json = if trace {
            let summary = self.ctx.trace().snapshot().summary().to_json();
            self.ctx.trace().disable();
            Some(summary)
        } else {
            None
        };
        (result, stats, trace_json)
    }

    fn gen_lookup(
        &mut self,
        key: (u8, u64, u64, u32),
        build: impl FnOnce() -> GenEntry,
    ) -> &GenEntry {
        if let Some(pos) = self.gen.iter().position(|(k, _)| *k == key) {
            return &self.gen[pos].1;
        }
        if self.gen.len() >= GEN_CACHE_CAP {
            self.gen.remove(0);
        }
        self.gen.push((key, build()));
        &self.gen.last().expect("just pushed").1
    }

    fn check_workload(n: usize) -> Result<(), ErrorReply> {
        if n == 0 || n > MAX_WORKLOAD_N {
            return Err(ErrorReply {
                id: 0,
                code: ErrorCode::InvalidInput,
                message: format!("workload n must be in 1..={MAX_WORKLOAD_N}, got {n}"),
                retryable: false,
            });
        }
        Ok(())
    }

    fn resolve_instance(&mut self, req: &ComputeRequest) -> Result<Rc<Instance>, ErrorReply> {
        match &req.input {
            Input::Inline { f, blocks } => Instance::try_new(f.clone(), blocks.clone())
                .map(Rc::new)
                .map_err(|e| ErrorReply::from_pram(0, &e)),
            Input::Workload { n, seed, param } => {
                Worker::check_workload(*n)?;
                let (n, seed, param) = (*n, *seed, *param);
                let entry = self.gen_lookup((1, n as u64, seed, param), || {
                    GenEntry::Instance(Rc::new(Instance::random(n, param as usize, seed)))
                });
                match entry {
                    GenEntry::Instance(i) => Ok(Rc::clone(i)),
                    _ => unreachable!("keyed by kind tag"),
                }
            }
        }
    }

    fn resolve_graph(&mut self, req: &ComputeRequest) -> Result<Rc<FunctionalGraph>, ErrorReply> {
        match &req.input {
            Input::Inline { f, .. } => FunctionalGraph::try_new(f.clone())
                .map(Rc::new)
                .map_err(|e| ErrorReply::from_pram(0, &e)),
            Input::Workload { n, seed, .. } => {
                Worker::check_workload(*n)?;
                let (n, seed) = (*n, *seed);
                let entry = self.gen_lookup((2, n as u64, seed, 0), || {
                    GenEntry::Graph(Rc::new(generators::random_function(n, seed)))
                });
                match entry {
                    GenEntry::Graph(g) => Ok(Rc::clone(g)),
                    _ => unreachable!("keyed by kind tag"),
                }
            }
        }
    }

    fn resolve_text(&mut self, req: &ComputeRequest) -> Result<Rc<Vec<u32>>, ErrorReply> {
        match &req.input {
            Input::Inline { f, .. } => Ok(Rc::new(f.clone())),
            Input::Workload { n, seed, param } => {
                Worker::check_workload(*n)?;
                let (n, seed, param) = (*n, *seed, *param);
                let entry = self.gen_lookup((3, n as u64, seed, param), || {
                    GenEntry::Text(Rc::new(workload_string(n, seed, param)))
                });
                match entry {
                    GenEntry::Text(t) => Ok(Rc::clone(t)),
                    _ => unreachable!("keyed by kind tag"),
                }
            }
        }
    }
}

/// Cache key for partition-family requests: instance digest × engines.
/// The engine names are hashed in because the rank engine changes the
/// documented charges a snapshot replays.
fn partition_key(instance: &Instance, engines: &Engines) -> u64 {
    let mut h = sfcp_pram::fxhash::FxHasher::default();
    h.write_u8(1);
    let (sort, rank, scatter) = engines.names();
    h.write(sort.as_bytes());
    h.write(rank.as_bytes());
    h.write(scatter.as_bytes());
    h.write_u64(instance.digest());
    h.finish()
}

/// Cache key for array-shaped inputs (canonize, decompose).
fn input_key(tag: u8, engines: &Engines, values: &[u32]) -> u64 {
    let mut h = sfcp_pram::fxhash::FxHasher::default();
    h.write_u8(tag);
    let (sort, rank, scatter) = engines.names();
    h.write(sort.as_bytes());
    h.write(rank.as_bytes());
    h.write(scatter.as_bytes());
    h.write_u64(values.len() as u64);
    for &v in values {
        h.write_u32(v);
    }
    h.finish()
}

/// A response served from a cached snapshot (labels payload only).
fn cached_partition_response(id: u64, req: &ComputeRequest, snap: &Snapshot) -> Response {
    let SnapshotPayload::Labels(labels) = &snap.payload else {
        return Response {
            id,
            outcome: Err(ErrorReply {
                id,
                code: ErrorCode::Internal,
                message: "cache entry kind mismatch".into(),
                retryable: true,
            }),
        };
    };
    let payload = if req.digest_only {
        ReplyPayload::LabelsDigest(labels_digest(labels))
    } else {
        ReplyPayload::Labels(labels.clone())
    };
    Response {
        id,
        outcome: Ok(Reply {
            kind: req.kind.name(),
            payload,
            work: snap.work,
            rounds: snap.rounds,
            cached: true,
            fused: 1,
            trace_json: None,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker() -> Worker {
        Worker::new(0, 1 << 20, BatchPolicy::default(), false)
    }

    #[test]
    fn partition_round_trips_and_caches() {
        let mut w = worker();
        let req = ComputeRequest::partition(
            Instance::paper_example().f().to_vec(),
            Instance::paper_example().blocks().to_vec(),
        );
        let first = w.serve(1, &req);
        let reply = first.outcome.as_ref().expect("first solve succeeds");
        assert!(!reply.cached);
        let ReplyPayload::Labels(labels) = &reply.payload else {
            panic!("labels expected");
        };
        // The paper's Example 3.1 partition, canonicalized.
        assert_eq!(labels[..4], [0, 1, 0, 2]);

        let second = w.serve(2, &req);
        let reply2 = second.outcome.as_ref().expect("cache hit succeeds");
        assert!(
            reply2.cached,
            "identical request must hit the snapshot cache"
        );
        assert_eq!(reply2.payload, reply.payload);
        assert_eq!((reply2.work, reply2.rounds), (reply.work, reply.rounds));
    }

    #[test]
    fn bad_input_is_typed_and_worker_survives() {
        let mut w = worker();
        let bad = ComputeRequest::partition(vec![9, 0], vec![0, 0]);
        let resp = w.serve(7, &bad);
        let err = resp.outcome.expect_err("out-of-range f must fail");
        assert_eq!(err.code, ErrorCode::InvalidInput);
        assert_eq!(err.id, 7);
        assert!(!err.retryable);

        let ok = w.serve(8, &ComputeRequest::decompose(vec![1, 0]));
        assert!(
            ok.outcome.is_ok(),
            "worker keeps serving after a bad request"
        );
    }

    #[test]
    fn batch_fusion_matches_solo_answers() {
        let mut w = worker();
        let make = |seed: u64| {
            let inst = Instance::random(300, 3, seed);
            ComputeRequest::partition(inst.f().to_vec(), inst.blocks().to_vec()).no_cache()
        };
        let subs: Vec<(u64, ComputeRequest)> = (0..5).map(|i| (100 + i, make(i))).collect();
        let batch = w.serve_batch(50, &subs);
        assert_eq!(batch.responses.len(), 5);
        for ((sub_id, req), resp) in subs.iter().zip(&batch.responses) {
            assert_eq!(resp.id, *sub_id);
            let reply = resp.outcome.as_ref().expect("fused member succeeds");
            assert_eq!(reply.fused, 5, "all five members share one invocation");
            let solo = w.serve(999, req);
            assert_eq!(
                solo.outcome.expect("solo solve").payload,
                reply.payload,
                "fused answer must equal the solo answer"
            );
        }
    }

    #[test]
    fn workload_inputs_are_deterministic() {
        let mut w = worker();
        let req = ComputeRequest::workload(Kind::Decompose, 5_000, 42, 0).digest_only();
        let a = w.serve(1, &req);
        let b = w.serve(2, &req);
        assert_eq!(a.outcome.unwrap().payload, b.outcome.unwrap().payload);

        let oversized = ComputeRequest::workload(Kind::Decompose, MAX_WORKLOAD_N + 1, 1, 0);
        let err = w
            .serve(3, &oversized)
            .outcome
            .expect_err("oversized workload");
        assert_eq!(err.code, ErrorCode::InvalidInput);
    }

    #[test]
    fn probe_reports_reconciled_workspace() {
        let mut w = worker();
        let _ = w.serve(1, &ComputeRequest::workload(Kind::Partition, 2_000, 5, 3));
        let probe = w.handle_probe().expect("probe");
        let ReplyPayload::Probe {
            outstanding,
            pooled_bytes,
            ..
        } = probe.payload
        else {
            panic!("probe payload");
        };
        assert_eq!(outstanding, 0);
        assert!(pooled_bytes > 0, "pools stay warm between requests");
    }
}

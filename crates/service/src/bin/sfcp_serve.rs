//! `sfcp_serve` — run the partition service, or smoke-test it.
//!
//! ```text
//! sfcp_serve [--port P] [--workers N] [--cache-mb M] [--cold] [--deadline-us U]
//! sfcp_serve --smoke N [--workers N] [--cache-mb M]
//! ```
//!
//! Serve mode binds `127.0.0.1:P` and runs until killed.  Smoke mode (the
//! CI gate) starts an in-process server on an ephemeral port, drives `N`
//! mixed requests through a real TCP client, verifies every answer against
//! a direct library computation, and exits non-zero on the first mismatch.

use sfcp::{coarsest_partition, Algorithm, Instance};
use sfcp_forest::cycles::CycleMethod;
use sfcp_forest::{decompose, generators};
use sfcp_pram::Ctx;
use sfcp_service::batch::canonical_labels;
use sfcp_service::snapshot::{decomposition_digest, labels_digest};
use sfcp_service::worker::workload_string;
use sfcp_service::{
    BatchPolicy, Client, ComputeRequest, Engines, Kind, ReplyPayload, Server, ServerConfig,
};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    port: u16,
    workers: usize,
    cache_mb: usize,
    cold: bool,
    deadline_us: u64,
    smoke: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 7433,
        workers: 1,
        cache_mb: 64,
        cold: false,
        deadline_us: 0,
        smoke: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--port" => {
                args.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--cache-mb" => {
                args.cache_mb = value("--cache-mb")?
                    .parse()
                    .map_err(|e| format!("--cache-mb: {e}"))?;
            }
            "--deadline-us" => {
                args.deadline_us = value("--deadline-us")?
                    .parse()
                    .map_err(|e| format!("--deadline-us: {e}"))?;
            }
            "--cold" => args.cold = true,
            "--smoke" => {
                args.smoke = Some(
                    value("--smoke")?
                        .parse()
                        .map_err(|e| format!("--smoke: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: sfcp_serve [--port P] [--workers N] [--cache-mb M] [--cold] \
                     [--deadline-us U] [--smoke N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn config_from(args: &Args, ephemeral: bool) -> ServerConfig {
    ServerConfig {
        workers: args.workers,
        policy: BatchPolicy {
            deadline: Duration::from_micros(args.deadline_us),
            ..BatchPolicy::default()
        },
        cache_bytes: args.cache_mb << 20,
        cold_ctx: args.cold,
        port: if ephemeral { 0 } else { args.port },
        ..ServerConfig::default()
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("sfcp_serve: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(n) = args.smoke {
        return smoke(&args, n);
    }

    let server = match Server::start(config_from(&args, false)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sfcp_serve: bind failed: {e}");
            return ExitCode::from(1);
        }
    };
    println!("sfcp_serve listening on {}", server.addr());
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Drive `n` mixed requests through a live server and verify each answer
/// against a direct library computation.
fn smoke(args: &Args, n: usize) -> ExitCode {
    let server = match Server::start(config_from(args, true)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smoke: bind failed: {e}");
            return ExitCode::from(1);
        }
    };
    let mut client = match Client::connect(server.addr()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("smoke: connect failed: {e}");
            return ExitCode::from(1);
        }
    };
    let ctx = Ctx::parallel();
    let mut failures = 0usize;
    let mut served = 0usize;
    let mut check = |name: &str, ok: bool| {
        served += 1;
        if !ok {
            failures += 1;
            eprintln!("smoke FAIL [{served}]: {name}");
        }
    };

    for i in 0..n {
        let seed = 1000 + i as u64;
        match i % 5 {
            // Inline partition vs direct solve.
            0 => {
                let inst = Instance::random(500 + (i % 7) * 131, 2 + i % 4, seed);
                let req = ComputeRequest::partition(inst.f().to_vec(), inst.blocks().to_vec());
                let got = client.request(&req);
                let expect =
                    canonical_labels(&coarsest_partition(&ctx, &inst, Algorithm::Parallel));
                check(
                    "partition",
                    matches!(
                        got,
                        Ok(Ok(ref r)) if r.payload == ReplyPayload::Labels(expect.clone())
                    ),
                );
            }
            // Workload decompose (server-side generation) vs direct digest.
            1 => {
                let size = 2_000 + (i % 3) * 777;
                let req = ComputeRequest::workload(Kind::Decompose, size, seed, 0);
                let got = client.request(&req);
                let graph = generators::random_function(size, seed);
                let d = decompose(&ctx, &graph, CycleMethod::Euler);
                let expect = decomposition_digest(&d);
                check(
                    "decompose",
                    matches!(
                        got,
                        Ok(Ok(ref r)) if matches!(
                            r.payload,
                            ReplyPayload::Decomposition { digest, .. } if digest == expect
                        )
                    ),
                );
            }
            // Workload canonize vs Booth's serial reference.
            2 => {
                let size = 300 + (i % 5) * 41;
                let req = ComputeRequest::workload(Kind::Canonize, size, seed, 6);
                let got = client.request(&req);
                let text = workload_string(size, seed, 6);
                let expect = sfcp_strings::booth_msp(&text) as u64;
                check(
                    "canonize",
                    matches!(got, Ok(Ok(ref r)) if r.payload == ReplyPayload::Msp(expect)),
                );
            }
            // Explicit batch (fused) vs per-member direct solves.
            3 => {
                let members: Vec<Instance> = (0..4)
                    .map(|j| Instance::random(200 + j * 57, 2 + j, seed + j as u64))
                    .collect();
                let reqs: Vec<ComputeRequest> = members
                    .iter()
                    .map(|m| {
                        ComputeRequest::partition(m.f().to_vec(), m.blocks().to_vec())
                            .no_cache()
                            .digest_only()
                    })
                    .collect();
                let got = client.batch(&reqs);
                let ok = match got {
                    Ok(responses) if responses.len() == members.len() => {
                        members.iter().zip(&responses).all(|(m, resp)| {
                            let expect = labels_digest(&canonical_labels(&coarsest_partition(
                                &ctx,
                                m,
                                Algorithm::Parallel,
                            )));
                            matches!(
                                &resp.outcome,
                                Ok(r) if r.payload == ReplyPayload::LabelsDigest(expect)
                            )
                        })
                    }
                    _ => false,
                };
                check("batch", ok);
            }
            // Engine override + probe invariant.
            _ => {
                let inst = Instance::random(400, 3, seed);
                let engines = Engines {
                    rank: sfcp_pram::RankEngine::PointerJump,
                    ..Engines::default()
                };
                let req = ComputeRequest::partition(inst.f().to_vec(), inst.blocks().to_vec())
                    .with_engines(engines);
                let got = client.request(&req);
                let expect =
                    canonical_labels(&coarsest_partition(&ctx, &inst, Algorithm::Parallel));
                let ok = matches!(
                    got,
                    Ok(Ok(ref r)) if r.payload == ReplyPayload::Labels(expect.clone())
                );
                let probe_ok = matches!(
                    client.probe(),
                    Ok(Ok(ref r)) if matches!(
                        r.payload,
                        ReplyPayload::Probe { outstanding: 0, .. }
                    )
                );
                check("engine-override+probe", ok && probe_ok);
            }
        }
    }

    server.shutdown();
    if failures == 0 {
        println!("smoke OK: {served} requests verified against direct library calls");
        ExitCode::SUCCESS
    } else {
        eprintln!("smoke: {failures}/{served} requests FAILED verification");
        ExitCode::from(1)
    }
}

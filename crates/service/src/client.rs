//! A minimal blocking client for the wire protocol (also what the
//! benchmark and the CI smoke driver use).

use crate::error::ErrorReply;
use crate::proto::{
    read_frame, write_frame, BatchResponse, ComputeRequest, FrameError, Reply, Request,
    RequestBody, Response, DEFAULT_MAX_FRAME_BYTES,
};
use std::fmt;
use std::net::{SocketAddr, TcpStream};

/// Client-side failures (transport and protocol; server-side errors arrive
/// as typed [`ErrorReply`]s inside responses instead).
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// The framing layer failed (e.g. the server answered an oversized
    /// frame).
    Frame(FrameError),
    /// The response payload did not parse.
    Protocol(String),
    /// The server closed the connection mid-conversation.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Frame(e) => write!(f, "client framing error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking connection to a running server.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame_bytes: u32,
}

impl Client {
    /// Connect to a server address (see
    /// [`ServerHandle::addr`](crate::ServerHandle::addr)).
    ///
    /// # Errors
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_id: 1,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Send raw bytes as one frame and read one response frame back
    /// (adversarial tests drive the decoder through this).
    ///
    /// # Errors
    /// Transport/framing failures; [`ClientError::Disconnected`] when the
    /// server closes instead of answering.
    pub fn call_raw(&mut self, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        write_frame(&mut self.stream, payload)?;
        match read_frame(&mut self.stream, self.max_frame_bytes)? {
            Some(response) => Ok(response),
            None => Err(ClientError::Disconnected),
        }
    }

    /// Send one compute request and wait for its reply; a server-side
    /// typed error becomes the `Err` arm of the inner result.
    ///
    /// # Errors
    /// [`ClientError`] on transport/protocol failures (the outer layer).
    pub fn request(
        &mut self,
        req: &ComputeRequest,
    ) -> Result<Result<Reply, ErrorReply>, ClientError> {
        let id = self.fresh_id();
        let frame = Request {
            id,
            body: RequestBody::Compute(req.clone()),
        }
        .encode();
        let response = self.round_trip(id, &frame)?;
        Ok(response.outcome)
    }

    /// Send an explicit batch frame; per-member responses come back in
    /// request order.
    ///
    /// # Errors
    /// [`ClientError`] on transport/protocol failures.
    pub fn batch(&mut self, reqs: &[ComputeRequest]) -> Result<Vec<Response>, ClientError> {
        let id = self.fresh_id();
        let subs: Vec<(u64, ComputeRequest)> =
            reqs.iter().map(|r| (self.fresh_id(), r.clone())).collect();
        let frame = Request {
            id,
            body: RequestBody::Batch(subs),
        }
        .encode();
        write_frame(&mut self.stream, &frame)?;
        let payload =
            read_frame(&mut self.stream, self.max_frame_bytes)?.ok_or(ClientError::Disconnected)?;
        let batch = BatchResponse::decode(&payload).map_err(ClientError::Protocol)?;
        if batch.id != id {
            return Err(ClientError::Protocol(format!(
                "batch response id {} != request id {id}",
                batch.id
            )));
        }
        Ok(batch.responses)
    }

    /// Probe the answering worker's workspace/cache state.
    ///
    /// # Errors
    /// [`ClientError`] on transport/protocol failures.
    pub fn probe(&mut self) -> Result<Result<Reply, ErrorReply>, ClientError> {
        let id = self.fresh_id();
        let frame = Request {
            id,
            body: RequestBody::Probe,
        }
        .encode();
        let response = self.round_trip(id, &frame)?;
        Ok(response.outcome)
    }

    fn round_trip(&mut self, id: u64, frame: &[u8]) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, frame)?;
        let payload =
            read_frame(&mut self.stream, self.max_frame_bytes)?.ok_or(ClientError::Disconnected)?;
        let response = Response::decode(&payload).map_err(ClientError::Protocol)?;
        if response.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} != request id {id}",
                response.id
            )));
        }
        Ok(response)
    }
}

//! Typed service errors and the mapping from library errors onto wire
//! error codes.
//!
//! The serving layer never panics on behalf of a request: untrusted bytes
//! fail in the decoder ([`ErrorCode::BadRequest`]), bad problem inputs fail
//! in the `try_` facades ([`ErrorCode::InvalidInput`], permanent), and
//! failed runs surface as [`ErrorCode::Execution`] (retryable — the
//! facade's built-in [`sfcp_pram::Ctx::recover`] already reconciled the
//! worker's workspace before the response was written).

use sfcp::DecomposeError;
use std::fmt;

/// Wire error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame payload was not a valid request (garbage JSON, unknown
    /// kind, wrong field types).
    BadRequest,
    /// The problem input was rejected by validation (permanent).
    InvalidInput,
    /// The run failed; the worker recovered and a retry may succeed.
    Execution,
    /// The server hit an internal invariant failure; the worker recovered.
    Internal,
}

impl ErrorCode {
    /// The wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::InvalidInput => "invalid_input",
            ErrorCode::Execution => "execution",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parse a wire name (unknown names map to [`ErrorCode::Internal`]).
    #[must_use]
    pub fn from_name(name: &str) -> ErrorCode {
        match name {
            "bad_request" => ErrorCode::BadRequest,
            "invalid_input" => ErrorCode::InvalidInput,
            "execution" => ErrorCode::Execution,
            _ => ErrorCode::Internal,
        }
    }
}

/// A typed error reply, carried on the `ok:false` arm of a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// Echoed request id (0 when the id itself did not parse).
    pub id: u64,
    /// The error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Whether retrying the identical request may succeed.
    pub retryable: bool,
}

impl fmt::Display for ErrorReply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.message)
    }
}

impl std::error::Error for ErrorReply {}

impl ErrorReply {
    /// A request-decoding failure.
    #[must_use]
    pub fn bad_request(message: String) -> ErrorReply {
        ErrorReply {
            id: 0,
            code: ErrorCode::BadRequest,
            message,
            retryable: false,
        }
    }

    /// Map a [`sfcp_pram::Error`] from a `try_` facade: validation errors
    /// are permanent [`ErrorCode::InvalidInput`], caught panics and
    /// injected faults are retryable [`ErrorCode::Execution`].
    #[must_use]
    pub fn from_pram(id: u64, err: &sfcp_pram::Error) -> ErrorReply {
        let execution = matches!(
            err,
            sfcp_pram::Error::Panicked { .. } | sfcp_pram::Error::Injected(_)
        );
        ErrorReply {
            id,
            code: if execution {
                ErrorCode::Execution
            } else {
                ErrorCode::InvalidInput
            },
            message: err.to_string(),
            retryable: execution,
        }
    }

    /// Map a solver-facade [`DecomposeError`].
    #[must_use]
    pub fn from_solver(id: u64, err: &DecomposeError) -> ErrorReply {
        match err {
            DecomposeError::InvalidInput(e) => ErrorReply {
                id,
                code: ErrorCode::InvalidInput,
                message: e.to_string(),
                retryable: false,
            },
            DecomposeError::Execution(e) => ErrorReply {
                id,
                code: ErrorCode::Execution,
                message: e.to_string(),
                retryable: err.is_retryable(),
            },
            // `DecomposeError` is non-exhaustive; future variants surface
            // as internal-but-retryable rather than a stale mapping.
            other => ErrorReply {
                id,
                code: ErrorCode::Internal,
                message: other.to_string(),
                retryable: other.is_retryable(),
            },
        }
    }
}

//! Parallel comparison sorting (the Cole-mergesort stand-in).
//!
//! *Algorithm sorting strings* finishes by running Cole's parallel mergesort
//! on an instance already contracted to `O(n / log n)` symbols, so that the
//! `O(m log m)` comparison cost fits in the linear work budget.  The practical
//! analogue is an ordinary parallel merge sort (recursive halves via
//! `rayon::join`, sequential merge), which has the same `O(m log m)` work and
//! polylogarithmic depth.

use sfcp_pram::Ctx;

/// Threshold below which recursion bottoms out into a sequential sort.
const SEQ_CUTOFF: usize = 4 * 1024;

/// Merge two sorted slices into a new sorted vector (stable: ties take the
/// element of `a` first).
#[must_use]
pub fn merge_sorted<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Stable parallel merge sort, in place.
///
/// Charged as a comparison sort: `O(n log n)` work and `O(log² n)` depth —
/// deliberately *more* work than the integer sort in [`crate::intsort`]; the
/// difference is exactly what experiment E5 measures.
pub fn parallel_merge_sort<T: Ord + Copy + Send + Sync>(ctx: &Ctx, data: &mut [T]) {
    let n = data.len();
    let log_n = sfcp_pram::ceil_log2(n).max(1) as u64;
    ctx.charge_work(n as u64 * log_n);
    ctx.charge_rounds(log_n * log_n);
    if !ctx.is_parallel() {
        data.sort();
        return;
    }
    msort(data);
}

fn msort<T: Ord + Copy + Send + Sync>(data: &mut [T]) {
    let n = data.len();
    if n <= SEQ_CUTOFF {
        data.sort();
        return;
    }
    let mid = n / 2;
    {
        let (left, right) = data.split_at_mut(mid);
        rayon::join(|| msort(left), || msort(right));
    }
    let merged = merge_sorted(&data[..mid], &data[mid..]);
    data.copy_from_slice(&merged);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use sfcp_pram::Mode;

    #[test]
    fn merge_basic() {
        assert_eq!(merge_sorted(&[1, 3, 5], &[2, 4, 6]), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(merge_sorted::<u32>(&[], &[]), Vec::<u32>::new());
        assert_eq!(merge_sorted(&[1, 1], &[1]), vec![1, 1, 1]);
        assert_eq!(merge_sorted(&[5], &[1, 2]), vec![1, 2, 5]);
    }

    #[test]
    fn merge_is_stable_by_pairing() {
        // Use pairs (key, origin) to observe stability of equal keys.
        let a = [(1, 'a'), (2, 'a')];
        let b = [(1, 'b'), (3, 'b')];
        let m = merge_sorted(&a, &b);
        assert_eq!(m, vec![(1, 'a'), (1, 'b'), (2, 'a'), (3, 'b')]);
    }

    #[test]
    fn sorts_large_random() {
        let mut rng = StdRng::seed_from_u64(99);
        let original: Vec<u64> = (0..100_000).map(|_| rng.gen_range(0..1_000)).collect();
        for mode in [Mode::Sequential, Mode::Parallel] {
            let ctx = Ctx::new(mode);
            let mut data = original.clone();
            parallel_merge_sort(&ctx, &mut data);
            let mut expected = original.clone();
            expected.sort();
            assert_eq!(data, expected);
        }
    }

    #[test]
    fn sorts_edge_cases() {
        let ctx = Ctx::parallel();
        let mut empty: Vec<u32> = vec![];
        parallel_merge_sort(&ctx, &mut empty);
        assert!(empty.is_empty());
        let mut single = vec![7u32];
        parallel_merge_sort(&ctx, &mut single);
        assert_eq!(single, vec![7]);
        let mut sorted: Vec<u32> = (0..10_000).collect();
        parallel_merge_sort(&ctx, &mut sorted.clone());
        parallel_merge_sort(&ctx, &mut sorted);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    proptest! {
        #[test]
        fn matches_std_sort(mut v in proptest::collection::vec(0i64..1000, 0..5000)) {
            let ctx = Ctx::parallel();
            let mut expected = v.clone();
            expected.sort();
            parallel_merge_sort(&ctx, &mut v);
            prop_assert_eq!(v, expected);
        }
    }
}

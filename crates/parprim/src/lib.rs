//! # sfcp-parprim — the parallel primitives the JáJá–Ryu algorithm stands on
//!
//! The coarsest-partition algorithm is a composition of classic PRAM
//! building blocks.  This crate implements each of them with the same
//! interface discipline: every routine takes a [`sfcp_pram::Ctx`], works in
//! both sequential and rayon-parallel mode, charges its work/depth to the
//! context's tracker, and is tested against a straightforward sequential
//! reference implementation.
//!
//! | Module | Primitive | Role in the paper |
//! |--------|-----------|-------------------|
//! | [`scan`] | prefix sums (inclusive/exclusive, generic, blocked parallel) | step scheduling, compaction offsets, Euler-tour rankings |
//! | [`reduce`] | parallel reductions (sum, min/max with index) | finding the minimum symbol `m` in *efficient m.s.p.*, leader election |
//! | [`compact`] | stream compaction (stable filter with output offsets) | collecting marked positions, building contracted strings |
//! | [`csr`] | parallel CSR construction from `(key, value)` streams | children lists, buddy-edge incidence rotations, level buckets |
//! | [`intsort`] | stable counting sort and LSD radix sort (sequential + parallel) | the Bhatt-et-al. integer sorting the paper charges `O(n log log n)` work to |
//! | [`rank`] | sorting-based renaming: map items to dense ranks | "replace each pair by its rank" steps of m.s.p. / string sorting |
//! | [`scatter`] | engine-dispatched bucketed scatter writes (direct vs write-combining) | the physical layer under every disjoint-scatter pass |
//! | [`listrank`] | engine-dispatched list ranking (pointer jumping, ruling set, cache-bucketed wavefront walks) | Step 1 of *cycle node labeling*, fused Euler-tour + cycle-chain ranking |
//! | [`jump`] | pointer jumping on rooted forests | tree-node labelling, cycle detection cross-check |
//! | [`euler`] | Euler tours of rooted forests (levels, entry/exit, ancestor sums) | Section 4 tree labelling and Section 5 cycle finding |
//! | [`merge`] | parallel merge and merge sort | the Cole-mergesort base case of string sorting |
//! | [`firstone`] | first set bit in a Boolean array | candidate elimination in *simple m.s.p.* |

// Every public item of this crate is part of the documented substitution
// surface; the CI rustdoc gate (`RUSTDOCFLAGS="-D warnings" cargo doc`)
// turns a missing or broken doc into a build failure.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod compact;
pub mod csr;
pub mod euler;
pub mod firstone;
pub mod intsort;
pub mod jump;
pub mod listrank;
pub mod merge;
pub mod rank;
pub mod reduce;
pub mod scan;
pub mod scatter;

pub use compact::{compact_indices, compact_with};
pub use csr::{build_csr, build_csr_into};
pub use euler::{EulerTour, RootedForest};
pub use firstone::first_true;
pub use intsort::{
    counting_sort_by_key, for_each_block, radix_sort_pairs, radix_sort_recs,
    radix_sort_recs_prebounded, radix_sort_u64,
};
pub use jump::{distance_to_root, find_roots};
pub use listrank::{
    list_rank, list_rank_cache_bucket, list_rank_into, list_rank_ruling_set, list_rank_wyllie,
};
pub use merge::{merge_sorted, parallel_merge_sort};
pub use rank::{
    dense_ranks, dense_ranks_by_sort, dense_ranks_by_sort_into, dense_ranks_of_pairs,
    dense_ranks_of_pairs_into,
};
pub use reduce::{max_index, min_index, min_value, sum_u64};
pub use scan::{
    exclusive_scan, exclusive_scan_into, inclusive_scan, inclusive_scan_into, scan_generic,
    scan_generic_into,
};
pub use scatter::{scatter_into, ScatterTiles, TileSink, TileValue};

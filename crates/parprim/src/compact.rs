//! Stream compaction: gather the elements satisfying a predicate, preserving
//! their order, in `O(n)` work and `O(log n)` depth.
//!
//! The m.s.p. and string-sorting algorithms repeatedly "collect the marked
//! positions" and "write the groups of each substring contiguously"; both
//! are compactions driven by an exclusive prefix sum of 0/1 flags.

use crate::scan::scan_generic_into;
use sfcp_pram::Ctx;

/// Indices `i` (in increasing order) for which `keep(i)` is true.
#[must_use]
pub fn compact_indices<F>(ctx: &Ctx, n: usize, keep: F) -> Vec<u32>
where
    F: Fn(usize) -> bool + Sync + Send,
{
    compact_with(ctx, n, keep, |i| i as u32)
}

/// [`compact_indices`] writing into a reusable output buffer (cleared and
/// refilled), so per-round compactions in decomposition passes allocate
/// nothing once the caller's buffer is warm.
pub fn compact_indices_into<F>(ctx: &Ctx, n: usize, keep: F, out: &mut Vec<u32>)
where
    F: Fn(usize) -> bool + Sync + Send,
{
    compact_with_into(ctx, n, keep, |i| i as u32, out);
}

/// Stable compaction with a projection: collects `project(i)` for every index
/// `i` with `keep(i)`, in increasing order of `i`.
///
/// The flag and offset intermediates are checked out from the context
/// workspace, so repeated compactions (the m.s.p. contraction loop marks runs
/// every round) do not allocate; only the returned vector is fresh.
#[must_use]
pub fn compact_with<T, F, P>(ctx: &Ctx, n: usize, keep: F, project: P) -> Vec<T>
where
    T: Send + Sync + Copy + Default,
    F: Fn(usize) -> bool + Sync + Send,
    P: Fn(usize) -> T + Sync + Send,
{
    let mut out = Vec::new();
    compact_with_into(ctx, n, keep, project, &mut out);
    out
}

/// [`compact_with`] writing into a reusable output buffer.
pub fn compact_with_into<T, F, P>(ctx: &Ctx, n: usize, keep: F, project: P, out: &mut Vec<T>)
where
    T: Send + Sync + Copy + Default,
    F: Fn(usize) -> bool + Sync + Send,
    P: Fn(usize) -> T + Sync + Send,
{
    sfcp_pram::faults::on_engine_pass();
    let _span = ctx.span("compact");
    out.clear();
    if n == 0 {
        return;
    }
    // u32 flag/offset intermediates (counts are bounded by the index range),
    // halving the scan's memory traffic; the scan charges are element-type
    // independent, so this is charge-identical to a u64 scan.
    assert!(
        n <= u32::MAX as usize,
        "compact_with_into runs its offsets as u32 words"
    );
    let ws = ctx.workspace();
    let mut flags = ws.take_u32(n);
    ctx.par_update(&mut flags, |i, f| *f = u32::from(keep(i)));
    let mut offsets = ws.take_u32(n);
    scan_generic_into(ctx, &flags, 0u32, |a, b| a + b, false, &mut offsets);
    // The kept count falls out of the exclusive scan for free.
    let total = offsets[n - 1] + flags[n - 1];
    out.resize(total as usize, T::default());
    // Each kept index writes its own slot — disjoint writes.
    let out_ptr = SendPtr(out.as_mut_ptr());
    ctx.par_for_idx(n, |i| {
        if flags[i] == 1 {
            let ptr = out_ptr;
            // SAFETY: offsets are strictly increasing over kept indices, so
            // each destination slot is written exactly once.
            unsafe {
                *ptr.0.add(offsets[i] as usize) = project(i);
            }
        }
    });
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` only smuggles a raw base pointer into parallel tasks
// whose writes target disjoint indices; every dereference site carries its
// own SAFETY argument for that disjointness, and the pointee buffer is
// borrowed for the whole parallel region, so it outlives every task.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` across tasks only copies the pointer value —
// no shared-reference method dereferences it, so aliased access to the
// pointee can never originate from the `Sync` impl itself.
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sfcp_pram::Mode;

    #[test]
    fn collects_even_indices() {
        for mode in [Mode::Sequential, Mode::Parallel] {
            let ctx = Ctx::new(mode);
            let idx = compact_indices(&ctx, 10, |i| i % 2 == 0);
            assert_eq!(idx, vec![0, 2, 4, 6, 8]);
        }
    }

    #[test]
    fn empty_inputs() {
        let ctx = Ctx::parallel();
        assert!(compact_indices(&ctx, 0, |_| true).is_empty());
        assert!(compact_indices(&ctx, 100, |_| false).is_empty());
    }

    #[test]
    fn keeps_everything_in_order() {
        let ctx = Ctx::parallel().with_grain(8);
        let idx = compact_indices(&ctx, 10_000, |_| true);
        assert_eq!(idx.len(), 10_000);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn projection_variant() {
        let ctx = Ctx::parallel();
        let data = [10u32, 11, 12, 13, 14, 15];
        let picked = compact_with(&ctx, data.len(), |i| data[i] % 2 == 1, |i| data[i]);
        assert_eq!(picked, vec![11, 13, 15]);
    }

    proptest! {
        #[test]
        fn matches_filter(v in proptest::collection::vec(0u32..10, 0..5000)) {
            let ctx = Ctx::parallel().with_grain(64);
            let picked = compact_with(&ctx, v.len(), |i| v[i] < 5, |i| v[i]);
            let expected: Vec<u32> = v.iter().copied().filter(|&x| x < 5).collect();
            prop_assert_eq!(picked, expected);
        }
    }

    /// Miri target: the parallel compaction's disjoint scatter of surviving
    /// indices into the output.
    #[test]
    fn miri_parallel_compact_writes_disjoint_slots() {
        let ctx = Ctx::parallel();
        let idx = compact_indices(&ctx, 5000, |i| i % 3 == 0);
        assert_eq!(idx.len(), 1667);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.iter().all(|&i| i % 3 == 0));
    }
}

//! Parallel reductions: sums, minima and maxima with positions.
//!
//! *Algorithm efficient m.s.p.* starts every round by finding the smallest
//! symbol `m` of the circular string; leader election for cycles picks the
//! minimum node index.  Both are index-reporting reductions.  Work `O(n)`,
//! depth `O(log n)`.

use sfcp_pram::Ctx;

/// Sum of a `u64` slice.
#[must_use]
pub fn sum_u64(ctx: &Ctx, values: &[u64]) -> u64 {
    ctx.par_reduce_idx(values.len(), 0u64, |i| values[i], |a, b| a + b)
}

/// Minimum value of a non-empty slice.
///
/// # Panics
/// Panics if `values` is empty.
#[must_use]
pub fn min_value<T: Ord + Copy + Send + Sync>(ctx: &Ctx, values: &[T]) -> T {
    assert!(!values.is_empty(), "min_value of an empty slice");
    let first = values[0];
    ctx.par_reduce_idx(values.len(), first, |i| values[i], |a, b| a.min(b))
}

/// Index of the minimum element; ties broken towards the smallest index
/// (this determinism matters: the algorithms use it for leader election).
///
/// # Panics
/// Panics if `values` is empty.
#[must_use]
pub fn min_index<T: Ord + Copy + Send + Sync>(ctx: &Ctx, values: &[T]) -> usize {
    assert!(!values.is_empty(), "min_index of an empty slice");
    let best = ctx.par_reduce_idx(
        values.len(),
        (values[0], 0usize),
        |i| (values[i], i),
        |a, b| {
            // Smaller value wins; on equal values the smaller index wins.
            if b.0 < a.0 || (b.0 == a.0 && b.1 < a.1) {
                b
            } else {
                a
            }
        },
    );
    best.1
}

/// Index of the maximum element; ties broken towards the smallest index.
///
/// # Panics
/// Panics if `values` is empty.
#[must_use]
pub fn max_index<T: Ord + Copy + Send + Sync>(ctx: &Ctx, values: &[T]) -> usize {
    assert!(!values.is_empty(), "max_index of an empty slice");
    let best = ctx.par_reduce_idx(
        values.len(),
        (values[0], 0usize),
        |i| (values[i], i),
        |a, b| {
            if b.0 > a.0 || (b.0 == a.0 && b.1 < a.1) {
                b
            } else {
                a
            }
        },
    );
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sfcp_pram::Mode;

    #[test]
    fn sums() {
        for mode in [Mode::Sequential, Mode::Parallel] {
            let ctx = Ctx::new(mode);
            let v: Vec<u64> = (0..10_001).collect();
            assert_eq!(sum_u64(&ctx, &v), 10_000 * 10_001 / 2);
            assert_eq!(sum_u64(&ctx, &[]), 0);
        }
    }

    #[test]
    fn min_and_max_with_ties() {
        let ctx = Ctx::parallel().with_grain(16);
        let v = vec![5u32, 3, 7, 3, 9, 1, 1, 8];
        assert_eq!(min_value(&ctx, &v), 1);
        assert_eq!(min_index(&ctx, &v), 5, "first occurrence of the minimum");
        assert_eq!(max_index(&ctx, &v), 4);
        let all_equal = vec![2u32; 100];
        assert_eq!(min_index(&ctx, &all_equal), 0);
        assert_eq!(max_index(&ctx, &all_equal), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn min_index_empty_panics() {
        let ctx = Ctx::sequential();
        let _ = min_index::<u32>(&ctx, &[]);
    }

    proptest! {
        #[test]
        fn matches_std(v in proptest::collection::vec(0u32..50, 1..2000)) {
            let ctx = Ctx::parallel().with_grain(32);
            let expected_min = *v.iter().min().unwrap();
            prop_assert_eq!(min_value(&ctx, &v), expected_min);
            prop_assert_eq!(min_index(&ctx, &v), v.iter().position(|&x| x == expected_min).unwrap());
            let expected_max = *v.iter().max().unwrap();
            prop_assert_eq!(max_index(&ctx, &v), v.iter().position(|&x| x == expected_max).unwrap());
        }
    }
}

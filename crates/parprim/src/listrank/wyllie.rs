//! The `PointerJump` engine: Wyllie's pointer jumping.
//!
//! `O(n log n)` work, `O(log n)` depth — the documented model baseline the
//! work-efficient engines are measured against.  Also the execution path for
//! tiny inputs, where the ruling-set machinery is pure overhead.

use sfcp_pram::Ctx;

/// Wyllie's pointer-jumping list ranking.
///
/// The per-round successor/rank arrays are workspace-backed and ping-ponged,
/// so the `O(log n)` rounds allocate O(1) buffers per run.
#[must_use]
pub fn list_rank_wyllie(ctx: &Ctx, next: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    list_rank_wyllie_into(ctx, next, &mut out);
    out
}

/// [`list_rank_wyllie`] writing into a reusable output buffer.
pub fn list_rank_wyllie_into(ctx: &Ctx, next: &[u32], out: &mut Vec<u32>) {
    let n = next.len();
    out.clear();
    if n == 0 {
        return;
    }
    for (i, &s) in next.iter().enumerate() {
        assert!((s as usize) < n, "next[{i}] = {s} out of range");
    }
    let ws = ctx.workspace();
    let mut succ = ws.take_u32(n);
    succ.copy_from_slice(next);
    out.resize(n, 0);
    ctx.par_update(out, |i, r| *r = u32::from(next[i] as usize != i));
    let mut next_rank = ws.take_u32(n);
    let mut next_succ = ws.take_u32(n);
    let rounds = sfcp_pram::ceil_log2(n) + 1;
    for r in 0..rounds {
        // Synchronous step: read the old arrays, write fresh ones.
        {
            let rank_ref: &[u32] = out;
            let succ_ref = &succ;
            ctx.par_update(&mut next_rank, |i, r| {
                *r = rank_ref[i] + rank_ref[succ_ref[i] as usize];
            });
            let succ_ref = &succ;
            ctx.par_update(&mut next_succ, |i, s| *s = succ_ref[succ_ref[i] as usize]);
        }
        std::mem::swap(out, &mut *next_rank);
        std::mem::swap(&mut *succ, &mut *next_succ);
        if *next_succ == *succ {
            // Every pointer reached its terminal (whose rank is and stays 0),
            // so further rounds are identity passes: charge them without
            // executing (see DESIGN.md "Charge discipline").
            let skipped = (rounds - 1 - r) as u64;
            ctx.charge_work(2 * skipped * n as u64);
            ctx.charge_rounds(2 * skipped);
            break;
        }
    }
}

//! List ranking — the engine-dispatched ranking/contraction subsystem.
//!
//! Step 1 of *Algorithm cycle node labeling* rearranges each cycle into
//! consecutive memory locations; the paper does this with the optimal
//! list-ranking algorithm of Anderson and Miller (`O(log n)` time, `O(n)`
//! work, EREW).  Like the integer-sort layer, the practical stand-in is a
//! pluggable engine selected on the [`Ctx`] ([`sfcp_pram::RankEngine`],
//! mirroring [`sfcp_pram::SortEngine`]):
//!
//! * [`RankEngine::PointerJump`] — Wyllie's pointer jumping
//!   ([`list_rank_wyllie`]): simple, `O(log n)` depth but `O(n log n)` work.
//!   The documented model baseline, charged at its own (larger) cost.
//! * [`RankEngine::RulingSet`] — the work-efficient scheme
//!   ([`list_rank_ruling_set`]): deterministically sample ~`n / k` *rulers*,
//!   walk the short segments between rulers sequentially (in parallel over
//!   segments), rank the contracted list of rulers with weighted Wyllie, and
//!   expand.  Expected `O(n)` work, `O(k + log n)` depth with `k ≈ log n` —
//!   the practical stand-in for Anderson–Miller.
//! * [`RankEngine::CacheBucket`] (default) — the same ruling-set scheme with
//!   the segment walks batched into lockstep *wavefronts*
//!   ([`list_rank_cache_bucket`]): the dependent pointer-chase of one walk
//!   overlaps the memory latency of its bucket neighbours, so the hot
//!   traversal runs at bandwidth instead of latency.  Produces identical
//!   ranks and charges **bit-identical** work/depth to `RulingSet`
//!   (regression-tested) — the engine choice is charge-invisible, exactly
//!   like the packed/permutation sort engines.
//!
//! The same machinery executes the cycle-min contraction behind
//! [`crate::jump::permutation_cycle_min`] (`ruling.rs` /
//! `cycle_min_contraction_into`), which stays charge-pinned to the
//! documented pointer-jumping substitution via top-ups.
//!
//! The input is a *successor* array: `next[i]` is the element after `i`, and
//! terminal elements satisfy `next[i] == i`.  Several independent lists may
//! share one array — the property the **fused Euler ranking** exploits:
//! `decompose` lays the `2n` Euler-tour arcs and the `m` broken-cycle chain
//! elements out in one successor array and ranks both with a single engine
//! invocation (see DESIGN.md, "List ranking engines").  The output rank of
//! an element is its distance (number of hops) to its terminal.

mod bucket;
mod ruling;
mod wyllie;

pub use bucket::{list_rank_cache_bucket, list_rank_cache_bucket_into};
pub use ruling::{is_sampled_ruler, list_rank_ruling_set, list_rank_ruling_set_into};
pub use wyllie::{list_rank_wyllie, list_rank_wyllie_into};

pub(crate) use ruling::{cycle_min_contraction_flagged_core, cycle_min_contraction_into};

use sfcp_pram::{Ctx, RankEngine};

/// The ruler-flag bit of a *flagged* successor word: bit 31 of
/// `flagged[i] = next[i] | RULER_FLAG·(i is a ruler)`.  Successor arrays
/// therefore must stay below `2^31` elements.  See
/// [`list_rank_flagged_into`] for the construction contract.
pub const RULER_FLAG: u32 = 1 << 31;

/// Distance of every element to the terminal of its list, via the engine
/// selected on the context ([`Ctx::rank_engine`]).
///
/// # Panics
/// Panics if `next` contains an out-of-range index.
#[must_use]
pub fn list_rank(ctx: &Ctx, next: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    list_rank_into(ctx, next, &mut out);
    out
}

/// [`list_rank`] writing into a reusable output buffer, so repeated rankings
/// (the fused Euler-tour + cycle-chain pass of a decomposition) allocate
/// nothing once the caller's buffer and the workspace pools are warm.
pub fn list_rank_into(ctx: &Ctx, next: &[u32], out: &mut Vec<u32>) {
    sfcp_pram::faults::on_engine_pass();
    let mut span = ctx.span("list_rank");
    span.attr("n", next.len() as u64);
    match ctx.rank_engine() {
        RankEngine::PointerJump => list_rank_wyllie_into(ctx, next, out),
        RankEngine::RulingSet => list_rank_ruling_set_into(ctx, next, out),
        RankEngine::CacheBucket => list_rank_cache_bucket_into(ctx, next, out),
    }
}

/// [`list_rank_into`] over a **flagged** successor array the caller built —
/// the entry point of the `has_pred` fold: callers that lay their successor
/// lists out anyway (the fused Euler ranking of `decompose`) OR the ruler
/// flag into each word as they write it, and the engines skip their
/// `has_pred` sampling passes entirely (charging them without executing, so
/// the flagged and sampling entry points are charge-identical — see
/// DESIGN.md, "Charge discipline").
///
/// Contract on `flagged[i] = next[i] | RULER_FLAG·ruler(i)`:
///
/// * `next[i] < flagged.len() < 2^31` is the successor (terminals point to
///   themselves), and the flag bit must be set for
///   * every **head** (element no other element points to),
///   * every **terminal** (`next[i] == i`), and
///   * every element of the deterministic hash sample
///     ([`is_sampled_ruler`]`(i, flagged.len())`).
///
/// The flag contract mirrors the internal `sample_chain_rulers` exactly, so
/// the flagged entries produce the same rulers, the same ranks, and the
/// same charges as the sampling entries.  The input is trusted: the range
/// invariant is *not* re-validated here (an out-of-range successor panics
/// on a bounds-checked gather instead of being reported up front), which is
/// what deletes the sampling pre-passes from the hot path.
///
/// Under [`RankEngine::PointerJump`] (and for tiny inputs) the flags are
/// stripped into a scratch copy and Wyllie runs as usual.
pub fn list_rank_flagged_into(ctx: &Ctx, flagged: &[u32], out: &mut Vec<u32>) {
    sfcp_pram::faults::on_engine_pass();
    let mut span = ctx.span("list_rank_flagged");
    span.attr("n", flagged.len() as u64);
    let n = flagged.len();
    out.clear();
    if n == 0 {
        return;
    }
    let engine = ctx.rank_engine();
    if n <= ruling::TINY_LIST_MAX || engine == RankEngine::PointerJump {
        // Strip the flag bits (uncharged glue, parallel like the other
        // packing passes) and run the Wyllie path the sampling entries
        // would also take.
        let ws = ctx.workspace();
        let mut plain = ws.take_u32(n);
        crate::intsort::fill_items_uncharged(ctx, &mut plain, |i| flagged[i] & !RULER_FLAG);
        list_rank_wyllie_into(ctx, &plain, out);
        return;
    }
    match engine {
        RankEngine::PointerJump => unreachable!("handled above"),
        RankEngine::RulingSet => ruling::list_rank_ruling_set_flagged_into(ctx, flagged, out),
        RankEngine::CacheBucket => bucket::list_rank_cache_bucket_flagged_into(ctx, flagged, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use sfcp_pram::Mode;

    fn all_engines() -> [RankEngine; 3] {
        RankEngine::ALL
    }

    /// Reference ranking by walking each list.
    #[allow(clippy::needless_range_loop)]
    fn reference_ranks(next: &[u32]) -> Vec<u32> {
        let n = next.len();
        let mut rank = vec![0u32; n];
        for start in 0..n {
            let mut steps = 0u32;
            let mut cur = start;
            while next[cur] as usize != cur {
                cur = next[cur] as usize;
                steps += 1;
                assert!(steps as usize <= n, "cycle detected — invalid list input");
            }
            rank[start] = steps;
        }
        rank
    }

    /// Build a successor array for a random permutation split into `lists`
    /// independent lists.
    fn random_lists(n: usize, lists: usize, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rng);
        let mut next: Vec<u32> = (0..n as u32).collect();
        let chunk = n.div_ceil(lists.max(1));
        for part in perm.chunks(chunk) {
            for w in part.windows(2) {
                next[w[0] as usize] = w[1];
            }
            // Last element of each part is terminal (already self-loop).
        }
        next
    }

    #[test]
    fn empty_and_singleton() {
        let ctx = Ctx::parallel();
        assert!(list_rank_wyllie(&ctx, &[]).is_empty());
        assert_eq!(list_rank_wyllie(&ctx, &[0]), vec![0]);
        for engine in all_engines() {
            let ctx = Ctx::parallel().with_rank_engine(engine);
            assert!(list_rank(&ctx, &[]).is_empty());
            assert_eq!(list_rank(&ctx, &[0]), vec![0]);
        }
    }

    #[test]
    fn single_chain() {
        // 0 -> 1 -> 2 -> 3 (terminal)
        let next = vec![1u32, 2, 3, 3];
        for mode in [Mode::Sequential, Mode::Parallel] {
            let ctx = Ctx::new(mode);
            assert_eq!(list_rank_wyllie(&ctx, &next), vec![3, 2, 1, 0]);
            assert_eq!(list_rank_ruling_set(&ctx, &next), vec![3, 2, 1, 0]);
            assert_eq!(list_rank_cache_bucket(&ctx, &next), vec![3, 2, 1, 0]);
        }
    }

    #[test]
    fn two_lists() {
        // list A: 4 -> 2 -> 0 (terminal); list B: 3 -> 1 (terminal)
        let next = vec![0u32, 1, 0, 1, 2];
        let ctx = Ctx::parallel();
        assert_eq!(list_rank_wyllie(&ctx, &next), vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn large_random_lists_all_engines() {
        let next = random_lists(20_000, 7, 42);
        let expected = reference_ranks(&next);
        for mode in [Mode::Sequential, Mode::Parallel] {
            for engine in all_engines() {
                let ctx = Ctx::new(mode).with_rank_engine(engine);
                assert_eq!(list_rank(&ctx, &next), expected, "{engine:?} {mode:?}");
            }
        }
    }

    #[test]
    fn single_long_chain_exercises_contraction_engines() {
        // One chain of length 50k in index order — heads/terminals handled.
        let n = 50_000;
        let mut next: Vec<u32> = (1..=n as u32).collect();
        next[n - 1] = (n - 1) as u32;
        let ctx = Ctx::parallel();
        for ranks in [
            list_rank_ruling_set(&ctx, &next),
            list_rank_cache_bucket(&ctx, &next),
        ] {
            for (i, &r) in ranks.iter().enumerate() {
                assert_eq!(r as usize, n - 1 - i);
            }
        }
    }

    #[test]
    fn ruling_set_work_is_smaller_than_wyllie() {
        let next = random_lists(100_000, 3, 9);
        let ctx_w = Ctx::parallel();
        let _ = list_rank_wyllie(&ctx_w, &next);
        let ctx_r = Ctx::parallel();
        let _ = list_rank_ruling_set(&ctx_r, &next);
        assert!(
            ctx_r.stats().work < ctx_w.stats().work,
            "ruling set ({}) should charge less work than Wyllie ({})",
            ctx_r.stats().work,
            ctx_w.stats().work
        );
    }

    /// The CacheBucket engine is a physical relayout of the RulingSet
    /// engine: identical ranks, bit-identical work/depth charges, in both
    /// execution modes, across the tiny/contraction threshold.
    #[test]
    fn cache_bucket_charges_match_ruling_set() {
        for (n, lists, seed) in [
            (12usize, 2usize, 3u64), // tiny path (Wyllie fall-back)
            (1024, 1, 4),            // threshold boundary
            (1025, 1, 5),
            (30_000, 5, 6),
            (60_000, 1, 7),
        ] {
            let next = random_lists(n, lists, seed);
            for mode in [Mode::Sequential, Mode::Parallel] {
                let ruling = Ctx::new(mode).with_rank_engine(RankEngine::RulingSet);
                let bucket = Ctx::new(mode).with_rank_engine(RankEngine::CacheBucket);
                let a = list_rank(&ruling, &next);
                let b = list_rank(&bucket, &next);
                assert_eq!(a, b, "ranks diverged at n={n}, mode={mode:?}");
                assert_eq!(
                    ruling.stats(),
                    bucket.stats(),
                    "charges diverged at n={n}, mode={mode:?}"
                );
            }
        }
    }

    /// `list_rank` must route through the engine selected on the context.
    #[test]
    fn dispatch_respects_ctx_engine() {
        let next = random_lists(40_000, 4, 17);
        for engine in all_engines() {
            let dispatched = Ctx::parallel().with_rank_engine(engine);
            let _ = list_rank(&dispatched, &next);
            let direct = Ctx::parallel();
            match engine {
                RankEngine::PointerJump => {
                    let _ = list_rank_wyllie(&direct, &next);
                }
                RankEngine::RulingSet => {
                    let _ = list_rank_ruling_set(&direct, &next);
                }
                RankEngine::CacheBucket => {
                    let _ = list_rank_cache_bucket(&direct, &next);
                }
            }
            assert_eq!(
                dispatched.stats(),
                direct.stats(),
                "dispatch charge mismatch for {engine:?}"
            );
        }
    }

    /// Warm rankings serve every checkout from the workspace pools, for all
    /// three engines.
    #[test]
    fn warm_rankings_allocate_nothing() {
        let next = random_lists(30_000, 3, 23);
        for engine in all_engines() {
            let ctx = Ctx::parallel().with_rank_engine(engine);
            let mut out = Vec::new();
            list_rank_into(&ctx, &next, &mut out); // warm up
            let before = ctx.workspace().stats();
            for _ in 0..4 {
                list_rank_into(&ctx, &next, &mut out);
            }
            let after = ctx.workspace().stats();
            assert!(after.checkouts > before.checkouts);
            assert_eq!(
                after.misses, before.misses,
                "warm {engine:?} rankings must not allocate fresh buffers"
            );
            assert_eq!(after.outstanding(), 0);
        }
    }

    /// Build the flagged successor array of `next` per the
    /// `list_rank_flagged_into` contract (heads, terminals, hash sample).
    fn flag_successors(next: &[u32]) -> Vec<u32> {
        let n = next.len();
        let mut has_pred = vec![false; n];
        for (i, &s) in next.iter().enumerate() {
            if s as usize != i {
                has_pred[s as usize] = true;
            }
        }
        (0..n)
            .map(|i| {
                let ruler = !has_pred[i] || next[i] as usize == i || is_sampled_ruler(i, n);
                next[i] | (u32::from(ruler) << 31)
            })
            .collect()
    }

    /// The flagged entry point must produce the identical ranks and the
    /// identical charges as the sampling entry point, for every engine and
    /// both modes, across the tiny-list threshold.
    #[test]
    fn flagged_entry_matches_sampling_entry() {
        for (n, lists, seed) in [
            (12usize, 2usize, 3u64), // tiny path (Wyllie fall-back)
            (1024, 1, 4),            // threshold boundary
            (1025, 1, 5),
            (30_000, 5, 6),
        ] {
            let next = random_lists(n, lists, seed);
            let flagged = flag_successors(&next);
            for mode in [Mode::Sequential, Mode::Parallel] {
                for engine in all_engines() {
                    let sampled = Ctx::new(mode).with_rank_engine(engine);
                    let direct = Ctx::new(mode).with_rank_engine(engine);
                    let mut a = Vec::new();
                    let mut b = Vec::new();
                    list_rank_into(&sampled, &next, &mut a);
                    list_rank_flagged_into(&direct, &flagged, &mut b);
                    assert_eq!(a, b, "ranks diverged (n={n}, {engine:?}, {mode:?})");
                    assert_eq!(
                        sampled.stats(),
                        direct.stats(),
                        "flagged charges diverged (n={n}, {engine:?}, {mode:?})"
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn all_engines_match_reference(n in 1usize..400, lists in 1usize..8, seed in 0u64..100) {
            let next = random_lists(n, lists, seed);
            let expected = reference_ranks(&next);
            for engine in RankEngine::ALL {
                let ctx = Ctx::parallel().with_grain(32).with_rank_engine(engine);
                prop_assert_eq!(list_rank(&ctx, &next), expected.clone());
            }
        }

        /// Past the tiny threshold with a forced wavefront refill (many short
        /// segments), the bucketed walk must agree with the sequential one.
        #[test]
        fn bucketed_walk_matches_on_many_short_lists(seed in 0u64..30) {
            let next = random_lists(5000, 600, seed);
            let expected = reference_ranks(&next);
            let ctx = Ctx::parallel().with_rank_engine(RankEngine::CacheBucket);
            prop_assert_eq!(list_rank(&ctx, &next), expected);
        }
    }

    /// Miri target: the ruling-set and cache-bucket engine internals (the
    /// segment walks and expansion scatters), above the tiny-list Wyllie
    /// fallback threshold.
    #[test]
    fn miri_ruling_and_bucket_engines_above_tiny_threshold() {
        let n = 1300usize;
        let mut next: Vec<u32> = (1..=n as u32).collect();
        next[n - 1] = (n - 1) as u32;
        for engine in [RankEngine::RulingSet, RankEngine::CacheBucket] {
            let ctx = Ctx::parallel().with_rank_engine(engine);
            let ranks = list_rank(&ctx, &next);
            for (i, &r) in ranks.iter().enumerate() {
                assert_eq!(r as usize, n - 1 - i);
            }
        }
    }
}

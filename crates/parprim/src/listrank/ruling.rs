//! The `RulingSet` engine and the shared sparse-ruling-set machinery.
//!
//! Deterministically sample ~`n / k` *rulers*, walk the short segments
//! between rulers sequentially (in parallel over segments), solve the
//! contracted problem over the rulers with packed-word doubling, and expand.
//! Two problems run on this machinery:
//!
//! * **list ranking** ([`list_rank_ruling_set_into`]): the contracted list is
//!   ranked with weighted Wyllie (weight of a ruler = its segment length);
//! * **cycle minima** ([`cycle_min_contraction_into`], the execution path of
//!   `jump::permutation_cycle_min` for large permutations): the contracted
//!   cycle is min-jumped over packed `(best, jump)` words.
//!
//! The sampling, ruler indexing, and packed contracted-doubling kernels are
//! shared with the `CacheBucket` engine (`bucket.rs`), which replaces only
//! the physical segment-walk layout; the two engines charge bit-identical
//! work/depth (regression-tested).

use sfcp_pram::fxhash::hash_u64;
use sfcp_pram::{Ctx, RankEngine, Scratch};

use super::bucket;
use super::wyllie::list_rank_wyllie_into;

/// Below this size pointer jumping beats the ruling-set machinery outright;
/// both work-efficient engines fall back to it (charging the Wyllie model).
pub(crate) const TINY_LIST_MAX: usize = 1024;

/// Low 31 bits of a packed successor-plus-ruler-flag word.
pub(crate) const FLAGGED_LOW: u32 = (1 << 31) - 1;

/// Segment length target ~`log n`: keeps the expected work linear while the
/// per-segment walks stay short.
pub(crate) fn segment_target(n: usize) -> usize {
    (sfcp_pram::ceil_log2(n) as usize).max(2) * 2
}

/// Deterministic chain-ruler sampling shared by the `RulingSet` and
/// `CacheBucket` engines: element `i` is a ruler iff its hash falls in a
/// `1/k` slice, or it is a head (no predecessor — the prefix of a list
/// before the first sampled ruler would never be walked otherwise), or it is
/// a terminal.  The same pass packs the successor and the ruler flag into
/// one word (`next[i] | ruler << 31`), so the segment walks cost a single
/// gather per hop instead of touching two arrays.
///
/// Returns `(is_ruler, flagged_next)`.
pub(crate) fn sample_chain_rulers<'c>(
    ctx: &'c Ctx,
    next: &[u32],
    k: usize,
) -> (Scratch<'c, u8>, Scratch<'c, u32>) {
    let n = next.len();
    assert!(
        n < (1 << 31),
        "ruling-set list ranking packs successors and ruler flags into u32 words"
    );
    let ws = ctx.workspace();
    let mut has_pred = ws.take_u8(n);
    has_pred.fill(0);
    for (i, &s) in next.iter().enumerate() {
        if s as usize != i {
            has_pred[s as usize] = 1;
        }
    }
    ctx.charge_step(n as u64);

    let mut is_ruler = ws.take_u8(n);
    let mut flagged_next = ws.take_u32(n);
    {
        let flagged_ptr = SendPtr(flagged_next.as_mut_ptr());
        let has_pred = &has_pred;
        ctx.par_update(&mut is_ruler, |i, r| {
            let ruler = has_pred[i] == 0
                || next[i] as usize == i
                || (hash_u64(i as u64) as usize).is_multiple_of(k);
            *r = u8::from(ruler);
            let p = flagged_ptr;
            // Safety: each i writes its own slot.
            unsafe {
                *p.0.add(i) = next[i] | (u32::from(ruler) << 31);
            }
        });
    }
    (is_ruler, flagged_next)
}

/// Compact the sampled rulers and invert the numbering: returns
/// `(ruler_ids, ruler_index)` with `ruler_index[ruler_ids[j]] == j`.  Only
/// ruler slots of `ruler_index` are written (and only those are read back),
/// unless `fill_unset` asks for a `u32::MAX` fill of the rest.
pub(crate) fn index_rulers<'c>(
    ctx: &'c Ctx,
    is_ruler: &[u8],
    fill_unset: bool,
) -> (Scratch<'c, u32>, Scratch<'c, u32>) {
    let n = is_ruler.len();
    let ws = ctx.workspace();
    let mut ruler_ids = ws.take_u32(0);
    crate::compact::compact_indices_into(ctx, n, |i| is_ruler[i] == 1, &mut ruler_ids);
    let m = ruler_ids.len();
    let mut ruler_index = ws.take_u32(n);
    if fill_unset {
        ruler_index.fill(u32::MAX);
    }
    for (j, &r) in ruler_ids.iter().enumerate() {
        ruler_index[r as usize] = j as u32;
    }
    ctx.charge_step(m as u64);
    (ruler_ids, ruler_index)
}

/// Weighted-Wyllie doubling over the contracted list, on packed
/// `(rank << 32) | successor` words — the rank twin of the cycle-min
/// `(best, jump)` representation: one gather per element per round instead
/// of two.  Converged rounds are charged without being executed.  Charges
/// two steps of `m` per round (the two passes of the unpacked baseline), so
/// the packed layout is charge-identical to the two-array loop of
/// [`list_rank_ruling_set_into`].
pub(crate) fn contracted_rank_doubling(ctx: &Ctx, state: &mut [u64]) {
    let m = state.len();
    let ws = ctx.workspace();
    let mut next_state = ws.take_u64(m);
    let rounds = sfcp_pram::ceil_log2(m.max(2)) + 1;
    for r in 0..rounds {
        {
            let state_ref: &[u64] = state;
            ctx.par_update(&mut next_state, |j, s| {
                let cur = state_ref[j];
                let via = state_ref[(cur & u64::from(u32::MAX)) as usize];
                *s = (((cur >> 32) + (via >> 32)) << 32) | (via & u64::from(u32::MAX));
            });
        }
        // The unpacked baseline advances rank and successor as two separate
        // parallel passes; the fused packed pass above charged one of them.
        ctx.charge_step(m as u64);
        state.swap_with_slice(&mut next_state);
        if *state == **next_state {
            // Converged: every successor is a terminal (rank 0, stable), so
            // further rounds are identity passes — charge them without
            // executing (see DESIGN.md "Charge discipline").
            let skipped = (rounds - 1 - r) as u64;
            ctx.charge_work(2 * skipped * m as u64);
            ctx.charge_rounds(2 * skipped);
            break;
        }
    }
}

/// Sparse-ruling-set list ranking (work-efficient) — the `RulingSet`
/// engine's entry point.
#[must_use]
pub fn list_rank_ruling_set(ctx: &Ctx, next: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    list_rank_ruling_set_into(ctx, next, &mut out);
    out
}

/// [`list_rank_ruling_set`] writing into a reusable output buffer.  All
/// intermediates — ruler flags, per-node segment data, the contracted list —
/// are workspace checkouts, and segments are walked twice with O(1) memory
/// (measure, then re-walk and scatter) instead of collecting a per-segment
/// path vector.
pub fn list_rank_ruling_set_into(ctx: &Ctx, next: &[u32], out: &mut Vec<u32>) {
    let n = next.len();
    out.clear();
    if n == 0 {
        return;
    }
    if n <= TINY_LIST_MAX {
        // Tiny inputs: pointer jumping is already cheap.
        list_rank_wyllie_into(ctx, next, out);
        return;
    }
    for (i, &s) in next.iter().enumerate() {
        assert!((s as usize) < n, "next[{i}] = {s} out of range");
    }

    let k = segment_target(n);
    let ws = ctx.workspace();
    let (is_ruler, flagged_next) = sample_chain_rulers(ctx, next, k);
    let (ruler_ids, ruler_index) = index_rulers(ctx, &is_ruler, true);
    let m = ruler_ids.len();

    // One parallel pass over segments: starting from every ruler, walk until
    // the next ruler (or a terminal, which is itself a ruler).  Each segment
    // is walked twice with O(1) memory: a first walk measures the hop count
    // and finds the end ruler, a second walk scatters, for every node before
    // the end, (a) its hop distance to the segment end and (b) which ruler
    // that end is.  Writes are disjoint because each node lies in exactly one
    // segment.  No fill is needed: every non-ruler node is interior to
    // exactly one segment and therefore written, and only non-ruler slots
    // are read back.
    let mut local_dist = ws.take_u32(n);
    let mut end_ruler = ws.take_u32(n);
    let mut seg_next = ws.take_u32(m);
    let mut seg_len = ws.take_u32(m);
    {
        let dist_ptr = SendPtr(local_dist.as_mut_ptr());
        let end_ptr = SendPtr(end_ruler.as_mut_ptr());
        let next_ptr = SendPtr(seg_next.as_mut_ptr());
        let len_ptr = SendPtr(seg_len.as_mut_ptr());
        let (ruler_ids, ruler_index, flagged_next) = (&ruler_ids, &ruler_index, &flagged_next);
        ctx.par_for_idx(m, |j| {
            let start = ruler_ids[j] as usize;
            // Walk 1: measure the segment (hops from start to its end ruler).
            // Each hop is one gather of the packed successor-plus-flag word.
            let mut len = 0u32;
            let mut cur = start;
            let mut word = flagged_next[cur];
            loop {
                let nxt = (word & FLAGGED_LOW) as usize;
                if nxt == cur {
                    break; // terminal: segment ends here
                }
                len += 1;
                cur = nxt;
                word = flagged_next[cur];
                if word >> 31 == 1 {
                    break;
                }
            }
            let end = ruler_index[cur];
            // Walk 2: scatter distances for the nodes strictly before the
            // segment end (including the starting ruler itself); revisits the
            // nodes walk 1 just pulled into cache.
            let (dp, ep, np, lp) = (dist_ptr, end_ptr, next_ptr, len_ptr);
            let mut cur = start;
            for steps_from_start in 0..len {
                // Safety: disjoint segments → each node written at most once.
                unsafe {
                    *dp.0.add(cur) = len - steps_from_start;
                    *ep.0.add(cur) = end;
                }
                cur = (flagged_next[cur] & FLAGGED_LOW) as usize;
            }
            // Safety: one writer per ruler j.
            unsafe {
                *np.0.add(j) = end;
                *lp.0.add(j) = len;
            }
        });
    }
    ctx.charge_work(n as u64);

    // Contracted list over rulers; rank it with weighted Wyllie
    // (m ≈ n / k elements, weight of ruler j = its segment length in hops;
    // ranks are bounded by the list length, so u32 words suffice).  The
    // round-local arrays ping-pong through the workspace; the measured
    // segment successors double as the initial contracted list.
    let mut succ = seg_next;
    let mut rank = ws.take_u32(m);
    for j in 0..m {
        rank[j] = if succ[j] as usize == j { 0 } else { seg_len[j] };
    }
    {
        let mut next_rank = ws.take_u32(m);
        let mut next_succ = ws.take_u32(m);
        let rounds = sfcp_pram::ceil_log2(m.max(2)) + 1;
        for r in 0..rounds {
            {
                let rank_ref = &rank;
                let succ_ref = &succ;
                ctx.par_update(&mut next_rank, |j, r| {
                    *r = rank_ref[j] + rank_ref[succ_ref[j] as usize];
                });
                let succ_ref = &succ;
                ctx.par_update(&mut next_succ, |j, s| *s = succ_ref[succ_ref[j] as usize]);
            }
            std::mem::swap(&mut *rank, &mut *next_rank);
            std::mem::swap(&mut *succ, &mut *next_succ);
            if *next_succ == *succ {
                // Converged (terminal weights are 0): charge the skipped
                // rounds without executing them.
                let skipped = (rounds - 1 - r) as u64;
                ctx.charge_work(2 * skipped * m as u64);
                ctx.charge_rounds(2 * skipped);
                break;
            }
        }
    }
    let contracted_rank_in_hops = rank;

    // Final rank: a ruler takes its contracted rank; an interior node adds
    // its local distance to the rank of its segment's end ruler.
    out.resize(n, 0);
    {
        let (is_ruler, ruler_index) = (&is_ruler, &ruler_index);
        let (local_dist, end_ruler) = (&local_dist, &end_ruler);
        let contracted_rank_in_hops = &contracted_rank_in_hops;
        ctx.par_update(out, |i, r| {
            *r = if is_ruler[i] == 1 {
                contracted_rank_in_hops[ruler_index[i] as usize]
            } else {
                local_dist[i] + contracted_rank_in_hops[end_ruler[i] as usize]
            };
        });
    }
}

// ---------------------------------------------------------------------------
// Cycle minima by contraction (the execution path of
// `jump::permutation_cycle_min` for large permutations).
// ---------------------------------------------------------------------------

/// Cycle minima of a permutation by sparse-ruling-set contraction.
///
/// Sample ~`n / k` rulers deterministically, walk each inter-ruler segment
/// once recording the segment minimum and the end ruler of every element,
/// min-jump the packed `(best, jump)` contracted list, and expand.  Cycles
/// that received no sampled ruler are swept sequentially at the end (w.h.p.
/// a vanishing fraction; the sweep is linear in the number of uncovered
/// elements).  `engine` selects the physical segment-walk layout: sequential
/// per-segment walks (`RulingSet`) or wavefront batches (`CacheBucket`);
/// `PointerJump` never reaches this function.
///
/// Charge discipline: the model cost of this routine is pinned to the
/// documented pointer-jumping substitution — init plus two steps of `n`
/// operations for each of `ceil_log2(n) + 1` rounds, exactly what the
/// jumping path of `permutation_cycle_min_into` charges after validation.
/// The contraction's own (smaller) pass charges are counted and the
/// remainder is topped up, so tracked work/depth is independent of which
/// execution path (and which engine) ran — see DESIGN.md "Charge
/// discipline".
pub(crate) fn cycle_min_contraction_into(
    ctx: &Ctx,
    succ: &[u32],
    out: &mut Vec<u32>,
    engine: RankEngine,
) {
    let n = succ.len();
    let ws = ctx.workspace();
    let before = ctx.stats();
    let rounds = (sfcp_pram::ceil_log2(n) + 1) as u64;
    let target_work = (n as u64) * (1 + 2 * rounds);
    let target_rounds = 1 + 2 * rounds;

    let k = segment_target(n);
    // Rulers: fixed points (their cycle is just {i}) plus a deterministic
    // 1/k hash sample.  A cycle may end up with no ruler at all — handled by
    // the final sequential sweep.
    let mut is_ruler = ws.take_u8(n);
    ctx.par_update(&mut is_ruler, |i, r| {
        *r = u8::from(succ[i] as usize == i || (hash_u64(i as u64) as usize).is_multiple_of(k));
    });
    let (ruler_ids, ruler_index) = index_rulers(ctx, &is_ruler, false);
    let m = ruler_ids.len();

    // Walk every segment once: record the end ruler of each element and the
    // segment minimum, building the contracted (min, next-ruler) state
    // directly in packed form.  `end_ruler[i] == u32::MAX` afterwards marks
    // elements on ruler-free cycles.
    let mut end_ruler = ws.take_u32(n);
    end_ruler.fill(u32::MAX);
    let mut state = ws.take_u64(m);
    // The wavefront walk needs the ruler flag packed next to the successor
    // (one gather per hop); the packing pass is uncharged glue under the
    // pinned model, like the packed sort engine's fill passes.  Successors
    // past 2^31 cannot carry the flag bit — fall back to the sequential
    // walk there.
    let bucketed = engine == RankEngine::CacheBucket && n < (1 << 31);
    if bucketed {
        let mut flagged = ws.take_u32(n);
        {
            let is_ruler = &is_ruler;
            crate::intsort::fill_items_uncharged(ctx, &mut flagged, |i| {
                succ[i] | (u32::from(is_ruler[i]) << 31)
            });
        }
        bucket::cycle_walk_bucketed(
            ctx,
            &flagged,
            &ruler_ids,
            &ruler_index,
            &mut end_ruler,
            &mut state,
        );
        ctx.charge_step(m as u64);
    } else {
        let end_ptr = SendPtr(end_ruler.as_mut_ptr());
        let state_ptr = SendPtr(state.as_mut_ptr());
        let (ruler_ids, ruler_index, is_ruler) = (&ruler_ids, &ruler_index, &is_ruler);
        ctx.par_for_idx(m, |j| {
            let start = ruler_ids[j] as usize;
            let mut min = start as u32;
            let mut cur = succ[start] as usize;
            let (ep, sp) = (end_ptr, state_ptr);
            while cur != start && is_ruler[cur] == 0 {
                // Safety: each element is interior to exactly one segment.
                unsafe {
                    *ep.0.add(cur) = j as u32;
                }
                min = min.min(cur as u32);
                cur = succ[cur] as usize;
            }
            // Wrapped all the way around: this cycle's only ruler is j.
            let next_ruler = if cur == start {
                j as u32
            } else {
                ruler_index[cur]
            };
            // Safety: one writer per ruler.
            unsafe {
                *ep.0.add(start) = j as u32;
                *sp.0.add(j) = (u64::from(min) << 32) | u64::from(next_ruler);
            }
        });
    }

    // Packed min-jumping over the contracted list (m ≈ n / k elements, so
    // the state stays cache-resident); stops as soon as the minima
    // stabilize.
    let mut next_state = ws.take_u64(m);
    for _ in 0..sfcp_pram::ceil_log2(m.max(2)) + 1 {
        {
            let state_ref = &state;
            ctx.par_update(&mut next_state, |j, s| {
                let cur = state_ref[j];
                let via = state_ref[(cur & u64::from(u32::MAX)) as usize];
                let best = (cur >> 32).min(via >> 32);
                *s = (best << 32) | (via & u64::from(u32::MAX));
            });
        }
        let stable = state
            .iter()
            .zip(next_state.iter())
            .all(|(a, b)| a >> 32 == b >> 32);
        std::mem::swap(&mut *state, &mut *next_state);
        if stable {
            break;
        }
    }

    // Expand: every covered element takes its end ruler's cycle minimum.
    out.resize(n, 0);
    {
        let (end_ruler, state) = (&end_ruler, &state);
        ctx.par_update(out, |i, o| {
            let e = end_ruler[i];
            *o = if e == u32::MAX {
                u32::MAX // ruler-free cycle, resolved below
            } else {
                (state[e as usize] >> 32) as u32
            };
        });
    }

    // Sequential sweep over ruler-free cycles (each walked twice: minimum,
    // then assignment).
    for i in 0..n {
        if end_ruler[i] != u32::MAX {
            continue;
        }
        let mut min = i as u32;
        let mut cur = succ[i] as usize;
        while cur != i {
            min = min.min(cur as u32);
            cur = succ[cur] as usize;
        }
        out[i] = min;
        end_ruler[i] = u32::MAX - 1;
        let mut cur = succ[i] as usize;
        while cur != i {
            out[cur] = min;
            end_ruler[cur] = u32::MAX - 1;
            cur = succ[cur] as usize;
        }
    }

    // Top up to the pinned jumping-path charges.
    let consumed = ctx.stats();
    let (dw, dr) = (consumed.work - before.work, consumed.rounds - before.rounds);
    debug_assert!(
        dw <= target_work && dr <= target_rounds,
        "contraction consumed more than the pinned jumping budget ({dw}/{target_work} work, {dr}/{target_rounds} rounds)"
    );
    ctx.charge_work(target_work.saturating_sub(dw));
    ctx.charge_rounds(target_rounds.saturating_sub(dr));
}

#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

//! The `RulingSet` engine and the shared sparse-ruling-set machinery.
//!
//! Deterministically sample ~`n / k` *rulers*, walk the short segments
//! between rulers sequentially (in parallel over segments), solve the
//! contracted problem over the rulers with packed-word doubling, and expand.
//! Two problems run on this machinery:
//!
//! * **list ranking** ([`list_rank_ruling_set_into`]): the contracted list is
//!   ranked with weighted Wyllie (weight of a ruler = its segment length);
//! * **cycle minima** ([`cycle_min_contraction_into`], the execution path of
//!   `jump::permutation_cycle_min` for large permutations): the contracted
//!   cycle is min-jumped over packed `(best, jump)` words.
//!
//! The working representation of both is the **flagged successor array**:
//! `flagged[i] = next[i] | RULER_FLAG·(i is a ruler)`, so every walk hop
//! costs a single gather.  Callers that construct their successor lists
//! anyway — the fused Euler ranking of `decompose` — can emit the flags in
//! the same pass ([`crate::listrank::list_rank_flagged_into`]), which
//! deletes the `has_pred` sampling pass entirely; the skipped passes are
//! charged without being executed, so the flagged entry points are
//! charge-identical to the sampling ones (see DESIGN.md, "Charge
//! discipline").
//!
//! The sampling, ruler indexing, and packed contracted-doubling kernels are
//! shared with the `CacheBucket` engine (`bucket.rs`), which replaces only
//! the physical segment-walk layout; the two engines charge bit-identical
//! work/depth (regression-tested).

use sfcp_pram::fxhash::hash_u64;
use sfcp_pram::{Ctx, RankEngine, Scratch};

use super::bucket;
use super::wyllie::list_rank_wyllie_into;

/// Below this size pointer jumping beats the ruling-set machinery outright;
/// both work-efficient engines fall back to it (charging the Wyllie model).
pub(crate) const TINY_LIST_MAX: usize = 1024;

/// Low 31 bits of a packed successor-plus-ruler-flag word.
pub(crate) const FLAGGED_LOW: u32 = (1 << 31) - 1;

/// Segment length target ~`log n`: keeps the expected work linear while the
/// per-segment walks stay short.
pub(crate) fn segment_target(n: usize) -> usize {
    (sfcp_pram::ceil_log2(n) as usize).max(2) * 2
}

/// Whether slot `i` of a `domain_len`-element successor array is in the
/// deterministic `1/k` hash sample the ruling-set engines use (`k` is the
/// `segment_target` of the domain — about `2·log2 n`).  Heads and terminals are rulers
/// unconditionally, *in addition* to this sample.
///
/// The sample is a threshold compare against the hash (`hash < 2^64 / k`)
/// rather than a divisibility test: the one division has loop-invariant
/// operands, so it hoists out of the per-element loops that call this —
/// a hardware divide per element would otherwise dominate the flag
/// construction passes.
#[inline]
#[must_use]
pub fn is_sampled_ruler(i: usize, domain_len: usize) -> bool {
    hash_u64(i as u64) < sample_threshold(segment_target(domain_len))
}

/// The hash threshold of a `1/k` sample.
#[inline]
pub(crate) fn sample_threshold(k: usize) -> u64 {
    u64::MAX / k as u64
}

/// Deterministic chain-ruler sampling shared by the `RulingSet` and
/// `CacheBucket` engines: element `i` is a ruler iff its hash falls in a
/// `1/k` slice, or it is a head (no predecessor — the prefix of a list
/// before the first sampled ruler would never be walked otherwise), or it is
/// a terminal.  The second pass packs the successor and the ruler flag into
/// one word (`next[i] | RULER_FLAG`), so the segment walks cost a single
/// gather per hop.
///
/// Returns the flagged successor array.  Callers that already know the
/// heads of their lists skip this entirely and build the flagged array
/// themselves (the `_flagged` entry points charge these two passes without
/// executing them).
pub(crate) fn sample_chain_rulers<'c>(ctx: &'c Ctx, next: &[u32], k: usize) -> Scratch<'c, u32> {
    let n = next.len();
    assert!(
        n < (1 << 31),
        "ruling-set list ranking packs successors and ruler flags into u32 words"
    );
    let ws = ctx.workspace();
    let mut has_pred = ws.take_u8(n);
    has_pred.fill(0);
    for (i, &s) in next.iter().enumerate() {
        if s as usize != i {
            has_pred[s as usize] = 1;
        }
    }
    ctx.charge_step(n as u64);

    let mut flagged_next = ws.take_u32(n);
    {
        let has_pred = &has_pred;
        let threshold = sample_threshold(k);
        ctx.par_update(&mut flagged_next, |i, w| {
            let ruler = has_pred[i] == 0 || next[i] as usize == i || hash_u64(i as u64) < threshold;
            *w = next[i] | (u32::from(ruler) << 31);
        });
    }
    flagged_next
}

/// Charge (without executing) the two sampling passes of
/// [`sample_chain_rulers`] — the flagged entry points' model top-up.
pub(crate) fn charge_sampling_model(ctx: &Ctx, n: usize) {
    ctx.charge_step(n as u64); // the has_pred predecessor pass
    ctx.charge_step(n as u64); // the ruler-flag packing pass
}

/// Compact the rulers of a flagged successor array and invert the
/// numbering: returns `(ruler_ids, ruler_index)` with
/// `ruler_index[ruler_ids[j]] == j`.  Only ruler slots of `ruler_index` are
/// written (and only those are read back), unless `fill_unset` asks for a
/// `u32::MAX` fill of the rest.
pub(crate) fn index_rulers<'c, F>(
    ctx: &'c Ctx,
    n: usize,
    is_ruler: F,
    fill_unset: bool,
) -> (Scratch<'c, u32>, Scratch<'c, u32>)
where
    F: Fn(usize) -> bool + Sync + Send,
{
    let ws = ctx.workspace();
    let mut ruler_ids = ws.take_u32(0);
    crate::compact::compact_indices_into(ctx, n, is_ruler, &mut ruler_ids);
    let m = ruler_ids.len();
    let mut ruler_index = ws.take_u32(n);
    if fill_unset {
        ruler_index.fill(u32::MAX);
    }
    for (j, &r) in ruler_ids.iter().enumerate() {
        ruler_index[r as usize] = j as u32;
    }
    ctx.charge_step(m as u64);
    (ruler_ids, ruler_index)
}

/// Weighted-Wyllie doubling over the contracted list, on packed
/// `(rank << 32) | successor` words — the rank twin of the cycle-min
/// `(best, jump)` representation: one gather per element per round instead
/// of two.  Converged rounds are charged without being executed.  Charges
/// two steps of `m` per round (the two passes of the unpacked baseline), so
/// the packed layout is charge-identical to the two-array loop of
/// [`list_rank_ruling_set_into`].
pub(crate) fn contracted_rank_doubling(ctx: &Ctx, state: &mut [u64]) {
    let m = state.len();
    let ws = ctx.workspace();
    let mut next_state = ws.take_u64(m);
    let rounds = sfcp_pram::ceil_log2(m.max(2)) + 1;
    for r in 0..rounds {
        {
            let state_ref: &[u64] = state;
            ctx.par_update(&mut next_state, |j, s| {
                let cur = state_ref[j];
                let via = state_ref[(cur & u64::from(u32::MAX)) as usize];
                *s = (((cur >> 32) + (via >> 32)) << 32) | (via & u64::from(u32::MAX));
            });
        }
        // The unpacked baseline advances rank and successor as two separate
        // parallel passes; the fused packed pass above charged one of them.
        ctx.charge_step(m as u64);
        state.swap_with_slice(&mut next_state);
        if *state == **next_state {
            // Converged: every successor is a terminal (rank 0, stable), so
            // further rounds are identity passes — charge them without
            // executing (see DESIGN.md "Charge discipline").
            let skipped = (rounds - 1 - r) as u64;
            ctx.charge_work(2 * skipped * m as u64);
            ctx.charge_rounds(2 * skipped);
            break;
        }
    }
}

/// Sparse-ruling-set list ranking (work-efficient) — the `RulingSet`
/// engine's entry point.
#[must_use]
pub fn list_rank_ruling_set(ctx: &Ctx, next: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    list_rank_ruling_set_into(ctx, next, &mut out);
    out
}

/// [`list_rank_ruling_set`] writing into a reusable output buffer.  All
/// intermediates — the flagged successor words, per-node segment data, the
/// contracted list — are workspace checkouts, and segments are walked twice
/// with O(1) memory (measure, then re-walk and scatter) instead of
/// collecting a per-segment path vector.
pub fn list_rank_ruling_set_into(ctx: &Ctx, next: &[u32], out: &mut Vec<u32>) {
    let n = next.len();
    out.clear();
    if n == 0 {
        return;
    }
    if n <= TINY_LIST_MAX {
        // Tiny inputs: pointer jumping is already cheap.
        list_rank_wyllie_into(ctx, next, out);
        return;
    }
    for (i, &s) in next.iter().enumerate() {
        assert!((s as usize) < n, "next[{i}] = {s} out of range");
    }
    let flagged_next = sample_chain_rulers(ctx, next, segment_target(n));
    ruling_set_rank_core(ctx, &flagged_next, out);
}

/// [`list_rank_ruling_set_into`] over a caller-built flagged successor
/// array (see [`crate::listrank::list_rank_flagged_into`] for the
/// contract); charges the skipped sampling passes so the two entry points
/// stay charge-identical.
pub(crate) fn list_rank_ruling_set_flagged_into(ctx: &Ctx, flagged: &[u32], out: &mut Vec<u32>) {
    charge_sampling_model(ctx, flagged.len());
    ruling_set_rank_core(ctx, flagged, out);
}

/// The `RulingSet` ranking body over a flagged successor array.
fn ruling_set_rank_core(ctx: &Ctx, flagged_next: &[u32], out: &mut Vec<u32>) {
    let n = flagged_next.len();
    let ws = ctx.workspace();
    let (ruler_ids, ruler_index) = {
        let flagged_next = &flagged_next;
        index_rulers(ctx, n, |i| flagged_next[i] >> 31 == 1, true)
    };
    let m = ruler_ids.len();

    // One parallel pass over segments: starting from every ruler, walk until
    // the next ruler (or a terminal, which is itself a ruler).  Each segment
    // is walked twice with O(1) memory: a first walk measures the hop count
    // and finds the end ruler, a second walk scatters, for every node before
    // the end, (a) its hop distance to the segment end and (b) which ruler
    // that end is.  Writes are disjoint because each node lies in exactly one
    // segment.  No fill is needed: every non-ruler node is interior to
    // exactly one segment and therefore written, and only non-ruler slots
    // are read back.
    let mut local_dist = ws.take_u32(n);
    let mut end_ruler = ws.take_u32(n);
    let mut seg_next = ws.take_u32(m);
    let mut seg_len = ws.take_u32(m);
    {
        let dist_ptr = SendPtr(local_dist.as_mut_ptr());
        let end_ptr = SendPtr(end_ruler.as_mut_ptr());
        let next_ptr = SendPtr(seg_next.as_mut_ptr());
        let len_ptr = SendPtr(seg_len.as_mut_ptr());
        let (ruler_ids, ruler_index) = (&ruler_ids, &ruler_index);
        let flagged_next = &flagged_next;
        ctx.par_for_idx(m, |j| {
            let start = ruler_ids[j] as usize;
            // Walk 1: measure the segment (hops from start to its end ruler).
            // Each hop is one gather of the packed successor-plus-flag word.
            let mut len = 0u32;
            let mut cur = start;
            let mut word = flagged_next[cur];
            loop {
                let nxt = (word & FLAGGED_LOW) as usize;
                if nxt == cur {
                    break; // terminal: segment ends here
                }
                len += 1;
                cur = nxt;
                word = flagged_next[cur];
                if word >> 31 == 1 {
                    break;
                }
            }
            let end = ruler_index[cur];
            // Walk 2: scatter distances for the nodes strictly before the
            // segment end (including the starting ruler itself); revisits the
            // nodes walk 1 just pulled into cache.
            let (dp, ep, np, lp) = (dist_ptr, end_ptr, next_ptr, len_ptr);
            let mut cur = start;
            for steps_from_start in 0..len {
                // SAFETY: disjoint segments → each node written at most once.
                unsafe {
                    *dp.0.add(cur) = len - steps_from_start;
                    *ep.0.add(cur) = end;
                }
                cur = (flagged_next[cur] & FLAGGED_LOW) as usize;
            }
            // SAFETY: one writer per ruler j.
            unsafe {
                *np.0.add(j) = end;
                *lp.0.add(j) = len;
            }
        });
    }
    ctx.charge_work(n as u64);

    // Contracted list over rulers; rank it with weighted Wyllie
    // (m ≈ n / k elements, weight of ruler j = its segment length in hops;
    // ranks are bounded by the list length, so u32 words suffice).  The
    // round-local arrays ping-pong through the workspace; the measured
    // segment successors double as the initial contracted list.
    let mut succ = seg_next;
    let mut rank = ws.take_u32(m);
    for j in 0..m {
        rank[j] = if succ[j] as usize == j { 0 } else { seg_len[j] };
    }
    {
        let mut next_rank = ws.take_u32(m);
        let mut next_succ = ws.take_u32(m);
        let rounds = sfcp_pram::ceil_log2(m.max(2)) + 1;
        for r in 0..rounds {
            {
                let rank_ref = &rank;
                let succ_ref = &succ;
                ctx.par_update(&mut next_rank, |j, r| {
                    *r = rank_ref[j] + rank_ref[succ_ref[j] as usize];
                });
                let succ_ref = &succ;
                ctx.par_update(&mut next_succ, |j, s| *s = succ_ref[succ_ref[j] as usize]);
            }
            std::mem::swap(&mut *rank, &mut *next_rank);
            std::mem::swap(&mut *succ, &mut *next_succ);
            if *next_succ == *succ {
                // Converged (terminal weights are 0): charge the skipped
                // rounds without executing them.
                let skipped = (rounds - 1 - r) as u64;
                ctx.charge_work(2 * skipped * m as u64);
                ctx.charge_rounds(2 * skipped);
                break;
            }
        }
    }
    let contracted_rank_in_hops = rank;

    // Final rank: a ruler takes its contracted rank; an interior node adds
    // its local distance to the rank of its segment's end ruler.  Ruler-ness
    // is read off the flag bit — no separate flag array exists.
    out.resize(n, 0);
    {
        let (flagged_next, ruler_index) = (&flagged_next, &ruler_index);
        let (local_dist, end_ruler) = (&local_dist, &end_ruler);
        let contracted_rank_in_hops = &contracted_rank_in_hops;
        ctx.par_update(out, |i, r| {
            *r = if flagged_next[i] >> 31 == 1 {
                contracted_rank_in_hops[ruler_index[i] as usize]
            } else {
                local_dist[i] + contracted_rank_in_hops[end_ruler[i] as usize]
            };
        });
    }
}

// ---------------------------------------------------------------------------
// Cycle minima by contraction (the execution path of
// `jump::permutation_cycle_min` for large permutations).
// ---------------------------------------------------------------------------

/// Cycle minima of a permutation by sparse-ruling-set contraction.
///
/// Sample ~`n / k` rulers deterministically, walk each inter-ruler segment
/// once recording the segment minimum and the end ruler of every element,
/// min-jump the packed `(best, jump)` contracted list, and expand.  Cycles
/// that received no sampled ruler are swept sequentially at the end (w.h.p.
/// a vanishing fraction; the sweep is linear in the number of uncovered
/// elements).  `engine` selects the physical segment-walk layout: sequential
/// per-segment walks (`RulingSet`) or wavefront batches (`CacheBucket`);
/// `PointerJump` never reaches this function.
///
/// Charge discipline: the model cost of this routine is pinned to the
/// documented pointer-jumping substitution — init plus two steps of `n`
/// operations for each of `ceil_log2(n) + 1` rounds, exactly what the
/// jumping path of `permutation_cycle_min_into` charges after validation.
/// The contraction's own (smaller) pass charges are counted and the
/// remainder is topped up, so tracked work/depth is independent of which
/// execution path (and which engine) ran — see DESIGN.md "Charge
/// discipline".
pub(crate) fn cycle_min_contraction_into(
    ctx: &Ctx,
    succ: &[u32],
    out: &mut Vec<u32>,
    engine: RankEngine,
) {
    let n = succ.len();
    assert!(
        n < (1 << 31),
        "the cycle-min contraction packs successors and ruler flags into u32 words"
    );
    let ws = ctx.workspace();
    let k = segment_target(n);
    // Rulers: fixed points (their cycle is just {i}) plus a deterministic
    // 1/k hash sample, packed next to the successor so every walk hop costs
    // a single gather.  A cycle may end up with no ruler at all — handled by
    // the final sequential sweep.
    let mut flagged = ws.take_u32(n);
    let threshold = sample_threshold(k);
    ctx.par_update(&mut flagged, |i, w| {
        let ruler = succ[i] as usize == i || hash_u64(i as u64) < threshold;
        *w = succ[i] | (u32::from(ruler) << 31);
    });
    cycle_min_contraction_flagged_core(ctx, &flagged, out, engine, 1);
}

/// The contraction body over a caller-built flagged successor permutation
/// (see `jump::permutation_cycle_min_flagged_into`).  `charged_flag_passes`
/// counts how many rounds of `n` the caller's flag construction already
/// charged inside the pinned budget (the sampling entry charges one).
pub(crate) fn cycle_min_contraction_flagged_core(
    ctx: &Ctx,
    flagged: &[u32],
    out: &mut Vec<u32>,
    engine: RankEngine,
    charged_flag_passes: u64,
) {
    let n = flagged.len();
    let ws = ctx.workspace();
    let before = ctx.stats();
    let rounds = (sfcp_pram::ceil_log2(n) + 1) as u64;
    // The pinned model budget (init plus two steps of `n` per round, the
    // jumping path's post-validation cost), minus whatever flag-construction
    // passes the caller already charged against it — the sampling entry
    // charges one round of `n`, the flagged entries none (their flags ride
    // along in passes charged elsewhere).
    let target_work = (n as u64) * (1 + 2 * rounds - charged_flag_passes);
    let target_rounds = 1 + 2 * rounds - charged_flag_passes;

    let (ruler_ids, ruler_index) = {
        let flagged = &flagged;
        index_rulers(ctx, n, |i| flagged[i] >> 31 == 1, false)
    };
    let m = ruler_ids.len();

    // Walk every segment once: record the end ruler of each element and the
    // segment minimum, building the contracted (min, next-ruler) state
    // directly in packed form.  `end_ruler[i] == u32::MAX` afterwards marks
    // elements on ruler-free cycles.
    let mut end_ruler = ws.take_u32(n);
    end_ruler.fill(u32::MAX);
    let mut state = ws.take_u64(m);
    if engine == RankEngine::CacheBucket {
        bucket::cycle_walk_bucketed(
            ctx,
            flagged,
            &ruler_ids,
            &ruler_index,
            &mut end_ruler,
            &mut state,
        );
        ctx.charge_step(m as u64);
    } else {
        let end_ptr = SendPtr(end_ruler.as_mut_ptr());
        let state_ptr = SendPtr(state.as_mut_ptr());
        let (ruler_ids, ruler_index, flagged) = (&ruler_ids, &ruler_index, &flagged);
        ctx.par_for_idx(m, |j| {
            let start = ruler_ids[j] as usize;
            let mut min = start as u32;
            let mut cur = (flagged[start] & FLAGGED_LOW) as usize;
            let (ep, sp) = (end_ptr, state_ptr);
            while cur != start && flagged[cur] >> 31 == 0 {
                // SAFETY: each element is interior to exactly one segment.
                unsafe {
                    *ep.0.add(cur) = j as u32;
                }
                min = min.min(cur as u32);
                cur = (flagged[cur] & FLAGGED_LOW) as usize;
            }
            // Wrapped all the way around: this cycle's only ruler is j.
            let next_ruler = if cur == start {
                j as u32
            } else {
                ruler_index[cur]
            };
            // SAFETY: one writer per ruler.
            unsafe {
                *ep.0.add(start) = j as u32;
                *sp.0.add(j) = (u64::from(min) << 32) | u64::from(next_ruler);
            }
        });
    }

    // Packed min-jumping over the contracted list (m ≈ n / k elements, so
    // the state stays cache-resident); stops as soon as the minima
    // stabilize.
    let mut next_state = ws.take_u64(m);
    for _ in 0..sfcp_pram::ceil_log2(m.max(2)) + 1 {
        {
            let state_ref = &state;
            ctx.par_update(&mut next_state, |j, s| {
                let cur = state_ref[j];
                let via = state_ref[(cur & u64::from(u32::MAX)) as usize];
                let best = (cur >> 32).min(via >> 32);
                *s = (best << 32) | (via & u64::from(u32::MAX));
            });
        }
        let stable = state
            .iter()
            .zip(next_state.iter())
            .all(|(a, b)| a >> 32 == b >> 32);
        std::mem::swap(&mut *state, &mut *next_state);
        if stable {
            break;
        }
    }

    // Expand: every covered element takes its end ruler's cycle minimum.
    out.resize(n, 0);
    {
        let (end_ruler, state) = (&end_ruler, &state);
        ctx.par_update(out, |i, o| {
            let e = end_ruler[i];
            *o = if e == u32::MAX {
                u32::MAX // ruler-free cycle, resolved below
            } else {
                (state[e as usize] >> 32) as u32
            };
        });
    }

    // Sequential sweep over ruler-free cycles (each walked twice: minimum,
    // then assignment).
    for i in 0..n {
        if end_ruler[i] != u32::MAX {
            continue;
        }
        let mut min = i as u32;
        let mut cur = (flagged[i] & FLAGGED_LOW) as usize;
        while cur != i {
            min = min.min(cur as u32);
            cur = (flagged[cur] & FLAGGED_LOW) as usize;
        }
        out[i] = min;
        end_ruler[i] = u32::MAX - 1;
        let mut cur = (flagged[i] & FLAGGED_LOW) as usize;
        while cur != i {
            out[cur] = min;
            end_ruler[cur] = u32::MAX - 1;
            cur = (flagged[cur] & FLAGGED_LOW) as usize;
        }
    }

    // Top up to the pinned jumping-path charges.
    let consumed = ctx.stats();
    let (dw, dr) = (consumed.work - before.work, consumed.rounds - before.rounds);
    debug_assert!(
        dw <= target_work && dr <= target_rounds,
        "contraction consumed more than the pinned jumping budget ({dw}/{target_work} work, {dr}/{target_rounds} rounds)"
    );
    ctx.charge_work(target_work.saturating_sub(dw));
    ctx.charge_rounds(target_rounds.saturating_sub(dr));
}

#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
// SAFETY: `SendPtr` only smuggles a raw base pointer into parallel tasks
// whose writes target disjoint indices; every dereference site carries its
// own SAFETY argument for that disjointness, and the pointee buffer is
// borrowed for the whole parallel region, so it outlives every task.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` across tasks only copies the pointer value —
// no shared-reference method dereferences it, so aliased access to the
// pointee can never originate from the `Sync` impl itself.
unsafe impl<T> Sync for SendPtr<T> {}

//! The `CacheBucket` engine: ruling-set ranking with wavefront-batched
//! segment walks.
//!
//! The sequential walks of the `RulingSet` engine chase one pointer at a
//! time: every hop is a dependent gather into an array far larger than
//! cache, so each walk serialises on a full memory latency per hop.  The
//! segments themselves are *independent*, though — so this engine advances a
//! bucket of [`WAVE`] walks in lockstep.  Per sweep over the bucket, every
//! live walk issues one gather; the loads of different lanes do not depend
//! on each other, so the out-of-order core overlaps them and the traversal
//! streams at memory *bandwidth* instead of memory *latency* (measured ~8×
//! faster on the 2n-arc Euler rankings that dominate `decompose`).
//!
//! The bucket also changes what a walk records: instead of the two-pass
//! measure-then-scatter layout, one pass stores per interior node the packed
//! word `(steps from segment start) << 32 | (start ruler)`, and the final
//! rank falls out as `rank(start ruler) − steps` — the second walk is gone
//! entirely.  The per-node record stores go through the scatter engine
//! selected on the context ([`sfcp_pram::ScatterEngine`]): direct stores,
//! or write-combining tiles once the record array outgrows the LLC.
//! Charges are **bit-identical** to the `RulingSet` engine
//! (regression-tested): the walk pass charges the same round of `m` plus
//! `n` work, and the packed contracted doubling charges the two steps per
//! round of the unpacked loop.

use sfcp_pram::{Ctx, ScatterEngine};

use super::ruling::{
    charge_sampling_model, contracted_rank_doubling, index_rulers, sample_chain_rulers,
    segment_target, SendPtr, FLAGGED_LOW, TINY_LIST_MAX,
};
use super::wyllie::list_rank_wyllie_into;
use crate::scatter::{ScatterTiles, TileSink, TileValue};

/// Upper bound on walks advanced in lockstep per bucket, and the
/// compile-time size of the lane-state arrays.  The *runtime* lane count is
/// probed from the host's L1d via [`sfcp_pram::Topology::wavefront_lanes`]
/// (64 on the 48 KB-L1d reference host, i.e. exactly this bound): enough to
/// cover the memory latency × bandwidth product of one core; past ~64 the
/// lane state stops fitting comfortably in L1 and the refill bookkeeping
/// starts to show.  Lane count is physical geometry only — charges never
/// depend on it.
const WAVE: usize = 64;

/// Rulers handed to one wavefront task: coarse enough that the per-task
/// lane-state setup amortises, fine enough to load-balance across threads.
const WALKS_PER_TASK: usize = 4096;

/// How one wavefront task records its per-node words: straight stores or a
/// write-combining tile sink, both behind one inlined call.  The sink
/// variant carries its fill state inline (the size difference to the bare
/// pointer is expected and task-local).
#[allow(clippy::large_enum_variant)]
enum Recorder<'s, T: TileValue> {
    Direct(*mut T),
    Combining(TileSink<'s, T>),
}

impl<T: TileValue> Recorder<'_, T> {
    /// Record `val` at `idx` (indices are disjoint across all writers).
    #[inline]
    fn write(&mut self, idx: usize, val: T) {
        match self {
            // SAFETY: disjoint indices, in range by the caller's walk
            // invariants (the index was just bounds-checked as a gather).
            Recorder::Direct(p) => unsafe { *p.add(idx) = val },
            Recorder::Combining(sink) => sink.push(idx, val),
        }
    }

    /// Drain staged writes (no-op for direct stores).
    fn finish(&mut self) {
        if let Recorder::Combining(sink) = self {
            sink.flush();
        }
    }
}

/// Sparse-ruling-set list ranking with wavefront-batched walks — the
/// `CacheBucket` engine's entry point.
#[must_use]
pub fn list_rank_cache_bucket(ctx: &Ctx, next: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    list_rank_cache_bucket_into(ctx, next, &mut out);
    out
}

/// [`list_rank_cache_bucket`] writing into a reusable output buffer.
pub fn list_rank_cache_bucket_into(ctx: &Ctx, next: &[u32], out: &mut Vec<u32>) {
    let n = next.len();
    out.clear();
    if n == 0 {
        return;
    }
    if n <= TINY_LIST_MAX {
        // Tiny inputs: pointer jumping is already cheap (same fall-back —
        // and therefore the same charges — as the RulingSet engine).
        list_rank_wyllie_into(ctx, next, out);
        return;
    }
    for (i, &s) in next.iter().enumerate() {
        assert!((s as usize) < n, "next[{i}] = {s} out of range");
    }
    let flagged_next = sample_chain_rulers(ctx, next, segment_target(n));
    cache_bucket_rank_core(ctx, &flagged_next, out);
}

/// [`list_rank_cache_bucket_into`] over a caller-built flagged successor
/// array (see [`crate::listrank::list_rank_flagged_into`]); charges the
/// skipped sampling passes so the two entry points stay charge-identical.
pub(crate) fn list_rank_cache_bucket_flagged_into(ctx: &Ctx, flagged: &[u32], out: &mut Vec<u32>) {
    charge_sampling_model(ctx, flagged.len());
    cache_bucket_rank_core(ctx, flagged, out);
}

/// The `CacheBucket` ranking body over a flagged successor array.
fn cache_bucket_rank_core(ctx: &Ctx, flagged_next: &[u32], out: &mut Vec<u32>) {
    let n = flagged_next.len();
    let ws = ctx.workspace();
    let (ruler_ids, ruler_index) = {
        let flagged_next = &flagged_next;
        index_rulers(ctx, n, |i| flagged_next[i] >> 31 == 1, false)
    };
    let m = ruler_ids.len();

    // One wavefront pass over all segments.  No fill of `interior`: every
    // non-ruler node is interior to exactly one segment and therefore
    // written, and only non-ruler slots are read back.  Charged exactly like
    // the RulingSet walk: one round of `m` (the per-segment dispatch) plus
    // `n` work (one operation per hop).
    let mut interior = ws.take_u64(n);
    let mut state = ws.take_u64(m);
    chain_walk_bucketed(
        ctx,
        flagged_next,
        &ruler_ids,
        &ruler_index,
        &mut interior,
        &mut state,
    );
    ctx.charge_step(m as u64);
    ctx.charge_work(n as u64);

    // Contracted list over rulers, as packed (rank, jump) words; the walk
    // wrote the initial (segment length, end ruler) state directly.
    contracted_rank_doubling(ctx, &mut state);

    // Final rank: a ruler takes its contracted rank; an interior node is
    // `steps` hops past its segment's start ruler, so it ranks exactly
    // `steps` below that ruler.
    out.resize(n, 0);
    {
        let (flagged_next, ruler_index) = (&flagged_next, &ruler_index);
        let (state, interior) = (&state, &interior);
        ctx.par_update(out, |i, r| {
            *r = if flagged_next[i] >> 31 == 1 {
                (state[ruler_index[i] as usize] >> 32) as u32
            } else {
                let w = interior[i];
                (state[(w & u64::from(u32::MAX)) as usize] >> 32) as u32 - (w >> 32) as u32
            };
        });
    }
}

/// The wavefront chain walk: for every ruler `j`, walk to the next ruler (or
/// terminal), writing `(steps << 32) | j` at every interior node and the
/// packed `(segment length << 32) | end ruler` contracted state at `j`.
/// Uncharged — callers charge the documented walk cost explicitly.
pub(crate) fn chain_walk_bucketed(
    ctx: &Ctx,
    flagged_next: &[u32],
    ruler_ids: &[u32],
    ruler_index: &[u32],
    interior: &mut [u64],
    seg_state: &mut [u64],
) {
    let m = ruler_ids.len();
    let num_tasks = m.div_ceil(WALKS_PER_TASK).max(1);
    let wave = ctx.topology().wavefront_lanes().min(WAVE);
    let interior_ptr = SendPtr(interior.as_mut_ptr());
    let seg_ptr = SendPtr(seg_state.as_mut_ptr());
    let walk = |t: usize, mut rec: Recorder<u64>| {
        let lo = t * WALKS_PER_TASK;
        let hi = ((t + 1) * WALKS_PER_TASK).min(m);
        let sp = seg_ptr;
        let mut lane_j = [0u32; WAVE];
        let mut lane_cur = [0u32; WAVE];
        let mut lane_word = [0u32; WAVE];
        let mut lane_steps = [0u32; WAVE];
        let mut active = [false; WAVE];
        let lanes = wave.min(hi - lo);
        let mut fill = lo;
        let mut live = 0usize;
        for l in 0..lanes {
            let start = ruler_ids[fill] as usize;
            lane_j[l] = fill as u32;
            lane_cur[l] = start as u32;
            lane_word[l] = flagged_next[start];
            lane_steps[l] = 0;
            active[l] = true;
            fill += 1;
            live += 1;
        }
        while live > 0 {
            for l in 0..lanes {
                if !active[l] {
                    continue;
                }
                let cur = lane_cur[l] as usize;
                let nxt = (lane_word[l] & FLAGGED_LOW) as usize;
                let finished = if nxt == cur {
                    // The start ruler is a terminal: empty segment.
                    Some((lane_steps[l], ruler_index[cur]))
                } else {
                    // The one gather of this lane's sweep.
                    let w = flagged_next[nxt];
                    if w >> 31 == 1 {
                        Some((lane_steps[l] + 1, ruler_index[nxt]))
                    } else {
                        let steps = lane_steps[l] + 1;
                        // Each non-ruler node is interior to exactly one
                        // segment — one writer per slot.
                        rec.write(nxt, (u64::from(steps) << 32) | u64::from(lane_j[l]));
                        lane_cur[l] = nxt as u32;
                        lane_word[l] = w;
                        lane_steps[l] = steps;
                        None
                    }
                };
                if let Some((len, end)) = finished {
                    // SAFETY: one writer per ruler j.
                    unsafe {
                        *sp.0.add(lane_j[l] as usize) = (u64::from(len) << 32) | u64::from(end);
                    }
                    if fill < hi {
                        let start = ruler_ids[fill] as usize;
                        lane_j[l] = fill as u32;
                        lane_cur[l] = start as u32;
                        lane_word[l] = flagged_next[start];
                        lane_steps[l] = 0;
                        fill += 1;
                    } else {
                        active[l] = false;
                        live -= 1;
                    }
                }
            }
        }
        rec.finish();
    };
    match ctx.resolve_scatter("rank_chain_walk", std::mem::size_of_val(&*interior)) {
        ScatterEngine::Direct => {
            crate::intsort::for_each_block(ctx, num_tasks, |t| {
                let p = interior_ptr;
                walk(t, Recorder::Direct(p.0));
            });
        }
        ScatterEngine::Combining => {
            let tiles = ScatterTiles::new(ctx, interior.len(), num_tasks);
            crate::intsort::for_each_block(ctx, num_tasks, |t| {
                let p = interior_ptr;
                walk(t, Recorder::Combining(tiles.sink(t, p.0)));
            });
        }
        ScatterEngine::Auto => unreachable!("Auto resolves to an explicit engine"),
    }
}

/// The wavefront cycle walk of the cycle-min contraction: for every ruler
/// `j`, walk to the next ruler (or all the way around the cycle), writing
/// `j` into `end_ruler` at every covered element and the packed
/// `(segment minimum << 32) | next ruler` contracted state at `j`.
/// Uncharged — the cycle-min caller is topped up to its pinned model.
pub(crate) fn cycle_walk_bucketed(
    ctx: &Ctx,
    flagged_succ: &[u32],
    ruler_ids: &[u32],
    ruler_index: &[u32],
    end_ruler: &mut [u32],
    state: &mut [u64],
) {
    let m = ruler_ids.len();
    let num_tasks = m.div_ceil(WALKS_PER_TASK).max(1);
    let wave = ctx.topology().wavefront_lanes().min(WAVE);
    let end_ptr = SendPtr(end_ruler.as_mut_ptr());
    let state_ptr = SendPtr(state.as_mut_ptr());
    let walk = |t: usize, mut rec: Recorder<u32>| {
        let lo = t * WALKS_PER_TASK;
        let hi = ((t + 1) * WALKS_PER_TASK).min(m);
        let sp = state_ptr;
        let mut lane_j = [0u32; WAVE];
        let mut lane_start = [0u32; WAVE];
        let mut lane_cur = [0u32; WAVE];
        let mut lane_min = [0u32; WAVE];
        let mut active = [false; WAVE];
        let lanes = wave.min(hi - lo);
        let mut fill = lo;
        let mut live = 0usize;
        for l in 0..lanes {
            let start = ruler_ids[fill] as usize;
            lane_j[l] = fill as u32;
            lane_start[l] = start as u32;
            lane_cur[l] = flagged_succ[start] & FLAGGED_LOW;
            lane_min[l] = start as u32;
            active[l] = true;
            fill += 1;
            live += 1;
        }
        while live > 0 {
            for l in 0..lanes {
                if !active[l] {
                    continue;
                }
                let cur = lane_cur[l] as usize;
                let finished = if cur == lane_start[l] as usize {
                    // Wrapped all the way around: this cycle's only ruler.
                    Some((lane_min[l], lane_j[l]))
                } else {
                    // The one gather of this lane's sweep.
                    let w = flagged_succ[cur];
                    if w >> 31 == 1 {
                        Some((lane_min[l], ruler_index[cur]))
                    } else {
                        // Each element is interior to exactly one segment —
                        // one writer per slot.
                        rec.write(cur, lane_j[l]);
                        lane_min[l] = lane_min[l].min(cur as u32);
                        lane_cur[l] = w & FLAGGED_LOW;
                        None
                    }
                };
                if let Some((min, next_ruler)) = finished {
                    // The start ruler's own slot, plus the contracted state.
                    rec.write(lane_start[l] as usize, lane_j[l]);
                    // SAFETY: one writer per ruler j.
                    unsafe {
                        *sp.0.add(lane_j[l] as usize) =
                            (u64::from(min) << 32) | u64::from(next_ruler);
                    }
                    if fill < hi {
                        let start = ruler_ids[fill] as usize;
                        lane_j[l] = fill as u32;
                        lane_start[l] = start as u32;
                        lane_cur[l] = flagged_succ[start] & FLAGGED_LOW;
                        lane_min[l] = start as u32;
                        fill += 1;
                    } else {
                        active[l] = false;
                        live -= 1;
                    }
                }
            }
        }
        rec.finish();
    };
    match ctx.resolve_scatter("rank_cycle_walk", std::mem::size_of_val(&*end_ruler)) {
        ScatterEngine::Direct => {
            crate::intsort::for_each_block(ctx, num_tasks, |t| {
                let p = end_ptr;
                walk(t, Recorder::Direct(p.0));
            });
        }
        ScatterEngine::Combining => {
            let tiles = ScatterTiles::new(ctx, end_ruler.len(), num_tasks);
            crate::intsort::for_each_block(ctx, num_tasks, |t| {
                let p = end_ptr;
                walk(t, Recorder::Combining(tiles.sink(t, p.0)));
            });
        }
        ScatterEngine::Auto => unreachable!("Auto resolves to an explicit engine"),
    }
}

//! Dense renaming ("replace each item by its rank").
//!
//! Both recursive contractions in the paper — step 3 of *Algorithm efficient
//! m.s.p.* and step 3 of *Algorithm sorting strings* — sort a multiset of
//! ordered pairs and then replace every pair by its rank in the sorted order,
//! so that the next round works over a dense alphabet `[0, 2n/3)`.  The
//! label-doubling algorithms (cycle equivalence, tree labelling) also need a
//! renaming step, but there only *distinctness* matters, not order.
//!
//! * [`dense_ranks_by_sort`] — **order-preserving**: equal keys get equal
//!   ranks and the ranks respect the key order.  Backed by the radix sort.
//! * [`dense_ranks`] — order-arbitrary renaming by first occurrence, `O(n)`
//!   expected work with a hash map (the practical stand-in for the arbitrary
//!   CRCW `BB` table).
//!
//! With the default [`SortEngine::Packed`] engine the whole pipeline is
//! fused and allocation-free: the keys are packed into `(key, index)`
//! records, radix-sorted by streaming passes, and then a **single blocked
//! pass** over the sorted records detects group boundaries, prefix-sums the
//! per-block boundary counts, and scatters the ranks — replacing the
//! baseline's three separate passes (boundary map, scan, scatter) and their
//! three intermediate full-length vectors.  The fused pass charges exactly
//! what the unfused pipeline charges (see `DESIGN.md`, "Charge discipline"),
//! so work/depth tables are engine-independent; the invariant is
//! regression-tested below.
//!
//! The `_into` variants write the ranks into a caller-provided buffer so
//! that doubling loops can reuse one rank buffer across all `O(log n)`
//! rounds.

use crate::intsort::{
    idx_bits_for, radix_sort_recs_prebounded, radix_sort_u64, radix_sort_words, sig_bits,
};
use crate::scan::{charge_scan_cost, inclusive_scan, SCAN_BLOCK};
use crate::scatter::ScatterTiles;
use rayon::prelude::*;
use sfcp_pram::fxhash::FxHashMap;
use sfcp_pram::{Ctx, Rec, ScatterEngine, SortEngine};

/// Order-preserving dense ranks of `keys`: returns `(ranks, distinct)`, where
/// `ranks[i] < distinct`, `ranks[i] == ranks[j]` iff `keys[i] == keys[j]`, and
/// `ranks[i] < ranks[j]` iff `keys[i] < keys[j]`.
///
/// Work: that of a radix sort plus `O(n)`; depth `O(log n)`.
#[must_use]
pub fn dense_ranks_by_sort(ctx: &Ctx, keys: &[u64]) -> (Vec<u32>, usize) {
    let mut ranks = Vec::new();
    let distinct = dense_ranks_by_sort_into(ctx, keys, &mut ranks);
    (ranks, distinct)
}

/// [`dense_ranks_by_sort`] writing the ranks into a reusable buffer;
/// returns the number of distinct keys.
pub fn dense_ranks_by_sort_into(ctx: &Ctx, keys: &[u64], ranks: &mut Vec<u32>) -> usize {
    sfcp_pram::faults::on_engine_pass();
    let _span = ctx.span("dense_ranks_by_sort");
    let n = keys.len();
    if n == 0 {
        ranks.clear();
        return 0;
    }
    match ctx.sort_engine() {
        SortEngine::Packed => {
            if n == 1 {
                // Mirror the baseline's charges for the trivial case (its
                // radix sort returns before the max scan).
                ctx.charge_step(1); // identity-order setup
                ranks.resize(1, 0);
                ranks[0] = 0;
                ctx.charge_step(1); // boundary flags
                charge_scan_cost(ctx, 1);
                ctx.charge_step(1); // rank scatter
                return 1;
            }
            let max_key = *keys.iter().max().unwrap();
            ctx.charge_step(n as u64); // max scan, charged as in the baseline
            let key_bits = sig_bits(max_key);
            let idx_bits = idx_bits_for(n);
            let ws = ctx.workspace();
            ranks.resize(n, 0);
            if key_bits + idx_bits <= 64 {
                let mut words = ws.take_u64(n);
                let mut scratch = ws.take_u64(n);
                // Charged like the baseline's identity-order setup inside
                // the permutation radix sort.
                ctx.par_update(&mut words, |i, w| *w = (keys[i] << idx_bits) | i as u64);
                radix_sort_words(ctx, &mut words, &mut scratch, key_bits, idx_bits);
                let mask = (1u64 << idx_bits) - 1;
                fused_rank_finish(
                    ctx,
                    &words,
                    |&w| w >> idx_bits,
                    |&w| (w & mask) as u32,
                    ranks,
                )
            } else {
                let mut recs = ws.take_recs(n);
                let mut scratch = ws.take_recs(n);
                ctx.par_update(&mut recs, |i, r| *r = Rec::new(keys[i], i as u32));
                radix_sort_recs_prebounded(ctx, &mut recs, &mut scratch, key_bits);
                fused_rank_finish(ctx, &recs, |r: &Rec| r.key, |r: &Rec| r.pay, ranks)
            }
        }
        SortEngine::Permutation => dense_ranks_unfused(ctx, keys, ranks),
    }
}

/// The baseline pipeline: permutation sort, boundary map, scan, scatter —
/// three extra full passes with three intermediate vectors.
fn dense_ranks_unfused(ctx: &Ctx, keys: &[u64], ranks: &mut Vec<u32>) -> usize {
    let n = keys.len();
    let order = radix_sort_u64(ctx, keys);
    // boundary[i] = 1 if the i-th element in sorted order starts a new group.
    let boundary: Vec<u64> = ctx.par_map_idx(n, |i| {
        if i == 0 {
            0
        } else {
            u64::from(keys[order[i] as usize] != keys[order[i - 1] as usize])
        }
    });
    let group = inclusive_scan(ctx, &boundary);
    let distinct = (*group.last().unwrap() + 1) as usize;
    ranks.resize(n, 0);
    let ranks_ptr = SendPtr(ranks.as_mut_ptr());
    ctx.par_for_idx(n, |i| {
        let ptr = ranks_ptr;
        // SAFETY: order is a permutation, so each slot written exactly once.
        unsafe {
            *ptr.0.add(order[i] as usize) = group[i] as u32;
        }
    });
    distinct
}

/// The fused finish: one blocked pass over the *sorted* items detects
/// boundaries, ranks every item, and scatters `ranks[payload] = rank`.
/// `key`/`pay` project the sort key and embedded payload out of an item
/// (a packed `u64` word or a wide [`Rec`]).  Returns the number of distinct
/// keys.
///
/// Model cost (charged up front): exactly the unfused boundary map + scan +
/// scatter, so both engines stay charge-identical.
fn fused_rank_finish<T, K, P>(ctx: &Ctx, items: &[T], key: K, pay: P, ranks: &mut [u32]) -> usize
where
    T: Sync,
    K: Fn(&T) -> u64 + Sync + Send,
    P: Fn(&T) -> u32 + Sync + Send,
{
    let n = items.len();
    debug_assert_eq!(ranks.len(), n);
    ctx.charge_step(n as u64); // boundary flags (unfused par_map_idx)
    charge_scan_cost(ctx, n); // group ids (unfused inclusive_scan)
    ctx.charge_step(n as u64); // rank scatter (unfused par_for_idx)

    if !ctx.is_parallel() || n <= SCAN_BLOCK {
        // Single sequential sweep.
        let mut group = 0u32;
        let mut prev = key(&items[0]);
        ranks[pay(&items[0]) as usize] = 0;
        for r in &items[1..] {
            let k = key(r);
            if k != prev {
                group += 1;
                prev = k;
            }
            ranks[pay(r) as usize] = group;
        }
        return group as usize + 1;
    }

    // Blocked: per-block boundary counts, a tiny sequential prefix scan over
    // the blocks, then a per-block rank-and-scatter sweep.
    let num_blocks = n.div_ceil(SCAN_BLOCK);
    let ws = ctx.workspace();
    let mut block_bounds = ws.take_u32(num_blocks);
    {
        let counts_ptr = SendPtr(block_bounds.as_mut_ptr());
        let key = &key;
        (0..num_blocks).into_par_iter().for_each(|b| {
            let cp = counts_ptr;
            let start = b * SCAN_BLOCK;
            let end = (start + SCAN_BLOCK).min(n);
            let mut count = 0u32;
            for i in start.max(1)..end {
                count += u32::from(key(&items[i]) != key(&items[i - 1]));
            }
            // SAFETY: one write per block index.
            unsafe {
                *cp.0.add(b) = count;
            }
        });
    }
    // Exclusive prefix over the per-block boundary counts — routed through
    // the tiled transpose-scan helper, which splits the scan across workers
    // once the block count outgrows a tile (uncharged either way: the fused
    // finish charges the unfused scan model up front).
    let running =
        crate::intsort::transpose_scan_offsets(ctx, &mut block_bounds, 1, num_blocks, None);
    let distinct = running as usize + 1;
    {
        let ranks_ptr = SendPtr(ranks.as_mut_ptr());
        let base = &block_bounds;
        let key = &key;
        let pay = &pay;
        // One rank-and-scatter sweep of block `b`, emitting through `write`
        // (a direct store or a write-combining sink, monomorphized).
        #[inline]
        fn sweep_block<T, K, P, W>(
            items: &[T],
            n: usize,
            base: &[u32],
            key: &K,
            pay: &P,
            b: usize,
            write: &mut W,
        ) where
            K: Fn(&T) -> u64,
            P: Fn(&T) -> u32,
            W: FnMut(usize, u32),
        {
            let start = b * SCAN_BLOCK;
            let end = (start + SCAN_BLOCK).min(n);
            let mut group = base[b];
            for i in start..end {
                if i > 0 && key(&items[i]) != key(&items[i - 1]) {
                    group += 1;
                }
                write(pay(&items[i]) as usize, group);
            }
        }
        match ctx.resolve_scatter("dense_rank_scatter", n * std::mem::size_of::<u32>()) {
            ScatterEngine::Direct => {
                (0..num_blocks).into_par_iter().for_each(|b| {
                    let ptr = ranks_ptr;
                    // SAFETY: payloads form a permutation — one write per
                    // slot.
                    sweep_block(items, n, base, key, pay, b, &mut |idx, group| unsafe {
                        *ptr.0.add(idx) = group;
                    });
                });
            }
            ScatterEngine::Combining => {
                // One sink per clamped task, not per SCAN_BLOCK: tiles only
                // pay off when a task pushes enough entries to fill them,
                // and the staging checkout must stay a small fraction of
                // the destination.
                let num_tasks = crate::scatter::combining_tasks(n);
                let blocks_per_task = num_blocks.div_ceil(num_tasks);
                let tiles = ScatterTiles::new(ctx, n, num_tasks);
                (0..num_tasks).into_par_iter().for_each(|t| {
                    let ptr = ranks_ptr;
                    let mut sink = tiles.sink(t, ptr.0);
                    let lo = t * blocks_per_task;
                    let hi = ((t + 1) * blocks_per_task).min(num_blocks);
                    for b in lo..hi {
                        sweep_block(items, n, base, key, pay, b, &mut |idx, group| {
                            sink.push(idx, group);
                        });
                    }
                    sink.flush();
                });
            }
            // `scatter_engine_for` always resolves `Auto`.
            ScatterEngine::Auto => unreachable!("Auto resolves to an explicit engine"),
        }
    }
    distinct
}

/// Order-preserving dense ranks of pairs, ranked lexicographically.
/// Equivalent to `dense_ranks_by_sort` on packed keys when both components
/// fit in 32 bits (which the dense labels produced by the algorithms always
/// do), otherwise falls back to a sort of the raw pairs.
#[must_use]
pub fn dense_ranks_of_pairs(ctx: &Ctx, pairs: &[(u64, u64)]) -> (Vec<u32>, usize) {
    let mut ranks = Vec::new();
    let distinct = dense_ranks_of_pairs_into(ctx, pairs, &mut ranks);
    (ranks, distinct)
}

/// [`dense_ranks_of_pairs`] writing the ranks into a reusable buffer;
/// returns the number of distinct pairs.
pub fn dense_ranks_of_pairs_into(ctx: &Ctx, pairs: &[(u64, u64)], ranks: &mut Vec<u32>) -> usize {
    sfcp_pram::faults::on_engine_pass();
    let _span = ctx.span("dense_ranks_of_pairs");
    let n = pairs.len();
    if n == 0 {
        ranks.clear();
        return 0;
    }
    let max_a = pairs.iter().map(|p| p.0).max().unwrap();
    let max_b = pairs.iter().map(|p| p.1).max().unwrap();
    ctx.charge_step(2 * n as u64);
    // Pack as tightly as possible so the radix sort needs as few counting
    // passes as possible (the dense labels of the contraction algorithms fit
    // in well under 32 bits each).
    let b_bits = (64 - max_b.leading_zeros()).max(1);
    let a_bits = (64 - max_a.leading_zeros()).max(1);
    if a_bits + b_bits <= 64 {
        match ctx.sort_engine() {
            SortEngine::Packed => {
                let ws = ctx.workspace();
                let key_bits = a_bits + b_bits;
                let idx_bits = idx_bits_for(n);
                ranks.resize(n, 0);
                // The packing pass is charged like the baseline's key-packing
                // map; the extra charge_step(n) mirrors the baseline's
                // identity-order setup, and (for n > 1) the second one its
                // max scan — the key width is already known here.
                ctx.charge_step(n as u64);
                if n > 1 {
                    ctx.charge_step(n as u64);
                }
                if key_bits + idx_bits <= 64 {
                    let mut words = ws.take_u64(n);
                    let mut scratch = ws.take_u64(n);
                    ctx.par_update(&mut words, |i, w| {
                        let (a, b) = pairs[i];
                        *w = (((a << b_bits) | b) << idx_bits) | i as u64;
                    });
                    radix_sort_words(ctx, &mut words, &mut scratch, key_bits, idx_bits);
                    let mask = (1u64 << idx_bits) - 1;
                    fused_rank_finish(
                        ctx,
                        &words,
                        |&w| w >> idx_bits,
                        |&w| (w & mask) as u32,
                        ranks,
                    )
                } else {
                    let mut recs = ws.take_recs(n);
                    let mut scratch = ws.take_recs(n);
                    ctx.par_update(&mut recs, |i, r| {
                        let (a, b) = pairs[i];
                        *r = Rec::new((a << b_bits) | b, i as u32);
                    });
                    radix_sort_recs_prebounded(ctx, &mut recs, &mut scratch, key_bits);
                    fused_rank_finish(ctx, &recs, |r: &Rec| r.key, |r: &Rec| r.pay, ranks)
                }
            }
            SortEngine::Permutation => {
                let packed: Vec<u64> = ctx.par_map_slice(pairs, |&(a, b)| (a << b_bits) | b);
                dense_ranks_unfused(ctx, &packed, ranks)
            }
        }
    } else {
        // Rare path: rank via a full comparison sort of the pairs.
        let mut idx: Vec<u32> = (0..n as u32).collect();
        ctx.par_sort_unstable_by_key(&mut idx, |&i| pairs[i as usize]);
        ranks.resize(n, 0);
        let mut distinct = 0u32;
        for (j, &i) in idx.iter().enumerate() {
            if j > 0 && pairs[idx[j - 1] as usize] != pairs[i as usize] {
                distinct += 1;
            }
            ranks[i as usize] = distinct;
        }
        ctx.charge_step(n as u64);
        distinct as usize + 1
    }
}

/// Order-arbitrary dense renaming: equal keys get equal labels, distinct keys
/// get distinct labels in `[0, distinct)`, but the numeric order of labels is
/// unspecified (first occurrence wins).  `O(n)` expected work.
#[must_use]
pub fn dense_ranks(ctx: &Ctx, keys: &[u64]) -> (Vec<u32>, usize) {
    sfcp_pram::faults::on_engine_pass();
    let _span = ctx.span("dense_ranks");
    let n = keys.len();
    ctx.charge_step(n as u64);
    let mut map: FxHashMap<u64, u32> = FxHashMap::default();
    let mut out = Vec::with_capacity(n);
    for &k in keys {
        let next = map.len() as u32;
        let id = *map.entry(k).or_insert(next);
        out.push(id);
    }
    (out, map.len())
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` only smuggles a raw base pointer into parallel tasks
// whose writes target disjoint indices; every dereference site carries its
// own SAFETY argument for that disjointness, and the pointee buffer is
// borrowed for the whole parallel region, so it outlives every task.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` across tasks only copies the pointer value —
// no shared-reference method dereferences it, so aliased access to the
// pointee can never originate from the `Sync` impl itself.
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use sfcp_pram::Mode;

    fn check_consistent(keys: &[u64], ranks: &[u32], distinct: usize, ordered: bool) {
        assert_eq!(keys.len(), ranks.len());
        if !keys.is_empty() {
            let max_rank = ranks.iter().copied().max().unwrap() as usize + 1;
            assert_eq!(max_rank, distinct, "ranks must be dense in [0, distinct)");
        }
        for i in 0..keys.len() {
            for j in 0..keys.len() {
                assert_eq!(
                    keys[i] == keys[j],
                    ranks[i] == ranks[j],
                    "equality preserved"
                );
                if ordered {
                    assert_eq!(keys[i] < keys[j], ranks[i] < ranks[j], "order preserved");
                }
            }
        }
    }

    #[test]
    fn by_sort_small() {
        for engine in [SortEngine::Packed, SortEngine::Permutation] {
            let ctx = Ctx::parallel().with_sort_engine(engine);
            let keys = [30u64, 10, 20, 10, 30, 30];
            let (ranks, distinct) = dense_ranks_by_sort(&ctx, &keys);
            assert_eq!(distinct, 3);
            assert_eq!(ranks, vec![2, 0, 1, 0, 2, 2]);
            check_consistent(&keys, &ranks, distinct, true);
        }
    }

    #[test]
    fn by_sort_empty() {
        let ctx = Ctx::parallel();
        let (ranks, distinct) = dense_ranks_by_sort(&ctx, &[]);
        assert!(ranks.is_empty());
        assert_eq!(distinct, 0);
    }

    #[test]
    fn pairs_example_from_paper() {
        // Example 3.4: pairs (1,3),(2,3),(4,3),(1,2),(3,4),(2,#),(1,1),(1,3),(2,2),(3,2)
        // sort to (1,1),(1,2),(1,3),(1,3),(2,#),(2,2),(2,3),(3,2),(3,4),(4,3) and
        // get ranks 1,2,3,3,4,5,6,7,8,9 (0-based: 0..8).  We model '#' (blank)
        // as 0 and shift real symbols by +1.
        let ctx = Ctx::parallel();
        let bl = 0u64; // blank
        let pairs: Vec<(u64, u64)> = vec![
            (2, 4),
            (3, 4),
            (5, 4),
            (2, 3),
            (4, 5),
            (3, bl),
            (2, 2),
            (2, 4),
            (3, 3),
            (4, 3),
        ];
        let (ranks, distinct) = dense_ranks_of_pairs(&ctx, &pairs);
        assert_eq!(distinct, 9);
        // (1,3) appears twice (indices 0 and 7) and must share a rank.
        assert_eq!(ranks[0], ranks[7]);
        // Expected ranks from the paper (1-based 1,2,3,3,4,5,6,7,8,9 in pair order
        // (1,1),(1,2),(1,3),(1,3),(2),(2,2),(2,3),(3,2),(3,4),(4,3)):
        // our pair list order maps to 3,6,9,2,8,4,1,3,5 per the paper's resulting string
        // (7,3,6,9,2,8,4,1,3,5)... check a few:
        assert_eq!(ranks[6], 0); // (1,1) is the smallest pair
        assert_eq!(ranks[3], 1); // (1,2)
        assert_eq!(ranks[0], 2); // (1,3)
        assert_eq!(ranks[5], 3); // (2,#) — the padded pair sorts before (2,2)
        assert_eq!(ranks[2], 8); // (4,3) is the largest
        check_consistent(
            &pairs
                .iter()
                .map(|&(a, b)| (a << 32) | b)
                .collect::<Vec<_>>(),
            &ranks,
            distinct,
            true,
        );
    }

    #[test]
    fn arbitrary_ranks_preserve_equality_only() {
        let ctx = Ctx::parallel();
        let keys = [7u64, 7, 2, 9, 2, 7];
        let (ranks, distinct) = dense_ranks(&ctx, &keys);
        assert_eq!(distinct, 3);
        check_consistent(&keys, &ranks, distinct, false);
        // First-occurrence numbering.
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[2], 1);
        assert_eq!(ranks[3], 2);
    }

    /// The fused finish must agree with the unfused pipeline — including at
    /// block boundaries — and charge byte-identical work/depth.
    #[test]
    fn engines_agree_and_charge_identically() {
        let mut rng = StdRng::seed_from_u64(23);
        for n in [
            1usize,
            2,
            SCAN_BLOCK - 1,
            SCAN_BLOCK,
            SCAN_BLOCK + 1,
            40_000,
        ] {
            let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1 + n as u64 / 2)).collect();
            for mode in [Mode::Sequential, Mode::Parallel] {
                let packed = Ctx::new(mode);
                let baseline = Ctx::new(mode).with_sort_engine(SortEngine::Permutation);
                let (ra, da) = dense_ranks_by_sort(&packed, &keys);
                let (rb, db) = dense_ranks_by_sort(&baseline, &keys);
                assert_eq!(ra, rb, "rank mismatch at n={n}, mode={mode:?}");
                assert_eq!(da, db);
                assert_eq!(
                    packed.stats(),
                    baseline.stats(),
                    "charge mismatch at n={n}, mode={mode:?}"
                );
            }
        }
    }

    /// Same engine-parity invariant for the pair path (packed and wide).
    #[test]
    fn pair_engines_agree_and_charge_identically() {
        let mut rng = StdRng::seed_from_u64(29);
        let narrow: Vec<(u64, u64)> = (0..20_000)
            .map(|_| (rng.gen_range(0..500), rng.gen_range(0..500)))
            .collect();
        // 30+30-bit keys: packed key fits in 64 bits, key + index does not —
        // the middle (wide-record) branch of the packed pair path.
        let mid: Vec<(u64, u64)> = (0..20_000)
            .map(|_| {
                (
                    rng.gen_range(1 << 29..1u64 << 30),
                    rng.gen_range(1 << 29..1u64 << 30),
                )
            })
            .collect();
        let wide: Vec<(u64, u64)> = (0..5_000)
            .map(|_| {
                (
                    rng.gen_range(0..u64::MAX / 2),
                    rng.gen_range(0..u64::MAX / 2),
                )
            })
            .collect();
        for pairs in [&narrow, &mid, &wide] {
            for mode in [Mode::Sequential, Mode::Parallel] {
                let packed = Ctx::new(mode);
                let baseline = Ctx::new(mode).with_sort_engine(SortEngine::Permutation);
                let (ra, da) = dense_ranks_of_pairs(&packed, pairs);
                let (rb, db) = dense_ranks_of_pairs(&baseline, pairs);
                assert_eq!(ra, rb);
                assert_eq!(da, db);
                assert_eq!(packed.stats(), baseline.stats(), "mode={mode:?}");
            }
        }
    }

    /// The `_into` variants stop allocating once the workspace is warm.
    #[test]
    fn into_variant_reuses_buffers_across_rounds() {
        let keys: Vec<u64> = (0..30_000u64).map(|i| i % 977).collect();
        let ctx = Ctx::parallel();
        let mut ranks = Vec::new();
        let _ = dense_ranks_by_sort_into(&ctx, &keys, &mut ranks); // warm-up
        let before = ctx.workspace().stats();
        for _ in 0..8 {
            let distinct = dense_ranks_by_sort_into(&ctx, &keys, &mut ranks);
            assert_eq!(distinct, 977);
        }
        let after = ctx.workspace().stats();
        assert_eq!(
            after.misses, before.misses,
            "warm dense-rank rounds must not allocate fresh buffers"
        );
    }

    proptest! {
        #[test]
        fn sort_ranks_match_reference(keys in proptest::collection::vec(0u64..200, 0..1500)) {
            for engine in [SortEngine::Packed, SortEngine::Permutation] {
                let ctx = Ctx::parallel().with_grain(64).with_sort_engine(engine);
                let (ranks, distinct) = dense_ranks_by_sort(&ctx, &keys);
                // Reference: rank = number of distinct smaller keys.
                let mut uniq: Vec<u64> = keys.clone();
                uniq.sort_unstable();
                uniq.dedup();
                prop_assert_eq!(distinct, uniq.len());
                for (i, &k) in keys.iter().enumerate() {
                    let expected = uniq.binary_search(&k).unwrap() as u32;
                    prop_assert_eq!(ranks[i], expected);
                }
            }
        }

        #[test]
        fn hash_ranks_preserve_equality(keys in proptest::collection::vec(0u64..50, 0..1000)) {
            let ctx = Ctx::parallel();
            let (ranks, distinct) = dense_ranks(&ctx, &keys);
            let mut uniq: Vec<u64> = keys.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(distinct, uniq.len());
            for i in 0..keys.len() {
                for j in (i + 1)..keys.len() {
                    prop_assert_eq!(keys[i] == keys[j], ranks[i] == ranks[j]);
                }
            }
        }
    }

    /// Miri target: the rank-scatter pointer writes, on a key set whose
    /// dense ranks are known in closed form (`gcd(31, 53) = 1`, so every
    /// residue occurs and rank == key value).
    #[test]
    fn miri_dense_ranks_by_sort_both_engines() {
        let keys: Vec<u64> = (0..1500u64).map(|i| (i * 31) % 53).collect();
        for engine in [SortEngine::Packed, SortEngine::Permutation] {
            let ctx = Ctx::parallel().with_sort_engine(engine);
            let (ranks, distinct) = dense_ranks_by_sort(&ctx, &keys);
            assert_eq!(distinct, 53);
            for (r, k) in ranks.iter().zip(&keys) {
                assert_eq!(u64::from(*r), *k);
            }
        }
    }
}

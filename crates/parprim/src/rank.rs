//! Dense renaming ("replace each item by its rank").
//!
//! Both recursive contractions in the paper — step 3 of *Algorithm efficient
//! m.s.p.* and step 3 of *Algorithm sorting strings* — sort a multiset of
//! ordered pairs and then replace every pair by its rank in the sorted order,
//! so that the next round works over a dense alphabet `[0, 2n/3)`.  The
//! label-doubling algorithms (cycle equivalence, tree labelling) also need a
//! renaming step, but there only *distinctness* matters, not order.
//!
//! * [`dense_ranks_by_sort`] — **order-preserving**: equal keys get equal
//!   ranks and the ranks respect the key order.  Backed by the radix sort.
//! * [`dense_ranks`] — order-arbitrary renaming by first occurrence, `O(n)`
//!   expected work with a hash map (the practical stand-in for the arbitrary
//!   CRCW `BB` table).

use crate::intsort::radix_sort_u64;
use crate::scan::inclusive_scan;
use sfcp_pram::fxhash::FxHashMap;
use sfcp_pram::Ctx;

/// Order-preserving dense ranks of `keys`: returns `(ranks, distinct)`, where
/// `ranks[i] < distinct`, `ranks[i] == ranks[j]` iff `keys[i] == keys[j]`, and
/// `ranks[i] < ranks[j]` iff `keys[i] < keys[j]`.
///
/// Work: that of a radix sort plus `O(n)`; depth `O(log n)`.
#[must_use]
pub fn dense_ranks_by_sort(ctx: &Ctx, keys: &[u64]) -> (Vec<u32>, usize) {
    let n = keys.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let order = radix_sort_u64(ctx, keys);
    // boundary[i] = 1 if the i-th element in sorted order starts a new group.
    let boundary: Vec<u64> = ctx.par_map_idx(n, |i| {
        if i == 0 {
            0
        } else {
            u64::from(keys[order[i] as usize] != keys[order[i - 1] as usize])
        }
    });
    let group = inclusive_scan(ctx, &boundary);
    let distinct = (*group.last().unwrap() + 1) as usize;
    let mut ranks = vec![0u32; n];
    let ranks_ptr = SendPtr(ranks.as_mut_ptr());
    ctx.par_for_idx(n, |i| {
        let ptr = ranks_ptr;
        // Safety: order is a permutation, so each slot written exactly once.
        unsafe {
            *ptr.0.add(order[i] as usize) = group[i] as u32;
        }
    });
    (ranks, distinct)
}

/// Order-preserving dense ranks of pairs, ranked lexicographically.
/// Equivalent to `dense_ranks_by_sort` on packed keys when both components
/// fit in 32 bits (which the dense labels produced by the algorithms always
/// do), otherwise falls back to a sort of the raw pairs.
#[must_use]
pub fn dense_ranks_of_pairs(ctx: &Ctx, pairs: &[(u64, u64)]) -> (Vec<u32>, usize) {
    let n = pairs.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let max_a = pairs.iter().map(|p| p.0).max().unwrap();
    let max_b = pairs.iter().map(|p| p.1).max().unwrap();
    ctx.charge_step(2 * n as u64);
    // Pack as tightly as possible so the radix sort needs as few counting
    // passes as possible (the dense labels of the contraction algorithms fit
    // in well under 32 bits each).
    let b_bits = (64 - max_b.leading_zeros()).max(1);
    let a_bits = (64 - max_a.leading_zeros()).max(1);
    if a_bits + b_bits <= 64 {
        let packed: Vec<u64> = ctx.par_map_slice(pairs, |&(a, b)| (a << b_bits) | b);
        dense_ranks_by_sort(ctx, &packed)
    } else {
        // Rare path: rank via a full comparison sort of the pairs.
        let mut idx: Vec<u32> = (0..n as u32).collect();
        ctx.par_sort_unstable_by_key(&mut idx, |&i| pairs[i as usize]);
        let mut ranks = vec![0u32; n];
        let mut distinct = 0u32;
        for (j, &i) in idx.iter().enumerate() {
            if j > 0 && pairs[idx[j - 1] as usize] != pairs[i as usize] {
                distinct += 1;
            }
            ranks[i as usize] = distinct;
        }
        ctx.charge_step(n as u64);
        (ranks, distinct as usize + 1)
    }
}

/// Order-arbitrary dense renaming: equal keys get equal labels, distinct keys
/// get distinct labels in `[0, distinct)`, but the numeric order of labels is
/// unspecified (first occurrence wins).  `O(n)` expected work.
#[must_use]
pub fn dense_ranks(ctx: &Ctx, keys: &[u64]) -> (Vec<u32>, usize) {
    let n = keys.len();
    ctx.charge_step(n as u64);
    let mut map: FxHashMap<u64, u32> = FxHashMap::default();
    let mut out = Vec::with_capacity(n);
    for &k in keys {
        let next = map.len() as u32;
        let id = *map.entry(k).or_insert(next);
        out.push(id);
    }
    (out, map.len())
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_consistent(keys: &[u64], ranks: &[u32], distinct: usize, ordered: bool) {
        assert_eq!(keys.len(), ranks.len());
        if !keys.is_empty() {
            let max_rank = ranks.iter().copied().max().unwrap() as usize + 1;
            assert_eq!(max_rank, distinct, "ranks must be dense in [0, distinct)");
        }
        for i in 0..keys.len() {
            for j in 0..keys.len() {
                assert_eq!(keys[i] == keys[j], ranks[i] == ranks[j], "equality preserved");
                if ordered {
                    assert_eq!(keys[i] < keys[j], ranks[i] < ranks[j], "order preserved");
                }
            }
        }
    }

    #[test]
    fn by_sort_small() {
        let ctx = Ctx::parallel();
        let keys = [30u64, 10, 20, 10, 30, 30];
        let (ranks, distinct) = dense_ranks_by_sort(&ctx, &keys);
        assert_eq!(distinct, 3);
        assert_eq!(ranks, vec![2, 0, 1, 0, 2, 2]);
        check_consistent(&keys, &ranks, distinct, true);
    }

    #[test]
    fn by_sort_empty() {
        let ctx = Ctx::parallel();
        let (ranks, distinct) = dense_ranks_by_sort(&ctx, &[]);
        assert!(ranks.is_empty());
        assert_eq!(distinct, 0);
    }

    #[test]
    fn pairs_example_from_paper() {
        // Example 3.4: pairs (1,3),(2,3),(4,3),(1,2),(3,4),(2,#),(1,1),(1,3),(2,2),(3,2)
        // sort to (1,1),(1,2),(1,3),(1,3),(2,#),(2,2),(2,3),(3,2),(3,4),(4,3) and
        // get ranks 1,2,3,3,4,5,6,7,8,9 (0-based: 0..8).  We model '#' (blank)
        // as 0 and shift real symbols by +1.
        let ctx = Ctx::parallel();
        let bl = 0u64; // blank
        let pairs: Vec<(u64, u64)> = vec![
            (2, 4), (3, 4), (5, 4), (2, 3), (4, 5), (3, bl), (2, 2), (2, 4), (3, 3), (4, 3),
        ];
        let (ranks, distinct) = dense_ranks_of_pairs(&ctx, &pairs);
        assert_eq!(distinct, 9);
        // (1,3) appears twice (indices 0 and 7) and must share a rank.
        assert_eq!(ranks[0], ranks[7]);
        // Expected ranks from the paper (1-based 1,2,3,3,4,5,6,7,8,9 in pair order
        // (1,1),(1,2),(1,3),(1,3),(2),(2,2),(2,3),(3,2),(3,4),(4,3)):
        // our pair list order maps to 3,6,9,2,8,4,1,3,5 per the paper's resulting string
        // (7,3,6,9,2,8,4,1,3,5)... check a few:
        assert_eq!(ranks[6], 0); // (1,1) is the smallest pair
        assert_eq!(ranks[3], 1); // (1,2)
        assert_eq!(ranks[0], 2); // (1,3)
        assert_eq!(ranks[5], 3); // (2,#) — the padded pair sorts before (2,2)
        assert_eq!(ranks[2], 8); // (4,3) is the largest
        check_consistent(
            &pairs.iter().map(|&(a, b)| (a << 32) | b).collect::<Vec<_>>(),
            &ranks,
            distinct,
            true,
        );
    }

    #[test]
    fn arbitrary_ranks_preserve_equality_only() {
        let ctx = Ctx::parallel();
        let keys = [7u64, 7, 2, 9, 2, 7];
        let (ranks, distinct) = dense_ranks(&ctx, &keys);
        assert_eq!(distinct, 3);
        check_consistent(&keys, &ranks, distinct, false);
        // First-occurrence numbering.
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[2], 1);
        assert_eq!(ranks[3], 2);
    }

    proptest! {
        #[test]
        fn sort_ranks_match_reference(keys in proptest::collection::vec(0u64..200, 0..1500)) {
            let ctx = Ctx::parallel().with_grain(64);
            let (ranks, distinct) = dense_ranks_by_sort(&ctx, &keys);
            // Reference: rank = number of distinct smaller keys.
            let mut uniq: Vec<u64> = keys.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(distinct, uniq.len());
            for (i, &k) in keys.iter().enumerate() {
                let expected = uniq.binary_search(&k).unwrap() as u32;
                prop_assert_eq!(ranks[i], expected);
            }
        }

        #[test]
        fn hash_ranks_preserve_equality(keys in proptest::collection::vec(0u64..50, 0..1000)) {
            let ctx = Ctx::parallel();
            let (ranks, distinct) = dense_ranks(&ctx, &keys);
            let mut uniq: Vec<u64> = keys.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(distinct, uniq.len());
            for i in 0..keys.len() {
                for j in (i + 1)..keys.len() {
                    prop_assert_eq!(keys[i] == keys[j], ranks[i] == ranks[j]);
                }
            }
        }
    }
}

//! Parallel CSR construction: group a `(key, value)` edge stream into
//! `offsets + items` adjacency lists.
//!
//! Every incidence structure in the decomposition pipeline — the children
//! lists of [`crate::euler::RootedForest`], the per-vertex endpoint rotations
//! of the buddy-edge multigraph in `cycle_nodes_euler`, the per-level node
//! buckets of the levelwise tree labelling — is the same build: a stream of
//! `m` slots, each contributing at most one `(key, value)` pair with
//! `key < num_keys`, materialized as CSR `offsets` (length `num_keys + 1`)
//! plus `items` (values grouped by key, **stream order within a group** —
//! for the ascending streams every caller feeds, that means ascending order
//! inside each group).
//!
//! The classic sequential build is three passes — count, prefix, scatter —
//! of which the count and the scatter are *random-access* passes over the
//! `num_keys`-sized count/cursor arrays.  At `n = 10^6` those arrays are
//! megabytes, every access misses cache, and the build dominates `decompose`
//! (see ROADMAP, "Multigraph CSR build is the new decompose bottleneck").
//!
//! The builder here turns the build into blocked, parallel passes with two
//! regimes, picked by a counter budget derived from the probed last-level
//! cache ([`direct_build_max_keys`], hard-capped by the same `2^22`-counter
//! bound the radix engine's `block_plan` charges for):
//!
//! * **Direct** (`num_keys` counters fit the budget): one stable counting
//!   pass at radix `num_keys` — each block histograms its slice of the
//!   stream into its own row of a flat `(blocks × num_keys)` matrix, a
//!   sequential transpose-scan turns the matrix into block-major stable
//!   cursors *and writes the CSR `offsets` as its block-0 column for free*,
//!   and a second blocked sweep scatters the values.  With one block this
//!   is exactly the sequential baseline; with many it is the
//!   block-parallel generalization of it.
//! * **Bucketed** (huge key spaces): slots are packed into `u64` words
//!   `key << 32 | value` (empty slots get the sentinel key `num_keys`,
//!   which sorts last) and LSD counting-passed on the key digits with
//!   adaptive digit widths — `intsort`'s cache-resident per-block
//!   machinery.  LSD stability keeps equal-key words in stream order, so
//!   no tie-break is needed.  A final blocked pass extracts the value
//!   column and fills each `offsets` slot exactly once from the group
//!   boundaries.
//!
//! Every intermediate is a [`sfcp_pram::Workspace`] checkout: once the pools
//! are warm, a build allocates nothing beyond the caller's output buffers.
//!
//! ## Engines
//!
//! Like the sort/rank engine, the builder dispatches on
//! [`sfcp_pram::SortEngine`]: `Packed` picks one of the blocked regimes
//! above, `Permutation` runs the sequential count/prefix/scatter baseline.
//! Both
//! produce byte-identical `offsets`/`items` and charge identical work/depth,
//! so `bench_json` can measure them against each other in the same run (the
//! `csr_build` rows of `BENCH_parprim.json`).
//!
//! ## Charge model
//!
//! The documented cost of a CSR build is the sequential baseline's: one
//! counting round of `m` operations, one prefix round of `num_keys`
//! operations, one scatter round of `m` operations.  Both engines charge
//! exactly that; the packed engine's physical passes (word packing, the
//! per-digit counting passes, the fused finish) are uncharged implementation
//! glue, the same discipline as the packed sort engine's fill/extract passes
//! (DESIGN.md, "CSR construction").

use crate::intsort::{
    counting_pass_items_uncharged, fill_items_uncharged, for_each_block, plan_digits, sig_bits,
    transpose_scan_offsets,
};
use crate::scatter::{ScatterTiles, BUCKET_BITS, NUM_BUCKETS};
use sfcp_pram::{Ctx, ScatterEngine, SortEngine};

/// Below this stream length the blocked machinery is pure overhead; both
/// engines run the sequential baseline.
pub const SEQUENTIAL_BUILD_MAX: usize = 1024;

/// Hard cap on the key space the direct (single counting pass at radix
/// `num_keys`) build will allocate histograms for — the same `2^22`-counter
/// budget that bounds `intsort`'s per-pass offset matrices.  Beyond it the
/// builder falls back to multi-pass radix bucketing over packed words.
///
/// The cap a given context actually applies is
/// [`direct_build_max_keys`] — this constant tightened by the probed LLC
/// budget, so small-cache hosts fall back to the bucketed regime earlier.
///
/// Public so workloads and tests can assert which regime a key space lands
/// in (the sharded-multigraph workload of `sfcp-bench` exists to push real
/// builds past this budget).
pub const DIRECT_BUILD_MAX_KEYS: usize = 1 << 22;

/// The live direct-build key cap on this context: [`DIRECT_BUILD_MAX_KEYS`]
/// tightened so the counting pass's per-block histogram rows fit the probed
/// LLC budget ([`sfcp_pram::Topology::csr_direct_counter_budget`]).  The
/// regime choice is physical only — results and charges are identical in
/// both regimes — so consulting the probe here is charge-neutral (DESIGN.md,
/// "Footprint-adaptive selection").
#[must_use]
pub fn direct_build_max_keys(ctx: &Ctx) -> usize {
    DIRECT_BUILD_MAX_KEYS.min(ctx.topology().csr_direct_counter_budget())
}

/// Build the CSR grouping of an edge stream, returning `(offsets, items)`.
///
/// `edge(s)` is called for every stream slot `s in 0..num_slots` and returns
/// `Some((key, value))` with `key < num_keys`, or `None` for slots that
/// contribute nothing.  It may be called **more than once per slot** (the
/// counting-based regimes stream the slots twice) and must return the same
/// answer each time; a closure that changes between passes panics.
/// `offsets` has length `num_keys + 1`; the values of key `k` occupy
/// `items[offsets[k] .. offsets[k + 1]]` in stream order.
///
/// # Panics
/// Panics if any produced key is `>= num_keys`.
#[must_use]
pub fn build_csr<F>(ctx: &Ctx, num_keys: usize, num_slots: usize, edge: F) -> (Vec<u32>, Vec<u32>)
where
    F: Fn(usize) -> Option<(u32, u32)> + Sync + Send,
{
    let mut offsets = Vec::new();
    let mut items = Vec::new();
    build_csr_into(ctx, num_keys, num_slots, edge, &mut offsets, &mut items);
    (offsets, items)
}

/// [`build_csr`] writing into caller-owned buffers, so hot paths can reuse
/// workspace checkouts (or retained vectors) across calls.
///
/// # Panics
/// Panics if any produced key is `>= num_keys`.
pub fn build_csr_into<F>(
    ctx: &Ctx,
    num_keys: usize,
    num_slots: usize,
    edge: F,
    offsets: &mut Vec<u32>,
    items: &mut Vec<u32>,
) where
    F: Fn(usize) -> Option<(u32, u32)> + Sync + Send,
{
    sfcp_pram::faults::on_engine_pass();
    let mut span = ctx.span("build_csr");
    span.attr("num_keys", num_keys as u64);
    span.attr("num_slots", num_slots as u64);
    assert!(
        num_keys < u32::MAX as usize,
        "num_keys {num_keys} too large for the u32 key space"
    );
    // Offsets, cursors, and item positions are all u32; bounding the slot
    // count bounds the contributing-pair total, so none of them can wrap.
    assert!(
        num_slots <= u32::MAX as usize,
        "num_slots {num_slots} too large for the u32 offset space"
    );
    // The documented model cost (identical in both engines and to the
    // sequential baseline that `RootedForest::from_parents` used to inline):
    // count the stream, prefix the counts, scatter the stream.
    ctx.charge_step(num_slots as u64);
    ctx.charge_step(num_keys as u64);
    ctx.charge_step(num_slots as u64);

    if num_slots <= SEQUENTIAL_BUILD_MAX || ctx.sort_engine() == SortEngine::Permutation {
        build_csr_sequential(ctx, num_keys, num_slots, &edge, offsets, items);
    } else if num_keys <= direct_build_max_keys(ctx) {
        build_csr_direct(ctx, num_keys, num_slots, &edge, offsets, items);
    } else {
        build_csr_bucketed(ctx, num_keys, num_slots, &edge, offsets, items);
    }
}

/// The baseline: count (random increments), prefix, cursor scatter (random
/// reads and writes).  Uncharged — the model charge is applied by the
/// dispatching wrapper.
fn build_csr_sequential<F>(
    ctx: &Ctx,
    num_keys: usize,
    num_slots: usize,
    edge: &F,
    offsets: &mut Vec<u32>,
    items: &mut Vec<u32>,
) where
    F: Fn(usize) -> Option<(u32, u32)> + Sync + Send,
{
    offsets.clear();
    offsets.resize(num_keys + 1, 0);
    for s in 0..num_slots {
        if let Some((k, _)) = edge(s) {
            assert!(
                (k as usize) < num_keys,
                "csr key {k} out of range (num_keys = {num_keys})"
            );
            offsets[k as usize + 1] += 1;
        }
    }
    for k in 0..num_keys {
        offsets[k + 1] += offsets[k];
    }
    let total = offsets[num_keys] as usize;
    let ws = ctx.workspace();
    let mut cursor = ws.take_u32(num_keys + 1);
    cursor.copy_from_slice(offsets);
    items.clear();
    items.resize(total, 0);
    for s in 0..num_slots {
        if let Some((k, v)) = edge(s) {
            items[cursor[k as usize] as usize] = v;
            cursor[k as usize] += 1;
        }
    }
}

/// The direct blocked build: one stable counting pass at radix `num_keys`.
/// Each block histograms its slice of the stream into its own row of a flat
/// `(blocks × num_keys)` matrix; the sequential transpose-scan produces
/// block-major stable cursors and emits the CSR `offsets` as a by-product
/// (the cursor of key `k` in block 0 *is* `offsets[k]`); the scatter sweep
/// then streams the slots again, writing each value once.  One block makes
/// this exactly [`build_csr_sequential`]; several make it the
/// block-parallel generalization.  Uncharged (model charge applied by the
/// dispatching wrapper).
fn build_csr_direct<F>(
    ctx: &Ctx,
    num_keys: usize,
    num_slots: usize,
    edge: &F,
    offsets: &mut Vec<u32>,
    items: &mut Vec<u32>,
) where
    F: Fn(usize) -> Option<(u32, u32)> + Sync + Send,
{
    let ws = ctx.workspace();
    // Physical block count: enough to feed the pool's workers, but bounded
    // so the histogram matrix stays within the counter budget AND the
    // per-block row work (`num_keys` counters filled and scanned per block)
    // stays amortized against the stream.  On one thread this is exactly
    // one block — the sequential baseline with zero overhead.  Tracking
    // `current_num_threads` here is safe because the builder's charges are
    // the fixed documented model, never a function of the block plan.
    let num_blocks = if ctx.is_parallel() {
        let budget = (DIRECT_BUILD_MAX_KEYS / num_keys.max(1)).clamp(1, 256);
        let amortized = (4 * num_slots / num_keys.max(1)).max(1);
        (num_slots / 8192)
            .clamp(1, rayon::current_num_threads().max(1))
            .min(budget)
            .min(amortized)
    } else {
        1
    };
    let block_size = num_slots.div_ceil(num_blocks);
    let mut hist = ws.take_u32(num_blocks * num_keys);

    // Write-combined counting regime: once a block's histogram row outgrows
    // the probed L2, the random `row[k] += 1` increments become the pass's
    // miss bill.  Past that boundary each block stages the keys into
    // per-bucket tiles (bucketed by the high key bits, like the scatter
    // engine's sinks) and applies a tile of increments at a time, so every
    // burst lands in one `num_keys / 2^BUCKET_BITS` row window instead of
    // striding the whole row.  Physical only: the counts are identical, the
    // model charge above never changes.
    let stage_entries = ctx.topology().scatter_tile_entries();
    let wc_counting = num_keys * std::mem::size_of::<u32>() > ctx.topology().l2_bytes();
    let key_bits = usize::BITS - num_keys.saturating_sub(1).leading_zeros();
    let bucket_shift = key_bits.saturating_sub(BUCKET_BITS);
    let mut stage = wc_counting.then(|| ws.take_u32(num_blocks * NUM_BUCKETS * stage_entries));

    // Count: each block fills its own histogram row.
    {
        let hist_ptr = SendPtr(hist.as_mut_ptr());
        let stage_ptr = stage.as_mut().map(|s| SendPtr(s.as_mut_ptr()));
        for_each_block(ctx, num_blocks, |b| {
            let hp = hist_ptr;
            let start = b * block_size;
            let end = (start + block_size).min(num_slots);
            // SAFETY: rows of the histogram matrix are disjoint per block.
            let row = unsafe { std::slice::from_raw_parts_mut(hp.0.add(b * num_keys), num_keys) };
            row.fill(0);
            match stage_ptr {
                None => {
                    for s in start..end {
                        if let Some((k, _)) = edge(s) {
                            assert!(
                                (k as usize) < num_keys,
                                "csr key {k} out of range (num_keys = {num_keys})"
                            );
                            row[k as usize] += 1;
                        }
                    }
                }
                Some(sp) => {
                    let region_len = NUM_BUCKETS * stage_entries;
                    // SAFETY: per-block staging regions are disjoint.
                    let region = unsafe {
                        std::slice::from_raw_parts_mut(sp.0.add(b * region_len), region_len)
                    };
                    let mut fill = [0u32; NUM_BUCKETS];
                    for s in start..end {
                        if let Some((k, _)) = edge(s) {
                            assert!(
                                (k as usize) < num_keys,
                                "csr key {k} out of range (num_keys = {num_keys})"
                            );
                            let bucket = (k >> bucket_shift) as usize;
                            let f = fill[bucket] as usize;
                            region[bucket * stage_entries + f] = k;
                            if f + 1 == stage_entries {
                                for &kk in &region[bucket * stage_entries..][..stage_entries] {
                                    row[kk as usize] += 1;
                                }
                                fill[bucket] = 0;
                            } else {
                                fill[bucket] = f as u32 + 1;
                            }
                        }
                    }
                    for (bucket, &f) in fill.iter().enumerate() {
                        for &kk in &region[bucket * stage_entries..][..f as usize] {
                            row[kk as usize] += 1;
                        }
                    }
                }
            }
        });
    }
    drop(stage);

    // Stable offsets (key-major, then block-major); block 0's cursor for key
    // `k` is the group start, i.e. `offsets[k]` — the transpose-scan emits
    // that column as its per-key base.
    offsets.clear();
    offsets.resize(num_keys + 1, 0);
    let running = transpose_scan_offsets(
        ctx,
        &mut hist,
        num_blocks,
        num_keys,
        Some(&mut offsets[..num_keys]),
    );
    offsets[num_keys] = running;

    // Scatter: stream the slots again; the histogram rows double as write
    // cursors, and each (block, key) range is disjoint.  The value stores
    // go through the scatter engine on the context — resolved against the
    // items footprint when the selection is `Auto` — as direct stores or
    // write-combining tiles (the cursor bumps stay direct either way: a
    // block's row is private and cache-resident).
    items.clear();
    items.resize(running as usize, 0);
    let total = items.len();
    {
        let hist_ptr = SendPtr(hist.as_mut_ptr());
        let items_ptr = SendPtr(items.as_mut_ptr());
        let resolved = ctx.resolve_scatter("csr_direct_items", total * std::mem::size_of::<u32>());
        let tiles = (resolved == ScatterEngine::Combining)
            .then(|| ScatterTiles::new(ctx, total, num_blocks));
        for_each_block(ctx, num_blocks, |b| {
            let (hp, ip) = (hist_ptr, items_ptr);
            let mut sink = tiles.as_ref().map(|t| t.sink(b, ip.0));
            let start = b * block_size;
            let end = (start + block_size).min(num_slots);
            // SAFETY: disjoint histogram rows (see above).
            let row = unsafe { std::slice::from_raw_parts_mut(hp.0.add(b * num_keys), num_keys) };
            for s in start..end {
                if let Some((k, v)) = edge(s) {
                    let cursor = &mut row[k as usize];
                    // The cursors were derived from a *separate* counting
                    // invocation of `edge`; a non-deterministic closure could
                    // otherwise push one past the buffer.  Keep the unsafe
                    // write bounded so that inconsistency panics instead of
                    // scribbling.
                    assert!(
                        (*cursor as usize) < total,
                        "csr edge stream changed between the counting and scatter passes"
                    );
                    match sink.as_mut() {
                        // SAFETY: in-bounds by the check above; offsets of
                        // different (block, key) pairs are disjoint ranges,
                        // so each item slot is written once.
                        None => unsafe {
                            *ip.0.add(*cursor as usize) = v;
                        },
                        Some(sink) => sink.push(*cursor as usize, v),
                    }
                    *cursor += 1;
                }
            }
            if let Some(mut sink) = sink {
                sink.flush();
            }
        });
    }
}

/// The cache-bucketed fallback for huge key spaces: pack, radix-bucket by
/// key digits, fused offsets+items finish.  Uncharged (model charge applied
/// by the wrapper).
fn build_csr_bucketed<F>(
    ctx: &Ctx,
    num_keys: usize,
    num_slots: usize,
    edge: &F,
    offsets: &mut Vec<u32>,
    items: &mut Vec<u32>,
) where
    F: Fn(usize) -> Option<(u32, u32)> + Sync + Send,
{
    let ws = ctx.workspace();
    let sentinel = num_keys as u64;
    // Keys 0..=num_keys (sentinel included) live in the high 32 bits, the
    // value in the low 32: counting passes shift past the value bits, and
    // LSD stability preserves stream order within every key group.
    let key_bits = sig_bits(sentinel);
    let mut words = ws.take_u64(num_slots);
    fill_items_uncharged(ctx, &mut words, |s| match edge(s) {
        Some((k, v)) => {
            assert!(
                (k as usize) < num_keys,
                "csr key {k} out of range (num_keys = {num_keys})"
            );
            (u64::from(k) << 32) | u64::from(v)
        }
        None => sentinel << 32,
    });
    let mut scratch = ws.take_u64(num_slots);
    let (digit_bits, passes) = plan_digits(key_bits);
    for pass in 0..passes {
        counting_pass_items_uncharged(
            ctx,
            &words,
            &mut scratch,
            32 + pass * digit_bits,
            digit_bits,
        );
        std::mem::swap(&mut *words, &mut *scratch);
    }

    // Sentinel words sort to a trailing block; everything before it is real.
    let kept = words.partition_point(|&w| (w >> 32) < sentinel);
    offsets.clear();
    offsets.resize(num_keys + 1, 0);
    items.clear();
    items.resize(kept, 0);

    // Fused finish: one blocked pass over the sorted words extracts the
    // value column and writes each offsets slot exactly once (position `i`
    // fills `offsets[j] = i` for every key `j` in the gap between the
    // previous word's key and its own).  Blocks only peek one word to the
    // left of their range, so the pass parallelizes without a scan.
    let num_blocks = if ctx.is_parallel() {
        (kept / 8192).clamp(1, 256)
    } else {
        1
    };
    let block_size = kept.div_ceil(num_blocks).max(1);
    let offsets_ptr = SendPtr(offsets.as_mut_ptr());
    let items_ptr = SendPtr(items.as_mut_ptr());
    let words = &words[..kept];
    let run_block = |b: usize| {
        let start = b * block_size;
        let end = (start + block_size).min(kept);
        let (op, ip) = (offsets_ptr, items_ptr);
        for i in start..end {
            let w = words[i];
            let k = (w >> 32) as usize;
            // SAFETY: each item slot is written by exactly one position.
            unsafe {
                *ip.0.add(i) = w as u32;
            }
            let prev = if i == 0 {
                usize::MAX // virtual key "-1" before the first word
            } else {
                (words[i - 1] >> 32) as usize
            };
            for j in prev.wrapping_add(1)..=k {
                // SAFETY: gap ranges of different positions are disjoint, so
                // each offsets slot is written exactly once.
                unsafe {
                    *op.0.add(j) = i as u32;
                }
            }
        }
    };
    for_each_block(ctx, num_blocks, run_block);
    // Keys past the last real word (always at least the `num_keys` slot).
    let tail_from = if kept == 0 {
        0
    } else {
        (words[kept - 1] >> 32) as usize + 1
    };
    for o in &mut offsets[tail_from..=num_keys] {
        *o = kept as u32;
    }
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` only smuggles a raw base pointer into parallel tasks
// whose writes target disjoint indices; every dereference site carries its
// own SAFETY argument for that disjointness, and the pointee buffer is
// borrowed for the whole parallel region, so it outlives every task.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` across tasks only copies the pointer value —
// no shared-reference method dereferences it, so aliased access to the
// pointee can never originate from the `Sync` impl itself.
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use sfcp_pram::Mode;

    /// Straight-line reference: push every pair into per-key vectors.
    fn naive_csr(num_keys: usize, stream: &[Option<(u32, u32)>]) -> (Vec<u32>, Vec<u32>) {
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); num_keys];
        for pair in stream.iter().flatten() {
            groups[pair.0 as usize].push(pair.1);
        }
        let mut offsets = vec![0u32; num_keys + 1];
        let mut items = Vec::new();
        for (k, g) in groups.iter().enumerate() {
            items.extend_from_slice(g);
            offsets[k + 1] = items.len() as u32;
        }
        (offsets, items)
    }

    /// A random stream with skewed keys, empty keys, and `None` slots.
    fn random_stream(num_keys: usize, num_slots: usize, seed: u64) -> Vec<Option<(u32, u32)>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..num_slots)
            .map(|s| {
                if rng.gen_bool(0.2) {
                    None
                } else {
                    // Skew towards low keys so some groups are large and the
                    // top of the key range stays empty.
                    let k = rng.gen_range(0..num_keys.max(1)) as u32;
                    let k = if rng.gen_bool(0.5) { k / 7 } else { k };
                    Some((k, s as u32))
                }
            })
            .collect()
    }

    fn engines() -> [SortEngine; 2] {
        [SortEngine::Packed, SortEngine::Permutation]
    }

    #[test]
    fn empty_and_degenerate() {
        for engine in engines() {
            let ctx = Ctx::parallel().with_sort_engine(engine);
            let (offsets, items) = build_csr(&ctx, 0, 0, |_| None);
            assert_eq!(offsets, vec![0]);
            assert!(items.is_empty());
            let (offsets, items) = build_csr(&ctx, 4, 0, |_| None);
            assert_eq!(offsets, vec![0; 5]);
            assert!(items.is_empty());
            let (offsets, items) = build_csr(&ctx, 3, 5, |_| None);
            assert_eq!(offsets, vec![0; 4]);
            assert!(items.is_empty());
        }
    }

    #[test]
    fn small_grouping_is_stable() {
        for engine in engines() {
            let ctx = Ctx::parallel().with_sort_engine(engine);
            let stream = [
                Some((2u32, 10u32)),
                Some((0, 11)),
                None,
                Some((2, 12)),
                Some((0, 13)),
                Some((3, 14)),
            ];
            let (offsets, items) = build_csr(&ctx, 5, stream.len(), |s| stream[s]);
            assert_eq!(offsets, vec![0, 2, 2, 4, 5, 5]);
            assert_eq!(items, vec![11, 13, 10, 12, 14]);
        }
    }

    /// The bucketed path (above the sequential threshold) must match the
    /// naive reference and the sequential engine exactly, and both engines
    /// must charge identical work/depth.
    #[test]
    fn large_streams_match_reference_and_baseline() {
        for (num_keys, num_slots, seed) in [
            (50_000, 120_000, 1u64),
            (300, 40_000, 2),
            (70_000, 70_000, 3),
        ] {
            let stream = random_stream(num_keys, num_slots, seed);
            let expected = naive_csr(num_keys, &stream);
            let mut stats = Vec::new();
            for mode in [Mode::Sequential, Mode::Parallel] {
                for engine in engines() {
                    let ctx = Ctx::new(mode).with_sort_engine(engine);
                    let got = build_csr(&ctx, num_keys, num_slots, |s| stream[s]);
                    assert_eq!(
                        got, expected,
                        "csr mismatch ({engine:?}, {mode:?}, keys={num_keys})"
                    );
                    stats.push(ctx.stats());
                }
            }
            assert!(
                stats.windows(2).all(|w| w[0] == w[1]),
                "engines/modes must charge identically, got {stats:?}"
            );
        }
    }

    /// Key spaces past the direct-build budget take the packed-word radix
    /// fallback; it must agree (output and charges) with the sequential
    /// baseline engine.
    #[test]
    fn bucketed_fallback_matches_baseline_on_huge_key_spaces() {
        let num_keys = DIRECT_BUILD_MAX_KEYS + 3;
        let num_slots = 60_000;
        let mut rng = StdRng::seed_from_u64(5);
        let stream: Vec<Option<(u32, u32)>> = (0..num_slots)
            .map(|s| {
                if rng.gen_bool(0.1) {
                    None
                } else {
                    Some((rng.gen_range(0..num_keys as u32), s as u32))
                }
            })
            .collect();
        let packed = Ctx::parallel();
        let baseline = Ctx::parallel().with_sort_engine(SortEngine::Permutation);
        let a = build_csr(&packed, num_keys, num_slots, |s| stream[s]);
        let b = build_csr(&baseline, num_keys, num_slots, |s| stream[s]);
        assert_eq!(a, b, "bucketed fallback diverged from the baseline");
        assert_eq!(packed.stats(), baseline.stats());
        // Spot-check the grouping really happened.
        assert_eq!(a.0.len(), num_keys + 1);
        assert_eq!(
            *a.0.last().unwrap() as usize,
            stream.iter().flatten().count()
        );
    }

    #[test]
    fn warm_builds_allocate_nothing() {
        let num_keys = 30_000;
        let stream = random_stream(num_keys, 80_000, 9);
        let ctx = Ctx::parallel();
        let mut offsets = Vec::new();
        let mut items = Vec::new();
        build_csr_into(
            &ctx,
            num_keys,
            stream.len(),
            |s| stream[s],
            &mut offsets,
            &mut items,
        );
        let before = ctx.workspace().stats();
        for _ in 0..4 {
            build_csr_into(
                &ctx,
                num_keys,
                stream.len(),
                |s| stream[s],
                &mut offsets,
                &mut items,
            );
        }
        let after = ctx.workspace().stats();
        assert!(after.checkouts > before.checkouts);
        assert_eq!(
            after.misses, before.misses,
            "warm CSR builds must serve every checkout from the pools"
        );
        assert_eq!(after.outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sequential_engine_rejects_out_of_range_keys() {
        let ctx = Ctx::parallel().with_sort_engine(SortEngine::Permutation);
        let _ = build_csr(&ctx, 10, 50_000, |s| Some((10, s as u32)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn packed_engine_rejects_out_of_range_keys() {
        let ctx = Ctx::parallel();
        let _ = build_csr(&ctx, 10, 50_000, |s| Some((10, s as u32)));
    }

    #[test]
    fn mocked_small_cache_topology_switches_regimes_and_matches() {
        use sfcp_pram::Topology;
        // 512 KB LLC / 4 KB L2: the direct-build cap shrinks to the 64K
        // floor and the counting pass enters the write-combined regime well
        // below it.
        let topo = Topology::fallback()
            .with_llc_bytes(1 << 19)
            .with_l2_bytes(1 << 12);
        let small_ctx = |engine| Ctx::parallel().with_topology(topo).with_sort_engine(engine);
        assert_eq!(
            direct_build_max_keys(&small_ctx(SortEngine::Packed)),
            1 << 16
        );
        assert!(direct_build_max_keys(&Ctx::parallel()) >= 1 << 16);

        // 70_000 keys: direct build on the real host, bucketed fallback
        // under the mocked topology — identical output and charges either
        // way (the regime switch must be charge-invisible).
        let num_keys = 70_000;
        let stream = random_stream(num_keys, 90_000, 17);
        let expected = naive_csr(num_keys, &stream);
        let mut stats = Vec::new();
        for engine in engines() {
            let ctx = small_ctx(engine);
            let got = build_csr(&ctx, num_keys, stream.len(), |s| stream[s]);
            assert_eq!(got, expected, "mocked-topology csr mismatch ({engine:?})");
            stats.push(ctx.stats());
        }
        let real = Ctx::parallel();
        let got = build_csr(&real, num_keys, stream.len(), |s| stream[s]);
        assert_eq!(got, expected);
        stats.push(real.stats());
        assert!(
            stats.windows(2).all(|w| w[0] == w[1]),
            "regime switches must be charge-invisible: {stats:?}"
        );

        // 5_000 keys: still the direct regime under the mock, but the 20 KB
        // row exceeds the 4 KB L2, so the counting pass runs write-combined.
        let num_keys = 5_000;
        let stream = random_stream(num_keys, 60_000, 18);
        let expected = naive_csr(num_keys, &stream);
        let ctx = small_ctx(SortEngine::Packed);
        let wc = build_csr(&ctx, num_keys, stream.len(), |s| stream[s]);
        assert_eq!(wc, expected, "write-combined counting pass diverged");
    }

    proptest! {
        /// Offsets, grouping, and within-group (stream) order all match the
        /// naive build, for both engines, across the sequential/bucketed
        /// threshold.
        #[test]
        fn matches_naive_build(
            num_keys in 1usize..400,
            num_slots in 0usize..5000,
            seed in 0u64..64,
        ) {
            let stream = random_stream(num_keys, num_slots, seed);
            let expected = naive_csr(num_keys, &stream);
            for engine in [SortEngine::Packed, SortEngine::Permutation] {
                let ctx = Ctx::parallel().with_grain(64).with_sort_engine(engine);
                let got = build_csr(&ctx, num_keys, num_slots, |s| stream[s]);
                prop_assert_eq!(&got, &expected, "engine {:?}", engine);
                // Ascending-value streams yield ascending groups (the
                // property `RootedForest` children lists rely on).
                for k in 0..num_keys {
                    let group = &got.1[got.0[k] as usize..got.0[k + 1] as usize];
                    prop_assert!(group.windows(2).all(|w| w[0] < w[1]));
                }
            }
        }
    }

    /// Miri target: the direct-build scatter of grouped items into the
    /// `items` array (disjoint per-key offset ranges).
    #[test]
    fn miri_csr_build_matches_naive_on_skewed_stream() {
        let num_keys = 37;
        let stream: Vec<Option<(u32, u32)>> = (0..800u32)
            .map(|s| {
                if s % 5 == 0 {
                    None
                } else {
                    Some((s.wrapping_mul(2_654_435_761) % 37, s))
                }
            })
            .collect();
        let ctx = Ctx::parallel();
        let got = build_csr(&ctx, num_keys, stream.len(), |s| stream[s]);
        assert_eq!(got, naive_csr(num_keys, &stream));
    }
}

//! Prefix sums (scans).
//!
//! The scan is *the* workhorse PRAM primitive: compaction offsets, Euler-tour
//! rankings, radix-sort bucket offsets and the "number of bad ancestors"
//! computation of the tree-labelling step are all scans.  The parallel
//! version is the standard two-pass blocked algorithm: block-local sums, a
//! (small) scan over the block sums, then a block-local sweep — `O(n)` work
//! and `O(log n)` depth, matching the cost the paper assumes for prefix sums.

use sfcp_pram::Ctx;

/// Block size used by the parallel two-pass scan (public so that fused
/// passes elsewhere — e.g. the dense-rank finish — can mirror the same block
/// decomposition and charge profile).
pub const SCAN_BLOCK: usize = 4096;

/// Inclusive prefix sums of `values` (`out[i] = values[0] + … + values[i]`).
#[must_use]
pub fn inclusive_scan(ctx: &Ctx, values: &[u64]) -> Vec<u64> {
    scan_generic(ctx, values, 0u64, |a, b| a + b, true)
}

/// [`inclusive_scan`] writing into a reusable output buffer.
pub fn inclusive_scan_into(ctx: &Ctx, values: &[u64], out: &mut Vec<u64>) {
    scan_generic_into(ctx, values, 0u64, |a, b| a + b, true, out);
}

/// Exclusive prefix sums of `values` (`out[i] = values[0] + … + values[i-1]`,
/// `out[0] = 0`).  Returns the scanned vector and the total sum.
#[must_use]
pub fn exclusive_scan(ctx: &Ctx, values: &[u64]) -> (Vec<u64>, u64) {
    let mut out = Vec::new();
    let total = exclusive_scan_into(ctx, values, &mut out);
    (out, total)
}

/// [`exclusive_scan`] writing into a reusable output buffer; returns the
/// total sum.
pub fn exclusive_scan_into(ctx: &Ctx, values: &[u64], out: &mut Vec<u64>) -> u64 {
    let total: u64 = values.iter().sum();
    scan_generic_into(ctx, values, 0u64, |a, b| a + b, false, out);
    total
}

/// Charge (without executing) exactly what a length-`n` scan charges.  Fused
/// passes that replace a scan with structurally different code use this so
/// that the tracker's work/depth stay byte-identical to the unfused
/// pipeline; the equivalence is regression-tested against [`inclusive_scan`].
pub fn charge_scan_cost(ctx: &Ctx, n: usize) {
    if n == 0 {
        return;
    }
    let num_blocks = n.div_ceil(SCAN_BLOCK).max(1);
    ctx.charge_rounds(sfcp_pram::ceil_log2(num_blocks) as u64);
    if !ctx.is_parallel() || n <= SCAN_BLOCK {
        ctx.charge_step(n as u64);
    } else {
        ctx.charge_work(2 * n as u64); // the two per-element passes
        ctx.charge_step(num_blocks as u64); // block totals (par_map_idx)
        ctx.charge_work(num_blocks as u64); // sequential block-offset scan
        ctx.charge_step(num_blocks as u64); // block sweep (par_for_idx)
    }
}

/// Generic blocked scan with an associative operation `op` and identity
/// `identity`.  `inclusive` selects inclusive vs exclusive output.
///
/// Work `O(n)`, depth `O(log n)` (the block-sum scan is performed
/// sequentially but over only `n / SCAN_BLOCK` elements, so the extra depth
/// charged is the standard `O(log n)`).
#[must_use]
pub fn scan_generic<T, F>(ctx: &Ctx, values: &[T], identity: T, op: F, inclusive: bool) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync + Send,
{
    let mut out = Vec::new();
    scan_generic_into(ctx, values, identity, op, inclusive, &mut out);
    out
}

/// [`scan_generic`] writing into a reusable output buffer (cleared and
/// refilled; the buffer's capacity is reused across calls).
#[allow(clippy::needless_range_loop)] // index drives a raw-pointer write
pub fn scan_generic_into<T, F>(
    ctx: &Ctx,
    values: &[T],
    identity: T,
    op: F,
    inclusive: bool,
    out: &mut Vec<T>,
) where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync + Send,
{
    sfcp_pram::faults::on_engine_pass();
    let _span = ctx.span("scan");
    let n = values.len();
    out.clear();
    if n == 0 {
        return;
    }
    // Depth of the implicit block-sum combine tree.
    ctx.charge_rounds(sfcp_pram::ceil_log2(n.div_ceil(SCAN_BLOCK).max(1)) as u64);

    if !ctx.is_parallel() || n <= SCAN_BLOCK {
        // Straight sequential scan (still charges n work via the step).
        ctx.charge_step(n as u64);
        out.reserve(n);
        let mut acc = identity;
        for &v in values {
            if inclusive {
                acc = op(acc, v);
                out.push(acc);
            } else {
                out.push(acc);
                acc = op(acc, v);
            }
        }
        return;
    }

    // Pass 1: per-block totals.  The two passes touch every element once each.
    ctx.charge_work(2 * n as u64);
    let num_blocks = n.div_ceil(SCAN_BLOCK);
    let mut block_offsets: Vec<T> = ctx.par_map_idx(num_blocks, |b| {
        let start = b * SCAN_BLOCK;
        let end = (start + SCAN_BLOCK).min(n);
        let mut acc = identity;
        for &v in &values[start..end] {
            acc = op(acc, v);
        }
        acc
    });

    // Exclusive-scan the block totals in place (small, done sequentially):
    // the generic element type has no workspace pool, so pass 1's buffer is
    // the only per-block scratch this function allocates.
    let mut acc = identity;
    for slot in &mut block_offsets {
        let total = std::mem::replace(slot, acc);
        acc = op(acc, total);
    }
    ctx.charge_work(num_blocks as u64);

    // Pass 2: per-block sweep with the block offset.
    out.reserve(n);
    // SAFETY: fully overwritten below before reading.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n)
    };
    let out_ptr = SendPtr(out.as_mut_ptr());
    ctx.par_for_idx(num_blocks, |b| {
        let start = b * SCAN_BLOCK;
        let end = (start + SCAN_BLOCK).min(n);
        let mut acc = block_offsets[b];
        let ptr = out_ptr;
        for i in start..end {
            // SAFETY: each index is written by exactly one block.
            unsafe {
                if inclusive {
                    acc = op(acc, values[i]);
                    *ptr.0.add(i) = acc;
                } else {
                    *ptr.0.add(i) = acc;
                    acc = op(acc, values[i]);
                }
            }
        }
    });
}

/// A raw pointer wrapper that asserts cross-thread transferability.  Every
/// use in this crate writes disjoint index ranges from different tasks.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` only smuggles a raw base pointer into parallel tasks
// whose writes target disjoint indices; every dereference site carries its
// own SAFETY argument for that disjointness, and the pointee buffer is
// borrowed for the whole parallel region, so it outlives every task.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` across tasks only copies the pointer value —
// no shared-reference method dereferences it, so aliased access to the
// pointee can never originate from the `Sync` impl itself.
unsafe impl<T> Sync for SendPtr<T> {}

/// Segmented inclusive scan: `flags[i] == true` marks the start of a new
/// segment; the running sum restarts at every segment head.
///
/// Used for per-cycle and per-tree aggregations where many independent
/// sequences are stored back to back in one array.
#[must_use]
pub fn segmented_inclusive_scan(ctx: &Ctx, values: &[u64], flags: &[bool]) -> Vec<u64> {
    assert_eq!(values.len(), flags.len());
    // Implemented via the generic scan over (value, carries-across-boundary)
    // pairs: the operator resets when the right operand starts a segment.
    let pairs: Vec<(u64, bool)> = ctx.par_map_idx(values.len(), |i| (values[i], flags[i]));
    let scanned = scan_generic(
        ctx,
        &pairs,
        (0u64, false),
        |a, b| {
            if b.1 {
                // b starts a segment: discard the left accumulation.
                (b.0, true)
            } else {
                (a.0 + b.0, a.1 || b.1)
            }
        },
        true,
    );
    ctx.charge_step(values.len() as u64);
    scanned.into_iter().map(|(v, _)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sfcp_pram::Mode;

    fn reference_inclusive(values: &[u64]) -> Vec<u64> {
        let mut acc = 0;
        values
            .iter()
            .map(|&v| {
                acc += v;
                acc
            })
            .collect()
    }

    #[test]
    fn empty_and_singleton() {
        let ctx = Ctx::parallel();
        assert!(inclusive_scan(&ctx, &[]).is_empty());
        assert_eq!(inclusive_scan(&ctx, &[5]), vec![5]);
        let (ex, total) = exclusive_scan(&ctx, &[5]);
        assert_eq!(ex, vec![0]);
        assert_eq!(total, 5);
    }

    #[test]
    fn small_known_values() {
        let ctx = Ctx::sequential();
        let v = [1u64, 2, 3, 4, 5];
        assert_eq!(inclusive_scan(&ctx, &v), vec![1, 3, 6, 10, 15]);
        let (ex, total) = exclusive_scan(&ctx, &v);
        assert_eq!(ex, vec![0, 1, 3, 6, 10]);
        assert_eq!(total, 15);
    }

    #[test]
    fn large_crosses_block_boundaries() {
        for mode in [Mode::Sequential, Mode::Parallel] {
            let ctx = Ctx::new(mode);
            let v: Vec<u64> = (0..3 * SCAN_BLOCK as u64 + 17).map(|i| i % 7).collect();
            assert_eq!(inclusive_scan(&ctx, &v), reference_inclusive(&v));
        }
    }

    #[test]
    fn generic_scan_with_max_operator() {
        let ctx = Ctx::parallel();
        let v: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let out = scan_generic(&ctx, &v, 0u64, |a, b| a.max(b), true);
        assert_eq!(out, vec![3, 3, 4, 4, 5, 9, 9, 9]);
    }

    #[test]
    fn segmented_scan_restarts_at_flags() {
        let ctx = Ctx::parallel();
        let values = [1u64, 1, 1, 1, 1, 1];
        let flags = [true, false, false, true, false, false];
        assert_eq!(
            segmented_inclusive_scan(&ctx, &values, &flags),
            vec![1, 2, 3, 1, 2, 3]
        );
    }

    #[test]
    fn segmented_scan_large() {
        let ctx = Ctx::parallel();
        let n = 2 * SCAN_BLOCK + 100;
        let values: Vec<u64> = vec![1; n];
        let flags: Vec<bool> = (0..n).map(|i| i % 1000 == 0).collect();
        let out = segmented_inclusive_scan(&ctx, &values, &flags);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, (i % 1000) as u64 + 1, "at index {i}");
        }
    }

    /// `charge_scan_cost` must mirror the real scan's charges exactly: the
    /// fused dense-rank finish depends on this to stay charge-identical to
    /// the unfused pipeline.
    #[test]
    fn charge_scan_cost_matches_real_scan() {
        for mode in [Mode::Sequential, Mode::Parallel] {
            for n in [
                0usize,
                1,
                100,
                SCAN_BLOCK,
                SCAN_BLOCK + 1,
                3 * SCAN_BLOCK + 17,
                100_000,
            ] {
                let real = Ctx::new(mode);
                let v: Vec<u64> = vec![1; n];
                let _ = inclusive_scan(&real, &v);
                let model = Ctx::new(mode);
                charge_scan_cost(&model, n);
                assert_eq!(
                    real.stats(),
                    model.stats(),
                    "charge model diverged at n={n}, mode={mode:?}"
                );
            }
        }
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let ctx = Ctx::parallel();
        let v: Vec<u64> = (0..10_000).map(|i| i % 5).collect();
        let mut out = Vec::new();
        inclusive_scan_into(&ctx, &v, &mut out);
        assert_eq!(out, reference_inclusive(&v));
        let cap = out.capacity();
        let w: Vec<u64> = (0..8_000).map(|i| i % 3).collect();
        let total = exclusive_scan_into(&ctx, &w, &mut out);
        assert_eq!(total, w.iter().sum::<u64>());
        assert_eq!(out.capacity(), cap, "buffer capacity must be reused");
        assert_eq!(out[0], 0);
        assert_eq!(out[7999], w[..7999].iter().sum::<u64>());
    }

    #[test]
    fn charges_linear_work() {
        let ctx = Ctx::parallel();
        let v: Vec<u64> = vec![1; 100_000];
        let _ = inclusive_scan(&ctx, &v);
        let stats = ctx.stats();
        assert!(stats.work >= 100_000);
        assert!(
            stats.work < 400_000,
            "scan should be linear work, got {}",
            stats.work
        );
    }

    proptest! {
        #[test]
        fn matches_reference(v in proptest::collection::vec(0u64..1000, 0..3000)) {
            let seq = Ctx::sequential();
            let par = Ctx::parallel().with_grain(64);
            prop_assert_eq!(inclusive_scan(&seq, &v), reference_inclusive(&v));
            prop_assert_eq!(inclusive_scan(&par, &v), reference_inclusive(&v));
            let (ex, total) = exclusive_scan(&par, &v);
            prop_assert_eq!(total, v.iter().sum::<u64>());
            for i in 0..v.len() {
                prop_assert_eq!(ex[i], v[..i].iter().sum::<u64>());
            }
        }
    }

    /// Miri target: the pass-2 `set_len` + disjoint per-block pointer writes
    /// of the parallel scan (needs `n > SCAN_BLOCK`).
    #[test]
    fn miri_parallel_scan_crosses_block_boundary() {
        let v: Vec<u64> = (0..(SCAN_BLOCK + 64) as u64).map(|i| i % 7).collect();
        let ctx = Ctx::parallel();
        assert_eq!(inclusive_scan(&ctx, &v), reference_inclusive(&v));
    }
}

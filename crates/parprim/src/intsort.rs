//! Integer sorting: stable counting sort and LSD radix sort, sequential and
//! block-parallel.
//!
//! This is the routine the paper charges its only super-linear term to: it
//! uses the Bhatt–Diks–Hagerup–Prasad–Radzik–Saxena deterministic integer
//! sorting algorithm (`O(log n / log log n)` time, `O(n log log n)` work) to
//! sort keys drawn from `[1, n^{O(1)}]`.  The practical analogue implemented
//! here is a least-significant-digit radix sort with adaptive digit widths:
//!
//! * work `O(n · ⌈b/8⌉)` where `b` is the number of significant key bits —
//!   linear in `n` for the polynomial-range keys the algorithms produce,
//! * depth `O(⌈b/8⌉ · log n)` from the per-digit histogram scans,
//! * **stable**, which the pair-contraction steps of *efficient m.s.p.* and
//!   *sorting strings* rely on.
//!
//! Two engines implement the same contract (selected via
//! [`Ctx::sort_engine`]):
//!
//! * [`SortEngine::Packed`] — the cache-aware engine: `(u64 key, u32
//!   payload)` records ([`Rec`]) are physically moved between ping-pong
//!   buffers checked out from the [`Ctx`] workspace.  Every counting pass
//!   reads and writes the record stream sequentially; no pass gathers
//!   through an index permutation, and no pass allocates (histogram
//!   matrices and ping-pong buffers come from the workspace pool).
//! * [`SortEngine::Permutation`] — the baseline: passes reorder an index
//!   permutation and gather `keys[order[i]]` through it, allocating fresh
//!   histogram vectors per pass.  Kept so benches and tests can measure the
//!   packed engine against it in the same run.
//!
//! Both engines charge **identical** work/depth to the tracker (a
//! regression-tested invariant — see `DESIGN.md`, "Charge discipline"), so
//! the complexity tables are engine-independent.
//!
//! The classic entry points ([`radix_sort_u64`], [`radix_sort_pairs`],
//! [`counting_sort_by_key`]) return a *permutation* (`Vec<u32>` of indices in
//! sorted order); with the packed engine they are thin wrappers that sort
//! records carrying the index as payload and read the payload column back
//! out.  Callers that can consume sorted records directly (the dense-rank
//! pipeline in [`crate::rank`]) skip the read-back entirely.

use rayon::prelude::*;
use sfcp_pram::{Ctx, Rec, SortEngine};

/// Default small-key bound for single-pass counting sorts.
const RADIX: usize = 1 << 8;
/// Widest digit the sorter will use; bounded so the per-block histogram
/// matrices stay small.  11 bits keeps the (blocks × radix) offset matrix of
/// a 40-bit pair-key sort inside L2 (~0.5 MB) — the wider 15-bit digits save
/// a pass but pay for it several times over in histogram/offset traffic.
const MAX_DIGIT_BITS: u32 = 11;

/// Pick the digit width that minimises the number of counting passes for keys
/// of the given significant width.  The paper's integer sort exploits exactly
/// this "polynomial range ⇒ constant number of passes of range-n counting
/// sort" structure, so dense pair keys are handled in two or three passes.
pub(crate) fn plan_digits(significant_bits: u32) -> (u32, u32) {
    let sig = significant_bits.max(1);
    let passes = sig.div_ceil(MAX_DIGIT_BITS).max(1);
    let digit_bits = sig.div_ceil(passes).clamp(4, MAX_DIGIT_BITS);
    (digit_bits, sig.div_ceil(digit_bits))
}

/// Number of significant bits of `x` (at least 1).
#[inline]
pub(crate) fn sig_bits(x: u64) -> u32 {
    (64 - x.leading_zeros()).max(1)
}

/// The block decomposition both engines **charge** for: enough blocks to
/// parallelise, few enough that the histogram matrix (blocks × radix) stays
/// cheap (≤ ~4M counters).  A pure function of `(mode, n, radix)` — never of
/// the host — because its output enters tracked charges, which must be
/// machine-independent (DESIGN.md, "Charge discipline").
fn model_block_plan(ctx: &Ctx, n: usize, radix: usize) -> (usize, usize) {
    let max_blocks = ((1usize << 22) / radix).clamp(1, 256);
    let num_blocks = if ctx.is_parallel() {
        (n / 8192).clamp(1, max_blocks)
    } else {
        1
    };
    (num_blocks, n.div_ceil(num_blocks))
}

/// The block decomposition the engines **execute**: the model plan, further
/// clamped so the histogram matrix fits the probed cache budget
/// ([`sfcp_pram::Topology::radix_counter_budget`]).  Physical only — every
/// charge uses [`model_block_plan`], so shrinking the matrix on a
/// small-cache host never changes tracked work/depth.  On hosts with ≥ 32 MB
/// of LLC the budget exceeds the model's 256-block cap at every digit width
/// used here, so the two plans coincide.
fn block_plan(ctx: &Ctx, n: usize, radix: usize) -> (usize, usize) {
    let (model_blocks, _) = model_block_plan(ctx, n, radix);
    let budget_blocks = (ctx.topology().radix_counter_budget() / radix).max(1);
    let num_blocks = model_blocks.min(budget_blocks);
    (num_blocks, n.div_ceil(num_blocks))
}

/// Run `f(block_index)` for each block, in parallel when the context is
/// parallel.  Charges nothing: callers account for the pass explicitly so
/// that both engines charge identically.  Public because the blocked
/// scatter passes outside this crate (the buddy-edge incidence emission in
/// `sfcp-forest`) share it.
pub fn for_each_block<F>(ctx: &Ctx, num_blocks: usize, f: F)
where
    F: Fn(usize) + Sync + Send,
{
    if ctx.is_parallel() && num_blocks > 1 {
        (0..num_blocks).into_par_iter().for_each(f);
    } else {
        for b in 0..num_blocks {
            f(b);
        }
    }
}

/// Digits per tile of the parallel transpose-scan: wide enough that a
/// tile's row segments stream (≥ 4 KB per row), small enough to split the
/// scan across workers.
const SCAN_TILE: usize = 1024;

/// Turn the per-block digit histogram matrix (`num_blocks` block-major rows
/// of `radix` counters) into block-major stable scatter cursors: the cursor
/// of `(block b, digit d)` points at the first output slot for block `b`'s
/// items with digit `d`, with items ordered digit-major first, block-major
/// second.  Optionally emits the exclusive per-digit base (the cursor of
/// block 0, i.e. the CSR `offsets` column) into `base_out`.  Returns the
/// total count.
///
/// The naive formulation walks the matrix digit-major — a column traversal
/// at a `radix`-word stride that misses cache on every cell once the matrix
/// outgrows L2, and runs serially between the parallel histogram and
/// scatter passes (the depth bottleneck the ROADMAP flags).  This version
/// is block-tiled into streaming row-major passes — per-digit totals, an
/// exclusive scan over them, then a row-major cursor sweep — and every
/// matrix pass parallelises over digit tiles (columns are independent); the
/// digit scan itself goes two-level (tile sums, then local scans) once it
/// is wide enough to matter.  Uncharged: callers charge the documented
/// `radix × blocks` transpose-scan cost unchanged, so the tiling is
/// charge-invisible (see DESIGN.md, "Charge discipline").
#[allow(clippy::needless_range_loop)] // digit indices drive raw-pointer writes
pub(crate) fn transpose_scan_offsets(
    ctx: &Ctx,
    hist: &mut [u32],
    num_blocks: usize,
    radix: usize,
    mut base_out: Option<&mut [u32]>,
) -> u32 {
    debug_assert_eq!(hist.len(), num_blocks * radix);
    let num_tiles = radix.div_ceil(SCAN_TILE);
    let parallel = ctx.is_parallel() && num_tiles > 1;

    if num_blocks == 1 {
        // One row: the cursors are the exclusive scan of the row itself.
        if !parallel {
            let mut running = 0u32;
            for d in 0..radix {
                if let Some(base) = base_out.as_deref_mut() {
                    base[d] = running;
                }
                let c = hist[d];
                hist[d] = running;
                running += c;
            }
            return running;
        }
        // Two-level scan: per-tile sums, a tiny sequential scan over them,
        // then parallel local exclusive scans.
        let ws = ctx.workspace();
        let mut tile_sum = ws.take_u32(num_tiles);
        {
            let sums = SendPtr(tile_sum.as_mut_ptr());
            let hist_ref: &[u32] = hist;
            for_each_block(ctx, num_tiles, |t| {
                let (d0, d1) = (t * SCAN_TILE, ((t + 1) * SCAN_TILE).min(radix));
                let sp = sums;
                let total: u32 = hist_ref[d0..d1].iter().sum();
                // SAFETY: one writer per tile.
                unsafe {
                    *sp.0.add(t) = total;
                }
            });
        }
        let mut running = 0u32;
        for t in tile_sum.iter_mut() {
            let c = *t;
            *t = running;
            running += c;
        }
        {
            let hist_ptr = SendPtr(hist.as_mut_ptr());
            let base_ptr = base_out.as_deref_mut().map(|b| SendPtr(b.as_mut_ptr()));
            let tile_sum = &tile_sum;
            for_each_block(ctx, num_tiles, |t| {
                let (d0, d1) = (t * SCAN_TILE, ((t + 1) * SCAN_TILE).min(radix));
                let hp = hist_ptr;
                let mut acc = tile_sum[t];
                for d in d0..d1 {
                    // SAFETY: tiles own disjoint digit ranges.
                    unsafe {
                        let cell = hp.0.add(d);
                        let c = *cell;
                        *cell = acc;
                        if let Some(bp) = base_ptr {
                            *bp.0.add(d) = acc;
                        }
                        acc += c;
                    }
                }
            });
        }
        return running;
    }

    // Multi-block: per-digit totals (streaming row-major), exclusive scan
    // over the digits, then a row-major sweep turning the totals into
    // running block cursors.  `base` doubles as totals, digit base, and
    // running cursor in turn.
    let ws = ctx.workspace();
    let mut base = ws.take_u32(radix);
    base.fill(0);
    {
        let base_ptr = SendPtr(base.as_mut_ptr());
        let hist_ref: &[u32] = hist;
        for_each_block(ctx, num_tiles, |t| {
            let (d0, d1) = (t * SCAN_TILE, ((t + 1) * SCAN_TILE).min(radix));
            let bp = base_ptr;
            for b in 0..num_blocks {
                let row = &hist_ref[b * radix..];
                for d in d0..d1 {
                    // SAFETY: tiles own disjoint digit ranges.
                    unsafe {
                        *bp.0.add(d) += row[d];
                    }
                }
            }
        });
    }
    // Exclusive scan of the totals (sequential below SCAN_TILE tiles' worth
    // of digits, two-level otherwise — same scheme as the single-row path).
    let total = if !parallel {
        let mut running = 0u32;
        for cell in base.iter_mut() {
            let c = *cell;
            *cell = running;
            running += c;
        }
        running
    } else {
        let mut tile_sum = ws.take_u32(num_tiles);
        {
            let sums = SendPtr(tile_sum.as_mut_ptr());
            let base_ref: &[u32] = &base;
            for_each_block(ctx, num_tiles, |t| {
                let (d0, d1) = (t * SCAN_TILE, ((t + 1) * SCAN_TILE).min(radix));
                let sp = sums;
                let total: u32 = base_ref[d0..d1].iter().sum();
                // SAFETY: one writer per tile.
                unsafe {
                    *sp.0.add(t) = total;
                }
            });
        }
        let mut running = 0u32;
        for t in tile_sum.iter_mut() {
            let c = *t;
            *t = running;
            running += c;
        }
        {
            let base_ptr = SendPtr(base.as_mut_ptr());
            let tile_sum = &tile_sum;
            for_each_block(ctx, num_tiles, |t| {
                let (d0, d1) = (t * SCAN_TILE, ((t + 1) * SCAN_TILE).min(radix));
                let bp = base_ptr;
                let mut acc = tile_sum[t];
                for d in d0..d1 {
                    // SAFETY: tiles own disjoint digit ranges.
                    unsafe {
                        let cell = bp.0.add(d);
                        let c = *cell;
                        *cell = acc;
                        acc += c;
                    }
                }
            });
        }
        running
    };
    if let Some(bo) = base_out {
        bo[..radix].copy_from_slice(&base);
    }
    // Row-major cursor sweep, parallel over digit tiles: block b's cursor
    // for digit d is the digit base plus the counts of earlier blocks.
    {
        let hist_ptr = SendPtr(hist.as_mut_ptr());
        let base_ptr = SendPtr(base.as_mut_ptr());
        for_each_block(ctx, num_tiles, |t| {
            let (d0, d1) = (t * SCAN_TILE, ((t + 1) * SCAN_TILE).min(radix));
            let (hp, bp) = (hist_ptr, base_ptr);
            for b in 0..num_blocks {
                for d in d0..d1 {
                    // SAFETY: tiles own disjoint digit ranges of every row.
                    unsafe {
                        let cell = hp.0.add(b * radix + d);
                        let run = bp.0.add(d);
                        let c = *cell;
                        *cell = *run;
                        *run += c;
                    }
                }
            }
        });
    }
    total
}

// ---------------------------------------------------------------------------
// Packed record engine.
// ---------------------------------------------------------------------------

/// Bits needed to store an index in `0..n` (at least 1).
#[inline]
pub(crate) fn idx_bits_for(n: usize) -> u32 {
    sig_bits(n.saturating_sub(1) as u64)
}

/// An item a counting pass can extract a digit from.
pub(crate) trait RadixItem: Copy + Default + Send + Sync + 'static {
    fn digit_at(&self, shift: u32, mask: u64) -> usize;
}

impl RadixItem for Rec {
    #[inline]
    fn digit_at(&self, shift: u32, mask: u64) -> usize {
        ((self.key >> shift) & mask) as usize
    }
}

impl RadixItem for u64 {
    #[inline]
    fn digit_at(&self, shift: u32, mask: u64) -> usize {
        ((self >> shift) & mask) as usize
    }
}

/// Stable in-place radix sort of `recs` by [`Rec::key`].  `scratch` is the
/// ping-pong partner (resized as needed); after the call `recs` holds the
/// sorted records and `scratch` holds garbage.
///
/// This is the zero-allocation hot path: counting passes stream the record
/// array sequentially (histogram) and write each record exactly once per
/// pass (scatter) — no index-permutation gathers.  The per-pass histogram
/// matrix is checked out from the context workspace.
///
/// Records are the wide-key representation (16 bytes).  When the key and
/// payload together fit in 64 bits the engine instead uses
/// `radix_sort_words` — a single `u64` per element, halving the memory
/// traffic of every pass.
pub fn radix_sort_recs(ctx: &Ctx, recs: &mut Vec<Rec>, scratch: &mut Vec<Rec>) {
    let n = recs.len();
    if n <= 1 {
        return;
    }
    let max_key = recs.iter().map(|r| r.key).max().unwrap();
    ctx.charge_step(n as u64);
    radix_sort_recs_prebounded(ctx, recs, scratch, sig_bits(max_key));
}

/// [`radix_sort_recs`] for callers that already know a bound on the
/// significant key bits (skips the max scan and its charge, mirroring the
/// permutation engine's second pass of the wide pair sort).
pub fn radix_sort_recs_prebounded(
    ctx: &Ctx,
    recs: &mut Vec<Rec>,
    scratch: &mut Vec<Rec>,
    significant_bits: u32,
) {
    sfcp_pram::faults::on_engine_pass();
    let mut span = ctx.span("radix_sort_recs");
    span.attr("n", recs.len() as u64);
    let n = recs.len();
    if n <= 1 {
        return;
    }
    let (digit_bits, passes) = plan_digits(significant_bits);
    span.attr("passes", passes as u64);
    scratch.resize(n, Rec::default());
    for pass in 0..passes {
        counting_pass_items(ctx, recs, scratch, pass * digit_bits, digit_bits);
        std::mem::swap(recs, scratch);
    }
}

/// Stable radix sort of packed words `key << idx_bits | index` by the key
/// digits only: the counting passes skip the low `idx_bits`, and LSD
/// stability makes the embedded ascending index a free tie-break, so the
/// result is exactly a stable sort by key.  One 8-byte word per element —
/// the tightest streaming representation, used whenever
/// `key_bits + idx_bits <= 64`.
///
/// The number of passes depends only on `key_bits`, so the charge profile is
/// identical to sorting the bare keys with either engine.
pub(crate) fn radix_sort_words(
    ctx: &Ctx,
    words: &mut Vec<u64>,
    scratch: &mut Vec<u64>,
    key_bits: u32,
    idx_bits: u32,
) {
    let n = words.len();
    if n <= 1 {
        return;
    }
    let (digit_bits, passes) = plan_digits(key_bits);
    scratch.resize(n, 0);
    for pass in 0..passes {
        counting_pass_items(
            ctx,
            words,
            scratch,
            idx_bits + pass * digit_bits,
            digit_bits,
        );
        std::mem::swap(words, scratch);
    }
}

/// One stable counting pass: reorder `src` into `dst` by the
/// `digit_bits`-wide digit at `shift`.  Charges exactly what the permutation
/// engine's pass charges.
pub(crate) fn counting_pass_items<T: RadixItem>(
    ctx: &Ctx,
    src: &[T],
    dst: &mut [T],
    shift: u32,
    digit_bits: u32,
) {
    let n = src.len();
    let mut span = ctx.span("radix_pass");
    span.attr("shift", u64::from(shift));
    let radix = 1usize << digit_bits;
    let (model_blocks, _) = model_block_plan(ctx, n, radix);
    counting_pass_items_uncharged(ctx, src, dst, shift, digit_bits);
    // Same charges as the permutation engine's pass: histogram round, the
    // sequential transpose-scan over the offset matrix, and the scatter
    // round over the whole input.  Charged at the model plan so the physical
    // (topology-clamped) block count stays charge-invisible.
    ctx.charge_step(model_blocks as u64);
    ctx.charge_step((radix * model_blocks) as u64);
    ctx.charge_step(model_blocks as u64);
    ctx.charge_work(n as u64);
}

/// The machinery of [`counting_pass_items`] without any tracker charges —
/// for callers (the CSR builder) whose documented model cost is charged
/// explicitly and treats the physical radix passes as uncharged glue.
pub(crate) fn counting_pass_items_uncharged<T: RadixItem>(
    ctx: &Ctx,
    src: &[T],
    dst: &mut [T],
    shift: u32,
    digit_bits: u32,
) {
    let n = src.len();
    let radix = 1usize << digit_bits;
    let mask = (radix - 1) as u64;
    let (num_blocks, block_size) = block_plan(ctx, n, radix);

    // Flat histogram matrix [block][digit], reused across passes and calls.
    let ws = ctx.workspace();
    let mut hist = ws.take_u32(num_blocks * radix);

    // Count: each block zeroes and fills its own row — a sequential read of
    // the record stream, no indirections.
    {
        let hist_ptr = SendPtr(hist.as_mut_ptr());
        for_each_block(ctx, num_blocks, |b| {
            let hp = hist_ptr;
            let start = b * block_size;
            let end = (start + block_size).min(n);
            // SAFETY: rows of the histogram matrix are disjoint per block.
            let row = unsafe { std::slice::from_raw_parts_mut(hp.0.add(b * radix), radix) };
            row.fill(0);
            for r in &src[start..end] {
                row[r.digit_at(shift, mask)] += 1;
            }
        });
    }

    // Global stable offsets: digit-major, then block-major (block-tiled
    // streaming passes instead of the cache-hostile column walk).
    transpose_scan_offsets(ctx, &mut hist, num_blocks, radix, None);

    // Scatter: stream the block again, moving whole records; each
    // (block, digit) offset range is disjoint, so every destination slot is
    // written exactly once.  The histogram row doubles as the running write
    // cursors — no per-block clone.
    {
        let hist_ptr = SendPtr(hist.as_mut_ptr());
        let dst_ptr = SendPtr(dst.as_mut_ptr());
        for_each_block(ctx, num_blocks, |b| {
            let hp = hist_ptr;
            let dp = dst_ptr;
            let start = b * block_size;
            let end = (start + block_size).min(n);
            // SAFETY: disjoint histogram rows (see above).
            let row = unsafe { std::slice::from_raw_parts_mut(hp.0.add(b * radix), radix) };
            for r in &src[start..end] {
                let d = r.digit_at(shift, mask);
                // SAFETY: offsets of different (block, digit) pairs are
                // disjoint ranges, so each output slot is written once.
                unsafe {
                    *dp.0.add(row[d] as usize) = *r;
                }
                row[d] += 1;
            }
        });
    }
}

/// Copy the payload column out of a sorted record buffer (the permutation).
/// Uncharged: the permutation engine returns its order array without an
/// extra pass, and the charge parity between engines is regression-tested.
fn extract_payload(ctx: &Ctx, recs: &[Rec]) -> Vec<u32> {
    if ctx.is_parallel() {
        recs.par_iter()
            .with_min_len(ctx.grain())
            .map(|r| r.pay)
            .collect()
    } else {
        recs.iter().map(|r| r.pay).collect()
    }
}

/// Extract the embedded index column out of sorted packed words (uncharged,
/// see [`extract_payload`]).
fn extract_payload_words(ctx: &Ctx, words: &[u64], idx_bits: u32) -> Vec<u32> {
    let mask = (1u64 << idx_bits) - 1;
    if ctx.is_parallel() {
        words
            .par_iter()
            .with_min_len(ctx.grain())
            .map(|&w| (w & mask) as u32)
            .collect()
    } else {
        words.iter().map(|&w| (w & mask) as u32).collect()
    }
}

/// Fill `items[i] = make(i)` without charging (used where the permutation
/// engine's identity-order setup is also uncharged, and by the CSR builder's
/// word-packing pass, which is glue under its documented model charge).
pub(crate) fn fill_items_uncharged<T, F>(ctx: &Ctx, items: &mut [T], make: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    let n = items.len();
    let ptr = SendPtr(items.as_mut_ptr());
    if ctx.is_parallel() {
        let grain = ctx.grain();
        (0..n.div_ceil(grain)).into_par_iter().for_each(|c| {
            let start = c * grain;
            let end = (start + grain).min(n);
            let p = ptr;
            for i in start..end {
                // SAFETY: disjoint chunks; each slot written once.
                unsafe {
                    p.0.add(i).write(make(i));
                }
            }
        });
    } else {
        for (i, item) in items.iter_mut().enumerate() {
            *item = make(i);
        }
    }
}

// ---------------------------------------------------------------------------
// Permutation engine (the measured baseline).
// ---------------------------------------------------------------------------

/// Baseline implementation: sort an index permutation, gathering
/// `keys[order[i]]` through it in every pass.
fn radix_sort_u64_permutation(ctx: &Ctx, keys: &[u64]) -> Vec<u32> {
    let n = keys.len();
    let mut order: Vec<u32> = ctx.par_map_idx(n, |i| i as u32);
    if n <= 1 {
        return order;
    }
    let max_key = *keys.iter().max().unwrap();
    ctx.charge_step(n as u64);
    let significant_bits = 64 - max_key.leading_zeros();
    let (digit_bits, passes) = plan_digits(significant_bits);

    let mut scratch: Vec<u32> = vec![0; n];
    for pass in 0..passes {
        let shift = pass * digit_bits;
        counting_pass(ctx, keys, &order, &mut scratch, shift, digit_bits);
        std::mem::swap(&mut order, &mut scratch);
    }
    order
}

/// One stable counting pass of the permutation engine: reorder `order` into
/// `out` by the `digit_bits`-wide digit of `keys[·]` at `shift`.  Note the
/// `keys[idx]` gather in both the histogram and the scatter loop — the
/// cache-hostile access pattern the packed engine exists to avoid.
fn counting_pass(
    ctx: &Ctx,
    keys: &[u64],
    order: &[u32],
    out: &mut [u32],
    shift: u32,
    digit_bits: u32,
) {
    let n = order.len();
    let radix = 1usize << digit_bits;
    let digit = |idx: u32| ((keys[idx as usize] >> shift) as usize) & (radix - 1);
    let (num_blocks, block_size) = block_plan(ctx, n, radix);
    let (model_blocks, _) = model_block_plan(ctx, n, radix);

    // Per-block digit histograms over the physical blocks; all charges below
    // use the model plan, so the topology-clamped physical block count stays
    // charge-invisible (matching `counting_pass_items`).
    let mut histograms: Vec<Vec<u32>> = (0..num_blocks).map(|_| Vec::new()).collect();
    {
        let hist_ptr = SendPtr(histograms.as_mut_ptr());
        for_each_block(ctx, num_blocks, |b| {
            let start = b * block_size;
            let end = (start + block_size).min(n);
            let mut h = vec![0u32; radix];
            for &idx in &order[start..end] {
                h[digit(idx)] += 1;
            }
            let hp = hist_ptr;
            // SAFETY: one writer per block slot (the pre-filled empty Vec is
            // dropped by the assignment; an empty Vec owns no heap).
            unsafe {
                *hp.0.add(b) = h;
            }
        });
    }
    ctx.charge_step(model_blocks as u64);

    // Global stable offsets: for digit d, block b, items go after all smaller
    // digits and after the same digit in earlier blocks.
    let mut running = 0u32;
    for d in 0..radix {
        for h in histograms.iter_mut() {
            let c = h[d];
            h[d] = running;
            running += c;
        }
    }
    ctx.charge_step((radix * model_blocks) as u64);

    // Scatter.
    let out_ptr = SendPtr(out.as_mut_ptr());
    for_each_block(ctx, num_blocks, |b| {
        let start = b * block_size;
        let end = (start + block_size).min(n);
        let mut offsets = histograms[b].clone();
        let ptr = out_ptr;
        for &idx in &order[start..end] {
            let d = digit(idx);
            // SAFETY: the offsets of different (block, digit) pairs are
            // disjoint ranges, so each output slot is written exactly once.
            unsafe {
                *ptr.0.add(offsets[d] as usize) = idx;
            }
            offsets[d] += 1;
        }
    });
    ctx.charge_step(model_blocks as u64);
    ctx.charge_work(n as u64);
}

/// Stable sort of the already-ordered index list `order` by `keys[·]`
/// (used for the second pass of the permutation engine's two-pass pair sort).
fn stable_reorder_sort(ctx: &Ctx, keys: &[u64], order: &[u32]) -> Vec<u32> {
    let n = order.len();
    if n <= 1 {
        // lint:allow(alloc-hot-path): trivial-input early return of the
        // permutation baseline, which materialises its order by design.
        return order.to_vec();
    }
    let max_key = order.iter().map(|&i| keys[i as usize]).max().unwrap();
    let significant_bits = 64 - max_key.leading_zeros();
    let (digit_bits, passes) = plan_digits(significant_bits);
    // lint:allow(alloc-hot-path): the permutation baseline engine
    // materialises the order by design; the packed engine is the
    // zero-allocation path.
    let mut current = order.to_vec();
    let mut scratch = vec![0u32; n];
    for pass in 0..passes {
        counting_pass(
            ctx,
            keys,
            &current,
            &mut scratch,
            pass * digit_bits,
            digit_bits,
        );
        std::mem::swap(&mut current, &mut scratch);
    }
    current
}

// ---------------------------------------------------------------------------
// Public permutation-returning API (engine-dispatching).
// ---------------------------------------------------------------------------

/// Stable sort of `0..keys.len()` by `keys[i]`, returning the index
/// permutation in sorted order.  Keys may be any `u64`s; only the significant
/// bits of the maximum key are processed, with an adaptive digit width so
/// that dense (polynomial-range) keys need only a couple of counting passes.
#[must_use]
pub fn radix_sort_u64(ctx: &Ctx, keys: &[u64]) -> Vec<u32> {
    sfcp_pram::faults::on_engine_pass();
    let mut span = ctx.span("radix_sort_u64");
    span.attr("n", keys.len() as u64);
    match ctx.sort_engine() {
        SortEngine::Permutation => radix_sort_u64_permutation(ctx, keys),
        SortEngine::Packed => {
            let n = keys.len();
            if n <= 1 {
                // Matches the baseline's identity-order setup charge.
                ctx.charge_step(n as u64);
                return (0..n as u32).collect();
            }
            let max_key = *keys.iter().max().unwrap();
            ctx.charge_step(n as u64); // max scan, charged as in the baseline
            let key_bits = sig_bits(max_key);
            let idx_bits = idx_bits_for(n);
            let ws = ctx.workspace();
            if key_bits + idx_bits <= 64 {
                let mut words = ws.take_u64(n);
                let mut scratch = ws.take_u64(n);
                // Charged like the baseline's identity-order setup.
                ctx.par_update(&mut words, |i, w| *w = (keys[i] << idx_bits) | i as u64);
                radix_sort_words(ctx, &mut words, &mut scratch, key_bits, idx_bits);
                extract_payload_words(ctx, &words, idx_bits)
            } else {
                let mut recs = ws.take_recs(n);
                let mut scratch = ws.take_recs(n);
                ctx.par_update(&mut recs, |i, r| *r = Rec::new(keys[i], i as u32));
                radix_sort_recs_prebounded(ctx, &mut recs, &mut scratch, key_bits);
                extract_payload(ctx, &recs)
            }
        }
    }
}

/// Stable sort of index pairs `(a, b)` in lexicographic order, returning the
/// index permutation.  This is the exact shape required by step 3 of
/// *Algorithm efficient m.s.p.* and *Algorithm sorting strings* ("sort all the
/// ordered pairs lexicographically").
#[must_use]
pub fn radix_sort_pairs(ctx: &Ctx, pairs: &[(u64, u64)]) -> Vec<u32> {
    sfcp_pram::faults::on_engine_pass();
    let mut span = ctx.span("radix_sort_pairs");
    span.attr("n", pairs.len() as u64);
    let n = pairs.len();
    if n <= 1 {
        return (0..n as u32).collect();
    }
    let max_a = pairs.iter().map(|p| p.0).max().unwrap();
    let max_b = pairs.iter().map(|p| p.1).max().unwrap();
    ctx.charge_step(2 * n as u64);
    // Pack into a single u64 key whenever it fits: shift `a` by exactly the
    // number of significant bits of the largest `b`, so the packed keys stay
    // as narrow as possible (fewer counting passes); otherwise fall back to
    // two stable passes (sort by b, then stably by a).
    let b_bits = sig_bits(max_b);
    let a_bits = sig_bits(max_a);
    match ctx.sort_engine() {
        SortEngine::Permutation => {
            if a_bits + b_bits <= 64 {
                let keys: Vec<u64> = ctx.par_map_slice(pairs, |&(a, b)| (a << b_bits) | b);
                radix_sort_u64(ctx, &keys)
            } else {
                let keys_b: Vec<u64> = ctx.par_map_slice(pairs, |&(_, b)| b);
                let by_b = radix_sort_u64(ctx, &keys_b);
                // Stable second pass over the order produced by the first.
                let keys_a: Vec<u64> = ctx.par_map_slice(pairs, |&(a, _)| a);
                stable_reorder_sort(ctx, &keys_a, &by_b)
            }
        }
        SortEngine::Packed => {
            let ws = ctx.workspace();
            let idx_bits = idx_bits_for(n);
            if a_bits + b_bits + idx_bits <= 64 {
                // Tightest path: key and index in one u64 word.
                let mut words = ws.take_u64(n);
                let mut scratch = ws.take_u64(n);
                // One pass packs key and index (charged like the baseline's
                // key-packing map)…
                ctx.par_update(&mut words, |i, w| {
                    let (a, b) = pairs[i];
                    *w = (((a << b_bits) | b) << idx_bits) | i as u64;
                });
                // …plus the baseline's identity-order setup and max-scan
                // charges (the key width is already known here).
                ctx.charge_step(n as u64);
                ctx.charge_step(n as u64);
                radix_sort_words(ctx, &mut words, &mut scratch, a_bits + b_bits, idx_bits);
                extract_payload_words(ctx, &words, idx_bits)
            } else if a_bits + b_bits <= 64 {
                let mut recs = ws.take_recs(n);
                let mut scratch = ws.take_recs(n);
                // Packed records (charged like the baseline's key-packing
                // map, plus its identity-order setup and max scan — the key
                // width is already exact: the pair containing max_a pins
                // sig_bits(max packed key) to a_bits + b_bits).
                ctx.par_update(&mut recs, |i, r| {
                    let (a, b) = pairs[i];
                    *r = Rec::new((a << b_bits) | b, i as u32);
                });
                ctx.charge_step(n as u64);
                ctx.charge_step(n as u64);
                radix_sort_recs_prebounded(ctx, &mut recs, &mut scratch, a_bits + b_bits);
                extract_payload(ctx, &recs)
            } else {
                // Wide pairs: two stable record passes (by b, then by a).
                // Both key widths are already known, so neither sort
                // re-scans for the max (the baseline's max scan of pass one
                // is charged explicitly).
                let mut recs = ws.take_recs(n);
                let mut scratch = ws.take_recs(n);
                ctx.par_update(&mut recs, |i, r| *r = Rec::new(pairs[i].1, i as u32));
                ctx.charge_step(n as u64); // baseline identity-order setup
                ctx.charge_step(n as u64); // baseline max scan of pass one
                radix_sort_recs_prebounded(ctx, &mut recs, &mut scratch, b_bits);
                ctx.par_update(&mut recs, |_, r| r.key = pairs[r.pay as usize].0);
                radix_sort_recs_prebounded(ctx, &mut recs, &mut scratch, a_bits);
                extract_payload(ctx, &recs)
            }
        }
    }
}

/// Stable counting sort of arbitrary items by a small integer key
/// (`key(i) < bound`), returning the permutation of indices.
///
/// Prefer this over [`radix_sort_u64`] when the key range is explicitly known
/// and small (e.g. already-dense labels): a single counting pass, `O(n + bound)`
/// work.
#[must_use]
pub fn counting_sort_by_key<F>(ctx: &Ctx, n: usize, bound: usize, key: F) -> Vec<u32>
where
    F: Fn(usize) -> usize + Sync + Send,
{
    sfcp_pram::faults::on_engine_pass();
    let _span = ctx.span("counting_sort");
    if n == 0 {
        return Vec::new();
    }
    // A single 8-bit counting pass only handles bound <= 256; otherwise fall
    // back to the full radix sort (still linear work for polynomial-range
    // keys).
    if bound > RADIX {
        let keys: Vec<u64> = ctx.par_map_idx(n, |i| {
            let k = key(i);
            debug_assert!(k < bound, "key {k} out of bound {bound}");
            k as u64
        });
        return radix_sort_u64(ctx, &keys);
    }
    match ctx.sort_engine() {
        SortEngine::Permutation => {
            let keys: Vec<u64> = ctx.par_map_idx(n, |i| {
                let k = key(i);
                debug_assert!(k < bound, "key {k} out of bound {bound}");
                k as u64
            });
            let order: Vec<u32> = (0..n as u32).collect();
            let mut out = vec![0u32; n];
            ctx.charge_step(bound as u64);
            counting_pass(ctx, &keys, &order, &mut out, 0, 8);
            out
        }
        SortEngine::Packed => {
            let ws = ctx.workspace();
            // Indices are u32 everywhere in this file, so an 8-bit key plus
            // the index always fits in one word.
            let idx_bits = idx_bits_for(n);
            debug_assert!(8 + idx_bits <= 64);
            // Charged like the baseline's key map; the identity-order setup
            // is uncharged in both engines.
            ctx.charge_step(n as u64);
            let mut words = ws.take_u64(n);
            let mut scratch = ws.take_u64(n);
            fill_items_uncharged(ctx, &mut words, |i| {
                let k = key(i);
                debug_assert!(k < bound, "key {k} out of bound {bound}");
                ((k as u64) << idx_bits) | i as u64
            });
            ctx.charge_step(bound as u64);
            counting_pass_items(ctx, &words, &mut scratch, idx_bits, 8);
            extract_payload_words(ctx, &scratch, idx_bits)
        }
    }
}

struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: `SendPtr` only smuggles a raw base pointer into parallel tasks
// whose writes target disjoint indices; every dereference site carries its
// own SAFETY argument for that disjointness, and the pointee buffer is
// borrowed for the whole parallel region, so it outlives every task.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` across tasks only copies the pointer value —
// no shared-reference method dereferences it, so aliased access to the
// pointee can never originate from the `Sync` impl itself.
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use sfcp_pram::Mode;

    fn both_engines() -> [SortEngine; 2] {
        [SortEngine::Packed, SortEngine::Permutation]
    }

    fn check_is_stable_sort(keys: &[u64], order: &[u32]) {
        assert_eq!(order.len(), keys.len());
        // Sorted.
        for w in order.windows(2) {
            let (a, b) = (keys[w[0] as usize], keys[w[1] as usize]);
            assert!(a <= b, "not sorted: {a} > {b}");
            if a == b {
                assert!(w[0] < w[1], "not stable on equal keys");
            }
        }
        // A permutation.
        let mut seen = vec![false; keys.len()];
        for &i in order {
            assert!(!seen[i as usize], "duplicate index {i}");
            seen[i as usize] = true;
        }
    }

    #[test]
    fn empty_and_single() {
        for engine in both_engines() {
            let ctx = Ctx::parallel().with_sort_engine(engine);
            assert!(radix_sort_u64(&ctx, &[]).is_empty());
            assert_eq!(radix_sort_u64(&ctx, &[42]), vec![0]);
        }
    }

    #[test]
    fn small_with_duplicates() {
        for engine in both_engines() {
            let ctx = Ctx::sequential().with_sort_engine(engine);
            let keys = [5u64, 3, 5, 1, 3, 3, 0];
            let order = radix_sort_u64(&ctx, &keys);
            check_is_stable_sort(&keys, &order);
            assert_eq!(order, vec![6, 3, 1, 4, 5, 0, 2]);
        }
    }

    #[test]
    fn large_random_both_modes_and_engines() {
        let mut rng = StdRng::seed_from_u64(7);
        let keys: Vec<u64> = (0..100_000).map(|_| rng.gen_range(0..1_000_000)).collect();
        for mode in [Mode::Sequential, Mode::Parallel] {
            for engine in both_engines() {
                let ctx = Ctx::new(mode).with_sort_engine(engine);
                let order = radix_sort_u64(&ctx, &keys);
                check_is_stable_sort(&keys, &order);
            }
        }
    }

    #[test]
    fn large_keys_use_more_passes() {
        for engine in both_engines() {
            let ctx = Ctx::parallel().with_sort_engine(engine);
            let keys = [u64::from(u32::MAX) + 17, 3, 1 << 40, 12, 1 << 40];
            let order = radix_sort_u64(&ctx, &keys);
            check_is_stable_sort(&keys, &order);
        }
    }

    #[test]
    fn pair_sort_lexicographic() {
        for engine in both_engines() {
            let ctx = Ctx::parallel().with_sort_engine(engine);
            let pairs = [
                (1u64, 3u64),
                (2, 3),
                (4, 3),
                (1, 2),
                (3, 4),
                (2, 0),
                (1, 1),
                (1, 3),
                (2, 2),
                (3, 2),
            ];
            let order = radix_sort_pairs(&ctx, &pairs);
            let sorted: Vec<(u64, u64)> = order.iter().map(|&i| pairs[i as usize]).collect();
            let mut expected = pairs.to_vec();
            expected.sort();
            assert_eq!(sorted, expected);
            // Stability on the duplicate (1,3).
            let pos_first = order.iter().position(|&i| i == 0).unwrap();
            let pos_second = order.iter().position(|&i| i == 7).unwrap();
            assert!(pos_first < pos_second);
        }
    }

    #[test]
    fn pair_sort_wide_values() {
        for engine in both_engines() {
            let ctx = Ctx::parallel().with_sort_engine(engine);
            let big = 1u64 << 40;
            let pairs = [(big, 1u64), (1, big), (big, 0), (0, big), (big, big)];
            let order = radix_sort_pairs(&ctx, &pairs);
            let sorted: Vec<(u64, u64)> = order.iter().map(|&i| pairs[i as usize]).collect();
            let mut expected = pairs.to_vec();
            expected.sort();
            assert_eq!(sorted, expected);
        }
    }

    #[test]
    fn pair_sort_wide_values_stability() {
        // Wide pairs with duplicates exercise the two-pass path's stability.
        let big = 1u64 << 50;
        let pairs: Vec<(u64, u64)> = (0..2000u64).map(|i| (big + i % 7, (i % 5) << 40)).collect();
        for engine in both_engines() {
            let ctx = Ctx::parallel().with_sort_engine(engine);
            let order = radix_sort_pairs(&ctx, &pairs);
            for w in order.windows(2) {
                let (x, y) = (pairs[w[0] as usize], pairs[w[1] as usize]);
                assert!(x <= y);
                if x == y {
                    assert!(w[0] < w[1], "two-pass pair sort must be stable");
                }
            }
        }
    }

    #[test]
    fn counting_sort_small_bound() {
        for engine in both_engines() {
            let ctx = Ctx::parallel().with_sort_engine(engine);
            let data = [3usize, 1, 2, 1, 0, 3, 2];
            let order = counting_sort_by_key(&ctx, data.len(), 4, |i| data[i]);
            let keys: Vec<u64> = data.iter().map(|&x| x as u64).collect();
            check_is_stable_sort(&keys, &order);
        }
    }

    #[test]
    fn counting_sort_large_bound_falls_back() {
        for engine in both_engines() {
            let ctx = Ctx::parallel().with_sort_engine(engine);
            let data: Vec<usize> = (0..5000).map(|i| (i * 37) % 4999).collect();
            let order = counting_sort_by_key(&ctx, data.len(), 4999, |i| data[i]);
            let keys: Vec<u64> = data.iter().map(|&x| x as u64).collect();
            check_is_stable_sort(&keys, &order);
        }
    }

    #[test]
    fn work_is_near_linear() {
        let ctx = Ctx::parallel();
        let keys: Vec<u64> = (0..200_000u64).rev().collect();
        let _ = radix_sort_u64(&ctx, &keys);
        let stats = ctx.stats();
        // 2 digit passes (max key < 2^18) at ~2n each plus setup: well under
        // the ~n log n ≈ 3.5M a comparison sort would be charged.
        assert!(
            stats.work < 2_500_000,
            "work {} should be near-linear",
            stats.work
        );
    }

    /// The charge-discipline invariant: both engines charge byte-identical
    /// work/depth for every entry point, in both execution modes.
    #[test]
    fn engines_charge_identically() {
        let mut rng = StdRng::seed_from_u64(11);
        let keys: Vec<u64> = (0..40_000).map(|_| rng.gen_range(0..5_000_000)).collect();
        let narrow: Vec<(u64, u64)> = (0..30_000)
            .map(|_| (rng.gen_range(0..60_000), rng.gen_range(0..60_000)))
            .collect();
        // 30+30-bit keys: the packed key fits in 64 bits but not together
        // with the index — exercises the middle (wide-record) pair branch.
        let mid: Vec<(u64, u64)> = (0..30_000)
            .map(|_| {
                (
                    rng.gen_range(1 << 29..1u64 << 30),
                    rng.gen_range(1 << 29..1u64 << 30),
                )
            })
            .collect();
        let wide: Vec<(u64, u64)> = (0..20_000)
            .map(|_| {
                (
                    rng.gen_range(0..u64::MAX / 2),
                    rng.gen_range(0..u64::MAX / 2),
                )
            })
            .collect();
        let small: Vec<usize> = (0..10_000).map(|i| (i * 13) % 256).collect();
        for mode in [Mode::Sequential, Mode::Parallel] {
            let packed = Ctx::new(mode).with_sort_engine(SortEngine::Packed);
            let baseline = Ctx::new(mode).with_sort_engine(SortEngine::Permutation);
            for ctx in [&packed, &baseline] {
                let _ = radix_sort_u64(ctx, &keys);
                let _ = radix_sort_pairs(ctx, &narrow);
                let _ = radix_sort_pairs(ctx, &mid);
                let _ = radix_sort_pairs(ctx, &wide);
                let _ = counting_sort_by_key(ctx, small.len(), 256, |i| small[i]);
            }
            assert_eq!(
                packed.stats(),
                baseline.stats(),
                "engines diverged in {mode:?} mode"
            );
        }
    }

    /// After a warm-up call, the packed engine's sorts stop allocating:
    /// every buffer checkout is served from the workspace pool.
    #[test]
    fn packed_engine_reuses_workspace_buffers() {
        let keys: Vec<u64> = (0..50_000u64).rev().collect();
        let ctx = Ctx::parallel();
        let _ = radix_sort_u64(&ctx, &keys); // warm up the pools
        let before = ctx.workspace().stats();
        for _ in 0..5 {
            let _ = radix_sort_u64(&ctx, &keys);
        }
        let after = ctx.workspace().stats();
        assert!(after.checkouts > before.checkouts);
        assert_eq!(
            after.misses, before.misses,
            "warm sorts must not allocate fresh buffers"
        );
    }

    proptest! {
        #[test]
        fn matches_stable_std_sort(keys in proptest::collection::vec(0u64..10_000, 0..3000)) {
            for engine in [SortEngine::Packed, SortEngine::Permutation] {
                let ctx = Ctx::parallel().with_grain(64).with_sort_engine(engine);
                let order = radix_sort_u64(&ctx, &keys);
                check_is_stable_sort(&keys, &order);
                // Oracle: indices sorted stably by key.
                let mut expected: Vec<u32> = (0..keys.len() as u32).collect();
                expected.sort_by_key(|&i| keys[i as usize]);
                prop_assert_eq!(order, expected);
            }
        }

        #[test]
        fn engines_agree_on_pairs(pairs in proptest::collection::vec((0u64..500, 0u64..500), 0..2000)) {
            let packed = Ctx::parallel().with_grain(64);
            let baseline = Ctx::parallel().with_grain(64).with_sort_engine(SortEngine::Permutation);
            let a = radix_sort_pairs(&packed, &pairs);
            let b = radix_sort_pairs(&baseline, &pairs);
            prop_assert_eq!(&a, &b, "engines must produce the identical permutation");
            let sorted: Vec<(u64, u64)> = a.iter().map(|&i| pairs[i as usize]).collect();
            let mut expected = pairs.clone();
            expected.sort();
            prop_assert_eq!(sorted, expected);
        }
    }

    /// Miri target: the counting-pass / packed-scatter raw-pointer writes,
    /// at a size that crosses the block plan on both engines.
    #[test]
    fn miri_radix_sort_scatter_paths_both_engines() {
        let keys: Vec<u64> = (0..3000u64)
            .map(|i| i.wrapping_mul(2_654_435_761) % 977)
            .collect();
        for engine in both_engines() {
            let ctx = Ctx::parallel().with_sort_engine(engine);
            check_is_stable_sort(&keys, &radix_sort_u64(&ctx, &keys));
        }
    }
}

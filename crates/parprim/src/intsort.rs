//! Integer sorting: stable counting sort and LSD radix sort, sequential and
//! block-parallel.
//!
//! This is the routine the paper charges its only super-linear term to: it
//! uses the Bhatt–Diks–Hagerup–Prasad–Radzik–Saxena deterministic integer
//! sorting algorithm (`O(log n / log log n)` time, `O(n log log n)` work) to
//! sort keys drawn from `[1, n^{O(1)}]`.  The practical analogue implemented
//! here is a least-significant-digit radix sort with 8-bit digits:
//!
//! * work `O(n · ⌈b/8⌉)` where `b` is the number of significant key bits —
//!   linear in `n` for the polynomial-range keys the algorithms produce,
//! * depth `O(⌈b/8⌉ · log n)` from the per-digit histogram scans,
//! * **stable**, which the pair-contraction steps of *efficient m.s.p.* and
//!   *sorting strings* rely on.
//!
//! All entry points return a *permutation* (`Vec<u32>` of indices in sorted
//! order) rather than moving the caller's data, because every caller needs to
//! carry auxiliary per-item information (original positions, string ids, …).

use sfcp_pram::Ctx;

/// Default small-key bound for single-pass counting sorts.
const RADIX: usize = 1 << 8;
/// Widest digit the sorter will use; bounded so the per-block histogram
/// matrices stay small.
const MAX_DIGIT_BITS: u32 = 15;

/// Pick the digit width that minimises the number of counting passes for keys
/// of the given significant width.  The paper's integer sort exploits exactly
/// this "polynomial range ⇒ constant number of passes of range-n counting
/// sort" structure, so dense pair keys are handled in two or three passes.
fn plan_digits(significant_bits: u32) -> (u32, u32) {
    let sig = significant_bits.max(1);
    let passes = sig.div_ceil(MAX_DIGIT_BITS).max(1);
    let digit_bits = sig.div_ceil(passes).clamp(4, MAX_DIGIT_BITS);
    (digit_bits, sig.div_ceil(digit_bits))
}

/// Stable sort of `0..keys.len()` by `keys[i]`, returning the index
/// permutation in sorted order.  Keys may be any `u64`s; only the significant
/// bits of the maximum key are processed, with an adaptive digit width so
/// that dense (polynomial-range) keys need only a couple of counting passes.
#[must_use]
pub fn radix_sort_u64(ctx: &Ctx, keys: &[u64]) -> Vec<u32> {
    let n = keys.len();
    let mut order: Vec<u32> = ctx.par_map_idx(n, |i| i as u32);
    if n <= 1 {
        return order;
    }
    let max_key = *keys.iter().max().unwrap();
    ctx.charge_step(n as u64);
    let significant_bits = 64 - max_key.leading_zeros();
    let (digit_bits, passes) = plan_digits(significant_bits);

    let mut scratch: Vec<u32> = vec![0; n];
    for pass in 0..passes {
        let shift = pass * digit_bits;
        counting_pass(ctx, keys, &order, &mut scratch, shift, digit_bits);
        std::mem::swap(&mut order, &mut scratch);
    }
    order
}

/// One stable counting pass: reorder `order` into `out` by the
/// `digit_bits`-wide digit of `keys[·]` at `shift`.
fn counting_pass(
    ctx: &Ctx,
    keys: &[u64],
    order: &[u32],
    out: &mut [u32],
    shift: u32,
    digit_bits: u32,
) {
    let n = order.len();
    let radix = 1usize << digit_bits;
    let digit = |idx: u32| ((keys[idx as usize] >> shift) as usize) & (radix - 1);

    // Choose a block count: enough to parallelise, small enough that the
    // histogram matrix (blocks × radix) stays cheap (≤ ~4M counters).
    let max_blocks = ((1usize << 22) / radix).clamp(1, 256);
    let num_blocks = if ctx.is_parallel() {
        (n / 8192).clamp(1, max_blocks)
    } else {
        1
    };
    let block_size = n.div_ceil(num_blocks);

    // Per-block digit histograms.
    let mut histograms: Vec<Vec<u32>> = ctx.par_map_idx(num_blocks, |b| {
        let start = b * block_size;
        let end = (start + block_size).min(n);
        let mut h = vec![0u32; radix];
        for &idx in &order[start..end] {
            h[digit(idx)] += 1;
        }
        h
    });

    // Global stable offsets: for digit d, block b, items go after all smaller
    // digits and after the same digit in earlier blocks.
    let mut running = 0u32;
    for d in 0..radix {
        for h in histograms.iter_mut() {
            let c = h[d];
            h[d] = running;
            running += c;
        }
    }
    ctx.charge_step((radix * num_blocks) as u64);

    // Scatter.
    let out_ptr = SendPtr(out.as_mut_ptr());
    ctx.par_for_idx(num_blocks, |b| {
        let start = b * block_size;
        let end = (start + block_size).min(n);
        let mut offsets = histograms[b].clone();
        let ptr = out_ptr;
        for &idx in &order[start..end] {
            let d = digit(idx);
            // Safety: the offsets of different (block, digit) pairs are
            // disjoint ranges, so each output slot is written exactly once.
            unsafe {
                *ptr.0.add(offsets[d] as usize) = idx;
            }
            offsets[d] += 1;
        }
    });
    ctx.charge_work(n as u64);
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Stable sort of index pairs `(a, b)` in lexicographic order, returning the
/// index permutation.  This is the exact shape required by step 3 of
/// *Algorithm efficient m.s.p.* and *Algorithm sorting strings* ("sort all the
/// ordered pairs lexicographically").
#[must_use]
pub fn radix_sort_pairs(ctx: &Ctx, pairs: &[(u64, u64)]) -> Vec<u32> {
    let n = pairs.len();
    if n <= 1 {
        return (0..n as u32).collect();
    }
    let max_a = pairs.iter().map(|p| p.0).max().unwrap();
    let max_b = pairs.iter().map(|p| p.1).max().unwrap();
    ctx.charge_step(2 * n as u64);
    // Pack into a single u64 key whenever it fits: shift `a` by exactly the
    // number of significant bits of the largest `b`, so the packed keys stay
    // as narrow as possible (fewer counting passes); otherwise fall back to
    // two stable passes (sort by b, then stably by a).
    let b_bits = (64 - max_b.leading_zeros()).max(1);
    let a_bits = (64 - max_a.leading_zeros()).max(1);
    if a_bits + b_bits <= 64 {
        let keys: Vec<u64> = ctx.par_map_slice(pairs, |&(a, b)| (a << b_bits) | b);
        radix_sort_u64(ctx, &keys)
    } else {
        let keys_b: Vec<u64> = ctx.par_map_slice(pairs, |&(_, b)| b);
        let by_b = radix_sort_u64(ctx, &keys_b);
        // Stable second pass over the order produced by the first pass.
        let keys_a: Vec<u64> = ctx.par_map_slice(pairs, |&(a, _)| a);
        stable_reorder_sort(ctx, &keys_a, &by_b)
    }
}

/// Stable sort of the already-ordered index list `order` by `keys[·]`
/// (used for the second pass of the two-pass pair sort).
fn stable_reorder_sort(ctx: &Ctx, keys: &[u64], order: &[u32]) -> Vec<u32> {
    let n = order.len();
    if n <= 1 {
        return order.to_vec();
    }
    let max_key = order.iter().map(|&i| keys[i as usize]).max().unwrap();
    let significant_bits = 64 - max_key.leading_zeros();
    let (digit_bits, passes) = plan_digits(significant_bits);
    let mut current = order.to_vec();
    let mut scratch = vec![0u32; n];
    for pass in 0..passes {
        counting_pass(ctx, keys, &current, &mut scratch, pass * digit_bits, digit_bits);
        std::mem::swap(&mut current, &mut scratch);
    }
    current
}

/// Stable counting sort of arbitrary items by a small integer key
/// (`key(i) < bound`), returning the permutation of indices.
///
/// Prefer this over [`radix_sort_u64`] when the key range is explicitly known
/// and small (e.g. already-dense labels): a single counting pass, `O(n + bound)`
/// work.
#[must_use]
pub fn counting_sort_by_key<F>(ctx: &Ctx, n: usize, bound: usize, key: F) -> Vec<u32>
where
    F: Fn(usize) -> usize + Sync + Send,
{
    if n == 0 {
        return Vec::new();
    }
    let keys: Vec<u64> = ctx.par_map_idx(n, |i| {
        let k = key(i);
        debug_assert!(k < bound, "key {k} out of bound {bound}");
        k as u64
    });
    // A single 8-bit counting pass only handles bound <= 256; otherwise fall
    // back to the full radix sort (still linear work for polynomial-range keys).
    if bound > RADIX {
        return radix_sort_u64(ctx, &keys);
    }
    let order: Vec<u32> = (0..n as u32).collect();
    let mut out = vec![0u32; n];
    ctx.charge_step(bound as u64);
    counting_pass(ctx, &keys, &order, &mut out, 0, 8);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::Rng as _;
    use sfcp_pram::Mode;

    fn check_is_stable_sort(keys: &[u64], order: &[u32]) {
        assert_eq!(order.len(), keys.len());
        // Sorted.
        for w in order.windows(2) {
            let (a, b) = (keys[w[0] as usize], keys[w[1] as usize]);
            assert!(a <= b, "not sorted: {a} > {b}");
            if a == b {
                assert!(w[0] < w[1], "not stable on equal keys");
            }
        }
        // A permutation.
        let mut seen = vec![false; keys.len()];
        for &i in order {
            assert!(!seen[i as usize], "duplicate index {i}");
            seen[i as usize] = true;
        }
    }

    #[test]
    fn empty_and_single() {
        let ctx = Ctx::parallel();
        assert!(radix_sort_u64(&ctx, &[]).is_empty());
        assert_eq!(radix_sort_u64(&ctx, &[42]), vec![0]);
    }

    #[test]
    fn small_with_duplicates() {
        let ctx = Ctx::sequential();
        let keys = [5u64, 3, 5, 1, 3, 3, 0];
        let order = radix_sort_u64(&ctx, &keys);
        check_is_stable_sort(&keys, &order);
        assert_eq!(order, vec![6, 3, 1, 4, 5, 0, 2]);
    }

    #[test]
    fn large_random_both_modes() {
        let mut rng = StdRng::seed_from_u64(7);
        let keys: Vec<u64> = (0..100_000).map(|_| rng.gen_range(0..1_000_000)).collect();
        for mode in [Mode::Sequential, Mode::Parallel] {
            let ctx = Ctx::new(mode);
            let order = radix_sort_u64(&ctx, &keys);
            check_is_stable_sort(&keys, &order);
        }
    }

    #[test]
    fn large_keys_use_more_passes() {
        let ctx = Ctx::parallel();
        let keys = [u64::from(u32::MAX) + 17, 3, 1 << 40, 12, 1 << 40];
        let order = radix_sort_u64(&ctx, &keys);
        check_is_stable_sort(&keys, &order);
    }

    #[test]
    fn pair_sort_lexicographic() {
        let ctx = Ctx::parallel();
        let pairs = [(1u64, 3u64), (2, 3), (4, 3), (1, 2), (3, 4), (2, 0), (1, 1), (1, 3), (2, 2), (3, 2)];
        let order = radix_sort_pairs(&ctx, &pairs);
        let sorted: Vec<(u64, u64)> = order.iter().map(|&i| pairs[i as usize]).collect();
        let mut expected = pairs.to_vec();
        expected.sort();
        assert_eq!(sorted, expected);
        // Stability on the duplicate (1,3).
        let pos_first = order.iter().position(|&i| i == 0).unwrap();
        let pos_second = order.iter().position(|&i| i == 7).unwrap();
        assert!(pos_first < pos_second);
    }

    #[test]
    fn pair_sort_wide_values() {
        let ctx = Ctx::parallel();
        let big = 1u64 << 40;
        let pairs = [(big, 1u64), (1, big), (big, 0), (0, big), (big, big)];
        let order = radix_sort_pairs(&ctx, &pairs);
        let sorted: Vec<(u64, u64)> = order.iter().map(|&i| pairs[i as usize]).collect();
        let mut expected = pairs.to_vec();
        expected.sort();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn counting_sort_small_bound() {
        let ctx = Ctx::parallel();
        let data = [3usize, 1, 2, 1, 0, 3, 2];
        let order = counting_sort_by_key(&ctx, data.len(), 4, |i| data[i]);
        let keys: Vec<u64> = data.iter().map(|&x| x as u64).collect();
        check_is_stable_sort(&keys, &order);
    }

    #[test]
    fn counting_sort_large_bound_falls_back() {
        let ctx = Ctx::parallel();
        let data: Vec<usize> = (0..5000).map(|i| (i * 37) % 4999).collect();
        let order = counting_sort_by_key(&ctx, data.len(), 4999, |i| data[i]);
        let keys: Vec<u64> = data.iter().map(|&x| x as u64).collect();
        check_is_stable_sort(&keys, &order);
    }

    #[test]
    fn work_is_near_linear() {
        let ctx = Ctx::parallel();
        let keys: Vec<u64> = (0..200_000u64).rev().collect();
        let _ = radix_sort_u64(&ctx, &keys);
        let stats = ctx.stats();
        // 3 digit passes (max key < 2^18) at ~2n each plus setup: well under
        // the ~n log n ≈ 3.5M a comparison sort would be charged.
        assert!(stats.work < 2_500_000, "work {} should be near-linear", stats.work);
    }

    proptest! {
        #[test]
        fn matches_stable_std_sort(keys in proptest::collection::vec(0u64..10_000, 0..3000)) {
            let ctx = Ctx::parallel().with_grain(64);
            let order = radix_sort_u64(&ctx, &keys);
            check_is_stable_sort(&keys, &order);
        }

        #[test]
        fn pairs_match_std_sort(pairs in proptest::collection::vec((0u64..500, 0u64..500), 0..2000)) {
            let ctx = Ctx::parallel().with_grain(64);
            let order = radix_sort_pairs(&ctx, &pairs);
            let sorted: Vec<(u64, u64)> = order.iter().map(|&i| pairs[i as usize]).collect();
            let mut expected = pairs.clone();
            expected.sort();
            prop_assert_eq!(sorted, expected);
        }
    }
}

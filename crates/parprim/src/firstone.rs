//! First set position in a Boolean array.
//!
//! *Algorithm simple m.s.p.* eliminates one of two candidates by locating the
//! first position where their length-`2^i` prefixes differ; the paper invokes
//! the constant-time CRCW "first 1 in a Boolean array" result of Fich, Ragde
//! and Wigderson for this.  On real hardware the practical analogue is a
//! parallel min-index reduction (`O(n)` work, `O(log n)` depth), which is what
//! this module provides, together with a convenience comparator for two
//! equal-length windows of a circular string.

use sfcp_pram::Ctx;

/// The index of the first `true` in `flags`, or `None` if all are `false`.
#[must_use]
pub fn first_true(ctx: &Ctx, flags: &[bool]) -> Option<usize> {
    let n = flags.len();
    if n == 0 {
        return None;
    }
    let idx = ctx.par_reduce_idx(
        n,
        usize::MAX,
        |i| if flags[i] { i } else { usize::MAX },
        |a, b| a.min(b),
    );
    if idx == usize::MAX {
        None
    } else {
        Some(idx)
    }
}

/// First index `k < len` where `f(k) != g(k)`, or `None` if the two
/// length-`len` sequences are equal.  This is the "compare two overlapping
/// strings" primitive of *simple m.s.p.* expressed over accessor closures so
/// that circular indexing stays in the caller.
#[must_use]
pub fn first_mismatch<F, G, T>(ctx: &Ctx, len: usize, f: F, g: G) -> Option<usize>
where
    T: Eq,
    F: Fn(usize) -> T + Sync + Send,
    G: Fn(usize) -> T + Sync + Send,
{
    if len == 0 {
        return None;
    }
    let idx = ctx.par_reduce_idx(
        len,
        usize::MAX,
        |k| if f(k) == g(k) { usize::MAX } else { k },
        |a, b| a.min(b),
    );
    if idx == usize::MAX {
        None
    } else {
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sfcp_pram::Mode;

    #[test]
    fn finds_first_true() {
        for mode in [Mode::Sequential, Mode::Parallel] {
            let ctx = Ctx::new(mode);
            assert_eq!(first_true(&ctx, &[]), None);
            assert_eq!(first_true(&ctx, &[false, false]), None);
            assert_eq!(first_true(&ctx, &[true]), Some(0));
            assert_eq!(
                first_true(&ctx, &[false, false, true, true, false]),
                Some(2)
            );
        }
    }

    #[test]
    fn finds_first_mismatch() {
        let ctx = Ctx::parallel().with_grain(4);
        let a = [1, 2, 3, 4, 5];
        let b = [1, 2, 9, 4, 7];
        assert_eq!(first_mismatch(&ctx, 5, |i| a[i], |i| b[i]), Some(2));
        assert_eq!(first_mismatch(&ctx, 2, |i| a[i], |i| b[i]), None);
        assert_eq!(first_mismatch(&ctx, 0, |i| a[i], |i| b[i]), None);
    }

    proptest! {
        #[test]
        fn matches_position(flags in proptest::collection::vec(any::<bool>(), 0..2000)) {
            let ctx = Ctx::parallel().with_grain(64);
            prop_assert_eq!(first_true(&ctx, &flags), flags.iter().position(|&b| b));
        }
    }
}

//! Pointer jumping on rooted forests and permutations.
//!
//! Pointer jumping (a.k.a. path doubling) is the simplest way to aggregate
//! information along directed paths in `O(log n)` rounds.  It is used here
//! for three jobs:
//!
//! * [`find_roots`] / [`distance_to_root`] — locate, for each node of a
//!   rooted forest (`parent[r] == r` for roots), the root of its tree and the
//!   distance to it.  These back the tree-labelling step of Section 4 and
//!   serve as a cross-check for the Euler-tour computations.
//! * [`permutation_cycle_min`] — for a permutation given as a successor
//!   array, the minimum element of each cycle.  This labels the Euler cycles
//!   produced by *Algorithm finding cycle nodes* (Section 5) and elects cycle
//!   leaders for the cycle-labelling step.
//!
//! All three are `O(n log n)` work and `O(log n)` depth.  Where the paper
//! needs the work-optimal variant it combines pointer jumping with the
//! list-ranking / Euler-tour machinery; the experiments quantify the gap.

use sfcp_pram::Ctx;

/// For every node of a rooted forest, the root of its tree.
/// Roots are the fixed points of `parent`.
///
/// # Panics
/// Panics if `parent` contains an out-of-range index or if the structure has
/// a cycle other than the root self-loops (checked in debug builds only).
#[must_use]
pub fn find_roots(ctx: &Ctx, parent: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    find_roots_into(ctx, parent, &mut out);
    out
}

/// [`find_roots`] writing into a reusable output buffer.  The per-round jump
/// arrays ping-pong between `out` and one workspace checkout, so the
/// `O(log n)` rounds allocate nothing once the pool is warm.
pub fn find_roots_into(ctx: &Ctx, parent: &[u32], out: &mut Vec<u32>) {
    let n = parent.len();
    out.clear();
    if n == 0 {
        return;
    }
    for (i, &p) in parent.iter().enumerate() {
        assert!((p as usize) < n, "parent[{i}] = {p} out of range");
    }
    out.resize(n, 0);
    out.copy_from_slice(parent);
    let ws = ctx.workspace();
    let mut next_up = ws.take_u32(n);
    let rounds = sfcp_pram::ceil_log2(n) + 1;
    for r in 0..rounds {
        {
            let up: &[u32] = out;
            ctx.par_update(&mut next_up, |i, u| *u = up[up[i] as usize]);
        }
        if *next_up == *out {
            // Converged: every pointer is already at its root, so the
            // remaining rounds would be identity passes.  Charge them without
            // executing — the model cost of pointer jumping is
            // input-independent (ceil_log2(n) + 1 rounds), only the wall
            // clock shortcuts.
            charge_skipped_rounds(ctx, (rounds - 1 - r) as u64, n as u64);
            return;
        }
        std::mem::swap(out, &mut *next_up);
    }
    debug_assert!(
        (0..n).all(|i| out[out[i] as usize] == out[i]),
        "pointer jumping did not converge — `parent` is not a rooted forest"
    );
}

/// A raw pointer wrapper that asserts cross-thread transferability.  Every
/// use in this module writes disjoint indices from different tasks.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Charge `skipped` rounds of `ops_per_round` operations each — the cost of
/// pointer-jumping rounds that an early convergence exit did not execute.
/// Keeps tracked work/depth byte-identical to the always-run-all-rounds
/// baseline (see DESIGN.md "Charge discipline").
fn charge_skipped_rounds(ctx: &Ctx, skipped: u64, ops_per_round: u64) {
    ctx.charge_work(skipped * ops_per_round);
    ctx.charge_rounds(skipped);
}

/// For every node of a rooted forest, its distance (number of edges) to the
/// root of its tree.
#[must_use]
pub fn distance_to_root(ctx: &Ctx, parent: &[u32]) -> Vec<u32> {
    let n = parent.len();
    if n == 0 {
        return Vec::new();
    }
    for (i, &p) in parent.iter().enumerate() {
        assert!((p as usize) < n, "parent[{i}] = {p} out of range");
    }
    let ws = ctx.workspace();
    let mut up = ws.take_u32(n);
    up.copy_from_slice(parent);
    let mut dist: Vec<u32> = ctx.par_map_idx(n, |i| u32::from(parent[i] as usize != i));
    let mut next_dist = ws.take_u32(n);
    let mut next_up = ws.take_u32(n);
    let rounds = sfcp_pram::ceil_log2(n) + 1;
    for r in 0..rounds {
        {
            let (dist_ref, up_ref) = (&dist, &up);
            ctx.par_update(&mut next_dist, |i, d| {
                *d = dist_ref[i] + dist_ref[up_ref[i] as usize];
            });
            let up_ref = &up;
            ctx.par_update(&mut next_up, |i, u| *u = up_ref[up_ref[i] as usize]);
        }
        std::mem::swap(&mut dist, &mut *next_dist);
        std::mem::swap(&mut *up, &mut *next_up);
        if *next_up == *up {
            // All pointers at their roots (dist[root] = 0, so dist is stable
            // too); charge the skipped rounds and stop.
            charge_skipped_rounds(ctx, 2 * (rounds - 1 - r) as u64, n as u64);
            break;
        }
    }
    dist
}

/// For every element of a permutation (successor array `succ`), the minimum
/// element on its cycle.  Elements on the same cycle — and only those — get
/// the same representative.
///
/// # Panics
/// Panics if `succ` is not a permutation of `0..succ.len()`.
#[must_use]
pub fn permutation_cycle_min(ctx: &Ctx, succ: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    permutation_cycle_min_into(ctx, succ, &mut out);
    out
}

/// [`permutation_cycle_min`] writing into a reusable output buffer; all
/// per-round jump/best arrays are workspace checkouts ping-ponged across the
/// `O(log n)` rounds.
pub fn permutation_cycle_min_into(ctx: &Ctx, succ: &[u32], out: &mut Vec<u32>) {
    let n = succ.len();
    out.clear();
    if n == 0 {
        return;
    }
    let ws = ctx.workspace();
    // Validate permutation-ness: every element must appear exactly once.
    // `seen` is a bitset so the random probes stay inside an n/8-byte,
    // cache-resident buffer.
    let mut seen = ws.take_u64(n.div_ceil(64));
    seen.fill(0);
    for (i, &s) in succ.iter().enumerate() {
        assert!((s as usize) < n, "succ[{i}] = {s} out of range");
        let (word, bit) = (s as usize / 64, s as usize % 64);
        assert!(
            seen[word] >> bit & 1 == 0,
            "succ is not a permutation: {s} repeated"
        );
        seen[word] |= 1 << bit;
    }
    ctx.charge_step(n as u64);

    if n > CYCLE_MIN_CONTRACTION_THRESHOLD {
        cycle_min_by_contraction(ctx, succ, out);
        return;
    }

    // Packed (best, jump) state — the cache-aware twin of the classic
    // two-array doubling loop.  A round reads `best[jump[i]]` and
    // `jump[jump[i]]`, i.e. the *same* random index in two arrays; packing
    // both halves into one u64 word makes that a single gather per element
    // per round instead of two (plus the sequential read), at 8 bytes of
    // traffic.  Charges are pinned to the two-pass baseline below.
    let mut state = ws.take_u64(n);
    ctx.par_update(&mut state, |i, s| {
        let best = (i as u32).min(succ[i]);
        *s = (u64::from(best) << 32) | u64::from(succ[i]);
    });
    let mut next_state = ws.take_u64(n);
    let rounds = sfcp_pram::ceil_log2(n) + 1;
    for _ in 0..rounds {
        {
            let state_ref = &state;
            ctx.par_update(&mut next_state, |i, s| {
                let cur = state_ref[i];
                let via = state_ref[(cur & 0xFFFF_FFFF) as usize];
                let best = (cur >> 32).min(via >> 32);
                *s = (best << 32) | (via & 0xFFFF_FFFF);
            });
        }
        // The baseline advances `best` and `jump` as two separate parallel
        // passes; the fused packed pass above charged one of them.
        ctx.charge_step(n as u64);
        std::mem::swap(&mut *state, &mut *next_state);
    }
    // Unpack the cycle minima (uncharged glue, like the payload extraction
    // of the packed sort engine).
    out.resize(n, 0);
    for (o, &s) in out.iter_mut().zip(state.iter()) {
        *o = (s >> 32) as u32;
    }
}

/// Above this size the cycle-min labeling runs as a sparse-ruling-set
/// contraction instead of whole-array pointer jumping: `log n` rounds of
/// random gathers over the full array lose badly to one segment walk plus
/// jumping over a `k`-times-smaller, cache-resident contracted list.
const CYCLE_MIN_CONTRACTION_THRESHOLD: usize = 4096;

/// Cycle minima by sparse-ruling-set contraction (execution path for large
/// inputs).
///
/// Sample ~`n / k` rulers deterministically, walk each inter-ruler segment
/// once recording the segment minimum and the end ruler of every element,
/// pointer-jump (packed) over the contracted ruler list, and expand.  Cycles
/// that received no sampled ruler are swept sequentially at the end (w.h.p. a
/// vanishing fraction; the sweep is linear in the number of uncovered
/// elements).
///
/// Charge discipline: the model cost of this routine is pinned to the
/// documented pointer-jumping substitution — init plus two steps of `n`
/// operations for each of `ceil_log2(n) + 1` rounds, exactly what the
/// jumping path of [`permutation_cycle_min_into`] charges after validation.
/// The contraction's own (smaller) pass charges are counted and the
/// remainder is topped up, so tracked work/depth is independent of which
/// execution path ran (see DESIGN.md "Charge discipline").
fn cycle_min_by_contraction(ctx: &Ctx, succ: &[u32], out: &mut Vec<u32>) {
    let n = succ.len();
    let ws = ctx.workspace();
    let before = ctx.stats();
    let rounds = (sfcp_pram::ceil_log2(n) + 1) as u64;
    let target_work = (n as u64) * (1 + 2 * rounds);
    let target_rounds = 1 + 2 * rounds;

    let k = sfcp_pram::ceil_log2(n).max(2) as usize * 2;
    // Rulers: fixed points (their cycle is just {i}) plus a deterministic
    // 1/k hash sample.  A cycle may end up with no ruler at all — handled by
    // the final sequential sweep.
    let mut is_ruler = ws.take_u8(n);
    ctx.par_update(&mut is_ruler, |i, r| {
        *r = u8::from(
            succ[i] as usize == i
                || (sfcp_pram::fxhash::hash_u64(i as u64) as usize).is_multiple_of(k),
        );
    });
    let mut ruler_ids = ws.take_u32(0);
    crate::compact::compact_indices_into(ctx, n, |i| is_ruler[i] == 1, &mut ruler_ids);
    let m = ruler_ids.len();
    // Only ruler slots are read back, so no fill.
    let mut ruler_index = ws.take_u32(n);
    for (j, &r) in ruler_ids.iter().enumerate() {
        ruler_index[r as usize] = j as u32;
    }

    // Walk every segment once: record the end ruler of each element and the
    // segment minimum, building the contracted (min, next-ruler) state
    // directly in packed form.  `end_ruler[i] == u32::MAX` afterwards marks
    // elements on ruler-free cycles.
    let mut end_ruler = ws.take_u32(n);
    end_ruler.fill(u32::MAX);
    let mut state = ws.take_u64(m);
    {
        let end_ptr = SendPtr(end_ruler.as_mut_ptr());
        let state_ptr = SendPtr(state.as_mut_ptr());
        let (ruler_ids, ruler_index, is_ruler) = (&ruler_ids, &ruler_index, &is_ruler);
        ctx.par_for_idx(m, |j| {
            let start = ruler_ids[j] as usize;
            let mut min = start as u32;
            let mut cur = succ[start] as usize;
            let (ep, sp) = (end_ptr, state_ptr);
            while cur != start && is_ruler[cur] == 0 {
                // Safety: each element is interior to exactly one segment.
                unsafe {
                    *ep.0.add(cur) = j as u32;
                }
                min = min.min(cur as u32);
                cur = succ[cur] as usize;
            }
            // Wrapped all the way around: this cycle's only ruler is j.
            let next_ruler = if cur == start {
                j as u32
            } else {
                ruler_index[cur]
            };
            // Safety: one writer per ruler.
            unsafe {
                *ep.0.add(start) = j as u32;
                *sp.0.add(j) = (u64::from(min) << 32) | u64::from(next_ruler);
            }
        });
    }

    // Packed min-jumping over the contracted list (m ≈ n / k elements, so
    // the state stays cache-resident); stops as soon as the minima
    // stabilize.
    let mut next_state = ws.take_u64(m);
    for _ in 0..sfcp_pram::ceil_log2(m.max(2)) + 1 {
        {
            let state_ref = &state;
            ctx.par_update(&mut next_state, |j, s| {
                let cur = state_ref[j];
                let via = state_ref[(cur & 0xFFFF_FFFF) as usize];
                let best = (cur >> 32).min(via >> 32);
                *s = (best << 32) | (via & 0xFFFF_FFFF);
            });
        }
        let stable = state
            .iter()
            .zip(next_state.iter())
            .all(|(a, b)| a >> 32 == b >> 32);
        std::mem::swap(&mut *state, &mut *next_state);
        if stable {
            break;
        }
    }

    // Expand: every covered element takes its end ruler's cycle minimum.
    out.resize(n, 0);
    {
        let (end_ruler, state) = (&end_ruler, &state);
        ctx.par_update(out, |i, o| {
            let e = end_ruler[i];
            *o = if e == u32::MAX {
                u32::MAX // ruler-free cycle, resolved below
            } else {
                (state[e as usize] >> 32) as u32
            };
        });
    }

    // Sequential sweep over ruler-free cycles (each walked twice: minimum,
    // then assignment).
    for i in 0..n {
        if end_ruler[i] != u32::MAX {
            continue;
        }
        let mut min = i as u32;
        let mut cur = succ[i] as usize;
        while cur != i {
            min = min.min(cur as u32);
            cur = succ[cur] as usize;
        }
        out[i] = min;
        end_ruler[i] = u32::MAX - 1;
        let mut cur = succ[i] as usize;
        while cur != i {
            out[cur] = min;
            end_ruler[cur] = u32::MAX - 1;
            cur = succ[cur] as usize;
        }
    }

    // Top up to the pinned jumping-path charges.
    let consumed = ctx.stats();
    let (dw, dr) = (consumed.work - before.work, consumed.rounds - before.rounds);
    debug_assert!(
        dw <= target_work && dr <= target_rounds,
        "contraction consumed more than the pinned jumping budget ({dw}/{target_work} work, {dr}/{target_rounds} rounds)"
    );
    ctx.charge_work(target_work.saturating_sub(dw));
    ctx.charge_rounds(target_rounds.saturating_sub(dr));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    #[allow(clippy::needless_range_loop)]
    fn random_forest(n: usize, roots: usize, seed: u64) -> Vec<u32> {
        // Node i > 0 picks a parent among smaller indices; the first `roots`
        // nodes are roots.  Then apply a random relabelling so structure is
        // not index-ordered.
        let mut rng = StdRng::seed_from_u64(seed);
        let roots = roots.clamp(1, n);
        let mut parent: Vec<u32> = (0..n as u32).collect();
        for i in roots..n {
            parent[i] = rng.gen_range(0..i) as u32;
        }
        let mut relabel: Vec<u32> = (0..n as u32).collect();
        relabel.shuffle(&mut rng);
        let mut new_parent = vec![0u32; n];
        for i in 0..n {
            new_parent[relabel[i] as usize] = relabel[parent[i] as usize];
        }
        new_parent
    }

    fn reference_root_and_dist(parent: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let n = parent.len();
        let mut roots = vec![0u32; n];
        let mut dist = vec![0u32; n];
        for i in 0..n {
            let mut cur = i;
            let mut d = 0;
            while parent[cur] as usize != cur {
                cur = parent[cur] as usize;
                d += 1;
                assert!(d <= n as u32);
            }
            roots[i] = cur as u32;
            dist[i] = d;
        }
        (roots, dist)
    }

    #[test]
    fn empty_and_single() {
        let ctx = Ctx::parallel();
        assert!(find_roots(&ctx, &[]).is_empty());
        assert_eq!(find_roots(&ctx, &[0]), vec![0]);
        assert_eq!(distance_to_root(&ctx, &[0]), vec![0]);
    }

    #[test]
    fn small_forest() {
        // Tree: 0 <- 1 <- 2, 0 <- 3; separate root 4.
        let parent = vec![0u32, 0, 1, 0, 4];
        let ctx = Ctx::parallel();
        assert_eq!(find_roots(&ctx, &parent), vec![0, 0, 0, 0, 4]);
        assert_eq!(distance_to_root(&ctx, &parent), vec![0, 1, 2, 1, 0]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn deep_path() {
        let n = 30_000;
        let mut parent: Vec<u32> = (0..n as u32).collect();
        for i in 1..n {
            parent[i] = (i - 1) as u32;
        }
        let ctx = Ctx::parallel();
        let roots = find_roots(&ctx, &parent);
        assert!(roots.iter().all(|&r| r == 0));
        let dist = distance_to_root(&ctx, &parent);
        assert_eq!(dist[n - 1], (n - 1) as u32);
        assert_eq!(dist[0], 0);
    }

    #[test]
    fn permutation_cycles() {
        // Permutation with cycles (0 2 4), (1 3), (5).
        let succ = vec![2u32, 3, 4, 1, 0, 5];
        let ctx = Ctx::parallel();
        assert_eq!(permutation_cycle_min(&ctx, &succ), vec![0, 1, 0, 1, 0, 5]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutation() {
        let ctx = Ctx::sequential();
        let _ = permutation_cycle_min(&ctx, &[0, 0, 1]);
    }

    /// Reference cycle minima by walking every cycle.
    fn reference_cycle_min(succ: &[u32]) -> Vec<u32> {
        let n = succ.len();
        let mut expected = vec![u32::MAX; n];
        for start in 0..n {
            if expected[start] != u32::MAX {
                continue;
            }
            let mut members = vec![start];
            let mut cur = succ[start] as usize;
            while cur != start {
                members.push(cur);
                cur = succ[cur] as usize;
            }
            let m = *members.iter().min().unwrap() as u32;
            for x in members {
                expected[x] = m;
            }
        }
        expected
    }

    /// The contraction path (n > threshold) must agree with the reference on
    /// large shuffled permutations in both modes.
    #[test]
    fn contraction_path_matches_reference_large() {
        use sfcp_pram::Mode;
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 20_000 + seed as usize * 7;
            let mut succ: Vec<u32> = (0..n as u32).collect();
            succ.shuffle(&mut rng);
            let expected = reference_cycle_min(&succ);
            for mode in [Mode::Sequential, Mode::Parallel] {
                let ctx = Ctx::new(mode);
                assert_eq!(
                    permutation_cycle_min(&ctx, &succ),
                    expected,
                    "seed {seed}, {mode:?}"
                );
            }
        }
    }

    /// Cycles whose members are all unsampled (no hash-selected ruler) are
    /// resolved by the sequential sweep.
    #[test]
    fn contraction_handles_ruler_free_cycles() {
        let n = 10_000;
        let k = (sfcp_pram::ceil_log2(n) as usize).max(2) * 2;
        // Collect unsampled indices and link them into cycles of length 7.
        let unsampled: Vec<u32> = (0..n as u32)
            .filter(|&i| !(sfcp_pram::fxhash::hash_u64(u64::from(i)) as usize).is_multiple_of(k))
            .collect();
        assert!(unsampled.len() > 100, "sampling rate sanity");
        let mut succ: Vec<u32> = (0..n as u32).collect();
        for chunk in unsampled.chunks(7).take(40) {
            for w in 0..chunk.len() {
                succ[chunk[w] as usize] = chunk[(w + 1) % chunk.len()];
            }
        }
        let expected = reference_cycle_min(&succ);
        let ctx = Ctx::parallel();
        assert_eq!(permutation_cycle_min(&ctx, &succ), expected);
    }

    /// The contraction execution must charge exactly what the jumping path
    /// charges: validation + init + two steps of n per round.
    #[test]
    fn contraction_charges_match_jumping_model() {
        let n = 30_000;
        let mut rng = StdRng::seed_from_u64(9);
        let mut succ: Vec<u32> = (0..n as u32).collect();
        succ.shuffle(&mut rng);
        let ctx = Ctx::parallel();
        let _ = permutation_cycle_min(&ctx, &succ);
        let rounds = (sfcp_pram::ceil_log2(n) + 1) as u64;
        let expected_work = (n as u64) * (2 + 2 * rounds);
        let expected_rounds = 2 + 2 * rounds;
        assert_eq!(ctx.stats().work, expected_work);
        assert_eq!(ctx.stats().rounds, expected_rounds);
    }

    proptest! {
        #[test]
        fn forest_matches_reference(n in 1usize..500, roots in 1usize..10, seed in 0u64..50) {
            let parent = random_forest(n, roots, seed);
            let (exp_roots, exp_dist) = reference_root_and_dist(&parent);
            let ctx = Ctx::parallel().with_grain(32);
            prop_assert_eq!(find_roots(&ctx, &parent), exp_roots);
            prop_assert_eq!(distance_to_root(&ctx, &parent), exp_dist);
        }

        #[test]
        fn permutation_min_matches_reference(n in 1usize..300, seed in 0u64..50) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut succ: Vec<u32> = (0..n as u32).collect();
            succ.shuffle(&mut rng);
            // Reference: walk each cycle.
            let mut expected = vec![u32::MAX; n];
            for start in 0..n {
                if expected[start] != u32::MAX { continue; }
                let mut members = vec![start];
                let mut cur = succ[start] as usize;
                while cur != start {
                    members.push(cur);
                    cur = succ[cur] as usize;
                }
                let m = *members.iter().min().unwrap() as u32;
                for x in members {
                    expected[x] = m;
                }
            }
            let ctx = Ctx::parallel().with_grain(32);
            prop_assert_eq!(permutation_cycle_min(&ctx, &succ), expected);
        }
    }
}

//! Pointer jumping on rooted forests and permutations.
//!
//! Pointer jumping (a.k.a. path doubling) is the simplest way to aggregate
//! information along directed paths in `O(log n)` rounds.  It is used here
//! for three jobs:
//!
//! * [`find_roots`] / [`distance_to_root`] — locate, for each node of a
//!   rooted forest (`parent[r] == r` for roots), the root of its tree and the
//!   distance to it.  These back the tree-labelling step of Section 4 and
//!   serve as a cross-check for the Euler-tour computations.
//! * [`permutation_cycle_min`] — for a permutation given as a successor
//!   array, the minimum element of each cycle.  This labels the Euler cycles
//!   produced by *Algorithm finding cycle nodes* (Section 5) and elects cycle
//!   leaders for the cycle-labelling step.
//!
//! All three are `O(n log n)` work and `O(log n)` depth.  Where the paper
//! needs the work-optimal variant it combines pointer jumping with the
//! list-ranking / Euler-tour machinery; the experiments quantify the gap.

use sfcp_pram::{Ctx, Error, RankEngine};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Monotone count of [`find_roots_into`] invocations in this process — a
/// regression hook for the root-threading contract: `decompose` computes
/// the root array **once** per run and threads it through the tour finish,
/// the `cycle_of` propagation, and tree labelling (`tests/root_threading.rs`
/// pins the count).  One relaxed atomic increment per call; not part of the
/// cost model.
static FIND_ROOTS_CALLS: AtomicU64 = AtomicU64::new(0);

/// Number of [`find_roots_into`] calls made so far by this process (testing
/// hook; see `FIND_ROOTS_CALLS`'s doc).
#[must_use]
pub fn find_roots_invocations() -> u64 {
    FIND_ROOTS_CALLS.load(Ordering::Relaxed)
}

/// For every node of a rooted forest, the root of its tree.
/// Roots are the fixed points of `parent`.
///
/// # Panics
/// Panics if `parent` contains an out-of-range index or if the structure has
/// a cycle other than the root self-loops (checked in debug builds only).
#[must_use]
pub fn find_roots(ctx: &Ctx, parent: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    find_roots_into(ctx, parent, &mut out);
    out
}

/// [`find_roots`] writing into a reusable output buffer.  The per-round jump
/// arrays ping-pong between `out` and one workspace checkout, so the
/// `O(log n)` rounds allocate nothing once the pool is warm.
pub fn find_roots_into(ctx: &Ctx, parent: &[u32], out: &mut Vec<u32>) {
    FIND_ROOTS_CALLS.fetch_add(1, Ordering::Relaxed);
    sfcp_pram::faults::on_engine_pass();
    let _span = ctx.span("find_roots");
    let n = parent.len();
    out.clear();
    if n == 0 {
        return;
    }
    for (i, &p) in parent.iter().enumerate() {
        assert!((p as usize) < n, "parent[{i}] = {p} out of range");
    }
    out.resize(n, 0);
    out.copy_from_slice(parent);
    let ws = ctx.workspace();
    let mut next_up = ws.take_u32(n);
    let rounds = sfcp_pram::ceil_log2(n) + 1;
    for r in 0..rounds {
        // Convergence detection rides inside the jump pass itself — each
        // chunk OR-accumulates `up[up[i]] ^ up[i]` branchlessly and raises
        // the shared flag once at its end — so no separate array-compare
        // pass runs per round (idempotent relaxed stores of `true`,
        // common-CRCW style; uncharged physical glue, as the compare pass
        // it replaces was).  `par_chunks_mut` charges one round of `n`,
        // exactly like the `par_update` formulation.
        let changed = AtomicBool::new(false);
        let chunk = ctx.grain();
        {
            let up: &[u32] = out;
            let changed = &changed;
            ctx.par_chunks_mut(&mut next_up, chunk, |ci, slice| {
                let base = ci * chunk;
                let mut diff = 0u32;
                for (o, u) in slice.iter_mut().enumerate() {
                    let cur = up[base + o];
                    let next = up[cur as usize];
                    diff |= next ^ cur;
                    *u = next;
                }
                if diff != 0 {
                    changed.store(true, Ordering::Relaxed);
                }
            });
        }
        if !changed.load(Ordering::Relaxed) {
            // Converged: every pointer is already at its root, so the
            // remaining rounds would be identity passes.  Charge them without
            // executing — the model cost of pointer jumping is
            // input-independent (ceil_log2(n) + 1 rounds), only the wall
            // clock shortcuts.
            charge_skipped_rounds(ctx, (rounds - 1 - r) as u64, n as u64);
            return;
        }
        std::mem::swap(out, &mut *next_up);
    }
    debug_assert!(
        (0..n).all(|i| out[out[i] as usize] == out[i]),
        "pointer jumping did not converge — `parent` is not a rooted forest"
    );
}

/// Charge `skipped` rounds of `ops_per_round` operations each — the cost of
/// pointer-jumping rounds that an early convergence exit did not execute.
/// Keeps tracked work/depth byte-identical to the always-run-all-rounds
/// baseline (see DESIGN.md "Charge discipline").
fn charge_skipped_rounds(ctx: &Ctx, skipped: u64, ops_per_round: u64) {
    ctx.charge_work(skipped * ops_per_round);
    ctx.charge_rounds(skipped);
}

/// For every node of a rooted forest, its distance (number of edges) to the
/// root of its tree.
#[must_use]
pub fn distance_to_root(ctx: &Ctx, parent: &[u32]) -> Vec<u32> {
    sfcp_pram::faults::on_engine_pass();
    let _span = ctx.span("distance_to_root");
    let n = parent.len();
    if n == 0 {
        return Vec::new();
    }
    for (i, &p) in parent.iter().enumerate() {
        assert!((p as usize) < n, "parent[{i}] = {p} out of range");
    }
    let ws = ctx.workspace();
    let mut up = ws.take_u32(n);
    up.copy_from_slice(parent);
    let mut dist: Vec<u32> = ctx.par_map_idx(n, |i| u32::from(parent[i] as usize != i));
    let mut next_dist = ws.take_u32(n);
    let mut next_up = ws.take_u32(n);
    let rounds = sfcp_pram::ceil_log2(n) + 1;
    for r in 0..rounds {
        {
            let (dist_ref, up_ref) = (&dist, &up);
            ctx.par_update(&mut next_dist, |i, d| {
                *d = dist_ref[i] + dist_ref[up_ref[i] as usize];
            });
            let up_ref = &up;
            ctx.par_update(&mut next_up, |i, u| *u = up_ref[up_ref[i] as usize]);
        }
        std::mem::swap(&mut dist, &mut *next_dist);
        std::mem::swap(&mut *up, &mut *next_up);
        if *next_up == *up {
            // All pointers at their roots (dist[root] = 0, so dist is stable
            // too); charge the skipped rounds and stop.
            charge_skipped_rounds(ctx, 2 * (rounds - 1 - r) as u64, n as u64);
            break;
        }
    }
    dist
}

/// For every element of a permutation (successor array `succ`), the minimum
/// element on its cycle.  Elements on the same cycle — and only those — get
/// the same representative.
///
/// # Panics
/// Panics if `succ` is not a permutation of `0..succ.len()`.
#[must_use]
pub fn permutation_cycle_min(ctx: &Ctx, succ: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    permutation_cycle_min_into(ctx, succ, &mut out);
    out
}

/// [`permutation_cycle_min`] writing into a reusable output buffer; all
/// per-round jump/best arrays are workspace checkouts ping-ponged across the
/// `O(log n)` rounds.
pub fn permutation_cycle_min_into(ctx: &Ctx, succ: &[u32], out: &mut Vec<u32>) {
    try_permutation_cycle_min_into(ctx, succ, out).unwrap_or_else(|e| panic!("{e}"));
}

/// [`permutation_cycle_min`] with typed validation: rejects out-of-range
/// successors, repeated elements (non-permutations), and domains at or above
/// `2^31` (whose indices would collide with the bit-31 ruler flag of the
/// contraction machinery) with an [`Error`] instead of panicking.
pub fn try_permutation_cycle_min(ctx: &Ctx, succ: &[u32]) -> Result<Vec<u32>, Error> {
    let mut out = Vec::new();
    try_permutation_cycle_min_into(ctx, succ, &mut out)?;
    Ok(out)
}

/// [`try_permutation_cycle_min`] writing into a reusable output buffer.
pub fn try_permutation_cycle_min_into(
    ctx: &Ctx,
    succ: &[u32],
    out: &mut Vec<u32>,
) -> Result<(), Error> {
    sfcp_pram::faults::on_engine_pass();
    let _span = ctx.span("cycle_min");
    let n = succ.len();
    out.clear();
    if n == 0 {
        return Ok(());
    }
    sfcp_pram::check_index_width(n)?;
    let ws = ctx.workspace();
    // Validate permutation-ness: every element must appear exactly once.
    // `seen` is a bitset so the random probes stay inside an n/8-byte,
    // cache-resident buffer.
    let mut seen = ws.take_u64(n.div_ceil(64));
    seen.fill(0);
    for (i, &s) in succ.iter().enumerate() {
        if s as usize >= n {
            return Err(Error::OutOfRange {
                what: "succ",
                index: i,
                value: s,
                len: n,
            });
        }
        let (word, bit) = (s as usize / 64, s as usize % 64);
        if seen[word] >> bit & 1 != 0 {
            return Err(Error::NotAPermutation { duplicate: s });
        }
        seen[word] |= 1 << bit;
    }
    ctx.charge_step(n as u64);

    if n > CYCLE_MIN_CONTRACTION_THRESHOLD && ctx.rank_engine() != RankEngine::PointerJump {
        // The contraction executes on the shared ruling-set machinery of the
        // list-ranking subsystem; the engine picks the segment-walk layout
        // (sequential for `RulingSet`, wavefront batches for `CacheBucket`).
        // Both are topped up to the pinned pointer-jumping model below, so
        // the engine choice never shows in tracked charges.  Domains at or
        // above 2^31 cannot carry the machinery's flag bit; they were
        // rejected by the width check above.
        crate::listrank::cycle_min_contraction_into(ctx, succ, out, ctx.rank_engine());
        return Ok(());
    }

    cycle_min_doubling(ctx, succ, out);
    Ok(())
}

/// [`permutation_cycle_min_into`] over a **flagged** successor permutation
/// the caller built (`flagged[i] = succ[i] | RULER_FLAG·ruler(i)`, see
/// [`crate::listrank::RULER_FLAG`]): the flag bit must be set for every
/// fixed point and for the deterministic hash sample
/// ([`crate::listrank::is_sampled_ruler`]`(i, n)`).  The input is
/// **trusted** to be a permutation — the validation pass is charged without
/// being executed (the early-exit discipline of DESIGN.md, "Charge
/// discipline"); a non-permutation makes the walks spin or panic instead of
/// being reported up front.  Charges are identical to
/// [`permutation_cycle_min_into`] on the unflagged permutation.
///
/// This is the cycle-min half of the `has_pred`/sampling fold: the
/// buddy-edge face permutation of `cycle_nodes_euler` ORs the flags in as
/// it writes each successor, deleting the separate validation and sampling
/// passes from the hot path.
pub fn permutation_cycle_min_flagged_into(ctx: &Ctx, flagged: &[u32], out: &mut Vec<u32>) {
    sfcp_pram::faults::on_engine_pass();
    let _span = ctx.span("cycle_min_flagged");
    let n = flagged.len();
    out.clear();
    if n == 0 {
        return;
    }
    // The validation pass of the untrusted entry point, charged without
    // being executed.
    ctx.charge_step(n as u64);
    if n > CYCLE_MIN_CONTRACTION_THRESHOLD && ctx.rank_engine() != RankEngine::PointerJump {
        // No flag-construction pass was charged inside the pinned budget
        // (the caller's flags ride along in its own charged passes).
        crate::listrank::cycle_min_contraction_flagged_core(
            ctx,
            flagged,
            out,
            ctx.rank_engine(),
            0,
        );
        return;
    }
    // Strip the flags (uncharged glue, parallel like the other packing
    // passes) and run the doubling loop the unflagged path would run.
    let ws = ctx.workspace();
    let mut plain = ws.take_u32(n);
    crate::intsort::fill_items_uncharged(ctx, &mut plain, |i| {
        flagged[i] & !crate::listrank::RULER_FLAG
    });
    cycle_min_doubling(ctx, &plain, out);
}

/// The packed `(best, jump)` doubling loop — the cache-aware twin of the
/// classic two-array formulation.  A round reads `best[jump[i]]` and
/// `jump[jump[i]]`, i.e. the *same* random index in two arrays; packing
/// both halves into one u64 word makes that a single gather per element
/// per round instead of two (plus the sequential read), at 8 bytes of
/// traffic.  Charges are pinned to the two-pass baseline.
fn cycle_min_doubling(ctx: &Ctx, succ: &[u32], out: &mut Vec<u32>) {
    let n = succ.len();
    let ws = ctx.workspace();
    let mut state = ws.take_u64(n);
    ctx.par_update(&mut state, |i, s| {
        let best = (i as u32).min(succ[i]);
        *s = (u64::from(best) << 32) | u64::from(succ[i]);
    });
    let mut next_state = ws.take_u64(n);
    let rounds = sfcp_pram::ceil_log2(n) + 1;
    for _ in 0..rounds {
        {
            let state_ref = &state;
            ctx.par_update(&mut next_state, |i, s| {
                let cur = state_ref[i];
                let via = state_ref[(cur & 0xFFFF_FFFF) as usize];
                let best = (cur >> 32).min(via >> 32);
                *s = (best << 32) | (via & 0xFFFF_FFFF);
            });
        }
        // The baseline advances `best` and `jump` as two separate parallel
        // passes; the fused packed pass above charged one of them.
        ctx.charge_step(n as u64);
        std::mem::swap(&mut *state, &mut *next_state);
    }
    // Unpack the cycle minima (uncharged glue, like the payload extraction
    // of the packed sort engine).
    out.resize(n, 0);
    for (o, &s) in out.iter_mut().zip(state.iter()) {
        *o = (s >> 32) as u32;
    }
}

/// Above this size the cycle-min labeling runs as a sparse-ruling-set
/// contraction instead of whole-array pointer jumping: `log n` rounds of
/// random gathers over the full array lose badly to one segment walk plus
/// jumping over a `k`-times-smaller, cache-resident contracted list.  The
/// contraction lives in the list-ranking engine subsystem
/// (`crate::listrank`), which also picks the physical walk layout; under
/// [`RankEngine::PointerJump`] the doubling loop below runs at every size,
/// as the documented model baseline.  All paths charge identically.
const CYCLE_MIN_CONTRACTION_THRESHOLD: usize = 4096;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    #[allow(clippy::needless_range_loop)]
    fn random_forest(n: usize, roots: usize, seed: u64) -> Vec<u32> {
        // Node i > 0 picks a parent among smaller indices; the first `roots`
        // nodes are roots.  Then apply a random relabelling so structure is
        // not index-ordered.
        let mut rng = StdRng::seed_from_u64(seed);
        let roots = roots.clamp(1, n);
        let mut parent: Vec<u32> = (0..n as u32).collect();
        for i in roots..n {
            parent[i] = rng.gen_range(0..i) as u32;
        }
        let mut relabel: Vec<u32> = (0..n as u32).collect();
        relabel.shuffle(&mut rng);
        let mut new_parent = vec![0u32; n];
        for i in 0..n {
            new_parent[relabel[i] as usize] = relabel[parent[i] as usize];
        }
        new_parent
    }

    fn reference_root_and_dist(parent: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let n = parent.len();
        let mut roots = vec![0u32; n];
        let mut dist = vec![0u32; n];
        for i in 0..n {
            let mut cur = i;
            let mut d = 0;
            while parent[cur] as usize != cur {
                cur = parent[cur] as usize;
                d += 1;
                assert!(d <= n as u32);
            }
            roots[i] = cur as u32;
            dist[i] = d;
        }
        (roots, dist)
    }

    #[test]
    fn empty_and_single() {
        let ctx = Ctx::parallel();
        assert!(find_roots(&ctx, &[]).is_empty());
        assert_eq!(find_roots(&ctx, &[0]), vec![0]);
        assert_eq!(distance_to_root(&ctx, &[0]), vec![0]);
    }

    #[test]
    fn small_forest() {
        // Tree: 0 <- 1 <- 2, 0 <- 3; separate root 4.
        let parent = vec![0u32, 0, 1, 0, 4];
        let ctx = Ctx::parallel();
        assert_eq!(find_roots(&ctx, &parent), vec![0, 0, 0, 0, 4]);
        assert_eq!(distance_to_root(&ctx, &parent), vec![0, 1, 2, 1, 0]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn deep_path() {
        let n = 30_000;
        let mut parent: Vec<u32> = (0..n as u32).collect();
        for i in 1..n {
            parent[i] = (i - 1) as u32;
        }
        let ctx = Ctx::parallel();
        let roots = find_roots(&ctx, &parent);
        assert!(roots.iter().all(|&r| r == 0));
        let dist = distance_to_root(&ctx, &parent);
        assert_eq!(dist[n - 1], (n - 1) as u32);
        assert_eq!(dist[0], 0);
    }

    #[test]
    fn permutation_cycles() {
        // Permutation with cycles (0 2 4), (1 3), (5).
        let succ = vec![2u32, 3, 4, 1, 0, 5];
        let ctx = Ctx::parallel();
        assert_eq!(permutation_cycle_min(&ctx, &succ), vec![0, 1, 0, 1, 0, 5]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutation() {
        let ctx = Ctx::sequential();
        let _ = permutation_cycle_min(&ctx, &[0, 0, 1]);
    }

    /// Reference cycle minima by walking every cycle.
    fn reference_cycle_min(succ: &[u32]) -> Vec<u32> {
        let n = succ.len();
        let mut expected = vec![u32::MAX; n];
        for start in 0..n {
            if expected[start] != u32::MAX {
                continue;
            }
            let mut members = vec![start];
            let mut cur = succ[start] as usize;
            while cur != start {
                members.push(cur);
                cur = succ[cur] as usize;
            }
            let m = *members.iter().min().unwrap() as u32;
            for x in members {
                expected[x] = m;
            }
        }
        expected
    }

    /// The contraction path (n > threshold) must agree with the reference on
    /// large shuffled permutations, in both modes, under every engine (the
    /// `PointerJump` engine runs the doubling loop at every size).
    #[test]
    fn contraction_path_matches_reference_large() {
        use sfcp_pram::Mode;
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 20_000 + seed as usize * 7;
            let mut succ: Vec<u32> = (0..n as u32).collect();
            succ.shuffle(&mut rng);
            let expected = reference_cycle_min(&succ);
            for mode in [Mode::Sequential, Mode::Parallel] {
                for engine in RankEngine::ALL {
                    let ctx = Ctx::new(mode).with_rank_engine(engine);
                    assert_eq!(
                        permutation_cycle_min(&ctx, &succ),
                        expected,
                        "seed {seed}, {mode:?}, {engine:?}"
                    );
                }
            }
        }
    }

    /// Every engine charges the identical pinned pointer-jumping model for
    /// cycle minima — the contraction paths count their own passes and top
    /// the difference up.
    #[test]
    fn cycle_min_engines_charge_identically() {
        let n = 30_000;
        let mut rng = StdRng::seed_from_u64(31);
        let mut succ: Vec<u32> = (0..n as u32).collect();
        succ.shuffle(&mut rng);
        let mut stats = Vec::new();
        for engine in RankEngine::ALL {
            let ctx = Ctx::parallel().with_rank_engine(engine);
            let _ = permutation_cycle_min(&ctx, &succ);
            stats.push((engine, ctx.stats()));
        }
        for w in stats.windows(2) {
            assert_eq!(
                w[0].1, w[1].1,
                "{:?} and {:?} diverged in cycle-min charges",
                w[0].0, w[1].0
            );
        }
    }

    /// The flagged cycle-min entry (flags built per its contract) must match
    /// the untrusted entry's output and charges for every engine, across the
    /// contraction threshold.
    #[test]
    fn flagged_cycle_min_matches_untrusted_entry() {
        use crate::listrank::is_sampled_ruler;
        for (n, seed) in [(100usize, 1u64), (4096, 2), (4097, 3), (30_000, 4)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut succ: Vec<u32> = (0..n as u32).collect();
            succ.shuffle(&mut rng);
            let flagged: Vec<u32> = succ
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let ruler = s as usize == i || is_sampled_ruler(i, n);
                    s | (u32::from(ruler) << 31)
                })
                .collect();
            for engine in RankEngine::ALL {
                let untrusted = Ctx::parallel().with_rank_engine(engine);
                let trusted = Ctx::parallel().with_rank_engine(engine);
                let mut a = Vec::new();
                let mut b = Vec::new();
                permutation_cycle_min_into(&untrusted, &succ, &mut a);
                permutation_cycle_min_flagged_into(&trusted, &flagged, &mut b);
                assert_eq!(a, b, "minima diverged (n={n}, {engine:?})");
                assert_eq!(
                    untrusted.stats(),
                    trusted.stats(),
                    "flagged cycle-min charges diverged (n={n}, {engine:?})"
                );
            }
        }
    }

    /// Cycles whose members are all unsampled (no hash-selected ruler) are
    /// resolved by the sequential sweep.
    #[test]
    fn contraction_handles_ruler_free_cycles() {
        let n = 10_000;
        // Collect unsampled indices and link them into cycles of length 7.
        let unsampled: Vec<u32> = (0..n as u32)
            .filter(|&i| !crate::listrank::is_sampled_ruler(i as usize, n))
            .collect();
        assert!(unsampled.len() > 100, "sampling rate sanity");
        let mut succ: Vec<u32> = (0..n as u32).collect();
        for chunk in unsampled.chunks(7).take(40) {
            for w in 0..chunk.len() {
                succ[chunk[w] as usize] = chunk[(w + 1) % chunk.len()];
            }
        }
        let expected = reference_cycle_min(&succ);
        for engine in [RankEngine::RulingSet, RankEngine::CacheBucket] {
            let ctx = Ctx::parallel().with_rank_engine(engine);
            assert_eq!(permutation_cycle_min(&ctx, &succ), expected, "{engine:?}");
        }
    }

    /// The contraction execution must charge exactly what the jumping path
    /// charges: validation + init + two steps of n per round.
    #[test]
    fn contraction_charges_match_jumping_model() {
        let n = 30_000;
        let mut rng = StdRng::seed_from_u64(9);
        let mut succ: Vec<u32> = (0..n as u32).collect();
        succ.shuffle(&mut rng);
        let ctx = Ctx::parallel();
        let _ = permutation_cycle_min(&ctx, &succ);
        let rounds = (sfcp_pram::ceil_log2(n) + 1) as u64;
        let expected_work = (n as u64) * (2 + 2 * rounds);
        let expected_rounds = 2 + 2 * rounds;
        assert_eq!(ctx.stats().work, expected_work);
        assert_eq!(ctx.stats().rounds, expected_rounds);
    }

    proptest! {
        #[test]
        fn forest_matches_reference(n in 1usize..500, roots in 1usize..10, seed in 0u64..50) {
            let parent = random_forest(n, roots, seed);
            let (exp_roots, exp_dist) = reference_root_and_dist(&parent);
            let ctx = Ctx::parallel().with_grain(32);
            prop_assert_eq!(find_roots(&ctx, &parent), exp_roots);
            prop_assert_eq!(distance_to_root(&ctx, &parent), exp_dist);
        }

        #[test]
        fn permutation_min_matches_reference(n in 1usize..300, seed in 0u64..50) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut succ: Vec<u32> = (0..n as u32).collect();
            succ.shuffle(&mut rng);
            // Reference: walk each cycle.
            let mut expected = vec![u32::MAX; n];
            for start in 0..n {
                if expected[start] != u32::MAX { continue; }
                let mut members = vec![start];
                let mut cur = succ[start] as usize;
                while cur != start {
                    members.push(cur);
                    cur = succ[cur] as usize;
                }
                let m = *members.iter().min().unwrap() as u32;
                for x in members {
                    expected[x] = m;
                }
            }
            let ctx = Ctx::parallel().with_grain(32);
            prop_assert_eq!(permutation_cycle_min(&ctx, &succ), expected);
        }
    }
}

//! Pointer jumping on rooted forests and permutations.
//!
//! Pointer jumping (a.k.a. path doubling) is the simplest way to aggregate
//! information along directed paths in `O(log n)` rounds.  It is used here
//! for three jobs:
//!
//! * [`find_roots`] / [`distance_to_root`] — locate, for each node of a
//!   rooted forest (`parent[r] == r` for roots), the root of its tree and the
//!   distance to it.  These back the tree-labelling step of Section 4 and
//!   serve as a cross-check for the Euler-tour computations.
//! * [`permutation_cycle_min`] — for a permutation given as a successor
//!   array, the minimum element of each cycle.  This labels the Euler cycles
//!   produced by *Algorithm finding cycle nodes* (Section 5) and elects cycle
//!   leaders for the cycle-labelling step.
//!
//! All three are `O(n log n)` work and `O(log n)` depth.  Where the paper
//! needs the work-optimal variant it combines pointer jumping with the
//! list-ranking / Euler-tour machinery; the experiments quantify the gap.

use sfcp_pram::Ctx;

/// For every node of a rooted forest, the root of its tree.
/// Roots are the fixed points of `parent`.
///
/// # Panics
/// Panics if `parent` contains an out-of-range index or if the structure has
/// a cycle other than the root self-loops (checked in debug builds only).
#[must_use]
pub fn find_roots(ctx: &Ctx, parent: &[u32]) -> Vec<u32> {
    let n = parent.len();
    if n == 0 {
        return Vec::new();
    }
    for (i, &p) in parent.iter().enumerate() {
        assert!((p as usize) < n, "parent[{i}] = {p} out of range");
    }
    let mut up: Vec<u32> = parent.to_vec();
    let rounds = sfcp_pram::ceil_log2(n) + 1;
    for _ in 0..rounds {
        up = ctx.par_map_idx(n, |i| up[up[i] as usize]);
    }
    debug_assert!(
        (0..n).all(|i| up[up[i] as usize] == up[i]),
        "pointer jumping did not converge — `parent` is not a rooted forest"
    );
    up
}

/// For every node of a rooted forest, its distance (number of edges) to the
/// root of its tree.
#[must_use]
pub fn distance_to_root(ctx: &Ctx, parent: &[u32]) -> Vec<u32> {
    let n = parent.len();
    if n == 0 {
        return Vec::new();
    }
    for (i, &p) in parent.iter().enumerate() {
        assert!((p as usize) < n, "parent[{i}] = {p} out of range");
    }
    let mut up: Vec<u32> = parent.to_vec();
    let mut dist: Vec<u32> = ctx.par_map_idx(n, |i| u32::from(parent[i] as usize != i));
    let rounds = sfcp_pram::ceil_log2(n) + 1;
    for _ in 0..rounds {
        let new_dist: Vec<u32> = ctx.par_map_idx(n, |i| dist[i] + dist[up[i] as usize]);
        let new_up: Vec<u32> = ctx.par_map_idx(n, |i| up[up[i] as usize]);
        dist = new_dist;
        up = new_up;
    }
    dist
}

/// For every element of a permutation (successor array `succ`), the minimum
/// element on its cycle.  Elements on the same cycle — and only those — get
/// the same representative.
///
/// # Panics
/// Panics if `succ` is not a permutation of `0..succ.len()`.
#[must_use]
pub fn permutation_cycle_min(ctx: &Ctx, succ: &[u32]) -> Vec<u32> {
    let n = succ.len();
    if n == 0 {
        return Vec::new();
    }
    // Validate permutation-ness: every element must appear exactly once.
    let mut seen = vec![false; n];
    for (i, &s) in succ.iter().enumerate() {
        assert!((s as usize) < n, "succ[{i}] = {s} out of range");
        assert!(!seen[s as usize], "succ is not a permutation: {s} repeated");
        seen[s as usize] = true;
    }
    ctx.charge_step(n as u64);

    let mut jump: Vec<u32> = succ.to_vec();
    let mut best: Vec<u32> = ctx.par_map_idx(n, |i| (i as u32).min(succ[i]));
    let rounds = sfcp_pram::ceil_log2(n) + 1;
    for _ in 0..rounds {
        let new_best: Vec<u32> = ctx.par_map_idx(n, |i| best[i].min(best[jump[i] as usize]));
        let new_jump: Vec<u32> = ctx.par_map_idx(n, |i| jump[jump[i] as usize]);
        best = new_best;
        jump = new_jump;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    #[allow(clippy::needless_range_loop)]
    fn random_forest(n: usize, roots: usize, seed: u64) -> Vec<u32> {
        // Node i > 0 picks a parent among smaller indices; the first `roots`
        // nodes are roots.  Then apply a random relabelling so structure is
        // not index-ordered.
        let mut rng = StdRng::seed_from_u64(seed);
        let roots = roots.clamp(1, n);
        let mut parent: Vec<u32> = (0..n as u32).collect();
        for i in roots..n {
            parent[i] = rng.gen_range(0..i) as u32;
        }
        let mut relabel: Vec<u32> = (0..n as u32).collect();
        relabel.shuffle(&mut rng);
        let mut new_parent = vec![0u32; n];
        for i in 0..n {
            new_parent[relabel[i] as usize] = relabel[parent[i] as usize];
        }
        new_parent
    }

    fn reference_root_and_dist(parent: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let n = parent.len();
        let mut roots = vec![0u32; n];
        let mut dist = vec![0u32; n];
        for i in 0..n {
            let mut cur = i;
            let mut d = 0;
            while parent[cur] as usize != cur {
                cur = parent[cur] as usize;
                d += 1;
                assert!(d <= n as u32);
            }
            roots[i] = cur as u32;
            dist[i] = d;
        }
        (roots, dist)
    }

    #[test]
    fn empty_and_single() {
        let ctx = Ctx::parallel();
        assert!(find_roots(&ctx, &[]).is_empty());
        assert_eq!(find_roots(&ctx, &[0]), vec![0]);
        assert_eq!(distance_to_root(&ctx, &[0]), vec![0]);
    }

    #[test]
    fn small_forest() {
        // Tree: 0 <- 1 <- 2, 0 <- 3; separate root 4.
        let parent = vec![0u32, 0, 1, 0, 4];
        let ctx = Ctx::parallel();
        assert_eq!(find_roots(&ctx, &parent), vec![0, 0, 0, 0, 4]);
        assert_eq!(distance_to_root(&ctx, &parent), vec![0, 1, 2, 1, 0]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn deep_path() {
        let n = 30_000;
        let mut parent: Vec<u32> = (0..n as u32).collect();
        for i in 1..n {
            parent[i] = (i - 1) as u32;
        }
        let ctx = Ctx::parallel();
        let roots = find_roots(&ctx, &parent);
        assert!(roots.iter().all(|&r| r == 0));
        let dist = distance_to_root(&ctx, &parent);
        assert_eq!(dist[n - 1], (n - 1) as u32);
        assert_eq!(dist[0], 0);
    }

    #[test]
    fn permutation_cycles() {
        // Permutation with cycles (0 2 4), (1 3), (5).
        let succ = vec![2u32, 3, 4, 1, 0, 5];
        let ctx = Ctx::parallel();
        assert_eq!(permutation_cycle_min(&ctx, &succ), vec![0, 1, 0, 1, 0, 5]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutation() {
        let ctx = Ctx::sequential();
        let _ = permutation_cycle_min(&ctx, &[0, 0, 1]);
    }

    proptest! {
        #[test]
        fn forest_matches_reference(n in 1usize..500, roots in 1usize..10, seed in 0u64..50) {
            let parent = random_forest(n, roots, seed);
            let (exp_roots, exp_dist) = reference_root_and_dist(&parent);
            let ctx = Ctx::parallel().with_grain(32);
            prop_assert_eq!(find_roots(&ctx, &parent), exp_roots);
            prop_assert_eq!(distance_to_root(&ctx, &parent), exp_dist);
        }

        #[test]
        fn permutation_min_matches_reference(n in 1usize..300, seed in 0u64..50) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut succ: Vec<u32> = (0..n as u32).collect();
            succ.shuffle(&mut rng);
            // Reference: walk each cycle.
            let mut expected = vec![u32::MAX; n];
            for start in 0..n {
                if expected[start] != u32::MAX { continue; }
                let mut members = vec![start];
                let mut cur = succ[start] as usize;
                while cur != start {
                    members.push(cur);
                    cur = succ[cur] as usize;
                }
                let m = *members.iter().min().unwrap() as u32;
                for x in members {
                    expected[x] = m;
                }
            }
            let ctx = Ctx::parallel().with_grain(32);
            prop_assert_eq!(permutation_cycle_min(&ctx, &succ), expected);
        }
    }
}

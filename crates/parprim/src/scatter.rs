//! Bucketed scatter writes — the engine-dispatched write-combining subsystem.
//!
//! Every hot pass of the decomposition pipeline that is *not* a dependent
//! pointer-chase is a scatter: the Euler-tour successor construction writes
//! `2n` arcs at random slots, the CSR builder's final sweep writes every
//! value at its cursor, the wavefront walks record `(steps, start-ruler)`
//! words at every interior node, the ancestor-sum passes drop `±value`
//! deltas at tour positions, and the dense-rank finish scatters
//! `ranks[payload] = group`.  On machines whose last-level cache no longer
//! holds the destination, each of those stores is a cache-and-TLB miss.
//!
//! Like the sort, CSR, and list-ranking layers, the scatter layer is a
//! pluggable engine selected on the [`Ctx`]
//! ([`sfcp_pram::ScatterEngine`]):
//!
//! * [`ScatterEngine::Direct`] — plain random stores, the model baseline.
//!   Fastest while the destination stays resident in the last-level cache
//!   (probed at startup — see [`sfcp_pram::Topology`]).
//! * [`ScatterEngine::Combining`] — software write-combining: stores are
//!   staged into cache-resident per-bucket tiles ([`ScatterTiles`]),
//!   bucketed by the high bits of the destination index, and flushed a tile
//!   at a time, so each flush touches one destination window of
//!   `len / 2^BUCKET_BITS` elements instead of the whole array.  This is
//!   the layout that wins once the destination outgrows the LLC; the
//!   `scatter` rows of `BENCH_parprim.json` and `BENCH_parprim_bign.json`
//!   track the crossover on the machine at hand.
//! * [`ScatterEngine::Auto`] (default) — resolves per pass by comparing the
//!   destination footprint in bytes against the probed LLC
//!   ([`Ctx::scatter_engine_for`]): `Direct` below the boundary, `Combining`
//!   past it.  Charge-neutral by construction (see DESIGN.md,
//!   "Footprint-adaptive selection").
//!
//! Both engines produce identical destination contents and charge identical
//! work/depth — the charge rule of every engine pair in this workspace (see
//! DESIGN.md, "Charge discipline" and "Bucketed scatters").  The staging
//! tiles are workspace checkouts with a deterministic task plan, so pool
//! population and pooled bytes stay stable across warm runs
//! (`tests/workspace_leaks.rs`).

use sfcp_pram::{Ctx, ScatterEngine, Scratch};

/// Destination-index bits used for bucketing: `2^6 = 64` staging buckets.
/// Few enough that the per-task fill state lives in registers/L1, many
/// enough that one bucket's destination window is a small fraction of the
/// array.
pub(crate) const BUCKET_BITS: u32 = 6;

/// Buckets per staging sink.
pub(crate) const NUM_BUCKETS: usize = 1 << BUCKET_BITS;

/// Reference staged entries per bucket tile on 64-byte-line hosts:
/// 128 entries × 16 B = 2 KB per tile — one tile streams out in a handful
/// of cache lines while the next refills.  The live value is derived per
/// host by [`sfcp_pram::Topology::scatter_tile_entries`] (32 cache lines of
/// staging per tile), which reproduces this constant on mainstream
/// hardware (regression-tested below).
#[cfg(test)]
pub(crate) const TILE_ENTRIES: usize = 128;

/// Values the combining engine can stage: anything that round-trips through
/// the `u64` staging word.
pub trait TileValue: Copy + Send + Sync {
    /// Pack the value into the staging word.
    fn to_word(self) -> u64;
    /// Unpack the value from the staging word.
    fn from_word(w: u64) -> Self;
}

impl TileValue for u32 {
    #[inline]
    fn to_word(self) -> u64 {
        u64::from(self)
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w as u32
    }
}

impl TileValue for u64 {
    #[inline]
    fn to_word(self) -> u64 {
        self
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w
    }
}

impl TileValue for i64 {
    #[inline]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w as i64
    }
}

/// The staging store of one combining scatter pass: `num_tasks` disjoint
/// regions of `NUM_BUCKETS × tile_entries` `(index, value)` entries, all in
/// one workspace checkout so the pool population stays deterministic
/// regardless of rayon scheduling.  Each parallel task takes its own
/// [`TileSink`] via [`ScatterTiles::sink`].
pub struct ScatterTiles<'c> {
    /// The staging checkout, held for the lifetime of the pass; all sink
    /// writes go through `entries_ptr`, taken from an exclusive borrow at
    /// construction (a `&self`-derived `*mut` would be undefined
    /// behaviour).
    _entries: Scratch<'c, (u64, u64)>,
    entries_ptr: *mut (u64, u64),
    num_tasks: usize,
    /// Right-shift turning a destination index into its bucket id.
    shift: u32,
    /// Staged entries per bucket tile, derived from the probed cache-line
    /// size ([`sfcp_pram::Topology::scatter_tile_entries`]).
    tile_entries: usize,
}

// SAFETY: shared references to `ScatterTiles` are read-only after
// construction, and the staging pointer they expose is only dereferenced
// through `sink`, whose per-task regions are disjoint by the task plan.
unsafe impl Sync for ScatterTiles<'_> {}
// SAFETY: moving the struct across threads moves only the raw base pointer
// and plan scalars; the staging checkout it points into is borrowed for the
// whole scatter pass, so the pointee outlives every task.
unsafe impl Send for ScatterTiles<'_> {}

impl<'c> ScatterTiles<'c> {
    /// Stage storage for `num_tasks` concurrent sinks over a destination of
    /// `dest_len` elements.
    #[must_use]
    pub fn new(ctx: &'c Ctx, dest_len: usize, num_tasks: usize) -> Self {
        let bits = usize::BITS - dest_len.saturating_sub(1).leading_zeros();
        let shift = bits.saturating_sub(BUCKET_BITS);
        let num_tasks = num_tasks.max(1);
        let tile_entries = ctx.topology().scatter_tile_entries();
        let mut entries = ctx
            .workspace()
            .take_pairs(num_tasks * NUM_BUCKETS * tile_entries);
        let entries_ptr = entries.as_mut_ptr();
        ScatterTiles {
            _entries: entries,
            entries_ptr,
            num_tasks,
            shift,
            tile_entries,
        }
    }

    /// The sink of task `task`, writing through to `dest` (raw parts).
    ///
    /// # Safety contract (enforced by the callers)
    /// Tasks must use distinct `task` ids, every pushed index must be below
    /// the destination length, and — as with every scatter in this
    /// workspace — distinct pushes must target distinct indices (or
    /// concurrent writers must be storing the same value).
    ///
    /// # Panics
    /// Panics if `task` is outside the planned task count.
    #[must_use]
    pub fn sink<T: TileValue>(&self, task: usize, dest: *mut T) -> TileSink<'_, T> {
        assert!(task < self.num_tasks, "scatter task {task} out of plan");
        // SAFETY: disjoint per-task regions of the staging checkout, whose
        // base pointer was taken from an exclusive borrow in `new`.
        let region = unsafe { self.entries_ptr.add(task * NUM_BUCKETS * self.tile_entries) };
        TileSink {
            entries: region,
            fill: [0u32; NUM_BUCKETS],
            shift: self.shift,
            tile_entries: self.tile_entries,
            dest,
            _staging: std::marker::PhantomData,
        }
    }
}

/// One task's write-combining sink: push `(index, value)` pairs, which are
/// staged per bucket and flushed as tile-sized runs into the destination.
/// Call [`TileSink::flush`] before the destination is read back — dropping
/// a sink with staged entries loses them (the callers all flush at the end
/// of their task body).
pub struct TileSink<'s, T> {
    entries: *mut (u64, u64),
    fill: [u32; NUM_BUCKETS],
    shift: u32,
    tile_entries: usize,
    dest: *mut T,
    _staging: std::marker::PhantomData<&'s ()>,
}

impl<T: TileValue> TileSink<'_, T> {
    /// Stage one write of `val` at destination slot `idx`.
    #[inline]
    pub fn push(&mut self, idx: usize, val: T) {
        let bucket = idx >> self.shift;
        debug_assert!(bucket < NUM_BUCKETS);
        let fill = self.fill[bucket] as usize;
        // SAFETY: bucket-local fill < tile_entries, region is task-private.
        unsafe {
            *self.entries.add(bucket * self.tile_entries + fill) = (idx as u64, val.to_word());
        }
        if fill + 1 == self.tile_entries {
            self.flush_bucket(bucket, self.tile_entries);
            self.fill[bucket] = 0;
        } else {
            self.fill[bucket] = fill as u32 + 1;
        }
    }

    /// Drain every partially filled tile into the destination.
    pub fn flush(&mut self) {
        for bucket in 0..NUM_BUCKETS {
            let fill = self.fill[bucket] as usize;
            if fill > 0 {
                self.flush_bucket(bucket, fill);
                self.fill[bucket] = 0;
            }
        }
    }

    #[inline]
    fn flush_bucket(&mut self, bucket: usize, fill: usize) {
        for e in 0..fill {
            // SAFETY: entries were staged by `push` from in-range indices;
            // the caller guarantees index disjointness across writers.
            unsafe {
                let (idx, word) = *self.entries.add(bucket * self.tile_entries + e);
                *self.dest.add(idx as usize) = T::from_word(word);
            }
        }
    }
}

// SAFETY: a `TileSink` is owned by exactly one task; its raw pointers are
// confined to that task's private staging region and to destination slots
// whose indices the caller guarantees disjoint across writers.
unsafe impl<T: TileValue> Send for TileSink<'_, T> {}

/// Deterministic task plan of a combining scatter pass: fixed-size slot
/// blocks, independent of the thread count (charges never see it, but the
/// staging checkout size must not wander between runs either).
#[must_use]
pub fn combining_tasks(num_slots: usize) -> usize {
    num_slots.div_ceil(1 << 16).clamp(1, 256)
}

/// Scatter an `(index, value)` stream into `dest` through the engine
/// selected on the context: `item(s)` is invoked for every stream slot
/// `s in 0..num_slots` and returns `Some((index, value))` or `None` for
/// slots contributing nothing.  Distinct slots must produce distinct
/// indices (or store identical values), and every index must be in range —
/// the usual disjoint-scatter contract of this workspace.
///
/// Charged one round of `num_slots` operations under **both** engines (the
/// staging and flush traffic of the combining engine is uncharged physical
/// glue, like the packed sort engine's fill/extract passes).
///
/// # Panics
/// Panics if an index is out of range (combining engine: on the staged
/// flush; direct engine: on the store).
pub fn scatter_into<T, F>(ctx: &Ctx, dest: &mut [T], num_slots: usize, item: F)
where
    T: TileValue,
    F: Fn(usize) -> Option<(usize, T)> + Sync + Send,
{
    sfcp_pram::faults::on_engine_pass();
    let mut span = ctx.span("scatter");
    span.attr("num_slots", num_slots as u64);
    let len = dest.len();
    match ctx.resolve_scatter("scatter_into", std::mem::size_of_val::<[T]>(dest)) {
        ScatterEngine::Direct => {
            let ptr = SendPtr(dest.as_mut_ptr());
            ctx.par_for_idx(num_slots, |s| {
                if let Some((idx, val)) = item(s) {
                    assert!(idx < len, "scatter index {idx} out of range ({len})");
                    let p = ptr;
                    // SAFETY: in range (checked) and index-disjoint (caller
                    // contract).
                    unsafe {
                        *p.0.add(idx) = val;
                    }
                }
            });
        }
        ScatterEngine::Combining => {
            ctx.charge_step(num_slots as u64);
            let num_tasks = combining_tasks(num_slots);
            let block = num_slots.div_ceil(num_tasks);
            let tiles = ScatterTiles::new(ctx, len, num_tasks);
            let ptr = SendPtr(dest.as_mut_ptr());
            crate::intsort::for_each_block(ctx, num_tasks, |t| {
                let p = ptr;
                let mut sink = tiles.sink(t, p.0);
                let start = t * block;
                let end = (start + block).min(num_slots);
                for s in start..end {
                    if let Some((idx, val)) = item(s) {
                        assert!(idx < len, "scatter index {idx} out of range ({len})");
                        sink.push(idx, val);
                    }
                }
                sink.flush();
            });
        }
        // `scatter_engine_for` always resolves `Auto` to an explicit engine.
        ScatterEngine::Auto => unreachable!("Auto resolves to an explicit engine"),
    }
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` only smuggles a raw base pointer into parallel tasks
// whose writes target disjoint indices; every dereference site carries its
// own SAFETY argument for that disjointness, and the pointee buffer is
// borrowed for the whole parallel region, so it outlives every task.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` across tasks only copies the pointer value —
// no shared-reference method dereferences it, so aliased access to the
// pointee can never originate from the `Sync` impl itself.
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use sfcp_pram::Mode;

    fn scatter_both_ways(n: usize, stream: &[Option<(usize, u32)>]) -> (Vec<u32>, Vec<u32>) {
        let direct = Ctx::parallel().with_scatter_engine(ScatterEngine::Direct);
        let combining = Ctx::parallel().with_scatter_engine(ScatterEngine::Combining);
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        scatter_into(&direct, &mut a, stream.len(), |s| stream[s]);
        scatter_into(&combining, &mut b, stream.len(), |s| stream[s]);
        assert_eq!(
            direct.stats(),
            combining.stats(),
            "engines must charge identically"
        );
        (a, b)
    }

    #[test]
    fn empty_and_tiny() {
        let (a, b) = scatter_both_ways(0, &[]);
        assert!(a.is_empty() && b.is_empty());
        let stream = [Some((2usize, 7u32)), None, Some((0, 9))];
        let (a, b) = scatter_both_ways(4, &stream);
        assert_eq!(a, vec![9, 0, 7, 0]);
        assert_eq!(a, b);
    }

    #[test]
    fn permutation_scatter_matches_across_engines_and_modes() {
        let n = 200_000;
        let mut rng = StdRng::seed_from_u64(11);
        let mut idx: Vec<u32> = (0..n as u32).collect();
        idx.shuffle(&mut rng);
        for mode in [Mode::Sequential, Mode::Parallel] {
            let mut results = Vec::new();
            for engine in ScatterEngine::ALL {
                let ctx = Ctx::new(mode).with_scatter_engine(engine);
                let mut dest = vec![0u64; n];
                scatter_into(&ctx, &mut dest, n, |s| Some((idx[s] as usize, s as u64)));
                results.push((ctx.stats(), dest));
            }
            for r in &results[1..] {
                assert_eq!(&results[0], r, "mode {mode:?}");
            }
        }
    }

    #[test]
    fn i64_values_round_trip() {
        let ctx = Ctx::parallel().with_scatter_engine(ScatterEngine::Combining);
        let mut dest = vec![0i64; 10_000];
        scatter_into(&ctx, &mut dest, 10_000, |s| {
            Some((s, if s % 2 == 0 { -(s as i64) } else { s as i64 }))
        });
        assert_eq!(dest[6], -6);
        assert_eq!(dest[7], 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn direct_engine_rejects_out_of_range() {
        let ctx = Ctx::parallel().with_scatter_engine(ScatterEngine::Direct);
        let mut dest = vec![0u32; 4];
        scatter_into(&ctx, &mut dest, 8, |s| Some((s, 1)));
    }

    #[test]
    fn reference_tile_constant_matches_64byte_line_derivation() {
        use sfcp_pram::Topology;
        let t = Topology::fallback().with_cache_line(64);
        assert_eq!(t.scatter_tile_entries(), TILE_ENTRIES);
    }

    #[test]
    fn auto_resolves_across_mocked_llc_boundary() {
        use sfcp_pram::Topology;
        // A mocked 1 MB LLC on a multi-core host: destinations past it
        // resolve to Combining, below it to Direct; explicit selections
        // always pass through.
        let topo = Topology::fallback().with_llc_bytes(1 << 20).with_cores(8);
        let auto = Ctx::parallel().with_topology(topo);
        assert_eq!(auto.scatter_engine(), ScatterEngine::Auto);
        assert_eq!(auto.scatter_engine_for(1 << 20), ScatterEngine::Direct);
        assert_eq!(
            auto.scatter_engine_for((1 << 20) + 1),
            ScatterEngine::Combining
        );
        // On one core there is no write sharing for the combining tiles to
        // win back: Auto stays Direct at every footprint.
        let single = Ctx::parallel().with_topology(topo.with_cores(1));
        assert_eq!(single.scatter_engine_for(usize::MAX), ScatterEngine::Direct);
        for engine in [ScatterEngine::Direct, ScatterEngine::Combining] {
            let explicit = Ctx::parallel()
                .with_topology(topo)
                .with_scatter_engine(engine);
            assert_eq!(explicit.scatter_engine_for(1), engine);
            assert_eq!(explicit.scatter_engine_for(usize::MAX), engine);
        }
    }

    #[test]
    fn auto_matches_explicit_engines_on_both_sides_of_boundary() {
        use sfcp_pram::Topology;
        let n = 50_000; // 200 KB of u32 destination
        let mut rng = StdRng::seed_from_u64(23);
        let mut idx: Vec<u32> = (0..n as u32).collect();
        idx.shuffle(&mut rng);
        // Tiny mocked LLC (Auto → Combining) and a huge one (Auto → Direct),
        // on a mocked multi-core host so the combining arm is reachable:
        // identical destinations and identical charges either way.
        for llc in [1 << 12, 1 << 30] {
            let topo = Topology::fallback().with_llc_bytes(llc).with_cores(4);
            let mut results = Vec::new();
            for engine in ScatterEngine::ALL {
                let ctx = Ctx::parallel()
                    .with_topology(topo)
                    .with_scatter_engine(engine);
                let mut dest = vec![0u32; n];
                scatter_into(&ctx, &mut dest, n, |s| Some((idx[s] as usize, s as u32)));
                results.push((ctx.stats(), dest));
            }
            for r in &results[1..] {
                assert_eq!(&results[0], r, "llc {llc}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn combining_engine_rejects_out_of_range() {
        let ctx = Ctx::parallel().with_scatter_engine(ScatterEngine::Combining);
        let mut dest = vec![0u32; 4];
        scatter_into(&ctx, &mut dest, 8, |s| Some((s, 1)));
    }

    #[test]
    fn warm_combining_scatters_allocate_nothing() {
        let n = 100_000;
        let ctx = Ctx::parallel().with_scatter_engine(ScatterEngine::Combining);
        let mut dest = vec![0u32; n];
        scatter_into(&ctx, &mut dest, n, |s| Some((s, s as u32))); // warm up
        let before = ctx.workspace().stats();
        let warm_pool = ctx.workspace().pooled_buffers();
        let warm_bytes = ctx.workspace().pooled_bytes();
        for _ in 0..4 {
            scatter_into(&ctx, &mut dest, n, |s| Some(((s * 7919) % n, s as u32)));
        }
        let after = ctx.workspace().stats();
        assert_eq!(after.misses, before.misses, "warm staging must pool-hit");
        assert_eq!(after.outstanding(), 0);
        assert_eq!(ctx.workspace().pooled_buffers(), warm_pool);
        assert_eq!(ctx.workspace().pooled_bytes(), warm_bytes);
    }

    // The `miri_`-prefixed tests are the CI Miri gate over the unsafe tile
    // code and the workspace pointer paths it leans on: small enough to run
    // under the interpreter, sized to hit both the full-tile flush in
    // `push` and the partial flush in `flush`.
    #[test]
    fn miri_combining_tiles_roundtrip_with_full_tile_flushes() {
        let ctx = Ctx::sequential().with_scatter_engine(ScatterEngine::Combining);
        let tile = ctx.topology().scatter_tile_entries();
        // Destination sized so each bucket receives >= tile entries: at
        // least one in-push flush per bucket plus a final partial flush.
        let n = NUM_BUCKETS * tile + 37;
        let mut dest = vec![0u32; n];
        scatter_into(&ctx, &mut dest, n, |s| Some(((s * 5) % n, s as u32)));
        let mut expect = vec![0u32; n];
        for s in 0..n {
            expect[(s * 5) % n] = s as u32;
        }
        assert_eq!(dest, expect);
        assert_eq!(ctx.workspace().stats().outstanding(), 0);
    }

    #[test]
    fn miri_combining_partial_stream_and_i64_roundtrip() {
        let ctx = Ctx::sequential().with_scatter_engine(ScatterEngine::Combining);
        let n = 700;
        let mut dest = vec![0i64; n];
        scatter_into(&ctx, &mut dest, n, |s| {
            (s % 3 != 1).then(|| (s, -(s as i64)))
        });
        for (s, &v) in dest.iter().enumerate() {
            let expect = if s % 3 != 1 { -(s as i64) } else { 0 };
            assert_eq!(v, expect);
        }
    }

    proptest! {
        /// Direct and combining engines produce identical destinations and
        /// identical charges on arbitrary partial streams.
        #[test]
        fn engines_agree(
            n in 1usize..2000,
            seed in 0u64..64,
            density_pct in 5u32..96,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut slots: Vec<u32> = (0..n as u32).collect();
            slots.shuffle(&mut rng);
            let stream: Vec<Option<(usize, u32)>> = (0..n)
                .map(|s| {
                    rng.gen_bool(f64::from(density_pct) / 100.0)
                        .then(|| (slots[s] as usize, rng.gen_range(0..1_000_000)))
                })
                .collect();
            let mut expected = vec![0u32; n];
            for pair in stream.iter().flatten() {
                expected[pair.0] = pair.1;
            }
            let (a, b) = scatter_both_ways(n, &stream);
            prop_assert_eq!(&a, &expected);
            prop_assert_eq!(&a, &b);
        }
    }
}

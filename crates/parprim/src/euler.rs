//! The Euler-tour technique on rooted forests.
//!
//! Section 4 of the paper assumes "the trees are stored in the form of
//! adjacency lists suitable for constructing their Euler tours" and then
//! computes node levels, marks nodes, and unmarks whole subtrees — all of
//! which are Euler-tour computations.  This module provides:
//!
//! * [`RootedForest`] — a parent array plus CSR children lists;
//! * [`EulerTour::build`] — the Tarjan–Vishkin construction: one *down* arc
//!   and one *up* arc per node (the root's arcs are virtual, so every tree
//!   with `s` nodes contributes exactly `2s` arcs), a successor function, and
//!   a list-ranking pass that turns the linked tour into array positions;
//! * [`EulerTour::levels`] — depth of every node below its root;
//! * [`EulerTour::ancestor_sums`] — for every node, the sum of a per-node
//!   value over its *proper ancestors*.  With 0/1 values this implements
//!   step 3 of *Algorithm tree node labeling* ("for each unmarked node,
//!   unmark all of its descendants") in `O(n)` work;
//! * [`EulerTour::subtree_sizes`] — number of nodes in every subtree.
//!
//! Work `O(n)` (plus the list-ranking cost), depth `O(log n)`.

use crate::listrank::{is_sampled_ruler, list_rank_into};
use crate::scan::scan_generic_into;
use crate::scatter::{combining_tasks, ScatterTiles, TileValue};
use sfcp_pram::{Ctx, Error, ScatterEngine};

/// A rooted forest on nodes `0..n`: `parent[r] == r` exactly for roots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedForest {
    parent: Vec<u32>,
    /// CSR offsets into `children`, length `n + 1`.
    child_start: Vec<u32>,
    /// Children of every node, grouped by parent, ascending node id inside a
    /// group.
    children: Vec<u32>,
}

impl RootedForest {
    /// Build the forest from a parent array (the hot path: `decompose` calls
    /// this once per run with parents that are acyclic by construction).
    ///
    /// The children lists come out of the parallel CSR builder
    /// ([`crate::csr::build_csr_into`]), so every intermediate is a workspace
    /// checkout; the only fresh allocations are the two retained CSR vectors
    /// of the returned structure.
    ///
    /// The parent pointers are **not** checked for acyclicity here — use
    /// [`RootedForest::from_parents_checked`] for untrusted input.  Both
    /// constructors charge identical work/depth: the documented model cost
    /// includes the validation pass, which this fast path charges without
    /// executing (see DESIGN.md, "CSR construction"), exactly like the
    /// early-exit loops of `jump.rs` charge their skipped rounds.
    ///
    /// # Panics
    /// Panics if an index is out of range.  On cyclic input the structure is
    /// returned malformed (downstream Euler-tour passes will misbehave);
    /// debug builds of `decompose` go through the checked constructor.
    #[must_use]
    pub fn from_parents(ctx: &Ctx, parent: Vec<u32>) -> Self {
        let forest = Self::build_unchecked(ctx, parent);
        // Charge (without executing) the acyclicity walk of the checked
        // constructor, keeping the fast path's charges identical to it and
        // to the pre-split constructor.
        ctx.charge_step(forest.len() as u64);
        forest
    }

    /// [`RootedForest::from_parents`] plus full typed validation — the
    /// constructor for untrusted parent arrays (tests, debug builds,
    /// external input).  Charges exactly what the unchecked fast path
    /// charges.
    ///
    /// # Errors
    /// [`Error::TooLarge`] for `parent.len() >= 2^31` (indices must stay
    /// below the bit-31 ruler flag of the ranking machinery),
    /// [`Error::OutOfRange`] for an out-of-range parent pointer, and
    /// [`Error::CycleDetected`] when the parent pointers contain a cycle
    /// (i.e. the input is not a forest).
    pub fn from_parents_checked(ctx: &Ctx, parent: Vec<u32>) -> Result<Self, Error> {
        sfcp_pram::check_index_width(parent.len())?;
        let n = parent.len();
        for (i, &p) in parent.iter().enumerate() {
            if p as usize >= n {
                return Err(Error::OutOfRange {
                    what: "parent",
                    index: i,
                    value: p,
                    len: n,
                });
            }
        }
        let forest = Self::build_unchecked(ctx, parent);
        forest.check_acyclic(ctx)?;
        Ok(forest)
    }

    /// Shared constructor body: range check + CSR children build.
    fn build_unchecked(ctx: &Ctx, parent: Vec<u32>) -> Self {
        let n = parent.len();
        for (i, &p) in parent.iter().enumerate() {
            assert!((p as usize) < n, "parent[{i}] = {p} out of range");
        }
        // Children lists: group child ids by parent (roots contribute
        // nothing).  The ascending stream makes every group ascending, and
        // the builder's model charge (count + prefix + scatter, one round of
        // n each) is exactly what the inline sequential build charged.
        let mut child_start = Vec::new();
        let mut children = Vec::new();
        {
            let parent = &parent;
            crate::csr::build_csr_into(
                ctx,
                n,
                n,
                |i| {
                    let p = parent[i];
                    (p as usize != i).then_some((p, i as u32))
                },
                &mut child_start,
                &mut children,
            );
        }
        RootedForest {
            parent,
            child_start,
            children,
        }
    }

    /// The acyclicity walk: visit every node once with memoized states; if a
    /// walk revisits a node already on its own path, the parent pointers
    /// contain a cycle.  `0` = unvisited, `1` = on the current path,
    /// `2` = finished.  One charged round of `n` operations on success; the
    /// error path charges nothing (the caller discards the forest anyway).
    fn check_acyclic(&self, ctx: &Ctx) -> Result<(), Error> {
        let n = self.parent.len();
        let ws = ctx.workspace();
        let mut state = ws.take_u8(n);
        state.fill(0);
        // Checked out empty and grown while out; the pool's byte accounting
        // picks the growth up on return (`Workspace::pooled_bytes`).
        let mut stack = ws.take_u32(0);
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            let mut cur = start;
            stack.clear();
            loop {
                match state[cur] {
                    0 => {
                        state[cur] = 1;
                        stack.push(cur as u32);
                        let p = self.parent[cur] as usize;
                        if p == cur {
                            break;
                        }
                        cur = p;
                    }
                    1 => return Err(Error::CycleDetected { node: cur as u32 }),
                    _ => break,
                }
            }
            for &v in stack.iter() {
                state[v as usize] = 2;
            }
        }
        ctx.charge_step(n as u64);
        Ok(())
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Parent of `v` (itself for roots).
    #[must_use]
    pub fn parent(&self, v: u32) -> u32 {
        self.parent[v as usize]
    }

    /// The parent array.
    #[must_use]
    pub fn parents(&self) -> &[u32] {
        &self.parent
    }

    /// Whether `v` is a root.
    #[must_use]
    pub fn is_root(&self, v: u32) -> bool {
        self.parent[v as usize] == v
    }

    /// Children of `v`.
    #[must_use]
    pub fn children(&self, v: u32) -> &[u32] {
        let s = self.child_start[v as usize] as usize;
        let e = self.child_start[v as usize + 1] as usize;
        &self.children[s..e]
    }

    /// All roots, in ascending order.
    #[must_use]
    pub fn roots(&self) -> Vec<u32> {
        (0..self.parent.len() as u32)
            .filter(|&v| self.is_root(v))
            .collect()
    }
}

/// Arc identifiers: the down arc (entering `v` from its parent) is `2v`, the
/// up arc (leaving `v` back to its parent) is `2v + 1`.  Roots get virtual
/// down/up arcs so that every tree of `s` nodes has a tour of exactly `2s`
/// arcs and prefix sums over a whole tree cancel to zero.
#[inline]
fn down(v: u32) -> u32 {
    2 * v
}
#[inline]
fn up(v: u32) -> u32 {
    2 * v + 1
}

/// Emit the successor of every arc node `v` settles — its own down arc and
/// the up arcs of its children (consecutive children chain up→down, the
/// last child bounces to `up(v)`, a root terminates its own up arc).  The
/// third argument marks the one head slot of each tree: the down arc of a
/// root, which no other arc points to.
#[inline]
fn settle_node<W: FnMut(u32, u32, bool)>(forest: &RootedForest, v: u32, emit: &mut W) {
    let kids = forest.children(v);
    let root = forest.is_root(v);
    match kids.first() {
        Some(&c) => emit(down(v), down(c), root),
        None => emit(down(v), up(v), root),
    }
    for w in kids.windows(2) {
        emit(up(w[0]), down(w[1]), false);
    }
    if let Some(&last) = kids.last() {
        emit(up(last), up(v), false);
    }
    if root {
        emit(up(v), up(v), false);
    }
}

/// The shared successor-construction pass: stream every node's CSR child
/// list and write each arc's (optionally transformed) successor exactly
/// once, through the scatter engine selected on the context.  Charges one
/// round of `2n` operations (one per arc) under both engines.
fn arc_successor_pass<T>(ctx: &Ctx, forest: &RootedForest, succ: &mut [u32], transform: T)
where
    T: Fn(u32, u32, bool) -> u32 + Sync + Send,
{
    sfcp_pram::faults::on_engine_pass();
    let _span = ctx.span("arc_successors");
    let n = forest.len();
    assert_eq!(succ.len(), 2 * n, "tour successor slice must hold 2n arcs");
    let succ_ptr = SendPtr(succ.as_mut_ptr());
    match ctx.resolve_scatter("arc_successors", std::mem::size_of_val::<[u32]>(succ)) {
        ScatterEngine::Direct => {
            ctx.par_for_idx(n, |vi| {
                let sp = succ_ptr;
                settle_node(forest, vi as u32, &mut |slot, val, head| {
                    // SAFETY: each arc slot has exactly one writer (see the
                    // covering argument on `arc_successors_into`).
                    unsafe {
                        *sp.0.add(slot as usize) = transform(slot, val, head);
                    }
                });
            });
        }
        ScatterEngine::Combining => {
            ctx.charge_step(n as u64);
            let num_tasks = combining_tasks(n);
            let block = n.div_ceil(num_tasks);
            let tiles = ScatterTiles::new(ctx, 2 * n, num_tasks);
            crate::intsort::for_each_block(ctx, num_tasks, |t| {
                let sp = succ_ptr;
                let mut sink = tiles.sink(t, sp.0);
                for vi in t * block..((t + 1) * block).min(n) {
                    settle_node(forest, vi as u32, &mut |slot, val, head| {
                        sink.push(slot as usize, transform(slot, val, head));
                    });
                }
                sink.flush();
            });
        }
        // `scatter_engine_for` always resolves `Auto`.
        ScatterEngine::Auto => unreachable!("Auto resolves to an explicit engine"),
    }
    // One round of n was charged for the per-node dispatch; the pass
    // settles 2n arcs, one operation each.
    ctx.charge_work(n as u64);
}

/// Scatter `±value` deltas at every node's entry/exit tour positions,
/// through the scatter engine on the context.  Charged one round of `n`
/// (two disjoint writes per node) under both engines — exactly what the
/// direct `par_for_idx` pass charges.
fn scatter_entry_exit_deltas<T, F>(ctx: &Ctx, entry: &[u32], exit: &[u32], deltas: &mut [T], f: F)
where
    T: TileValue,
    F: Fn(usize) -> (T, T) + Sync + Send,
{
    let n = entry.len();
    let ptr = SendPtr(deltas.as_mut_ptr());
    match ctx.resolve_scatter("euler_deltas", std::mem::size_of_val(deltas)) {
        ScatterEngine::Direct => {
            ctx.par_for_idx(n, |v| {
                let p = ptr;
                let (plus, minus) = f(v);
                // SAFETY: entry/exit positions are all distinct.
                unsafe {
                    *p.0.add(entry[v] as usize) = plus;
                    *p.0.add(exit[v] as usize) = minus;
                }
            });
        }
        ScatterEngine::Combining => {
            ctx.charge_step(n as u64);
            let num_tasks = combining_tasks(n);
            let block = n.div_ceil(num_tasks);
            let tiles = ScatterTiles::new(ctx, deltas.len(), num_tasks);
            crate::intsort::for_each_block(ctx, num_tasks, |t| {
                let p = ptr;
                let mut sink = tiles.sink(t, p.0);
                for v in t * block..((t + 1) * block).min(n) {
                    let (plus, minus) = f(v);
                    sink.push(entry[v] as usize, plus);
                    sink.push(exit[v] as usize, minus);
                }
                sink.flush();
            });
        }
        // `scatter_engine_for` always resolves `Auto`.
        ScatterEngine::Auto => unreachable!("Auto resolves to an explicit engine"),
    }
}

/// An Euler tour of a [`RootedForest`], with global positions.
///
/// Trees are laid out one after another (in ascending order of root id) in a
/// single global position space of size `2n`, which lets a single prefix scan
/// serve all trees at once: the per-tree contributions cancel, so no
/// segmentation is necessary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EulerTour {
    /// Global position of every node's down arc.
    entry: Vec<u32>,
    /// Global position of every node's up arc.
    exit: Vec<u32>,
}

impl EulerTour {
    /// Construct the tour of `forest`.
    ///
    /// Equivalent to [`EulerTour::arc_successors_into`] + a
    /// [`crate::listrank::list_rank_into`] over the `2n` arcs +
    /// [`EulerTour::from_arc_ranks`]; `decompose` uses the split entry
    /// points to rank the tour and the broken-cycle chains in one fused
    /// engine invocation (see DESIGN.md, "List ranking engines").
    #[must_use]
    pub fn build(ctx: &Ctx, forest: &RootedForest) -> Self {
        sfcp_pram::faults::on_engine_pass();
        let _span = ctx.span("euler_build");
        let n = forest.len();
        if n == 0 {
            return EulerTour {
                entry: Vec::new(),
                exit: Vec::new(),
            };
        }
        let ws = ctx.workspace();
        let mut succ = ws.take_u32(2 * n);
        Self::arc_successors_into(ctx, forest, &mut succ);
        // Rank every arc: distance to its tree's terminal arc.
        let mut dist = ws.take_u32(0);
        list_rank_into(ctx, &succ, &mut dist);
        Self::from_arc_ranks(ctx, forest, &dist)
    }

    /// The successor function of the tour (a collection of linked lists, one
    /// per tree, terminated at the root's up arc), written into
    /// `succ[..2n]`.  One pass per *node* streaming its CSR children list: v
    /// settles its own down arc and the up arcs of all its children
    /// (consecutive children chain up→down, the last child bounces to
    /// up(v)).  Every arc is written exactly once — down(v) at v; up(v) at
    /// v's parent, or at v itself when v is a root (the tree's terminal arc)
    /// — and, unlike the former per-arc formulation, no arc has to *search*
    /// for its position among its siblings, so the pass is linear even on
    /// star-shaped trees (one round, `2n` operations: one per arc).
    ///
    /// Taking the output slice lets `decompose` lay the tour arcs and the
    /// broken-cycle chains out in one buffer and rank both with a single
    /// engine invocation.
    ///
    /// # Panics
    /// Panics if `succ.len() != 2 * forest.len()`.
    pub fn arc_successors_into(ctx: &Ctx, forest: &RootedForest, succ: &mut [u32]) {
        arc_successor_pass(ctx, forest, succ, |_, val, _| val);
    }

    /// [`EulerTour::arc_successors_into`] with the ruler flags of the
    /// list-ranking engines ORed into each word as it is written — the
    /// Euler half of the `has_pred` fold (see
    /// [`crate::listrank::list_rank_flagged_into`] for the flag contract).
    /// The heads of the tour lists are known analytically — the down arc of
    /// every root, and nothing else, has no predecessor — so no sampling
    /// pre-pass over the successor array is ever needed.  `domain_len` is
    /// the length of the full successor array the ranking will run over
    /// (`2n` for a standalone tour; `2n + m` when broken-cycle chains are
    /// fused behind the arcs, as in `decompose`).
    ///
    /// Charges exactly what [`EulerTour::arc_successors_into`] charges.
    ///
    /// # Panics
    /// Panics if `succ.len() != 2 * forest.len()` or
    /// `domain_len >= 2^31` (the flag bit must stay out of the index
    /// space).
    pub fn arc_successors_flagged_into(
        ctx: &Ctx,
        forest: &RootedForest,
        succ: &mut [u32],
        domain_len: usize,
    ) {
        assert!(
            domain_len < (1 << 31) && domain_len >= succ.len(),
            "flagged successor domains pack a flag bit above a 31-bit index"
        );
        arc_successor_pass(ctx, forest, succ, move |slot, val, head| {
            let ruler = head || val == slot || is_sampled_ruler(slot as usize, domain_len);
            val | (u32::from(ruler) << 31)
        });
    }

    /// Fallible [`EulerTour::from_arc_ranks`]: the entry point for arc-rank
    /// streams of untrusted length (e.g. truncated inputs).
    ///
    /// # Errors
    /// [`Error::LengthMismatch`] when `dist.len() < 2 * forest.len()`.
    pub fn try_from_arc_ranks(
        ctx: &Ctx,
        forest: &RootedForest,
        dist: &[u32],
    ) -> Result<Self, Error> {
        if dist.len() < 2 * forest.len() {
            return Err(Error::LengthMismatch {
                what: "arc ranking must cover all 2n arcs",
                left: dist.len(),
                right: 2 * forest.len(),
            });
        }
        Ok(Self::from_arc_ranks(ctx, forest, dist))
    }

    /// Finish the tour from the arc ranking: `dist[a]` is the distance of
    /// arc `a` (in the `down`/`up` arc numbering) to its tree's terminal
    /// arc, i.e. the output of ranking [`EulerTour::arc_successors_into`].
    ///
    /// # Panics
    /// Panics if `dist.len() < 2 * forest.len()`.
    #[must_use]
    pub fn from_arc_ranks(ctx: &Ctx, forest: &RootedForest, dist: &[u32]) -> Self {
        if forest.is_empty() {
            return EulerTour {
                entry: Vec::new(),
                exit: Vec::new(),
            };
        }
        // Standalone callers have no root array at hand; compute one here.
        // `decompose` threads its once-computed roots through
        // [`EulerTour::from_arc_ranks_with_roots`] instead.
        let ws = ctx.workspace();
        let mut root_of = ws.take_u32(0);
        crate::jump::find_roots_into(ctx, forest.parents(), &mut root_of);
        Self::from_arc_ranks_with_roots(ctx, forest, dist, &root_of)
    }

    /// [`EulerTour::from_arc_ranks`] with a caller-provided root array
    /// (`root_of[v]` = the root of `v`'s tree, i.e. the output of
    /// [`crate::jump::find_roots`] on `forest.parents()`).  This is the
    /// root-threading entry: `decompose` computes the root array **once**
    /// and reuses it here, for the `cycle_of` propagation, and for tree
    /// labelling, instead of re-running pointer jumping three times.
    ///
    /// Charges [`EulerTour::from_arc_ranks`]'s cost minus the root
    /// computation the caller already paid for.
    ///
    /// # Panics
    /// Panics if `dist` or `root_of` are shorter than the forest requires.
    #[must_use]
    pub fn from_arc_ranks_with_roots(
        ctx: &Ctx,
        forest: &RootedForest,
        dist: &[u32],
        root_of: &[u32],
    ) -> Self {
        sfcp_pram::faults::on_engine_pass();
        let _span = ctx.span("euler_from_ranks");
        let n = forest.len();
        if n == 0 {
            return EulerTour {
                entry: Vec::new(),
                exit: Vec::new(),
            };
        }
        let num_arcs = 2 * n;
        assert!(dist.len() >= num_arcs, "arc ranking must cover all 2n arcs");
        assert!(root_of.len() >= n, "root array must cover every node");
        let dist = &dist[..num_arcs];
        let ws = ctx.workspace();

        // Tour length of the tree containing v = dist[down(root)] + 1; the
        // position of an arc inside its own tree is length - 1 - dist.
        // Global positions: trees are concatenated by ascending root id.
        // Only root slots of `tree_offset` are written, and only root slots
        // are read (through `root_of`), so no fill is needed.
        let mut tree_offset = ws.take_u32(n); // offset by root id
        let mut acc = 0u32;
        let mut num_roots = 0u64;
        for v in 0..n as u32 {
            if forest.is_root(v) {
                tree_offset[v as usize] = acc;
                acc += dist[down(v) as usize] + 1;
                num_roots += 1;
            }
        }
        debug_assert_eq!(acc as usize, num_arcs);
        ctx.charge_step(num_roots);

        // One fused pass computes both position arrays: the root lookup, tour
        // length and tree offset gathers are shared, and a node's down/up
        // arc ranks are adjacent in `dist`.  The baseline computes entry and
        // exit as two separate parallel maps; the fused pass charges both.
        let mut entry = vec![0u32; n];
        let mut exit = vec![0u32; n];
        {
            let entry_ptr = SendPtr(entry.as_mut_ptr());
            let exit_ptr = SendPtr(exit.as_mut_ptr());
            let (dist, tree_offset) = (&dist, &tree_offset);
            ctx.par_for_idx(n, |v| {
                let r = root_of[v];
                let len = dist[down(r) as usize] + 1;
                let base = tree_offset[r as usize] + len - 1;
                let (ep, xp) = (entry_ptr, exit_ptr);
                // SAFETY: each v writes its own slot in both arrays.
                unsafe {
                    *ep.0.add(v) = base - dist[down(v as u32) as usize];
                    *xp.0.add(v) = base - dist[up(v as u32) as usize];
                }
            });
            ctx.charge_step(n as u64);
        }

        EulerTour { entry, exit }
    }

    /// Number of nodes the tour covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entry.len()
    }

    /// Whether the tour is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entry.is_empty()
    }

    /// Global position of the arc entering `v`.
    #[must_use]
    pub fn entry(&self, v: u32) -> u32 {
        self.entry[v as usize]
    }

    /// Global position of the arc leaving `v`.
    #[must_use]
    pub fn exit(&self, v: u32) -> u32 {
        self.exit[v as usize]
    }

    /// `true` iff `u` is an ancestor of `v` (every node is its own ancestor).
    #[must_use]
    pub fn is_ancestor(&self, u: u32, v: u32) -> bool {
        self.entry(u) <= self.entry(v) && self.exit(v) <= self.exit(u)
    }

    /// Number of nodes in the subtree rooted at every node.
    #[must_use]
    pub fn subtree_sizes(&self, ctx: &Ctx) -> Vec<u32> {
        ctx.par_map_idx(self.len(), |v| (self.exit[v] - self.entry[v]).div_ceil(2))
    }

    /// For every node `v`, the sum of `values[u]` over all *proper* ancestors
    /// `u` of `v` (not including `v` itself).
    ///
    /// Values must be small enough that the total fits in `i64`.
    #[must_use]
    pub fn ancestor_sums(&self, ctx: &Ctx, values: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        self.ancestor_sums_into(ctx, values, &mut out);
        out
    }

    /// [`EulerTour::ancestor_sums`] writing into a reusable output buffer;
    /// the delta and prefix intermediates are workspace checkouts, so the
    /// whole pass is allocation-free once the pools are warm.
    pub fn ancestor_sums_into(&self, ctx: &Ctx, values: &[u64], out: &mut Vec<u64>) {
        sfcp_pram::faults::on_engine_pass();
        let _span = ctx.span("ancestor_sums");
        let n = self.len();
        assert_eq!(values.len(), n);
        out.clear();
        if n == 0 {
            return;
        }
        // Scatter +value at entry positions and -value at exit positions,
        // then an exclusive prefix sum evaluated at entry(v) counts exactly
        // the currently-open nodes, i.e. v's proper ancestors (v's own +value
        // sits *at* entry(v) and is excluded by exclusivity).  The entry/exit
        // positions cover 0..2n exactly, so the scatter fully overwrites the
        // checked-out delta buffer.
        let ws = ctx.workspace();
        let mut deltas = ws.take_i64(2 * n);
        scatter_entry_exit_deltas(ctx, &self.entry, &self.exit, &mut deltas, |v| {
            (values[v] as i64, -(values[v] as i64))
        });
        let mut prefix = ws.take_i64(0);
        scan_generic_into(ctx, &deltas, 0i64, |a, b| a + b, false, &mut prefix);
        out.resize(n, 0);
        ctx.par_update(out, |v, s| {
            let sum = prefix[self.entry[v] as usize];
            debug_assert!(sum >= 0);
            *s = sum as u64;
        });
    }

    /// Specialization of [`EulerTour::ancestor_sums_into`] for 0/1 flag
    /// values: for every node, the number of *proper* ancestors whose flag is
    /// set.  Counts are bounded by `n`, so the deltas and the prefix scan run
    /// over u32 words in two's complement (wrapping adds), halving the
    /// memory traffic of the i64 general case.  The passes and charges are
    /// identical to [`EulerTour::ancestor_sums_into`].
    ///
    /// # Panics
    /// Debug-asserts every flag is 0 or 1.
    pub fn ancestor_counts_into(&self, ctx: &Ctx, flags: &[u64], out: &mut Vec<u64>) {
        sfcp_pram::faults::on_engine_pass();
        let _span = ctx.span("ancestor_counts");
        let n = self.len();
        assert_eq!(flags.len(), n);
        debug_assert!(flags.iter().all(|&v| v <= 1), "flags must be 0/1");
        out.clear();
        if n == 0 {
            return;
        }
        let ws = ctx.workspace();
        let mut deltas = ws.take_u32(2 * n);
        scatter_entry_exit_deltas(ctx, &self.entry, &self.exit, &mut deltas, |v| {
            let f = flags[v] as u32;
            (f, f.wrapping_neg())
        });
        let mut prefix = ws.take_u32(0);
        scan_generic_into(
            ctx,
            &deltas,
            0u32,
            |a, b| a.wrapping_add(b),
            false,
            &mut prefix,
        );
        out.resize(n, 0);
        ctx.par_update(out, |v, s| {
            let count = prefix[self.entry[v] as usize];
            debug_assert!(count as usize <= n);
            *s = u64::from(count);
        });
    }

    /// Depth of every node below its root (roots have level 0).
    #[must_use]
    pub fn levels(&self, ctx: &Ctx) -> Vec<u32> {
        let mut out = Vec::new();
        self.levels_into(ctx, &mut out);
        out
    }

    /// [`EulerTour::levels`] writing into a reusable output buffer.
    ///
    /// Specializes [`EulerTour::ancestor_counts_into`] for the all-ones
    /// flag vector: the flags array never materializes (every entry
    /// position scatters `+1`, every exit `−1`), and the count-to-level
    /// copy is fused into the prefix gather.  Charges exactly what the
    /// unspecialized pipeline charges — the skipped copy pass is charged
    /// without being executed (DESIGN.md, "Charge discipline").
    pub fn levels_into(&self, ctx: &Ctx, out: &mut Vec<u32>) {
        sfcp_pram::faults::on_engine_pass();
        let _span = ctx.span("levels");
        let n = self.len();
        out.clear();
        if n == 0 {
            return;
        }
        let ws = ctx.workspace();
        let mut deltas = ws.take_u32(2 * n);
        scatter_entry_exit_deltas(ctx, &self.entry, &self.exit, &mut deltas, |_| {
            (1u32, 1u32.wrapping_neg())
        });
        let mut prefix = ws.take_u32(0);
        scan_generic_into(
            ctx,
            &deltas,
            0u32,
            |a, b| a.wrapping_add(b),
            false,
            &mut prefix,
        );
        out.resize(n, 0);
        ctx.par_update(out, |v, l| {
            let count = prefix[self.entry[v] as usize];
            debug_assert!((count as usize) < n.max(1));
            *l = count;
        });
        // The unspecialized pipeline runs a separate u64 count buffer and a
        // count-to-level copy pass; charge the copy without executing it.
        ctx.charge_step(n as u64);
    }
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` only smuggles a raw base pointer into parallel tasks
// whose writes target disjoint indices; every dereference site carries its
// own SAFETY argument for that disjointness, and the pointee buffer is
// borrowed for the whole parallel region, so it outlives every task.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` across tasks only copies the pointer value —
// no shared-reference method dereferences it, so aliased access to the
// pointee can never originate from the `Sync` impl itself.
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    #[allow(clippy::needless_range_loop)]
    fn random_forest(n: usize, roots: usize, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let roots = roots.clamp(1, n);
        let mut parent: Vec<u32> = (0..n as u32).collect();
        for i in roots..n {
            parent[i] = rng.gen_range(0..i) as u32;
        }
        let mut relabel: Vec<u32> = (0..n as u32).collect();
        relabel.shuffle(&mut rng);
        let mut out = vec![0u32; n];
        for i in 0..n {
            out[relabel[i] as usize] = relabel[parent[i] as usize];
        }
        out
    }

    fn reference_levels(parent: &[u32]) -> Vec<u32> {
        let n = parent.len();
        (0..n)
            .map(|i| {
                let mut d = 0;
                let mut cur = i;
                while parent[cur] as usize != cur {
                    cur = parent[cur] as usize;
                    d += 1;
                }
                d
            })
            .collect()
    }

    #[test]
    fn forest_structure_small() {
        let ctx = Ctx::parallel();
        // 0 is root; children 1,2; 1 has child 3; 4 is an isolated root.
        let forest = RootedForest::from_parents_checked(&ctx, vec![0, 0, 0, 1, 4]).unwrap();
        assert_eq!(forest.len(), 5);
        assert_eq!(forest.roots(), vec![0, 4]);
        assert_eq!(forest.children(0), &[1, 2]);
        assert_eq!(forest.children(1), &[3]);
        assert!(forest.children(4).is_empty());
        assert!(forest.is_root(4));
        assert!(!forest.is_root(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn forest_rejects_out_of_range_parents() {
        let ctx = Ctx::sequential();
        let _ = RootedForest::from_parents(&ctx, vec![0, 5, 1]);
    }

    #[test]
    fn forest_rejects_cycles() {
        let ctx = Ctx::sequential();
        // 1 -> 2 -> 1 cycle.
        let err = RootedForest::from_parents_checked(&ctx, vec![0, 2, 1]).unwrap_err();
        assert!(matches!(err, Error::CycleDetected { .. }));
        assert!(err.to_string().contains("not a rooted forest"));
        // The error path must leave the workspace reconciled.
        assert_eq!(ctx.workspace().stats().outstanding(), 0);
    }

    #[test]
    fn checked_constructor_rejects_out_of_range_with_typed_error() {
        let ctx = Ctx::sequential();
        let err = RootedForest::from_parents_checked(&ctx, vec![0, 5, 1]).unwrap_err();
        assert!(matches!(err, Error::OutOfRange { index: 1, .. }));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn truncated_arc_ranks_are_a_typed_error() {
        let ctx = Ctx::parallel();
        let forest = RootedForest::from_parents(&ctx, vec![0u32, 0, 1]);
        let err = EulerTour::try_from_arc_ranks(&ctx, &forest, &[0u32; 5]).unwrap_err();
        assert!(matches!(
            err,
            Error::LengthMismatch {
                left: 5,
                right: 6,
                ..
            }
        ));
    }

    /// The fast and checked constructors must agree structurally *and* charge
    /// byte-identical work/depth (the fast path charges the skipped
    /// validation pass).
    #[test]
    fn checked_and_unchecked_constructors_agree() {
        for n in [5usize, 300, 3000, 20_000] {
            let parent = random_forest(n, 3, n as u64);
            let fast_ctx = Ctx::parallel();
            let checked_ctx = Ctx::parallel();
            let fast = RootedForest::from_parents(&fast_ctx, parent.clone());
            let checked = RootedForest::from_parents_checked(&checked_ctx, parent).unwrap();
            assert_eq!(fast, checked, "structures diverged at n={n}");
            assert_eq!(
                fast_ctx.stats(),
                checked_ctx.stats(),
                "constructor charges diverged at n={n}"
            );
        }
    }

    #[test]
    fn tour_entry_exit_nesting() {
        let ctx = Ctx::parallel();
        let parent = vec![0u32, 0, 0, 1, 1, 2];
        let forest = RootedForest::from_parents(&ctx, parent.clone());
        let tour = EulerTour::build(&ctx, &forest);
        // Entry/exit positions are a balanced-parenthesis structure.
        for v in 0..parent.len() as u32 {
            assert!(tour.entry(v) < tour.exit(v));
        }
        // Child nested inside parent.
        for v in 0..parent.len() as u32 {
            if !forest.is_root(v) {
                let p = forest.parent(v);
                assert!(tour.entry(p) < tour.entry(v));
                assert!(tour.exit(v) < tour.exit(p));
            }
        }
        // All 2n positions distinct and within range.
        let mut all: Vec<u32> = (0..parent.len() as u32)
            .flat_map(|v| [tour.entry(v), tour.exit(v)])
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..2 * parent.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn levels_and_subtree_sizes_small() {
        let ctx = Ctx::parallel();
        let parent = vec![0u32, 0, 0, 1, 1, 2, 6];
        let forest = RootedForest::from_parents(&ctx, parent);
        let tour = EulerTour::build(&ctx, &forest);
        assert_eq!(tour.levels(&ctx), vec![0, 1, 1, 2, 2, 2, 0]);
        assert_eq!(tour.subtree_sizes(&ctx), vec![6, 3, 2, 1, 1, 1, 1]);
        assert!(tour.is_ancestor(0, 3));
        assert!(tour.is_ancestor(1, 4));
        assert!(!tour.is_ancestor(2, 3));
        assert!(tour.is_ancestor(6, 6));
        assert!(!tour.is_ancestor(0, 6));
    }

    #[test]
    fn ancestor_sums_counts_flagged_ancestors() {
        let ctx = Ctx::parallel();
        // Path 0 <- 1 <- 2 <- 3 <- 4.
        let parent = vec![0u32, 0, 1, 2, 3];
        let forest = RootedForest::from_parents(&ctx, parent);
        let tour = EulerTour::build(&ctx, &forest);
        // Flag nodes 1 and 3.
        let flags = vec![0u64, 1, 0, 1, 0];
        assert_eq!(tour.ancestor_sums(&ctx, &flags), vec![0, 0, 1, 1, 2]);
    }

    /// The split entry points must reproduce `build` exactly, including when
    /// the arc ranking comes from a longer *fused* buffer (tour arcs first,
    /// unrelated chains after) — the layout `decompose` ranks in one engine
    /// invocation.
    #[test]
    fn split_entry_points_match_build_with_fused_slice() {
        let ctx = Ctx::parallel();
        let parent = vec![0u32, 0, 0, 1, 1, 2, 6];
        let forest = RootedForest::from_parents(&ctx, parent);
        let built = EulerTour::build(&ctx, &forest);
        let n = forest.len();
        let num_arcs = 2 * n;
        // Fused layout: tour successors in [..2n], a 3-element chain after.
        let mut fused = vec![0u32; num_arcs + 3];
        EulerTour::arc_successors_into(&ctx, &forest, &mut fused[..num_arcs]);
        let tail = [
            num_arcs as u32 + 1,
            num_arcs as u32 + 2,
            num_arcs as u32 + 2,
        ];
        fused[num_arcs..].copy_from_slice(&tail);
        let ranks = crate::listrank::list_rank(&ctx, &fused);
        assert_eq!(&ranks[num_arcs..], &[2, 1, 0]);
        let tour = EulerTour::from_arc_ranks(&ctx, &forest, &ranks);
        assert_eq!(built, tour, "fused-slice finish diverged from build");
    }

    #[test]
    fn single_node_trees() {
        let ctx = Ctx::parallel();
        let parent: Vec<u32> = (0..10).collect();
        let forest = RootedForest::from_parents(&ctx, parent);
        let tour = EulerTour::build(&ctx, &forest);
        assert_eq!(tour.levels(&ctx), vec![0; 10]);
        assert_eq!(tour.subtree_sizes(&ctx), vec![1; 10]);
    }

    proptest! {
        #[test]
        fn levels_match_reference(n in 1usize..300, roots in 1usize..6, seed in 0u64..40) {
            let parent = random_forest(n, roots, seed);
            let ctx = Ctx::parallel().with_grain(32);
            let forest = RootedForest::from_parents_checked(&ctx, parent.clone()).unwrap();
            let tour = EulerTour::build(&ctx, &forest);
            prop_assert_eq!(tour.levels(&ctx), reference_levels(&parent));
        }

        #[test]
        fn subtree_sizes_match_reference(n in 1usize..200, seed in 0u64..40) {
            let parent = random_forest(n, 2, seed);
            let ctx = Ctx::parallel().with_grain(32);
            let forest = RootedForest::from_parents_checked(&ctx, parent.clone()).unwrap();
            let tour = EulerTour::build(&ctx, &forest);
            let sizes = tour.subtree_sizes(&ctx);
            // Reference by counting descendants.
            for v in 0..n as u32 {
                let mut count = 0;
                for u in 0..n as u32 {
                    // is u a descendant of v?
                    let mut cur = u;
                    loop {
                        if cur == v { count += 1; break; }
                        let p = parent[cur as usize];
                        if p == cur { break; }
                        cur = p;
                    }
                }
                prop_assert_eq!(sizes[v as usize], count);
            }
        }
    }

    /// Miri target: the arc-layout scatters plus the fused Euler ranking at
    /// a size whose `2n` arc list exceeds the tiny-list Wyllie fallback, so
    /// the ruling-set/bucket walks run their raw-pointer paths.
    #[test]
    fn miri_euler_levels_cross_tiny_list_threshold() {
        let n = 700usize;
        let parent: Vec<u32> = (0..n)
            .map(|i| {
                if i == 0 {
                    0
                } else {
                    ((i as u64).wrapping_mul(2_654_435_761) % i as u64) as u32
                }
            })
            .collect();
        let ctx = Ctx::parallel();
        let forest = RootedForest::from_parents_checked(&ctx, parent.clone()).unwrap();
        let tour = EulerTour::build(&ctx, &forest);
        assert_eq!(tour.levels(&ctx), reference_levels(&parent));
    }
}

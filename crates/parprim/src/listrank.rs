//! List ranking.
//!
//! Step 1 of *Algorithm cycle node labeling* rearranges each cycle into
//! consecutive memory locations; the paper does this with the optimal
//! list-ranking algorithm of Anderson and Miller (`O(log n)` time, `O(n)`
//! work, EREW).  Two implementations are provided:
//!
//! * [`list_rank_wyllie`] — Wyllie's pointer jumping: simple, `O(log n)`
//!   depth but `O(n log n)` work;
//! * [`list_rank_ruling_set`] — the work-efficient scheme: deterministically
//!   sample ~`n / k` *rulers*, walk the short segments between rulers
//!   sequentially (in parallel over segments), rank the contracted list of
//!   rulers with Wyllie, and expand.  Expected `O(n)` work, `O(k + log n)`
//!   depth with `k ≈ log n` — the practical stand-in for Anderson–Miller.
//!
//! The input is a *successor* array: `next[i]` is the element after `i`, and
//! terminal elements satisfy `next[i] == i`.  Several independent lists may
//! share one array.  The output rank of an element is its distance (number of
//! hops) to its terminal.

use sfcp_pram::fxhash::hash_u64;
use sfcp_pram::Ctx;

/// Which list-ranking algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ListRankMethod {
    /// Pointer jumping: `O(n log n)` work, `O(log n)` depth.
    Wyllie,
    /// Sparse ruling set: `O(n)` expected work, `O(log² n)`-ish depth.
    #[default]
    RulingSet,
}

/// Distance of every element to the terminal of its list.
///
/// # Panics
/// Panics if `next` contains an out-of-range index.
#[must_use]
pub fn list_rank(ctx: &Ctx, next: &[u32], method: ListRankMethod) -> Vec<u32> {
    let mut out = Vec::new();
    list_rank_into(ctx, next, method, &mut out);
    out
}

/// [`list_rank`] writing into a reusable output buffer, so repeated rankings
/// (the Euler-tour and cycle-ranking passes of a decomposition) allocate
/// nothing once the caller's buffer and the workspace pools are warm.
pub fn list_rank_into(ctx: &Ctx, next: &[u32], method: ListRankMethod, out: &mut Vec<u32>) {
    match method {
        ListRankMethod::Wyllie => list_rank_wyllie_into(ctx, next, out),
        ListRankMethod::RulingSet => list_rank_ruling_set_into(ctx, next, out),
    }
}

/// Wyllie's pointer-jumping list ranking.
///
/// The per-round successor/rank arrays are workspace-backed and ping-ponged,
/// so the `O(log n)` rounds allocate O(1) buffers per run.
#[must_use]
pub fn list_rank_wyllie(ctx: &Ctx, next: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    list_rank_wyllie_into(ctx, next, &mut out);
    out
}

/// [`list_rank_wyllie`] writing into a reusable output buffer.
pub fn list_rank_wyllie_into(ctx: &Ctx, next: &[u32], out: &mut Vec<u32>) {
    let n = next.len();
    out.clear();
    if n == 0 {
        return;
    }
    for (i, &s) in next.iter().enumerate() {
        assert!((s as usize) < n, "next[{i}] = {s} out of range");
    }
    let ws = ctx.workspace();
    let mut succ = ws.take_u32(n);
    succ.copy_from_slice(next);
    out.resize(n, 0);
    ctx.par_update(out, |i, r| *r = u32::from(next[i] as usize != i));
    let mut next_rank = ws.take_u32(n);
    let mut next_succ = ws.take_u32(n);
    let rounds = sfcp_pram::ceil_log2(n) + 1;
    for r in 0..rounds {
        // Synchronous step: read the old arrays, write fresh ones.
        {
            let rank_ref: &[u32] = out;
            let succ_ref = &succ;
            ctx.par_update(&mut next_rank, |i, r| {
                *r = rank_ref[i] + rank_ref[succ_ref[i] as usize];
            });
            let succ_ref = &succ;
            ctx.par_update(&mut next_succ, |i, s| *s = succ_ref[succ_ref[i] as usize]);
        }
        std::mem::swap(out, &mut *next_rank);
        std::mem::swap(&mut *succ, &mut *next_succ);
        if *next_succ == *succ {
            // Every pointer reached its terminal (whose rank is and stays 0),
            // so further rounds are identity passes: charge them without
            // executing (see DESIGN.md "Charge discipline").
            let skipped = (rounds - 1 - r) as u64;
            ctx.charge_work(2 * skipped * n as u64);
            ctx.charge_rounds(2 * skipped);
            break;
        }
    }
}

/// Sparse-ruling-set list ranking (work-efficient).
#[must_use]
pub fn list_rank_ruling_set(ctx: &Ctx, next: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    list_rank_ruling_set_into(ctx, next, &mut out);
    out
}

/// [`list_rank_ruling_set`] writing into a reusable output buffer.  All
/// intermediates — ruler flags, per-node segment data, the contracted list —
/// are workspace checkouts, and segments are walked twice with O(1) memory
/// (measure, then re-walk and scatter) instead of collecting a per-segment
/// path vector.
pub fn list_rank_ruling_set_into(ctx: &Ctx, next: &[u32], out: &mut Vec<u32>) {
    let n = next.len();
    out.clear();
    if n == 0 {
        return;
    }
    if n <= 1024 {
        // Tiny inputs: pointer jumping is already cheap.
        list_rank_wyllie_into(ctx, next, out);
        return;
    }
    for (i, &s) in next.iter().enumerate() {
        assert!((s as usize) < n, "next[{i}] = {s} out of range");
    }

    // Segment length target ~ log n keeps the expected work linear while the
    // per-segment sequential walks stay short.
    let k = (sfcp_pram::ceil_log2(n) as usize).max(2) * 2;
    let ws = ctx.workspace();

    // Heads (no predecessor) must be rulers, or the prefix of a list before
    // the first sampled ruler would never be walked.  Terminals are rulers by
    // construction of the contracted list.
    let mut has_pred = ws.take_u8(n);
    has_pred.fill(0);
    for (i, &s) in next.iter().enumerate() {
        if s as usize != i {
            has_pred[s as usize] = 1;
        }
    }
    ctx.charge_step(n as u64);

    // Deterministic pseudo-random sampling: element i is a ruler iff its hash
    // falls in a 1/k slice, or it is a head, or it is a terminal.  The same
    // pass also packs the successor and the ruler flag into one word
    // (`next[i] | ruler << 31`), so the segment walks below cost a single
    // gather per hop instead of touching two arrays.
    assert!(
        n < (1 << 31),
        "list_rank_ruling_set packs successors and ruler flags into u32 words"
    );
    let mut is_ruler = ws.take_u8(n);
    let mut flagged_next = ws.take_u32(n);
    {
        let flagged_ptr = SendPtr(flagged_next.as_mut_ptr());
        let has_pred = &has_pred;
        ctx.par_update(&mut is_ruler, |i, r| {
            let ruler = has_pred[i] == 0
                || next[i] as usize == i
                || (hash_u64(i as u64) as usize).is_multiple_of(k);
            *r = u8::from(ruler);
            let p = flagged_ptr;
            // Safety: each i writes its own slot.
            unsafe {
                *p.0.add(i) = next[i] | (u32::from(ruler) << 31);
            }
        });
    }

    // Walk from every ruler to the next ruler, recording for every element on
    // the way its local distance to the segment's *end ruler*, and for every
    // ruler the identity of the next ruler plus the segment length.
    let mut ruler_ids = ws.take_u32(0);
    crate::compact::compact_indices_into(ctx, n, |i| is_ruler[i] == 1, &mut ruler_ids);
    let m = ruler_ids.len();
    let mut ruler_index = ws.take_u32(n);
    ruler_index.fill(u32::MAX);
    for (j, &r) in ruler_ids.iter().enumerate() {
        ruler_index[r as usize] = j as u32;
    }
    ctx.charge_step(m as u64);

    // One parallel pass over segments: starting from every ruler, walk until
    // the next ruler (or a terminal, which is itself a ruler).  Each segment
    // is walked twice with O(1) memory: a first walk measures the hop count
    // and finds the end ruler, a second walk scatters, for every node before
    // the end, (a) its hop distance to the segment end and (b) which ruler
    // that end is.  Writes are disjoint because each node lies in exactly one
    // segment.  No fill is needed: every non-ruler node is interior to
    // exactly one segment and therefore written, and only non-ruler slots
    // are read back.
    let mut local_dist = ws.take_u32(n);
    let mut end_ruler = ws.take_u32(n);
    let mut seg_next = ws.take_u32(m);
    let mut seg_len = ws.take_u32(m);
    {
        let dist_ptr = SendPtr(local_dist.as_mut_ptr());
        let end_ptr = SendPtr(end_ruler.as_mut_ptr());
        let next_ptr = SendPtr(seg_next.as_mut_ptr());
        let len_ptr = SendPtr(seg_len.as_mut_ptr());
        const LOW: u32 = (1 << 31) - 1;
        let (ruler_ids, ruler_index, flagged_next) = (&ruler_ids, &ruler_index, &flagged_next);
        ctx.par_for_idx(m, |j| {
            let start = ruler_ids[j] as usize;
            // Walk 1: measure the segment (hops from start to its end ruler).
            // Each hop is one gather of the packed successor-plus-flag word.
            let mut len = 0u32;
            let mut cur = start;
            let mut word = flagged_next[cur];
            loop {
                let nxt = (word & LOW) as usize;
                if nxt == cur {
                    break; // terminal: segment ends here
                }
                len += 1;
                cur = nxt;
                word = flagged_next[cur];
                if word >> 31 == 1 {
                    break;
                }
            }
            let end = ruler_index[cur];
            // Walk 2: scatter distances for the nodes strictly before the
            // segment end (including the starting ruler itself); revisits the
            // nodes walk 1 just pulled into cache.
            let (dp, ep, np, lp) = (dist_ptr, end_ptr, next_ptr, len_ptr);
            let mut cur = start;
            for steps_from_start in 0..len {
                // Safety: disjoint segments → each node written at most once.
                unsafe {
                    *dp.0.add(cur) = len - steps_from_start;
                    *ep.0.add(cur) = end;
                }
                cur = (flagged_next[cur] & LOW) as usize;
            }
            // Safety: one writer per ruler j.
            unsafe {
                *np.0.add(j) = end;
                *lp.0.add(j) = len;
            }
        });
    }
    ctx.charge_work(n as u64);

    // Contracted list over rulers; rank it with weighted Wyllie
    // (m ≈ n / k elements, weight of ruler j = its segment length in hops;
    // ranks are bounded by the list length, so u32 words suffice).  The
    // round-local arrays ping-pong through the workspace; the measured
    // segment successors double as the initial contracted list.
    let mut succ = seg_next;
    let mut rank = ws.take_u32(m);
    for j in 0..m {
        rank[j] = if succ[j] as usize == j { 0 } else { seg_len[j] };
    }
    {
        let mut next_rank = ws.take_u32(m);
        let mut next_succ = ws.take_u32(m);
        let rounds = sfcp_pram::ceil_log2(m.max(2)) + 1;
        for r in 0..rounds {
            {
                let rank_ref = &rank;
                let succ_ref = &succ;
                ctx.par_update(&mut next_rank, |j, r| {
                    *r = rank_ref[j] + rank_ref[succ_ref[j] as usize];
                });
                let succ_ref = &succ;
                ctx.par_update(&mut next_succ, |j, s| *s = succ_ref[succ_ref[j] as usize]);
            }
            std::mem::swap(&mut *rank, &mut *next_rank);
            std::mem::swap(&mut *succ, &mut *next_succ);
            if *next_succ == *succ {
                // Converged (terminal weights are 0): charge the skipped
                // rounds without executing them.
                let skipped = (rounds - 1 - r) as u64;
                ctx.charge_work(2 * skipped * m as u64);
                ctx.charge_rounds(2 * skipped);
                break;
            }
        }
    }
    let contracted_rank_in_hops = rank;

    // Final rank: a ruler takes its contracted rank; an interior node adds
    // its local distance to the rank of its segment's end ruler.
    ctx.charge_step(n as u64);
    out.resize(n, 0);
    for (i, r) in out.iter_mut().enumerate() {
        *r = if is_ruler[i] == 1 {
            contracted_rank_in_hops[ruler_index[i] as usize]
        } else {
            local_dist[i] + contracted_rank_in_hops[end_ruler[i] as usize]
        };
    }
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use sfcp_pram::Mode;

    /// Reference ranking by walking each list.
    #[allow(clippy::needless_range_loop)]
    fn reference_ranks(next: &[u32]) -> Vec<u32> {
        let n = next.len();
        let mut rank = vec![0u32; n];
        for start in 0..n {
            let mut steps = 0u32;
            let mut cur = start;
            while next[cur] as usize != cur {
                cur = next[cur] as usize;
                steps += 1;
                assert!(steps as usize <= n, "cycle detected — invalid list input");
            }
            rank[start] = steps;
        }
        rank
    }

    /// Build a successor array for a random permutation split into `lists`
    /// independent lists.
    fn random_lists(n: usize, lists: usize, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rng);
        let mut next: Vec<u32> = (0..n as u32).collect();
        let chunk = n.div_ceil(lists.max(1));
        for part in perm.chunks(chunk) {
            for w in part.windows(2) {
                next[w[0] as usize] = w[1];
            }
            // Last element of each part is terminal (already self-loop).
        }
        next
    }

    #[test]
    fn empty_and_singleton() {
        let ctx = Ctx::parallel();
        assert!(list_rank_wyllie(&ctx, &[]).is_empty());
        assert_eq!(list_rank_wyllie(&ctx, &[0]), vec![0]);
        assert_eq!(list_rank(&ctx, &[0], ListRankMethod::RulingSet), vec![0]);
    }

    #[test]
    fn single_chain() {
        // 0 -> 1 -> 2 -> 3 (terminal)
        let next = vec![1u32, 2, 3, 3];
        for mode in [Mode::Sequential, Mode::Parallel] {
            let ctx = Ctx::new(mode);
            assert_eq!(list_rank_wyllie(&ctx, &next), vec![3, 2, 1, 0]);
            assert_eq!(list_rank_ruling_set(&ctx, &next), vec![3, 2, 1, 0]);
        }
    }

    #[test]
    fn two_lists() {
        // list A: 4 -> 2 -> 0 (terminal); list B: 3 -> 1 (terminal)
        let next = vec![0u32, 1, 0, 1, 2];
        let ctx = Ctx::parallel();
        assert_eq!(list_rank_wyllie(&ctx, &next), vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn large_random_lists_all_methods() {
        let next = random_lists(20_000, 7, 42);
        let expected = reference_ranks(&next);
        for mode in [Mode::Sequential, Mode::Parallel] {
            let ctx = Ctx::new(mode);
            assert_eq!(list_rank_wyllie(&ctx, &next), expected, "wyllie {mode:?}");
            assert_eq!(
                list_rank_ruling_set(&ctx, &next),
                expected,
                "ruling set {mode:?}"
            );
        }
    }

    #[test]
    fn single_long_chain_exercises_ruling_set() {
        // One chain of length 50k in index order — heads/terminals handled.
        let n = 50_000;
        let mut next: Vec<u32> = (1..=n as u32).collect();
        next[n - 1] = (n - 1) as u32;
        let ctx = Ctx::parallel();
        let ranks = list_rank_ruling_set(&ctx, &next);
        for (i, &r) in ranks.iter().enumerate() {
            assert_eq!(r as usize, n - 1 - i);
        }
    }

    #[test]
    fn ruling_set_work_is_smaller_than_wyllie() {
        let next = random_lists(100_000, 3, 9);
        let ctx_w = Ctx::parallel();
        let _ = list_rank_wyllie(&ctx_w, &next);
        let ctx_r = Ctx::parallel();
        let _ = list_rank_ruling_set(&ctx_r, &next);
        assert!(
            ctx_r.stats().work < ctx_w.stats().work,
            "ruling set ({}) should charge less work than Wyllie ({})",
            ctx_r.stats().work,
            ctx_w.stats().work
        );
    }

    proptest! {
        #[test]
        fn both_methods_match_reference(n in 1usize..400, lists in 1usize..8, seed in 0u64..100) {
            let next = random_lists(n, lists, seed);
            let expected = reference_ranks(&next);
            let ctx = Ctx::parallel().with_grain(32);
            prop_assert_eq!(list_rank_wyllie(&ctx, &next), expected.clone());
            prop_assert_eq!(list_rank_ruling_set(&ctx, &next), expected);
        }
    }
}

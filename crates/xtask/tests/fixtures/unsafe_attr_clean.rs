//! Fixture: a crate root declaring the required unsafe discipline.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod engine;

//! Fixture: service request handlers that violate the `handle_* -> Result`
//! contract — one inline signature, one wrapped across lines.

/// A handler that forgot its typed-error return.
pub fn handle_partition(req: &ComputeRequest) -> Reply {
    solve(req)
}

/// A wrapped signature whose return type is still not a `Result`.
pub fn handle_decompose(
    req: &ComputeRequest,
    policy: &BatchPolicy,
) -> Reply {
    solve_with(req, policy)
}

/// No return type at all.
pub fn handle_reset() {
    clear();
}

//! Fixture: a documented-panicking pub fn with no `try_` twin, and a
//! facade whose panicking twin is gone.

/// Decompose the permutation.
///
/// # Panics
///
/// Panics when `perm` is not a permutation.
pub fn decompose(perm: &[u32]) -> Partition {
    inner(perm)
}

/// Facade for a function that no longer exists.
pub fn try_vanished(perm: &[u32]) -> Result<Partition, Error> {
    Ok(inner(perm))
}

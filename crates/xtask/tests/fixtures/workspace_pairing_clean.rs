// Fixture: every checkout is bound, returned, or handed to an `_into` sink.
pub fn disciplined(ws: &Workspace, n: usize) -> Scratch<u32> {
    let mut buf = ws.take_u32(n);
    fill_into(ws.take_u64(n).as_mut(), &mut buf);
    drop(ws.take_u8(n));
    return buf;
}

pub fn multi_line(ws: &Workspace, n: usize) {
    let pair = ws
        .take_pairs(n);
    use_it(&pair);
}

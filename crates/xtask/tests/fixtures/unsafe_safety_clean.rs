// Fixture: every unsafe carries an adjacent SAFETY invariant.
pub fn write_disjoint(ptr: SendPtr<u32>, i: usize, v: u32) {
    // SAFETY: each task writes a distinct index, so no slot aliases.
    unsafe {
        *ptr.0.add(i) = v;
    }
}

// SAFETY: only the pointer value crosses threads; all dereferences are
// index-disjoint per task.
unsafe impl<T> Send for SendPtr<T> {}

pub fn trailing(p: *mut u8) {
    unsafe { *p = 0 }; // SAFETY: caller guarantees exclusive access.
}

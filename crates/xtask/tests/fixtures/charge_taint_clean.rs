// Fixture: clean — probe reads only in the allowlisted plan function and
// in test code.
pub fn block_plan(ctx: &Ctx) -> BlockPlan {
    let llc = ctx.topology().llc_bytes;
    BlockPlan::clamp(llc)
}

pub fn rank_pass_into(_ctx: &Ctx, out: &mut [u32]) {
    drive(out);
}

#[cfg(test)]
mod tests {
    #[test]
    fn probe_in_tests_is_fine() {
        let t = Topology::probe();
        assert!(t.llc_bytes > 0);
    }
}

// Fixture: a charged engine pass reading the topology probe directly.
pub fn rank_pass_into(ctx: &Ctx, out: &mut [u32]) {
    let lanes = ctx.topology().l1d_bytes / 64;
    let line = Topology::probe().cache_line;
    drive(out, lanes, line);
}

// Fixture: unsafe without an adjacent SAFETY comment.
pub fn write_disjoint(ptr: SendPtr<u32>, i: usize, v: u32) {
    unsafe {
        *ptr.0.add(i) = v;
    }
}

// A descriptive comment that is not a SAFETY invariant.
// Writes one slot.
unsafe impl<T> Send for SendPtr<T> {}

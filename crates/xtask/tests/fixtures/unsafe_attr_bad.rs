//! Fixture: a crate root missing the unsafe-discipline attribute.

#![warn(missing_docs)]

pub mod engine;

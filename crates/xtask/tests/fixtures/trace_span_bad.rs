// Fixture: engine passes announced without opening a trace span.
pub fn rank_pass_into(ctx: &Ctx, out: &mut [u32]) {
    sfcp_pram::faults::on_engine_pass();
    ctx.tracker().charge(out.len() as u64, 1);
    drive(out);
}

pub fn scatter_pass_into(ctx: &Ctx, out: &mut [u32]) {
    sfcp_pram::faults::on_engine_pass();
    drive(out);
}

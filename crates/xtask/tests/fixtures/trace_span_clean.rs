// Fixture: clean — every announced pass opens a span, a justified
// suppression is honoured, and test code is exempt.
pub fn rank_pass_into(ctx: &Ctx, out: &mut [u32]) {
    sfcp_pram::faults::on_engine_pass();
    let _span = ctx.span("rank_pass");
    ctx.tracker().charge(out.len() as u64, 1);
    drive(out);
}

pub fn scatter_pass_into(ctx: &Ctx, out: &mut [u32]) {
    let mut span = ctx.span("scatter_pass");
    span.attr("n", out.len() as u64);
    sfcp_pram::faults::on_engine_pass();
    drive(out);
}

pub fn micro_pass(out: &mut [u32]) {
    // lint:allow(trace-span): micro-pass measured inside the caller's span
    sfcp_pram::faults::on_engine_pass();
    drive(out);
}

#[cfg(test)]
mod tests {
    #[test]
    fn pass_in_tests_is_fine() {
        sfcp_pram::faults::on_engine_pass();
    }
}

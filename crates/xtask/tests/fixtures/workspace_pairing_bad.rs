// Fixture: a checkout that is neither bound nor handed off, and a forget.
pub fn leaky(ws: &Workspace, n: usize) {
    ws.take_u32(n);
    let buf = ws.take_u64(n);
    std::mem::forget(buf);
}

// Fixture: `_into` draws scratch from the workspace; the wrapper allocates
// only the returned result; the deliberate baseline copy is justified.
pub fn rank_into(ctx: &Ctx, ws: &Workspace, out: &mut [u32]) {
    let mut scratch = ws.take_u32(out.len());
    drive(ctx, out, scratch.as_mut());
}

pub fn rank(ctx: &Ctx, ws: &Workspace, n: usize) -> Vec<u32> {
    let mut out = vec![0u32; n];
    rank_into(ctx, ws, &mut out);
    out
}

pub fn baseline(order: &[u32]) -> Vec<u32> {
    // lint:allow(alloc-hot-path): the baseline engine materialises the
    // order by design.
    order.to_vec()
}

#[cfg(test)]
mod tests {
    #[test]
    fn copies_in_tests_are_fine() {
        let v = [1u32].to_vec();
        assert_eq!(v.len(), 1);
    }
}

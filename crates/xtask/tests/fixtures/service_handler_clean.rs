//! Fixture: well-formed service handlers (typed `Result` returns, including
//! a wrapped signature), plus names the handler rule must not touch.

/// An inline conforming handler.
pub fn handle_partition(req: &ComputeRequest) -> Result<Reply, ErrorReply> {
    solve(req)
}

/// A conforming handler whose signature wraps across lines.
pub fn handle_decompose(
    req: &ComputeRequest,
    policy: &BatchPolicy,
) -> Result<Reply, ErrorReply> {
    solve_with(req, policy)
}

/// Private helpers are not wire handlers.
fn handle_internal(req: &ComputeRequest) -> Reply {
    solve(req)
}

/// Non-handler pub fns are out of scope.
pub fn encode(req: &ComputeRequest) -> Vec<u8> {
    req.to_bytes()
}

#[cfg(test)]
mod tests {
    /// Test-only helpers are exempt.
    pub fn handle_fake(req: &ComputeRequest) -> Reply {
        solve(req)
    }
}

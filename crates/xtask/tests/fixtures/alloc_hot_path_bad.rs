// Fixture: allocation inside an `_into` entry point plus an accidental copy.
pub fn rank_into(ctx: &Ctx, out: &mut [u32]) {
    let scratch = Vec::with_capacity(out.len());
    drive(ctx, out, scratch);
}

pub fn helper(order: &[u32]) -> Vec<u32> {
    order.to_vec()
}

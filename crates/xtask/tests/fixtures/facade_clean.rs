//! Fixture: the panicking entry point and its typed-error twin, both
//! present in the same crate.

/// Decompose the permutation.
///
/// # Panics
///
/// Panics when `perm` is not a permutation.
pub fn decompose(perm: &[u32]) -> Partition {
    inner(perm)
}

/// Typed-error facade over [`decompose`].
pub fn try_decompose(perm: &[u32]) -> Result<Partition, Error> {
    check(perm)?;
    Ok(inner(perm))
}

/// Already returns `Result`, so no twin is required.
///
/// # Panics
///
/// Panics on allocator exhaustion only.
pub fn fallible(perm: &[u32]) -> Result<Partition, Error> {
    Ok(inner(perm))
}

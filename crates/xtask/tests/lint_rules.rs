//! Fixture-based rule tests: for every sfcp-lint rule, one deliberately
//! violating fixture (under `tests/fixtures/`, a directory the repo walk
//! skips) and one clean fixture.  The fixtures are scanned under fake
//! repo-relative paths so the file-gated rules (hot-path modules, crate
//! roots, facade crates) fire exactly as they would in the tree.

use xtask::rules::{
    alloc_hot_path, bench_engines, charge_taint, facade_coverage::FacadeState, trace_span,
    unsafe_hygiene, workspace_pairing,
};
use xtask::scan::FileScan;

fn scan(rel_path: &str, src: &str) -> FileScan {
    FileScan::new(rel_path, src, false)
}

#[test]
fn charge_taint_flags_probe_reads_in_engine_code() {
    let s = scan(
        "crates/parprim/src/rank.rs",
        include_str!("fixtures/charge_taint_bad.rs"),
    );
    let findings = charge_taint::check(&s);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == charge_taint::RULE));
    assert!(findings[0].message.contains("rank_pass_into"));
}

#[test]
fn charge_taint_allows_plan_functions_and_tests() {
    let s = scan(
        "crates/parprim/src/intsort.rs",
        include_str!("fixtures/charge_taint_clean.rs"),
    );
    assert_eq!(charge_taint::check(&s), vec![]);
}

#[test]
fn unsafe_safety_flags_missing_invariants() {
    let s = scan(
        "crates/parprim/src/example.rs",
        include_str!("fixtures/unsafe_safety_bad.rs"),
    );
    let findings = unsafe_hygiene::check_safety(&s);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings
        .iter()
        .all(|f| f.rule == unsafe_hygiene::RULE_SAFETY));
}

#[test]
fn unsafe_safety_accepts_adjacent_and_trailing_comments() {
    let s = scan(
        "crates/parprim/src/example.rs",
        include_str!("fixtures/unsafe_safety_clean.rs"),
    );
    assert_eq!(unsafe_hygiene::check_safety(&s), vec![]);
}

#[test]
fn unsafe_attr_requires_crate_root_discipline() {
    let bad = scan(
        "crates/parprim/src/lib.rs",
        include_str!("fixtures/unsafe_attr_bad.rs"),
    );
    let findings = unsafe_hygiene::check_attr(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, unsafe_hygiene::RULE_ATTR);

    // The same source is also insufficient for a must-forbid crate root.
    let bad_forbid = scan(
        "crates/pram/src/lib.rs",
        include_str!("fixtures/unsafe_attr_clean.rs"),
    );
    let findings = unsafe_hygiene::check_attr(&bad_forbid);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("forbid(unsafe_code)"));
}

#[test]
fn unsafe_attr_accepts_declared_discipline_and_ignores_non_roots() {
    let clean = scan(
        "crates/parprim/src/lib.rs",
        include_str!("fixtures/unsafe_attr_clean.rs"),
    );
    assert_eq!(unsafe_hygiene::check_attr(&clean), vec![]);

    // A module file that merely *ends* in lib.rs-like paths is not a root.
    let non_root = scan(
        "crates/parprim/src/engine.rs",
        include_str!("fixtures/unsafe_attr_bad.rs"),
    );
    assert_eq!(unsafe_hygiene::check_attr(&non_root), vec![]);
}

#[test]
fn workspace_pairing_flags_dropped_checkouts_and_forget() {
    let s = scan(
        "crates/parprim/src/example.rs",
        include_str!("fixtures/workspace_pairing_bad.rs"),
    );
    let findings = workspace_pairing::check(&s);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("take_u32")));
    assert!(findings.iter().any(|f| f.message.contains("mem::forget")));
}

#[test]
fn workspace_pairing_accepts_bindings_and_handoffs() {
    let s = scan(
        "crates/parprim/src/example.rs",
        include_str!("fixtures/workspace_pairing_clean.rs"),
    );
    assert_eq!(workspace_pairing::check(&s), vec![]);
}

#[test]
fn alloc_hot_path_flags_into_allocations_and_copies() {
    let s = scan(
        "crates/parprim/src/rank.rs",
        include_str!("fixtures/alloc_hot_path_bad.rs"),
    );
    let findings = alloc_hot_path::check(&s);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("rank_into")));
    assert!(findings.iter().any(|f| f.message.contains(".to_vec()")));
}

#[test]
fn alloc_hot_path_accepts_workspace_scratch_and_justified_copies() {
    let s = scan(
        "crates/parprim/src/rank.rs",
        include_str!("fixtures/alloc_hot_path_clean.rs"),
    );
    assert_eq!(alloc_hot_path::check(&s), vec![]);
}

#[test]
fn alloc_hot_path_ignores_non_hot_modules() {
    let s = scan(
        "crates/bench/src/tables.rs",
        include_str!("fixtures/alloc_hot_path_bad.rs"),
    );
    assert_eq!(alloc_hot_path::check(&s), vec![]);
}

#[test]
fn facade_coverage_flags_missing_and_orphaned_twins() {
    let mut state = FacadeState::default();
    state.ingest(&scan(
        "crates/pram/src/api.rs",
        include_str!("fixtures/facade_bad.rs"),
    ));
    let findings = state.finish();
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("try_decompose")));
    assert!(findings.iter().any(|f| f.message.contains("`vanished`")));
}

#[test]
fn facade_coverage_accepts_paired_twins_across_result_types() {
    let mut state = FacadeState::default();
    state.ingest(&scan(
        "crates/pram/src/api.rs",
        include_str!("fixtures/facade_clean.rs"),
    ));
    assert_eq!(state.finish(), vec![]);
}

#[test]
fn trace_span_flags_unspanned_engine_passes() {
    let s = scan(
        "crates/parprim/src/rank.rs",
        include_str!("fixtures/trace_span_bad.rs"),
    );
    let findings = trace_span::check(&s);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == trace_span::RULE));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("rank_pass_into")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("scatter_pass_into")));
}

#[test]
fn trace_span_accepts_spanned_suppressed_and_test_passes() {
    let s = scan(
        "crates/parprim/src/rank.rs",
        include_str!("fixtures/trace_span_clean.rs"),
    );
    assert_eq!(trace_span::check(&s), vec![]);
}

#[test]
fn trace_span_exempts_the_fault_layer() {
    let s = scan(
        "crates/pram/src/faults.rs",
        include_str!("fixtures/trace_span_bad.rs"),
    );
    assert_eq!(trace_span::check(&s), vec![]);
}

#[test]
fn bench_engines_flags_mislabeled_rows() {
    let findings = bench_engines::check(
        "BENCH_parprim.json",
        include_str!("fixtures/bench_engines_bad.json"),
    );
    // scatter row with the sort pair, unknown pair, unknown big-n single,
    // and a schema-2 row missing the trace summary.
    assert_eq!(findings.len(), 4, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("mislabel")));
    assert!(findings.iter().any(|f| f.message.contains("\"turbo\"")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("missing the \"trace\" summary")));
}

#[test]
fn bench_engines_accepts_known_labels() {
    let findings = bench_engines::check(
        "BENCH_parprim.json",
        include_str!("fixtures/bench_engines_clean.json"),
    );
    assert_eq!(findings, vec![]);
}

#[test]
fn facade_coverage_flags_handlers_without_result_returns() {
    let mut state = FacadeState::default();
    state.ingest(&scan(
        "crates/service/src/worker.rs",
        include_str!("fixtures/service_handler_bad.rs"),
    ));
    let findings = state.finish();
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`handle_partition`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`handle_decompose`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`handle_reset`")));
}

#[test]
fn facade_coverage_accepts_conforming_handlers() {
    let mut state = FacadeState::default();
    state.ingest(&scan(
        "crates/service/src/worker.rs",
        include_str!("fixtures/service_handler_clean.rs"),
    ));
    assert_eq!(state.finish(), vec![]);
}

#[test]
fn handler_rule_is_scoped_to_the_service_crate() {
    // The same non-conforming handlers in another facade crate are not the
    // service wire surface; only the `# Panics`-twin rule applies there.
    let mut state = FacadeState::default();
    state.ingest(&scan(
        "crates/core/src/worker.rs",
        include_str!("fixtures/service_handler_bad.rs"),
    ));
    assert_eq!(state.finish(), vec![]);
}

#[test]
fn unsafe_attr_covers_the_service_crate_root() {
    // The service crate is declared unsafe-free: a root without
    // `forbid(unsafe_code)` must be flagged.
    let findings = unsafe_hygiene::check_attr(&scan(
        "crates/service/src/lib.rs",
        include_str!("fixtures/unsafe_attr_bad.rs"),
    ));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("forbid(unsafe_code)"));
}

//! The self-test: the repo must lint clean with its own lint.  Any rule
//! regression (or any new violation in the tree) fails here before CI's
//! `cargo run -p xtask -- lint` gate even runs.

#[test]
fn repo_lints_clean() {
    let root = xtask::default_root();
    assert!(
        root.join("Cargo.toml").is_file(),
        "default_root() must land on the workspace root, got {}",
        root.display()
    );
    let (findings, scanned) = xtask::run_lint(&root).expect("lint walk");
    assert!(
        findings.is_empty(),
        "sfcp-lint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The walk must actually have covered the tree (guards against a
    // silently-empty scan reporting "clean").
    assert!(scanned > 50, "only {scanned} files scanned");
}

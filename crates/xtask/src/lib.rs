//! # xtask — first-party repo tooling (`cargo run -p xtask -- lint`)
//!
//! `sfcp-lint` is a self-contained static-analysis pass over the
//! first-party crates, enforcing the invariants the test suite can only
//! check at runtime (see DESIGN.md, "Statically enforced invariants"):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `charge-taint` | topology probe reads only in allowlisted physical-plan functions |
//! | `unsafe-safety` | every `unsafe` carries an adjacent `// SAFETY:` invariant |
//! | `unsafe-attr` | crate roots declare `deny(unsafe_op_in_unsafe_fn)` / `forbid(unsafe_code)` |
//! | `workspace-pairing` | workspace checkouts are bound or handed off; no `mem::forget` |
//! | `alloc-hot-path` | no allocation in `_into` hot paths; no accidental O(n) copies |
//! | `facade-coverage` | panicking `pram`/`core` entry points have `try_` twins |
//! | `trace-span` | every engine pass (`on_engine_pass`) opens a trace span |
//! | `bench-engines` | committed bench rows carry known engine-set labels |
//! | `lint-allow` | every inline suppression carries a justification |
//!
//! Suppression: `// lint:allow(rule-id): justification` on (or directly
//! above) the offending line.  The justification is mandatory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod lexer;
pub mod rules;
pub mod scan;

use rules::facade_coverage::FacadeState;
use scan::{FileScan, Finding};
use std::path::{Path, PathBuf};

/// Directories (repo-relative) whose `.rs` files are first-party sources.
const SCAN_DIRS: &[&str] = &["crates", "src", "tests", "examples"];
/// Path components that are never scanned: vendored shims, build output,
/// and the lint's own deliberately-violating fixtures.
const SKIP_COMPONENTS: &[&str] = &["vendor", "target", "fixtures"];

/// Recursively collect first-party `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if SKIP_COMPONENTS.contains(&name.as_str()) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Whether a repo-relative path is test code wholesale (integration tests
/// and bench targets: not part of the charged/hot production surface).
fn is_test_path(rel_path: &str) -> bool {
    rel_path.starts_with("tests/") || rel_path.contains("/tests/") || rel_path.contains("/benches/")
}

/// Run every lint over the repo at `root`.  Returns sorted findings and the
/// number of files scanned.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn run_lint(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let dir_path = root.join(dir);
        if dir_path.is_dir() {
            collect_rs(&dir_path, &mut files)?;
        }
    }
    files.sort();

    let mut findings = Vec::new();
    let mut facades = FacadeState::default();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let rel_path = rel(root, path);
        let scan = FileScan::new(&rel_path, &src, is_test_path(&rel_path));
        findings.extend(scan.scan_findings.iter().cloned());
        findings.extend(rules::charge_taint::check(&scan));
        findings.extend(rules::unsafe_hygiene::check_safety(&scan));
        findings.extend(rules::unsafe_hygiene::check_attr(&scan));
        findings.extend(rules::workspace_pairing::check(&scan));
        findings.extend(rules::alloc_hot_path::check(&scan));
        findings.extend(rules::trace_span::check(&scan));
        facades.ingest(&scan);
    }
    findings.extend(facades.finish());

    let mut bench_files: Vec<PathBuf> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_parprim") && n.ends_with(".json"))
        })
        .collect();
    bench_files.sort();
    let total = files.len() + bench_files.len();
    for path in bench_files {
        let contents = std::fs::read_to_string(&path)?;
        findings.extend(rules::bench_engines::check(&rel(root, &path), &contents));
    }

    findings.sort();
    findings.dedup();
    Ok((findings, total))
}

/// Locate the workspace root: start at `crates/xtask` and walk up to the
/// directory holding the workspace `Cargo.toml`.
#[must_use]
pub fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

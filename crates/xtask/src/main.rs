//! `cargo run -p xtask -- lint [--root <path>]` — run sfcp-lint and exit
//! non-zero on any finding (the CI gate).  Exit codes: 0 clean, 1 findings,
//! 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut cmd: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                if i + 1 >= args.len() {
                    eprintln!("xtask: --root needs a path");
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            flag if flag.starts_with('-') => {
                eprintln!("xtask: unknown flag {flag}");
                return ExitCode::from(2);
            }
            sub => {
                if cmd.is_some() {
                    eprintln!("xtask: unexpected argument {sub}");
                    return ExitCode::from(2);
                }
                cmd = Some(sub.to_string());
                i += 1;
            }
        }
    }
    match cmd.as_deref() {
        Some("lint") => {}
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- lint [--root <path>]{}",
                other.map_or(String::new(), |o| format!(" (got `{o}`)"))
            );
            return ExitCode::from(2);
        }
    }
    let root = root.unwrap_or_else(xtask::default_root);
    match xtask::run_lint(&root) {
        Ok((findings, scanned)) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("sfcp-lint: {scanned} files scanned, clean");
                ExitCode::SUCCESS
            } else {
                println!(
                    "sfcp-lint: {} finding(s) across {scanned} files",
                    findings.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("xtask: {err}");
            ExitCode::from(2)
        }
    }
}

//! A comment- and string-aware line scanner for Rust source.
//!
//! The lint rules all work on *views* of a source file: a **code view** with
//! every comment and every string/char-literal body blanked out, and a
//! **comment view** holding the comment text of each line.  Substring
//! searches against the code view can then never be fooled by a rule token
//! (`unsafe`, `topology()`, `vec![`) appearing inside a doc comment or a
//! string literal — the precision/recall contract of the whole linter rests
//! on this module.
//!
//! The scanner is a hand-rolled state machine rather than a real parser (the
//! build environment has no registry, so `syn` is not an option — the same
//! vendored-shim precedent as `vendor/`).  It understands:
//!
//! * `//` line comments and nested `/* /* */ */` block comments,
//! * string literals with escapes, byte strings, and raw (byte) strings
//!   `r"…"`, `r#"…"#`, `br##"…"##` with any number of hashes,
//! * char and byte-char literals (`'a'`, `'\''`, `b'\xff'`) — and it keeps
//!   lifetimes (`'a`, `'static`) in the code view instead of eating to the
//!   next apostrophe,
//! * raw identifiers (`r#match` is an identifier, not a raw string).

/// One source line, split into its code part and its comment part.
#[derive(Debug, Default, Clone)]
pub struct LineView {
    /// The raw line text, untouched.
    pub raw: String,
    /// Code with comments and literal bodies removed (string delimiters are
    /// kept so `""` still reads as an expression boundary).
    pub code: String,
    /// Concatenated text of every comment on the line (markers stripped).
    pub comment: String,
}

impl LineView {
    /// True when the line carries no code at all (blank or comment-only).
    #[must_use]
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// True when the code part is exactly an attribute (`#[…]` / `#![…]`),
    /// possibly spilling over to the next line.
    #[must_use]
    pub fn is_attr_only(&self) -> bool {
        let t = self.code.trim();
        t.starts_with("#[") || t.starts_with("#![")
    }
}

#[derive(PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Split `src` into per-line code/comment views.
#[must_use]
pub fn scan_source(src: &str) -> Vec<LineView> {
    let b: Vec<char> = src.chars().collect();
    let mut lines: Vec<LineView> = Vec::new();
    let mut raw = String::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(LineView {
                raw: std::mem::take(&mut raw),
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
            });
            i += 1;
            continue;
        }
        raw.push(c);
        match state {
            State::Code => {
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    raw.push('/');
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && b.get(i + 1) == Some(&'*') {
                    raw.push('*');
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                    continue;
                }
                let prev_is_ident = i > 0 && is_ident(b[i - 1]);
                if (c == 'r' || c == 'b') && !prev_is_ident {
                    // Raw/byte string openers: r"", r#""#, b"", br#""#.
                    let mut j = i + 1;
                    if c == 'b' && b.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let raw_form = c == 'r' || j > i + 1; // r…, br…
                    if b.get(j) == Some(&'"') && (raw_form || hashes == 0) {
                        // `b#"` is not a literal; `b"` (hashes == 0) is.
                        let plain_byte_str = c == 'b' && b.get(i + 1) == Some(&'"');
                        for (k, &opener_ch) in b.iter().enumerate().take(j + 1).skip(i) {
                            code.push(opener_ch);
                            if k > i {
                                raw.push(opener_ch);
                            }
                        }
                        state = if plain_byte_str {
                            State::Str
                        } else {
                            State::RawStr(hashes)
                        };
                        i = j + 1;
                        continue;
                    }
                    if c == 'b' && b.get(i + 1) == Some(&'\'') {
                        // Byte char literal b'…'.
                        code.push('b');
                        raw.push('\'');
                        code.push('\'');
                        state = State::CharLit;
                        i += 2;
                        continue;
                    }
                    code.push(c);
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Lifetime or char literal?  `'a'` / `'\n'` are chars;
                    // `'a`, `'static` (no closing quote right after the
                    // identifier) are lifetimes.
                    let next = b.get(i + 1).copied();
                    let is_char = match next {
                        Some('\\') => true,
                        Some(n) if is_ident(n) => b.get(i + 2) == Some(&'\''),
                        Some('\'') => false, // '' is invalid; treat as code
                        Some(_) => true,     // '(' , '{' , etc.
                        None => false,
                    };
                    code.push('\'');
                    if is_char {
                        state = State::CharLit;
                    }
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && b.get(i + 1) == Some(&'*') {
                    raw.push('*');
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && b.get(i + 1) == Some(&'/') {
                    raw.push('/');
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    if let Some(&n) = b.get(i + 1) {
                        if n != '\n' {
                            raw.push(n);
                            i += 1;
                        }
                    }
                    i += 1;
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && b.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                            raw.push('#');
                        }
                        state = State::Code;
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
            State::CharLit => {
                if c == '\\' {
                    if let Some(&n) = b.get(i + 1) {
                        raw.push(n);
                    }
                    i += 2;
                } else if c == '\'' {
                    code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !raw.is_empty() || !code.is_empty() || !comment.is_empty() {
        lines.push(LineView { raw, code, comment });
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scan_source(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped_from_code() {
        let v = scan_source("let x = 1; // unsafe topology()\nlet y = 2;");
        assert!(!v[0].code.contains("unsafe"));
        assert!(v[0].comment.contains("unsafe topology()"));
        assert!(v[1].code.contains("let y"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let v = codes("a /* one /* two */ still comment */ b\nc");
        assert!(v[0].contains('a') && v[0].contains('b'));
        assert!(!v[0].contains("still"));
        assert_eq!(v[1], "c");
    }

    #[test]
    fn multiline_block_comment_blanks_every_line() {
        let v = scan_source("x /* start\nunsafe { }\nend */ y");
        assert!(!v[1].code.contains("unsafe"));
        assert!(v[1].comment.contains("unsafe"));
        assert!(v[2].code.contains('y'));
    }

    #[test]
    fn string_bodies_are_blanked_but_delimiters_kept() {
        let v = codes(r#"let s = "vec![unsafe // not a comment]";"#);
        assert!(!v[0].contains("vec!["));
        assert!(!v[0].contains("//"));
        assert!(v[0].contains("\"\""));
        assert!(v[0].ends_with(';'));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let v = codes(r#"let s = "a\"unsafe\"b"; let t = 1;"#);
        assert!(!v[0].contains("unsafe"));
        assert!(v[0].contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_with_hashes_span_lines() {
        let src = "let s = r#\"line one // no comment\nunsafe line two\n\"# ; done";
        let v = scan_source(src);
        assert!(!v[0].code.contains("no comment"));
        assert!(!v[1].code.contains("unsafe"));
        assert!(v[2].code.contains("done"));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_literals() {
        let v = codes("let a = b\"unsafe\"; let b2 = br#\"vec![\"#; x");
        assert!(!v[0].contains("unsafe"));
        assert!(!v[0].contains("vec!["));
        assert!(v[0].contains('x'));
    }

    #[test]
    fn char_literals_are_blanked() {
        let v = codes("let q = '\"'; let c = '\\''; let u = 'u'; after");
        // None of the quotes/backslashes inside the char literals leak into
        // the code view as string openers: were the `'"'` body kept, the
        // rest of the line would be swallowed as a string literal.
        assert!(v[0].contains("after"));
        assert!(!v[0].contains('"'));
        assert!(!v[0].contains('\\'));
    }

    #[test]
    fn lifetimes_are_kept_as_code() {
        let v = codes("fn f<'a>(x: &'a str) -> &'static str { x }");
        assert!(v[0].contains("'a"));
        assert!(v[0].contains("'static"));
        assert!(v[0].contains("{ x }"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let v = codes("let r#type = 1; let x = r#type + 1;");
        assert!(v[0].contains("r#type"));
        assert!(v[0].contains("+ 1;"));
    }

    #[test]
    fn comment_markers_inside_strings_are_ignored() {
        let v = scan_source("let s = \"// SAFETY: fake\"; real_code();");
        assert!(v[0].comment.is_empty());
        assert!(v[0].code.contains("real_code()"));
    }

    #[test]
    fn attr_and_blank_detection() {
        let v = scan_source("#[cfg(test)]\n\n// only comment\nlet x = 1;");
        assert!(v[0].is_attr_only());
        assert!(v[1].is_code_blank());
        assert!(v[2].is_code_blank());
        assert!(!v[3].is_code_blank());
    }
}
